(* Tests for the Domain-based worker pool: result ordering, the
   sequential jobs=1 path, fail-fast exception propagation, and pool
   reuse after both completion and failure. *)

let pool_tests =
  [
    Alcotest.test_case "map preserves input order" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            let input = Array.init 100 (fun i -> i) in
            let out = Parallel.Pool.map pool (fun x -> x * x) input in
            Alcotest.(check int) "length" 100 (Array.length out);
            Array.iteri
              (fun i y -> Alcotest.(check int) "slot" (i * i) y)
              out));
    Alcotest.test_case "map agrees with Array.map" `Quick (fun () ->
        let input = Array.init 257 (fun i -> 3 * i - 7) in
        let f x = (x * x) - x in
        let expected = Array.map f input in
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            Alcotest.(check (array int))
              "same" expected
              (Parallel.Pool.map pool f input)));
    Alcotest.test_case "jobs=1 runs on the calling domain" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:1 (fun pool ->
            let self = Domain.self () in
            let out =
              Parallel.Pool.map pool
                (fun x ->
                  Alcotest.(check bool)
                    "same domain" true
                    (Domain.self () = self);
                  x + 1)
                (Array.init 10 (fun i -> i))
            in
            Alcotest.(check int) "last" 10 out.(9)));
    Alcotest.test_case "empty and singleton inputs" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            Alcotest.(check int) "empty" 0
              (Array.length (Parallel.Pool.map pool (fun x -> x) [||]));
            Alcotest.(check (array int))
              "singleton" [| 42 |]
              (Parallel.Pool.map pool (fun x -> x * 2) [| 21 |])));
    Alcotest.test_case "exceptions propagate to the caller" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            match
              Parallel.Pool.map pool
                (fun x -> if x = 37 then failwith "boom" else x)
                (Array.init 64 (fun i -> i))
            with
            | _ -> Alcotest.fail "expected the exception to propagate"
            | exception Failure msg -> Alcotest.(check string) "msg" "boom" msg));
    Alcotest.test_case "pool stays usable after a failed map" `Quick
      (fun () ->
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            (try
               ignore
                 (Parallel.Pool.map pool
                    (fun _ -> failwith "first batch dies")
                    (Array.init 16 (fun i -> i)))
             with Failure _ -> ());
            let out =
              Parallel.Pool.map pool (fun x -> x + 1)
                (Array.init 16 (fun i -> i))
            in
            Alcotest.(check int) "recovered" 16 out.(15)));
    Alcotest.test_case "many successive batches reuse the workers" `Quick
      (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            for round = 1 to 50 do
              let out =
                Parallel.Pool.map pool
                  (fun x -> x * round)
                  (Array.init 8 (fun i -> i))
              in
              Alcotest.(check int) "slot 7" (7 * round) out.(7)
            done));
    Alcotest.test_case "create rejects jobs < 1" `Quick (fun () ->
        match Parallel.Pool.create ~jobs:0 () with
        | _ -> Alcotest.fail "accepted jobs = 0"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "with_pool returns the body's value" `Quick (fun () ->
        Alcotest.(check int) "value" 99
          (Parallel.Pool.with_pool ~jobs:2 (fun _ -> 99)));
    Alcotest.test_case "with_pool shuts down on body exception" `Quick
      (fun () ->
        match
          Parallel.Pool.with_pool ~jobs:2 (fun _ -> failwith "body")
        with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg -> Alcotest.(check string) "msg" "body" msg);
    Alcotest.test_case "default_jobs is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true
          (Parallel.Pool.default_jobs () >= 1));
  ]

(* map_result: per-task outcomes, no batch cancellation — the graceful
   half of the pool API that the portfolio race is built on. *)
let map_result_tests =
  [
    Alcotest.test_case "all-ok preserves order" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            let out =
              Parallel.Pool.map_result pool
                (fun x -> x * x)
                (Array.init 50 (fun i -> i))
            in
            Array.iteri
              (fun i r ->
                match r with
                | Ok v -> Alcotest.(check int) "slot" (i * i) v
                | Error _ -> Alcotest.fail "unexpected error")
              out));
    Alcotest.test_case "failures land in their slots, rest completes"
      `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:4 (fun pool ->
            let out =
              Parallel.Pool.map_result pool
                (fun x -> if x mod 7 = 3 then failwith "boom" else 2 * x)
                (Array.init 64 (fun i -> i))
            in
            Array.iteri
              (fun i r ->
                match (r, i mod 7 = 3) with
                | Ok v, false -> Alcotest.(check int) "value" (2 * i) v
                | Error (Failure m), true ->
                    Alcotest.(check string) "msg" "boom" m
                | Ok _, true -> Alcotest.failf "slot %d should have failed" i
                | Error _, _ -> Alcotest.failf "slot %d wrong outcome" i)
              out));
    Alcotest.test_case "all-fail still returns every slot" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            let out =
              Parallel.Pool.map_result pool
                (fun x -> failwith (string_of_int x))
                (Array.init 16 (fun i -> i))
            in
            Alcotest.(check int) "all slots" 16 (Array.length out);
            Array.iteri
              (fun i r ->
                match r with
                | Error (Failure m) ->
                    Alcotest.(check string) "msg" (string_of_int i) m
                | _ -> Alcotest.fail "expected per-slot error")
              out));
    Alcotest.test_case "jobs=1 behaves identically" `Quick (fun () ->
        Parallel.Pool.with_pool ~jobs:1 (fun pool ->
            let out =
              Parallel.Pool.map_result pool
                (fun x -> if x = 2 then raise Exit else x)
                [| 0; 1; 2; 3 |]
            in
            Alcotest.(check bool) "slot 2 failed" true (out.(2) = Error Exit);
            Alcotest.(check bool) "slot 3 survived" true (out.(3) = Ok 3)));
    Alcotest.test_case "pool stays usable after map_result failures" `Quick
      (fun () ->
        Parallel.Pool.with_pool ~jobs:2 (fun pool ->
            ignore
              (Parallel.Pool.map_result pool
                 (fun _ -> failwith "x")
                 (Array.init 8 (fun i -> i)));
            let out =
              Parallel.Pool.map pool (fun x -> x + 1)
                (Array.init 8 (fun i -> i))
            in
            Alcotest.(check int) "recovered" 8 out.(7)));
  ]

let () =
  Alcotest.run "parallel"
    [ ("pool", pool_tests); ("map_result", map_result_tests) ]
