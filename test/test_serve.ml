(* Tuning-service tests: protocol round-trips (QCheck), framing edge
   cases, the warm fast path, admission control, concurrency under
   fault injection, and graceful shutdown.

   The deterministic admission/deadline tests use [create ~start:false]
   — with the dispatcher paused, queue occupancy is a pure function of
   the submits, so backpressure is asserted without timing races. *)

module S = Serve.Server
module P = Serve.Protocol
module F = Serve.Frame

let ev_name e = Option.bind (Util.Json.member "ev" e) Util.Json.to_str

let count_events ~prefix sink =
  List.length
    (List.filter
       (fun e ->
         match ev_name e with
         | Some n ->
             String.length n >= String.length prefix
             && String.sub n 0 (String.length prefix) = prefix
         | None -> false)
       (Obs.Trace.events sink))

let in_tmp_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "perfdojo_serve_%s_%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  f dir

(* Tiny-but-real service config: micro kernels, small budget, silent. *)
let test_config () =
  {
    S.default_config with
    S.default_budget = 8;
    kernels = Kernels.snitch_micro;
  }

let optimize ?(force = false) ?(deadline_ms = 0) ~id kernel =
  P.Optimize
    {
      id;
      kernel;
      target = "snitch";
      strategy = "sampling";
      budget = 0;
      deadline_ms;
      force;
    }

let query ~id kernel = P.Query { id; kernel; target = "snitch" }

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

let gen_label =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 10))

let gen_text = QCheck.Gen.(string_size ~gen:printable (int_bound 16))
let gen_id = QCheck.Gen.int_bound 100_000
let gen_time = QCheck.Gen.float_bound_inclusive 1000.

let gen_request =
  QCheck.Gen.(
    gen_id >>= fun id ->
    gen_label >>= fun kernel ->
    gen_label >>= fun target ->
    gen_label >>= fun strategy ->
    int_bound 5000 >>= fun budget ->
    int_bound 5000 >>= fun deadline_ms ->
    bool >>= fun force ->
    oneofl
      [
        P.Optimize { id; kernel; target; strategy; budget; deadline_ms; force };
        P.Query { id; kernel; target };
        P.Generate { id; kernel; target; strategy; budget; deadline_ms };
        P.Stats { id };
        P.Shutdown { id };
      ])

let gen_response =
  QCheck.Gen.(
    gen_id >>= fun id ->
    gen_label >>= fun kernel ->
    gen_label >>= fun target ->
    bool >>= fun warm ->
    gen_time >>= fun time_s ->
    small_list gen_text >>= fun moves ->
    int_bound 5000 >>= fun evaluations ->
    int_bound 50 >>= fun failures ->
    gen_text >>= fun msg ->
    small_list (pair gen_label (int_bound 1000)) >>= fun counters ->
    small_list (pair gen_label gen_time) >>= fun gauges ->
    oneofl
      [
        P.Optimized
          {
            id; kernel; target; warm; time_s; moves; script = msg;
            evaluations; failures;
          };
        P.Queried { id; kernel; target; found = warm; time_s; moves };
        P.Generated { id; kernel; target; warm; time_s; c_entry = msg; c = msg };
        P.Stats_reply { id; counters; gauges };
        P.Shutdown_ack { id; records = evaluations };
        P.Error { id; code = P.Overloaded; msg };
        P.Error { id; code = P.Faulted "rejected"; msg };
        P.Error { id; code = P.Deadline; msg };
      ])

let arbitrary_request = QCheck.make ~print:P.encode_request gen_request
let arbitrary_response = QCheck.make ~print:P.encode_response gen_response

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~count:300
        ~name:"request encode -> frame -> deframe -> decode is identity"
        arbitrary_request (fun r ->
          let payload = P.encode_request r in
          match F.decode (F.encode payload) with
          | Ok (p, "") ->
              p = payload && P.decode_request p = Ok r
              && P.encode_request (Result.get_ok (P.decode_request p)) = payload
          | _ -> false);
      QCheck.Test.make ~count:300
        ~name:"response encode -> frame -> deframe -> decode is identity"
        arbitrary_response (fun r ->
          let payload = P.encode_response r in
          match F.decode (F.encode payload) with
          | Ok (p, "") -> p = payload && P.decode_response p = Ok r
          | _ -> false);
      QCheck.Test.make ~count:200
        ~name:"every strict prefix of a frame is torn, never Ok"
        QCheck.(pair arbitrary_request (int_bound 10_000))
        (fun (r, cut_seed) ->
          let frame = F.encode (P.encode_request r) in
          let cut = cut_seed mod String.length frame in
          match F.decode (String.sub frame 0 cut) with
          | Ok _ -> false
          | Error (F.Torn _) | Error F.Eof -> true
          | Error _ -> false);
      QCheck.Test.make ~count:200
        ~name:"oversized frame skips cleanly to the next frame"
        arbitrary_request
        (fun r ->
          let big = F.encode (String.make 64 'x') in
          let payload = P.encode_request r in
          let stream = big ^ F.encode payload in
          match F.decode_skip ~max:32 stream with
          | Error (F.Oversized { len = 64; max = 32 }), rest ->
              F.decode rest = Ok (payload, "")
          | _ -> false);
    ]

let frame_tests =
  [
    Alcotest.test_case "malformed headers are typed errors" `Quick (fun () ->
        (match F.decode "abc\nxyz\n" with
        | Error (F.Malformed _) -> ()
        | _ -> Alcotest.fail "non-decimal header accepted");
        (match F.decode "-3\nxyz\n" with
        | Error (F.Malformed _) -> ()
        | _ -> Alcotest.fail "negative length accepted");
        (match F.decode (String.make 40 '9') with
        | Error (F.Malformed _) -> ()
        | _ -> Alcotest.fail "absurd header not rejected");
        match F.decode "3\nabcX" with
        | Error (F.Malformed _) -> ()
        | _ -> Alcotest.fail "bad trailer accepted");
    Alcotest.test_case "channel read survives an oversized frame" `Quick
      (fun () ->
        let f = Filename.temp_file "serveframe" ".bin" in
        let oc = open_out_bin f in
        F.write oc (String.make 100 'a');
        F.write oc "next";
        close_out oc;
        let ic = open_in_bin f in
        (match F.read ~max:10 ic with
        | Error (F.Oversized { len = 100; max = 10 }) -> ()
        | _ -> Alcotest.fail "oversized not detected");
        (match F.read ~max:10 ic with
        | Ok "next" -> ()
        | _ -> Alcotest.fail "stream lost framing after oversized");
        (match F.read ~max:10 ic with
        | Error F.Eof -> ()
        | _ -> Alcotest.fail "clean EOF not reported");
        close_in ic;
        Sys.remove f);
  ]

(* ------------------------------------------------------------------ *)
(* Warm fast path                                                      *)
(* ------------------------------------------------------------------ *)

let warm_tests =
  [
    Alcotest.test_case "warm query and optimize run no search events" `Quick
      (fun () ->
        let obs = Obs.Trace.make_buffer () in
        let server = S.create { (test_config ()) with S.obs } in
        (match S.submit server (optimize ~id:1 "scale") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "cold: %s" (P.response_kind r));
        let search_events = count_events ~prefix:"search." obs in
        Alcotest.(check bool) "cold search traced" true (search_events > 0);
        (match S.submit server (optimize ~id:2 "scale") with
        | P.Optimized { warm = true; evaluations = 0; _ } -> ()
        | r -> Alcotest.failf "warm optimize: %s" (P.response_kind r));
        (match S.submit server (query ~id:3 "scale") with
        | P.Queried { found = true; _ } -> ()
        | r -> Alcotest.failf "warm query: %s" (P.response_kind r));
        Alcotest.(check int) "no new search events" search_events
          (count_events ~prefix:"search." obs);
        (* the fast path is visible in the metrics too *)
        Alcotest.(check int) "warm hits counted" 2
          (Obs.Metrics.counter (S.metrics server) "serve.warm_hits");
        S.stop server);
    Alcotest.test_case "--force searches even with a warm record" `Quick
      (fun () ->
        let server = S.create (test_config ()) in
        (match S.submit server (optimize ~id:1 "scale") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "cold: %s" (P.response_kind r));
        (match S.submit server (optimize ~force:true ~id:2 "scale") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "forced: %s" (P.response_kind r));
        S.stop server);
    Alcotest.test_case "bad kernel / target / strategy are bad_request"
      `Quick (fun () ->
        let server = S.create (test_config ()) in
        let check_bad req =
          match S.submit server req with
          | P.Error { code = P.Bad_request; _ } -> ()
          | r -> Alcotest.failf "expected bad_request, got %s"
                   (P.response_kind r)
        in
        check_bad (optimize ~id:1 "nosuch");
        check_bad (P.Query { id = 2; kernel = "scale"; target = "nosuch" });
        check_bad
          (P.Optimize
             {
               id = 3;
               kernel = "scale";
               target = "snitch";
               strategy = "nosuch";
               budget = 0;
               deadline_ms = 0;
               force = false;
             });
        S.stop server);
    Alcotest.test_case
      "cold requests train the shared surrogate; stats exports it" `Quick
      (fun () ->
        let server =
          S.create
            { (test_config ()) with S.surrogate = true; dedup = true }
        in
        let model =
          match S.surrogate_model server with
          | Some m -> m
          | None -> Alcotest.fail "surrogate enabled but no shared model"
        in
        Alcotest.(check int) "fresh model" 0 (Surrogate.Model.updates model);
        (match S.submit server (optimize ~id:1 "scale") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "cold: %s" (P.response_kind r));
        Alcotest.(check bool) "cold search trained the model" true
          (Surrogate.Model.updates model > 0);
        (* warm replay must not touch the model *)
        let after_cold = Surrogate.Model.updates model in
        (match S.submit server (optimize ~id:2 "scale") with
        | P.Optimized { warm = true; _ } -> ()
        | r -> Alcotest.failf "warm: %s" (P.response_kind r));
        Alcotest.(check int) "warm path trains nothing" after_cold
          (Surrogate.Model.updates model);
        (match S.submit server (P.Stats { id = 3 }) with
        | P.Stats_reply { counters; _ } ->
            Alcotest.(check bool) "surrogate.evals exported" true
              (match List.assoc_opt "surrogate.evals" counters with
              | Some n -> n > 0
              | None -> false)
        | r -> Alcotest.failf "stats: %s" (P.response_kind r));
        S.stop server);
  ]

(* ------------------------------------------------------------------ *)
(* Admission control, deadlines                                        *)
(* ------------------------------------------------------------------ *)

let admission_tests =
  [
    Alcotest.test_case
      "queue_depth 1: second cold request is typed overloaded" `Quick
      (fun () ->
        (* dispatcher paused: occupancy is exactly what we submit *)
        let server =
          S.create ~start:false
            { (test_config ()) with S.queue_depth = 1 }
        in
        let first = S.submit_async server (optimize ~force:true ~id:1 "scale") in
        let ticket =
          match first with
          | `Queued t -> t
          | `Done r -> Alcotest.failf "admitted inline: %s" (P.response_kind r)
        in
        (match S.submit_async server (optimize ~force:true ~id:2 "scale") with
        | `Done (P.Error { code = P.Overloaded; _ }) -> ()
        | `Done r -> Alcotest.failf "expected overloaded: %s" (P.response_kind r)
        | `Queued _ -> Alcotest.fail "admitted past queue_depth");
        let m = S.metrics server in
        Alcotest.(check (option (float 0.0)))
          "queue depth gauge" (Some 1.0)
          (Obs.Metrics.gauge m "serve.queue_depth");
        Alcotest.(check int) "rejection counted" 1
          (Obs.Metrics.counter m "serve.rejected_overload");
        (* the stats request reports the same numbers over the wire *)
        (match S.submit server (P.Stats { id = 3 }) with
        | P.Stats_reply { counters; gauges; _ } ->
            Alcotest.(check (option int))
              "stats rejection counter" (Some 1)
              (List.assoc_opt "serve.rejected_overload" counters);
            Alcotest.(check (option (float 0.0)))
              "stats queue gauge" (Some 1.0)
              (List.assoc_opt "serve.queue_depth" gauges)
        | r -> Alcotest.failf "stats: %s" (P.response_kind r));
        (* un-pause: the admitted request completes, then drain *)
        S.start server;
        (match S.await ticket with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "queued request: %s" (P.response_kind r));
        S.stop server);
    Alcotest.test_case "expired deadline answers typed deadline error"
      `Quick (fun () ->
        let server = S.create ~start:false (test_config ()) in
        let ticket =
          match
            S.submit_async server
              (optimize ~force:true ~deadline_ms:5 ~id:1 "scale")
          with
          | `Queued t -> t
          | `Done r -> Alcotest.failf "inline: %s" (P.response_kind r)
        in
        Thread.delay 0.05;
        S.start server;
        (match S.await ticket with
        | P.Error { code = P.Deadline; _ } -> ()
        | r -> Alcotest.failf "expected deadline: %s" (P.response_kind r));
        S.stop server);
  ]

(* ------------------------------------------------------------------ *)
(* Concurrency and fault degradation                                   *)
(* ------------------------------------------------------------------ *)

let concurrency_tests =
  [
    Alcotest.test_case
      "concurrent mixed workload under faults: every request answered"
      `Quick (fun () ->
        in_tmp_dir "faulty" @@ fun dir ->
        let db_file = Filename.concat dir "tune.jsonl" in
        if Sys.file_exists db_file then Sys.remove db_file;
        let server =
          S.create
            {
              (test_config ()) with
              S.workers = 2;
              queue_depth = 64;
              db_file = Some db_file;
              faults = Robust.Faults.spread ~seed:7 0.3;
            }
        in
        let kernels = [| "scale"; "axpy"; "dot"; "vecsum" |] in
        let n = 16 in
        let replies = Array.make n None in
        let threads =
          Array.init n (fun i ->
              Thread.create
                (fun i ->
                  let k = kernels.(i mod Array.length kernels) in
                  let req =
                    match i mod 3 with
                    | 0 -> optimize ~id:i k
                    | 1 -> query ~id:i k
                    | _ -> P.Stats { id = i }
                  in
                  replies.(i) <- Some (S.submit server req))
                i)
        in
        Array.iter Thread.join threads;
        (* every request got a well-formed response with its own id *)
        Array.iteri
          (fun i r ->
            match r with
            | None -> Alcotest.failf "request %d never answered" i
            | Some resp ->
                Alcotest.(check int)
                  (Printf.sprintf "id of reply %d" i)
                  i (P.response_id resp);
                (* a faulted optimize degrades to faulted.*, never a
                   crash; anything else is kind-correct *)
                (match resp with
                | P.Error { code = P.Faulted _; _ }
                | P.Optimized _ | P.Queried _ | P.Stats_reply _ ->
                    ()
                | r ->
                    Alcotest.failf "reply %d: unexpected %s" i
                      (P.response_kind r)))
          replies;
        Alcotest.(check bool) "server survived" false (S.stopping server);
        (* successful cold deposits survive shutdown: the checkpoint
           holds the union of everything deposited *)
        let deposited =
          List.sort_uniq compare
            (List.map
               (fun (r : Tuning.Record.t) -> (r.kernel, r.target))
               (Tuning.Db.records (S.db server)))
        in
        (match S.submit server (P.Shutdown { id = 999 }) with
        | P.Shutdown_ack { records; _ } ->
            Alcotest.(check int) "ack counts the records"
              (List.length deposited) records
        | r -> Alcotest.failf "shutdown: %s" (P.response_kind r));
        match Tuning.Db.load db_file with
        | Error e -> Alcotest.failf "checkpoint unreadable: %s" e
        | Ok db ->
            let reloaded =
              List.sort_uniq compare
                (List.map
                   (fun (r : Tuning.Record.t) -> (r.kernel, r.target))
                   (Tuning.Db.records db))
            in
            Alcotest.(check (list (pair string string)))
              "no deposits lost" deposited reloaded);
    Alcotest.test_case "shutdown checkpoint warms a successor server"
      `Quick (fun () ->
        in_tmp_dir "successor" @@ fun dir ->
        let db_file = Filename.concat dir "tune.jsonl" in
        if Sys.file_exists db_file then Sys.remove db_file;
        let cfg = { (test_config ()) with S.db_file = Some db_file } in
        let first = S.create cfg in
        (match S.submit first (optimize ~id:1 "scale") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "cold: %s" (P.response_kind r));
        (match S.submit first (optimize ~id:2 "axpy") with
        | P.Optimized { warm = false; _ } -> ()
        | r -> Alcotest.failf "cold: %s" (P.response_kind r));
        (match S.submit first (P.Shutdown { id = 3 }) with
        | P.Shutdown_ack { records = 2; _ } -> ()
        | P.Shutdown_ack { records; _ } ->
            Alcotest.failf "checkpointed %d records, expected 2" records
        | r -> Alcotest.failf "shutdown: %s" (P.response_kind r));
        let second = S.create cfg in
        (match S.submit second (optimize ~id:1 "scale") with
        | P.Optimized { warm = true; _ } -> ()
        | r -> Alcotest.failf "successor scale: %s" (P.response_kind r));
        (match S.submit second (optimize ~id:2 "axpy") with
        | P.Optimized { warm = true; _ } -> ()
        | r -> Alcotest.failf "successor axpy: %s" (P.response_kind r));
        S.stop second);
  ]

(* ------------------------------------------------------------------ *)
(* The pipe transport                                                  *)
(* ------------------------------------------------------------------ *)

let write_frames path payloads =
  let oc = open_out_bin path in
  List.iter (F.write oc) payloads;
  close_out oc

let read_responses path =
  let ic = open_in_bin path in
  let rec go acc =
    match F.read ic with
    | Error F.Eof -> List.rev acc
    | Error e -> Alcotest.failf "response stream: %s" (F.error_message e)
    | Ok payload -> (
        match P.decode_response payload with
        | Ok r -> go (r :: acc)
        | Error msg -> Alcotest.failf "unparseable response: %s" msg)
  in
  let rs = go [] in
  close_in ic;
  rs

let pipe_tests =
  [
    Alcotest.test_case
      "pipe: garbage and oversized frames answer typed errors, stream \
       survives"
      `Quick (fun () ->
        in_tmp_dir "pipe" @@ fun dir ->
        let req_f = Filename.concat dir "req.bin" in
        let resp_f = Filename.concat dir "resp.bin" in
        write_frames req_f
          [
            P.encode_request (query ~id:1 "scale");
            "this is not json";
            String.make 600 'x';
            P.encode_request (P.Stats { id = 4 });
          ];
        let server =
          S.create { (test_config ()) with S.max_frame = 512 }
        in
        let ic = open_in_bin req_f in
        let oc = open_out_bin resp_f in
        S.run_pipe server ic oc;
        close_in ic;
        close_out oc;
        Alcotest.(check bool) "EOF stopped the server" true
          (S.stopping server);
        match read_responses resp_f with
        | [ P.Queried { id = 1; found = false; _ };
            P.Error { id = 0; code = P.Protocol_error; _ };
            P.Error { id = 0; code = P.Protocol_error; _ };
            P.Stats_reply { id = 4; _ } ] ->
            ()
        | rs ->
            Alcotest.failf "unexpected response stream: %s"
              (String.concat " | " (List.map P.response_kind rs)));
    Alcotest.test_case "pipe: shutdown request acks and stops" `Quick
      (fun () ->
        in_tmp_dir "pipe_shutdown" @@ fun dir ->
        let req_f = Filename.concat dir "req.bin" in
        let resp_f = Filename.concat dir "resp.bin" in
        write_frames req_f
          [
            P.encode_request (optimize ~id:1 "scale");
            P.encode_request (P.Shutdown { id = 2 });
            (* anything after shutdown is never read *)
            P.encode_request (P.Stats { id = 3 });
          ];
        let server = S.create (test_config ()) in
        let ic = open_in_bin req_f in
        let oc = open_out_bin resp_f in
        S.run_pipe server ic oc;
        close_in ic;
        close_out oc;
        Alcotest.(check bool) "stopped" true (S.stopping server);
        match read_responses resp_f with
        | [ P.Optimized { id = 1; _ }; P.Shutdown_ack { id = 2; _ } ] -> ()
        | rs ->
            Alcotest.failf "unexpected response stream: %s"
              (String.concat " | " (List.map P.response_kind rs)));
  ]

let () =
  Alcotest.run "serve"
    [
      ("protocol", qcheck_tests);
      ("frame", frame_tests);
      ("warm", warm_tests);
      ("admission", admission_tests);
      ("concurrency", concurrency_tests);
      ("pipe", pipe_tests);
    ]
