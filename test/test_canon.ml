(* Canonicalization tests.  The contract (canon.mli) is soundness for
   dedup: two programs with equal fingerprints must be semantically
   equivalent, and the fingerprint must be invariant under exactly the
   incidental differences the search engines keep re-generating —
   temporary-buffer names, commutative operand order, and legal
   reorderings of independent siblings. *)

open Ir.Types

let caps_cpu = Transform.Xforms.cpu_caps ()
let caps_snitch = Transform.Xforms.snitch_caps ()

let entries = Kernels.table3 @ Kernels.snitch_micro

let fp = Canon.fingerprint

(* A random schedule: [steps] uniformly chosen applicable moves. *)
let random_schedule caps rng steps p0 =
  let p = ref p0 in
  for _ = 1 to steps do
    let insts = Transform.Xforms.all caps !p in
    if insts <> [] then begin
      let i =
        List.nth insts (Util.Rng.int rng (List.length insts))
      in
      p := i.Transform.Xforms.apply !p
    end
  done;
  !p

(* Rename every non-interface array [a] to [ren_a] — buffer names,
   alias lists and all accesses.  The fingerprint must not move. *)
let alpha_variant (p : Ir.Prog.t) : Ir.Prog.t =
  let io =
    List.fold_left
      (fun s a -> a :: s)
      p.inputs p.outputs
  in
  let ren a = if List.mem a io then a else "ren_" ^ a in
  let ren_access (a : access) = { a with array = ren a.array } in
  let rec ren_node = function
    | Stmt s ->
        Stmt
          {
            dst = ren_access s.dst;
            rhs = Ir.Prog.expr_map_access ren_access s.rhs;
          }
    | Scope sc -> Scope { sc with body = List.map ren_node sc.body }
  in
  {
    p with
    buffers =
      List.map
        (fun b ->
          { b with bname = ren b.bname; arrays = List.map ren b.arrays })
        p.buffers;
    body = List.map ren_node p.body;
  }

(* Swap the operands of every commutative binary node. *)
let rec flip_expr = function
  | Bin (op, a, b) ->
      let a = flip_expr a and b = flip_expr b in
      let commutative =
        match op with
        | Add | Mul | Max | Min -> true
        | Sub | Div -> false
      in
      if commutative then Bin (op, b, a) else Bin (op, a, b)
  | Un (op, e) -> Un (op, flip_expr e)
  | (Ref _ | IterVal _ | Const _) as e -> e

let flip_commutative (p : Ir.Prog.t) : Ir.Prog.t =
  let rec go = function
    | Stmt s -> Stmt { s with rhs = flip_expr s.rhs }
    | Scope sc -> Scope { sc with body = List.map go sc.body }
  in
  { p with body = List.map go p.body }

(* QCheck generator: (kernel index, seed) -> a randomly scheduled
   program, mirroring test_transform's random-walk discipline. *)
let walk_arb = QCheck.(pair (int_bound (List.length entries - 1)) small_int)

let scheduled (kidx, seed) =
  let e = List.nth entries kidx in
  let rng = Util.Rng.create (seed + 1) in
  let steps = Util.Rng.int rng 6 in
  (e, random_schedule caps_cpu rng steps (e.Kernels.build_small ()))

let qcheck_tests =
  [
    QCheck.Test.make ~count:60 ~name:"canonicalize preserves semantics"
      walk_arb
      (fun w ->
        let _, p = scheduled w in
        let c = Canon.canonicalize p in
        Ir.Validate.is_valid c && Interp.equivalent ~tol:1e-4 p c = Ok ());
    QCheck.Test.make ~count:60 ~name:"canonicalize is idempotent" walk_arb
      (fun w ->
        let _, p = scheduled w in
        let c = Canon.canonicalize p in
        String.equal (Ir.Printer.program c)
          (Ir.Printer.program (Canon.canonicalize c)));
    QCheck.Test.make ~count:60
      ~name:"fingerprint is invariant under non-IO renaming" walk_arb
      (fun w ->
        let _, p = scheduled w in
        String.equal (fp p) (fp (alpha_variant p)));
    QCheck.Test.make ~count:60
      ~name:"fingerprint is invariant under commutative operand order"
      walk_arb
      (fun w ->
        let _, p = scheduled w in
        String.equal (fp p) (fp (flip_commutative p)));
    QCheck.Test.make ~count:60
      ~name:"fingerprint is invariant under every reorder move" walk_arb
      (fun w ->
        let _, p = scheduled w in
        List.for_all
          (fun (i : Transform.Xforms.instance) ->
            String.equal (fp p) (fp (i.apply p)))
          (Transform.Xforms.find_reorder p));
  ]

let unit_tests =
  [
    Alcotest.test_case "distinct programs get distinct fingerprints" `Quick
      (fun () ->
        (* registry entries that print identically at small shapes (the
           batchnorm variants differ only in their full-size builds) may
           share a fingerprint; any two that print differently must not *)
        let progs =
          List.map (fun (e : Kernels.entry) -> e.build_small ()) entries
        in
        let texts =
          List.sort_uniq String.compare
            (List.map Ir.Printer.program progs)
        in
        let fps =
          List.sort_uniq String.compare (List.map fp progs)
        in
        Alcotest.(check int) "as many fingerprints as distinct programs"
          (List.length texts) (List.length fps));
    Alcotest.test_case "a split schedule changes the fingerprint" `Quick
      (fun () ->
        let p = Kernels.scale ~n:64 in
        let split =
          List.find
            (fun (i : Transform.Xforms.instance) -> i.xname = "split_scope")
            (Transform.Xforms.all caps_snitch p)
        in
        Alcotest.(check bool) "differs" false
          (String.equal (fp p) (fp (split.apply p))));
    Alcotest.test_case "equal agrees with fingerprint" `Quick (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        Alcotest.(check bool) "alpha variant equal" true
          (Canon.equal p (alpha_variant p));
        let q = Kernels.scale ~n:8 in
        Alcotest.(check bool) "different kernels differ" false
          (Canon.equal p q));
    Alcotest.test_case "interface names are load-bearing" `Quick (fun () ->
        (* inputs/outputs are the program's ABI: renaming THEM must
           change the fingerprint, otherwise two different kernels that
           compute the same shape could collide in a tuning database *)
        let p = Kernels.scale ~n:16 in
        let q =
          {
            p with
            inputs = List.map (fun a -> a ^ "2") p.inputs;
            buffers =
              List.map
                (fun b ->
                  if List.mem b.bname p.inputs then
                    {
                      b with
                      bname = b.bname ^ "2";
                      arrays = List.map (fun a -> a ^ "2") b.arrays;
                    }
                  else b)
                p.buffers;
            body =
              (let ren (a : access) =
                 if List.mem a.array p.inputs then
                   { a with array = a.array ^ "2" }
                 else a
               in
               let rec go = function
                 | Stmt s ->
                     Stmt
                       {
                         dst = ren s.dst;
                         rhs = Ir.Prog.expr_map_access ren s.rhs;
                       }
                 | Scope sc -> Scope { sc with body = List.map go sc.body }
               in
               List.map go p.body);
          }
        in
        Alcotest.(check bool) "differs" false (String.equal (fp p) (fp q)));
    Alcotest.test_case "fingerprint is a stable hex digest" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:8 ~n:8 in
        let a = fp p and b = fp p in
        Alcotest.(check string) "deterministic" a b;
        Alcotest.(check int) "md5 hex length" 32 (String.length a));
  ]

let () =
  Alcotest.run "canon"
    [
      ("qcheck", List.map QCheck_alcotest.to_alcotest qcheck_tests);
      ("unit", unit_tests);
    ]
