(* Tests for the optimization passes and stochastic search. *)

open Machine

let sn = Desc.snitch_cluster
let target_sn = Desc.Snitch sn
let caps_sn = Desc.caps_of target_sn
let avx = Desc.avx512_cpu
let target_cpu = Desc.Cpu avx
let caps_cpu = Desc.caps_of target_cpu

let equivalent_to label reference prog =
  (* passes must preserve semantics like single moves do; check on the
     small variant of the same kernel builder *)
  match Interp.equivalent ~tol:1e-4 reference prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

let pass_semantic_tests =
  let passes =
    [
      ("naive", fun caps p -> Search.Passes.naive caps p);
      ("greedy", fun caps p -> Search.Passes.greedy caps p);
      ("heuristic", fun caps p -> Search.Passes.heuristic caps p);
      ("cpu_heuristic", fun caps p -> Search.Passes.cpu_heuristic caps p);
      ("tile_sink_unroll", fun caps p -> Search.Passes.tile_sink_unroll caps 4 p);
    ]
  in
  List.concat_map
    (fun (pname, pass) ->
      List.map
        (fun (e : Kernels.entry) ->
          Alcotest.test_case
            (Printf.sprintf "%s preserves %s" pname e.label)
            `Quick
            (fun () ->
              let p = e.build_small () in
              let caps = if pname = "cpu_heuristic" then caps_cpu else caps_sn in
              let p' = pass caps p in
              (match Ir.Validate.check p' with
              | [] -> ()
              | errs ->
                  Alcotest.failf "%s/%s invalid: %s" pname e.label
                    (String.concat "; "
                       (List.map Ir.Validate.error_to_string errs)));
              equivalent_to (pname ^ "/" ^ e.label) p p'))
        (Kernels.snitch_micro @ [ List.nth Kernels.table3 14 (* softmax *) ]))
    passes

let gpu_pass_tests =
  let gh = Desc.gh200 in
  let caps_gpu = Desc.caps_of (Desc.Gpu gh) in
  List.map
    (fun (e : Kernels.entry) ->
      Alcotest.test_case ("gpu_heuristic preserves " ^ e.label) `Quick
        (fun () ->
          let p = e.build_small () in
          let p' = Search.Passes.gpu_heuristic caps_gpu p in
          Ir.Validate.check_exn p';
          equivalent_to ("gpu/" ^ e.label) p p'))
    Kernels.table3

let improvement_tests =
  [
    Alcotest.test_case "snitch heuristic never loses to naive" `Quick
      (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            let p = e.build () in
            let tn = Snitch_sim.time sn (Search.Passes.naive caps_sn p) in
            let th = Snitch_sim.time sn (Search.Passes.heuristic caps_sn p) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %.3e <= %.3e" e.label th tn)
              true
              (th <= tn *. 1.001))
          Kernels.snitch_micro);
    Alcotest.test_case "cpu heuristic helps large elementwise" `Quick
      (fun () ->
        let p = Kernels.relu ~n:4096 ~m:4096 in
        let h = Search.Passes.cpu_heuristic caps_cpu p in
        Alcotest.(check bool) "faster" true
          (Cpu_model.time avx h < Cpu_model.time avx p));
  ]

let objective target p = Machine.time target p

let stochastic_tests =
  [
    Alcotest.test_case "sampling improves over the root" `Quick (fun () ->
        let p = Kernels.softmax ~n:64 ~m:64 in
        let r =
          Search.Stochastic.random_sampling ~seed:3
            ~space:Search.Stochastic.Edges ~budget:60 caps_cpu
            (objective target_cpu) p
        in
        Alcotest.(check bool) "improved" true
          (r.best_time <= objective target_cpu p);
        Alcotest.(check int) "budget respected" 60 r.evals);
    Alcotest.test_case "annealing improves over the root" `Quick (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let r =
          Search.Stochastic.simulated_annealing ~seed:3
            ~space:Search.Stochastic.Heuristic ~budget:60 caps_sn
            (objective target_sn) p
        in
        Alcotest.(check bool) "improved" true
          (r.best_time <= objective target_sn p));
    Alcotest.test_case "curves are monotonically non-increasing" `Quick
      (fun () ->
        let p = Kernels.scale ~n:256 in
        let r =
          Search.Stochastic.random_sampling ~seed:5
            ~space:Search.Stochastic.Heuristic ~budget:40 caps_sn
            (objective target_sn) p
        in
        let ok = ref true in
        for i = 1 to Array.length r.curve - 1 do
          if r.curve.(i) > r.curve.(i - 1) +. 1e-15 then ok := false
        done;
        Alcotest.(check bool) "monotone" true !ok);
    Alcotest.test_case "best_moves replays to best program" `Quick (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let r =
          Search.Stochastic.simulated_annealing ~seed:9
            ~space:Search.Stochastic.Edges ~budget:50 caps_sn
            (objective target_sn) p
        in
        let replayed, applied =
          Search.Stochastic.replay_skipping caps_sn p r.best_moves
        in
        Alcotest.(check int) "all moves applied" (List.length r.best_moves)
          (List.length applied);
        Alcotest.(check bool) "same program" true (replayed = r.best);
        equivalent_to "search result" p r.best);
    Alcotest.test_case "search results preserve semantics" `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:16 in
        List.iter
          (fun space ->
            let r =
              Search.Stochastic.random_sampling ~seed:2 ~space ~budget:40
                caps_cpu (objective target_cpu) p
            in
            equivalent_to "sampled best" p r.best)
          [ Search.Stochastic.Edges; Search.Stochastic.Heuristic ]);
    Alcotest.test_case "filter restricts the move set" `Quick (fun () ->
        let p = Kernels.softmax ~n:16 ~m:16 in
        let filter (i : Transform.Xforms.instance) =
          i.xname = "split_scope"
        in
        let r =
          Search.Stochastic.random_sampling ~seed:4 ~filter
            ~space:Search.Stochastic.Edges ~budget:30 caps_cpu
            (objective target_cpu) p
        in
        List.iter
          (fun m ->
            Alcotest.(check bool)
              (m ^ " is a split")
              true
              (String.length m >= 11 && String.sub m 0 11 = "split_scope"))
          r.best_moves);
    Alcotest.test_case "deterministic under the same seed" `Quick (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let run () =
          (Search.Stochastic.simulated_annealing ~seed:42
             ~space:Search.Stochastic.Heuristic ~budget:40 caps_sn
             (objective target_sn) p)
            .best_time
        in
        Alcotest.(check (float 0.0)) "same result" (run ()) (run ()));
  ]

let mutation_tests =
  [
    Alcotest.test_case "replay_skipping skips stale moves" `Quick (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        let final, applied =
          Search.Stochastic.replay_skipping caps_cpu p
            [
              "split_scope([0] factor 2)";
              "split_scope([0] factor 2)" (* now size 4: still divisible *);
              "bogus(move)";
            ]
        in
        Alcotest.(check int) "two applied" 2 (List.length applied);
        Ir.Validate.check_exn final);
  ]

(* Batched-parallel search: the contract is that the trajectory depends
   on (seed, batch) but never on how many domains evaluate it. *)
let parallel_search_tests =
  let check_result_equal label (a : Search.Stochastic.result)
      (b : Search.Stochastic.result) =
    Alcotest.(check (float 0.0)) (label ^ ": best_time") a.best_time b.best_time;
    Alcotest.(check (list string))
      (label ^ ": best_moves") a.best_moves b.best_moves;
    Alcotest.(check (array (float 0.0))) (label ^ ": curve") a.curve b.curve;
    Alcotest.(check int) (label ^ ": evals") a.evals b.evals
  in
  [
    Alcotest.test_case "annealing: jobs=1 and jobs=4 agree exactly" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:16 ~m:16 in
        let run jobs =
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Search.Stochastic.simulated_annealing_parallel ~seed:7 ~pool
                ~space:Search.Stochastic.Heuristic ~budget:40 caps_cpu
                (objective target_cpu) p)
        in
        check_result_equal "annealing" (run 1) (run 4));
    Alcotest.test_case "sampling: jobs=1 and jobs=4 agree exactly" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let run jobs =
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Search.Stochastic.random_sampling_parallel ~seed:5 ~pool
                ~space:Search.Stochastic.Edges ~budget:40 caps_sn
                (objective target_sn) p)
        in
        check_result_equal "sampling" (run 1) (run 4));
    Alcotest.test_case "parallel runs are repeatable under one pool" `Quick
      (fun () ->
        let p = Kernels.relu ~n:16 ~m:16 in
        Parallel.Pool.with_pool ~jobs:3 (fun pool ->
            let run () =
              Search.Stochastic.simulated_annealing_parallel ~seed:9 ~pool
                ~space:Search.Stochastic.Heuristic ~budget:30 caps_cpu
                (objective target_cpu) p
            in
            check_result_equal "repeat" (run ()) (run ())));
    Alcotest.test_case "parallel best preserves semantics" `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        let r =
          Parallel.Pool.with_pool ~jobs:4 (fun pool ->
              Search.Stochastic.simulated_annealing_parallel ~seed:3 ~pool
                ~space:Search.Stochastic.Heuristic ~budget:30 caps_cpu
                (objective target_cpu) p)
        in
        Ir.Validate.check_exn r.best;
        equivalent_to "parallel annealed best" p r.best);
    Alcotest.test_case "parallel curve is best-so-far monotone" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let r =
          Parallel.Pool.with_pool ~jobs:2 (fun pool ->
              Search.Stochastic.random_sampling_parallel ~seed:2 ~pool
                ~space:Search.Stochastic.Heuristic ~budget:35 caps_sn
                (objective target_sn) p)
        in
        Alcotest.(check int) "curve length" 35 (Array.length r.curve);
        Array.iteri
          (fun i v ->
            if i > 0 then
              Alcotest.(check bool) "non-increasing" true (v <= r.curve.(i - 1)))
          r.curve;
        Alcotest.(check (float 0.0)) "last point is the best"
          r.best_time
          r.curve.(Array.length r.curve - 1));
  ]

let exhaustive_tests =
  let run_ex ?obs ~depth caps target p =
    Search.Exhaustive.run ?obs ~depth caps (objective target) p
  in
  [
    Alcotest.test_case "certifies the within-depth optimum on scale" `Quick
      (fun () ->
        let p = Kernels.scale ~n:16 in
        let r = run_ex ~depth:3 caps_sn target_sn p in
        Alcotest.(check bool) "certified" true r.certified;
        Alcotest.(check bool) "dedup found duplicates" true
          (r.unique < r.total);
        Alcotest.(check bool) "beats the root" true
          (r.best_time <= objective target_sn p);
        (* no random walk of <= depth moves may beat the certificate *)
        let rng = Util.Rng.create 42 in
        for _ = 1 to 200 do
          let q = ref p in
          for _ = 1 to 3 do
            let insts = Transform.Xforms.all caps_sn !q in
            if insts <> [] then
              let i =
                List.nth insts (Util.Rng.int rng (List.length insts))
              in
              q := i.Transform.Xforms.apply !q
          done;
          Alcotest.(check bool) "certificate holds" true
            (objective target_sn !q >= r.best_time -. 1e-12)
        done);
    Alcotest.test_case "stochastic never beats the certified optimum" `Quick
      (fun () ->
        (* on these kernels the depth-3 optimum is also the empirical
           global one (depth 5 and budget-300 runs agree), so the
           certificate bounds any stochastic run *)
        List.iter
          (fun (label, p, caps, target) ->
            let ex = run_ex ~depth:3 caps target p in
            List.iter
              (fun seed ->
                let s =
                  Search.Stochastic.simulated_annealing ~seed
                    ~space:Search.Stochastic.Heuristic ~budget:60 caps
                    (objective target) p
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s seed %d: %.3e >= %.3e" label seed
                     s.best_time ex.best_time)
                  true
                  (s.best_time >= ex.best_time -. 1e-15))
              [ 1; 2; 3 ])
          [
            ("scale", Kernels.scale ~n:16, caps_sn, target_sn);
            ("relu", Kernels.relu ~n:8 ~m:8, caps_cpu, target_cpu);
          ]);
    Alcotest.test_case "optimum improves monotonically with depth" `Quick
      (fun () ->
        let p = Kernels.relu ~n:4 ~m:4 in
        let t1 = (run_ex ~depth:1 caps_cpu target_cpu p).best_time in
        let t2 = (run_ex ~depth:2 caps_cpu target_cpu p).best_time in
        let t3 = (run_ex ~depth:3 caps_cpu target_cpu p).best_time in
        Alcotest.(check bool) "d2 <= d1" true (t2 <= t1);
        Alcotest.(check bool) "d3 <= d2" true (t3 <= t2));
    Alcotest.test_case "best_moves replay to the reported best" `Quick
      (fun () ->
        let p = Kernels.scale ~n:16 in
        let r = run_ex ~depth:3 caps_sn target_sn p in
        let q, applied =
          Search.Stochastic.replay_skipping caps_sn p r.best_moves
        in
        Alcotest.(check int) "every move applies"
          (List.length r.best_moves)
          (List.length applied);
        Alcotest.(check (float 1e-12)) "same runtime" r.best_time
          (objective target_sn q);
        equivalent_to "exhaustive best" p r.best);
    Alcotest.test_case "depth 0 returns the root" `Quick (fun () ->
        let p = Kernels.scale ~n:16 in
        let r = run_ex ~depth:0 caps_sn target_sn p in
        Alcotest.(check int) "one state" 1 r.unique;
        Alcotest.(check int) "one eval" 1 r.evals;
        Alcotest.(check bool) "exhausted is false under depth 0" false
          r.exhausted;
        Alcotest.(check (float 0.0)) "root time" (objective target_sn p)
          r.best_time);
    Alcotest.test_case "deterministic across runs" `Quick (fun () ->
        let p = Kernels.relu ~n:4 ~m:4 in
        let a = run_ex ~depth:2 caps_cpu target_cpu p in
        let b = run_ex ~depth:2 caps_cpu target_cpu p in
        Alcotest.(check (float 0.0)) "time" a.best_time b.best_time;
        Alcotest.(check (list string)) "moves" a.best_moves b.best_moves;
        Alcotest.(check int) "unique" a.unique b.unique;
        Alcotest.(check int) "total" a.total b.total);
    Alcotest.test_case "trace reports unique/total and the certificate"
      `Quick (fun () ->
        let p = Kernels.scale ~n:16 in
        let obs = Obs.Trace.make_buffer () in
        let r = run_ex ~obs ~depth:2 caps_sn target_sn p in
        let events = Obs.Trace.events obs in
        let find ev =
          List.find_map
            (fun j ->
              match Util.Json.member "ev" j with
              | Some (Util.Json.Str e) when e = ev -> Some j
              | _ -> None)
            events
        in
        (match find "search.exhaustive" with
        | None -> Alcotest.fail "no search.exhaustive event"
        | Some j ->
            Alcotest.(check (option bool))
              "certified in trace" (Some r.certified)
              (match Util.Json.member "certified" j with
              | Some (Util.Json.Bool b) -> Some b
              | _ -> None);
            Alcotest.(check bool) "unique field" true
              (Util.Json.member "unique" j <> None));
        Alcotest.(check bool) "per-level events" true
          (find "search.exhaustive_level" <> None));
  ]

let visited_dedup_tests =
  let strip obs = List.map Obs.Trace.strip_timing (Obs.Trace.events obs) in
  [
    Alcotest.test_case "visited: jobs=1 and jobs=4 agree with traces" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let run jobs =
          let obs = Obs.Trace.make_buffer () in
          let r =
            Parallel.Pool.with_pool ~jobs (fun pool ->
                Search.Stochastic.simulated_annealing_parallel ~seed:11
                  ~obs ~visited_dedup:true ~pool
                  ~space:Search.Stochastic.Heuristic ~budget:48 caps_sn
                  (objective target_sn) p)
          in
          (r, strip obs)
        in
        let r1, t1 = run 1 and r4, t4 = run 4 in
        Alcotest.(check (float 0.0)) "best" r1.best_time r4.best_time;
        Alcotest.(check int) "evals" r1.evals r4.evals;
        Alcotest.(check int) "visited" r1.visited r4.visited;
        Alcotest.(check (array (float 0.0))) "curve" r1.curve r4.curve;
        Alcotest.(check bool) "stripped traces identical" true (t1 = t4));
    Alcotest.test_case "every budget slot accounted exactly once" `Quick
      (fun () ->
        List.iter
          (fun (label, p, caps, target) ->
            let r =
              Parallel.Pool.with_pool ~jobs:2 (fun pool ->
                  Search.Stochastic.random_sampling_parallel ~seed:3
                    ~visited_dedup:true ~pool
                    ~space:Search.Stochastic.Heuristic ~budget:60 caps
                    (objective target) p)
            in
            Alcotest.(check int)
              (label ^ ": evals+skipped+deduped+visited+failures")
              60
              (r.evals + r.skipped + r.deduped + r.visited + r.failures);
            Alcotest.(check bool) (label ^ ": something was visited") true
              (r.visited > 0))
          [
            ("scale", Kernels.scale ~n:16, caps_sn, target_sn);
            ("relu", Kernels.relu ~n:8 ~m:8, caps_cpu, target_cpu);
          ]);
    Alcotest.test_case "visited-dedup spends strictly fewer evals" `Quick
      (fun () ->
        List.iter
          (fun (label, p, caps, target) ->
            let run visited_dedup =
              Parallel.Pool.with_pool ~jobs:2 (fun pool ->
                  Search.Stochastic.simulated_annealing_parallel ~seed:5
                    ~visited_dedup ~pool
                    ~space:Search.Stochastic.Heuristic ~budget:60 caps
                    (objective target) p)
            in
            let plain = run false and dd = run true in
            Alcotest.(check bool)
              (Printf.sprintf "%s: %d < %d" label dd.evals plain.evals)
              true (dd.evals < plain.evals))
          [
            ("scale", Kernels.scale ~n:16, caps_sn, target_sn);
            ("relu", Kernels.relu ~n:8 ~m:8, caps_cpu, target_cpu);
          ]);
    Alcotest.test_case "canon metrics and visited_skip events appear" `Quick
      (fun () ->
        let p = Kernels.scale ~n:16 in
        let obs = Obs.Trace.make_buffer () in
        let ms = Obs.Metrics.create () in
        let r =
          Parallel.Pool.with_pool ~jobs:1 (fun pool ->
              Search.Stochastic.simulated_annealing_parallel ~seed:5 ~obs
                ~metrics:ms ~visited_dedup:true ~pool
                ~space:Search.Stochastic.Heuristic ~budget:40 caps_sn
                (objective target_sn) p)
        in
        let skips =
          List.filter
            (fun j ->
              match Util.Json.member "ev" j with
              | Some (Util.Json.Str e) -> e = "search.visited_skip"
              | _ -> false)
            (Obs.Trace.events obs)
        in
        Alcotest.(check int) "one event per visited slot" r.visited
          (List.length skips);
        let unique = Obs.Metrics.counter ms "canon.unique"
        and total = Obs.Metrics.counter ms "canon.total" in
        Alcotest.(check bool)
          (Printf.sprintf "canon.unique %d <= canon.total %d" unique total)
          true
          (unique <= total && total > 0));
  ]

let () =
  Alcotest.run "search"
    [
      ("pass-semantics", pass_semantic_tests);
      ("gpu-pass-semantics", gpu_pass_tests);
      ("improvements", improvement_tests);
      ("stochastic", stochastic_tests);
      ("mutation", mutation_tests);
      ("parallel-search", parallel_search_tests);
      ("exhaustive", exhaustive_tests);
      ("visited-dedup", visited_dedup_tests);
    ]
