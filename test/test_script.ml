(* Tests for the .pds schedule-script format: parse/print round-trips,
   typed parse and run errors, the of_moves conversion that upgrades
   recorded describe-string sequences to scripts (QCheck: random engine
   walks round-trip byte-identically through the format), and the
   acceptance gate — the hand-written example scripts reproduce the
   recorded Table-3 winners byte-for-byte. *)

open Machine
module Engine = Transform.Engine
module Xforms = Transform.Xforms
module Script = Transfo.Script
module Composites = Transfo.Composites

let target_x86 = Desc.Cpu Desc.xeon_e5_2695v4
let caps_x86 = Desc.caps_of target_x86

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

let literal =
  "pds 1\n# a worked example\nkernel softmax\ntarget x86\n"
  ^ "at size 256 & nested do split(factor=16)\n"
  ^ "do storage(buffer=acc, loc=stack)\n"
  ^ "at path [0,1] do tile_and_unroll(f=8, u=4) # trailing comment\n"
  ^ "move split_scope([0,2] factor 8)\n"

let parse_ok src =
  match Script.parse src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse failed: %s" e

let syntax_tests =
  [
    Alcotest.test_case "literal script parses with headers" `Quick (fun () ->
        let s = parse_ok literal in
        Alcotest.(check (option string)) "kernel" (Some "softmax") s.kernel;
        Alcotest.(check (option string)) "target" (Some "x86") s.ktarget;
        Alcotest.(check int) "statements" 4 (List.length s.stmts));
    Alcotest.test_case "print/parse is a fixpoint" `Quick (fun () ->
        let s = parse_ok literal in
        let printed = Script.to_string s in
        let s' = parse_ok printed in
        Alcotest.(check string) "fixpoint" printed (Script.to_string s');
        Alcotest.(check int) "same statement count"
          (List.length s.stmts) (List.length s'.stmts));
    Alcotest.test_case "statements keep their source lines" `Quick
      (fun () ->
        let s = parse_ok literal in
        Alcotest.(check (list int)) "1-based lines" [ 5; 6; 7; 8 ]
          (List.map fst s.stmts));
    Alcotest.test_case "comments and blank lines are skipped" `Quick
      (fun () ->
        let s = parse_ok "pds 1\n\n# nothing here\n\ndo unroll\n" in
        Alcotest.(check int) "one stmt" 1 (List.length s.stmts));
    Alcotest.test_case "malformed scripts are errors" `Quick (fun () ->
        List.iter
          (fun src ->
            match Script.parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" src)
          [
            "";
            "at size 8 do split(factor=4)\n" (* missing header *);
            "pds 2\ndo unroll\n" (* future version *);
            "pds 1\nat size 8 split(factor=4)\n" (* 'at' without 'do' *);
            "pds 1\nat size 8 & do unroll\n" (* bad selector *);
            "pds 1\ndo split(factor)\n" (* arg without value *);
            "pds 1\ndo split(factor=4\n" (* unclosed args *);
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* Running and typed run errors                                        *)
(* ------------------------------------------------------------------ *)

(* [0] scope 8; [0,0] init; [0,1] scope 8; [0,1,0] accumulate *)
let rowsum () =
  Ir.Parser.program
    ("x f32 [8, 8] heap\nz f32 [8] heap\ninputs: x\noutputs: z\n"
   ^ "8\n| z[{0}] = 0\n| 8\n| | z[{0}] = z[{0}] + x[{0},{1}]\n")

let run_tests =
  [
    Alcotest.test_case "a script applies end to end" `Quick (fun () ->
        let p = rowsum () in
        let s =
          parse_ok
            ("pds 1\nat size 8 & nested do split(factor=4)\n"
           ^ "at size 8 do parallelize\n")
        in
        match Script.run caps_x86 p s with
        | Ok (q, prov) ->
            Alcotest.(check int) "two atomic moves" 2 (List.length prov);
            (match Engine.replay_compat caps_x86 p prov with
            | Ok q' ->
                Alcotest.(check string) "provenance replays identically"
                  (Ir.Printer.program q) (Ir.Printer.program q')
            | Error e -> Alcotest.fail e)
        | Error e -> Alcotest.fail (Script.run_error_to_string e));
    Alcotest.test_case "unknown statement name fails with its line" `Quick
      (fun () ->
        let s = parse_ok "pds 1\n# hi\ndo frobnicate\n" in
        match Script.run caps_x86 (rowsum ()) s with
        | Error { line; err = Target.Refused _; _ } ->
            Alcotest.(check int) "line" 3 line
        | Error { err; _ } -> Alcotest.fail (Target.error_to_string err)
        | Ok _ -> Alcotest.fail "ran an unknown transfo");
    Alcotest.test_case "ambiguous selector stops the script" `Quick
      (fun () ->
        let s = parse_ok "pds 1\nat size 8 do unroll\n" in
        match Script.run caps_x86 (rowsum ()) s with
        | Error { line = 2; err = Target.Ambiguous _; _ } -> ()
        | Error e -> Alcotest.fail (Script.run_error_to_string e)
        | Ok _ -> Alcotest.fail "ran an ambiguous statement");
    Alcotest.test_case "refused composite reports anchor and reason" `Quick
      (fun () ->
        let s = parse_ok "pds 1\nat path [0] do fuse_chain\n" in
        match Script.run caps_x86 (rowsum ()) s with
        | Error { err = Target.Refused { anchor; reason; _ }; _ } ->
            Alcotest.(check (list int)) "anchor" [ 0 ] anchor;
            Alcotest.(check bool) "reason" true (reason <> "")
        | Error e -> Alcotest.fail (Script.run_error_to_string e)
        | Ok _ -> Alcotest.fail "fused without a sibling");
    Alcotest.test_case "raw move escape still works" `Quick (fun () ->
        let p = rowsum () in
        let s = parse_ok "pds 1\nmove parallelize([0])\n" in
        match Script.run caps_x86 p s with
        | Ok (q, prov) ->
            Alcotest.(check (list string)) "provenance"
              [ "parallelize([0])" ] prov;
            Alcotest.(check bool) "applied" true
              (Ir.Printer.program q <> Ir.Printer.program p)
        | Error e -> Alcotest.fail (Script.run_error_to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* of_moves: recorded sequences upgrade to scripts (QCheck)            *)
(* ------------------------------------------------------------------ *)

(* Satellite: random engine walks round-trip byte-identically through
   the script format — describes -> of_moves -> print -> parse -> run
   reproduces the walked-to program and its canonical fingerprint. *)
let roundtrip_qcheck =
  let entries = Kernels.table3 @ Kernels.snitch_micro in
  let caps = Composites.enable ~names:[ "all" ] caps_x86 in
  QCheck.Test.make ~count:40
    ~name:"script round-trip reproduces random walks byte-for-byte"
    QCheck.(pair (int_bound (List.length entries - 1)) (int_bound 9999))
    (fun (ki, seed) ->
      let entry = List.nth entries ki in
      let p = entry.Kernels.build_small () in
      let rng = Util.Rng.create seed in
      let session = Engine.start caps p in
      (* a short random walk; stop early when no moves remain *)
      (try
         for _ = 1 to 4 do
           match Engine.applicable session with
           | [] -> raise Exit
           | insts ->
               let i = List.nth insts (Util.Rng.int rng (List.length insts)) in
               ignore (Engine.apply session i)
         done
       with Exit -> ());
      let walked = session.Engine.current in
      let describes = List.map Xforms.describe (Engine.moves session) in
      let script = Script.of_moves ~kernel:entry.Kernels.label describes in
      match Script.parse (Script.to_string script) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok script' -> (
          match Script.run caps p script' with
          | Error e ->
              QCheck.Test.fail_reportf "run failed on %s: %s"
                entry.Kernels.label
                (Script.run_error_to_string e)
          | Ok (q, _) ->
              Ir.Printer.program q = Ir.Printer.program walked
              && Canon.fingerprint q = Canon.fingerprint walked))

let of_moves_tests =
  [
    Alcotest.test_case "parseable moves become targeted statements" `Quick
      (fun () ->
        let s =
          Script.of_moves ~kernel:"rowsum"
            [ "split_scope([0,1] factor 4)"; "parallelize([0])"; "weird()" ]
        in
        match List.map snd s.Script.stmts with
        | [ Script.Apply _; Script.Apply _; Script.Raw "weird()" ] -> ()
        | _ -> Alcotest.failf "unexpected shape:\n%s" (Script.to_string s));
    Alcotest.test_case "of_moves output runs to the replayed program"
      `Quick (fun () ->
        let p = rowsum () in
        let moves = [ "split_scope([0,1] factor 4)"; "parallelize([0])" ] in
        let expect =
          match Engine.replay_compat caps_x86 p moves with
          | Ok q -> q
          | Error e -> Alcotest.fail e
        in
        match Script.run caps_x86 p (Script.of_moves moves) with
        | Ok (q, _) ->
            Alcotest.(check string) "byte-identical"
              (Ir.Printer.program expect) (Ir.Printer.program q)
        | Error e -> Alcotest.fail (Script.run_error_to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* Acceptance: the example scripts reproduce recorded Table-3 winners  *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let acceptance kernel script_file () =
  let entry = Kernels.find_entry Kernels.table3 kernel in
  let p = entry.Kernels.build () in
  let ctx = Perfdojo.Ctx.(default |> with_seed 1) in
  let outcome =
    Perfdojo.optimize_ctx ~ctx
      (Perfdojo.Annealing { budget = 64; space = Search.Stochastic.Heuristic })
      target_x86 p
  in
  let caps = Perfdojo.caps_of ~ctx target_x86 in
  let script =
    match Script.parse (read_file script_file) with
    | Ok s -> s
    | Error e -> Alcotest.failf "%s: %s" script_file e
  in
  match Script.run caps p script with
  | Error e -> Alcotest.fail (Script.run_error_to_string e)
  | Ok (q, prov) -> (
      Alcotest.(check string)
        "script reproduces the search winner byte-for-byte"
        (Ir.Printer.program outcome.Perfdojo.schedule)
        (Ir.Printer.program q);
      Alcotest.(check string) "canonical fingerprints agree"
        (Tuning.Record.fingerprint outcome.Perfdojo.schedule)
        (Tuning.Record.fingerprint q);
      (* the winner deposits with script provenance that parses *)
      match
        Tuning.Warmstart.record_of
          ~objective:(Machine.time target_x86)
          ~caps ~kernel ~target:"x86" ~root:p ~moves:prov
          ~evals:outcome.Perfdojo.evaluations
      with
      | Error e -> Alcotest.fail e
      | Ok r -> (
          match r.Tuning.Record.script with
          | None -> Alcotest.fail "record lacks script provenance"
          | Some text -> (
              match Script.parse text with
              | Ok _ -> ()
              | Error e -> Alcotest.failf "stored script unparseable: %s" e)))

let acceptance_tests =
  [
    Alcotest.test_case "matmul_x86.pds matches the recorded best" `Slow
      (acceptance "matmul" "../examples/schedules/matmul_x86.pds");
    Alcotest.test_case "softmax_x86.pds matches the recorded best" `Slow
      (acceptance "softmax" "../examples/schedules/softmax_x86.pds");
  ]

let () =
  Alcotest.run "script"
    [
      ("syntax", syntax_tests);
      ("run", run_tests);
      ("of_moves", of_moves_tests);
      ("of_moves-qcheck", [ QCheck_alcotest.to_alcotest roundtrip_qcheck ]);
      ("acceptance", acceptance_tests);
    ]
