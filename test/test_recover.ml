(* Tests for the crash-safe recovery subsystem: durable writes, the
   versioned checkpoint store, the write-ahead journal, and — the load-
   bearing property — kill-invariance: a run resumed from any
   checkpoint finishes exactly like the run that was never interrupted
   (same result, same exact accounting, byte-identical spliced traces),
   while re-evaluating strictly fewer candidates than a cold restart.

   Everything here is in-process: instead of fork + SIGKILL (which the
   bench crash experiment covers end-to-end), the kill point is
   simulated by snapshotting the checkpoint file mid-run — Store.save
   is atomic, so a copy taken at any evaluation index is exactly what a
   killed process would have left behind. *)

module R = Recover
module Stoch = Search.Stochastic
module Desc = Machine.Desc

let target_cpu = Desc.Cpu Desc.avx512_cpu
let caps_cpu = Desc.caps_of target_cpu
let time p = Machine.time target_cpu p

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "perfdojo_recover_%s_%d" name (Unix.getpid ()))

let rm path = if Sys.file_exists path then Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let copy_file src dst = write_raw dst (read_file src)

(* ------------------------------------------------------------------ *)
(* Bits: exact float round-trip                                        *)
(* ------------------------------------------------------------------ *)

let bits_tests =
  [
    Alcotest.test_case "special values round-trip bit-exactly" `Quick
      (fun () ->
        List.iter
          (fun f ->
            match R.Bits.to_float (R.Bits.of_float f) with
            | Some f' ->
                Alcotest.(check int64)
                  (Printf.sprintf "bits of %h" f)
                  (Int64.bits_of_float f) (Int64.bits_of_float f')
            | None -> Alcotest.failf "%h did not round-trip" f)
          [
            0.; -0.; 1.; -1.; infinity; neg_infinity; nan; epsilon_float;
            1e-308; 4.9e-324; 3.14159265358979; max_float;
          ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"any float round-trips bit-exactly"
         QCheck.float (fun f ->
           match R.Bits.to_float (R.Bits.of_float f) with
           | Some f' -> Int64.bits_of_float f = Int64.bits_of_float f'
           | None -> false));
  ]

(* ------------------------------------------------------------------ *)
(* Durable writes                                                      *)
(* ------------------------------------------------------------------ *)

let durable_tests =
  [
    Alcotest.test_case "write_string replaces atomically, no tmp left"
      `Quick (fun () ->
        let path = tmp "durable" in
        rm path;
        R.Durable.write_string ~path "one\n";
        Alcotest.(check string) "first write" "one\n" (read_file path);
        R.Durable.write_string ~path "two\n";
        Alcotest.(check string) "replaced" "two\n" (read_file path);
        Alcotest.(check bool) "tmp cleaned" false
          (Sys.file_exists (path ^ ".tmp"));
        rm path);
    Alcotest.test_case "an exception mid-write leaves the old file" `Quick
      (fun () ->
        let path = tmp "durable_exn" in
        rm path;
        R.Durable.write_string ~path "keep\n";
        (try
           R.Durable.write_file ~path (fun oc ->
               output_string oc "partial garbage";
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check string) "old contents intact" "keep\n"
          (read_file path);
        Alcotest.(check bool) "tmp cleaned" false
          (Sys.file_exists (path ^ ".tmp"));
        rm path);
  ]

(* ------------------------------------------------------------------ *)
(* Store: versioned + checksummed checkpoints                          *)
(* ------------------------------------------------------------------ *)

let payload =
  Util.Json.Obj
    [
      ("kind", Util.Json.Str "test");
      ("n", Util.Json.Num 42.);
      ("t", R.Bits.of_float 1.5e-6);
    ]

let store_tests =
  [
    Alcotest.test_case "save/load round-trips the payload" `Quick (fun () ->
        let path = tmp "store" in
        rm path;
        R.Store.save ~path payload;
        (match R.Store.load ~path with
        | Ok p ->
            Alcotest.(check string)
              "payload" (Util.Json.to_string payload) (Util.Json.to_string p)
        | Error e -> Alcotest.failf "load: %s" (R.error_message e));
        rm path);
    Alcotest.test_case "missing file is a typed Missing error" `Quick
      (fun () ->
        let path = tmp "store_missing" in
        rm path;
        match R.Store.load ~path with
        | Error (R.Missing _) -> ()
        | Error e -> Alcotest.failf "wanted Missing, got %s" (R.error_message e)
        | Ok _ -> Alcotest.fail "load of a missing file succeeded");
    Alcotest.test_case "a truncated checkpoint is Corrupt, never garbage"
      `Quick (fun () ->
        let path = tmp "store_torn" in
        rm path;
        R.Store.save ~path payload;
        let s = read_file path in
        write_raw path (String.sub s 0 (String.length s / 2));
        (match R.Store.load ~path with
        | Error (R.Corrupt _) -> ()
        | Error e -> Alcotest.failf "wanted Corrupt, got %s" (R.error_message e)
        | Ok _ -> Alcotest.fail "torn checkpoint loaded");
        rm path);
    Alcotest.test_case "a flipped byte fails the checksum" `Quick (fun () ->
        let path = tmp "store_flip" in
        rm path;
        R.Store.save ~path payload;
        let s = Bytes.of_string (read_file path) in
        (* flip a digit inside the payload, away from the envelope *)
        let i = Bytes.length s - 5 in
        Bytes.set s i (if Bytes.get s i = '2' then '3' else '2');
        write_raw path (Bytes.to_string s);
        (match R.Store.load ~path with
        | Error (R.Corrupt _) -> ()
        | Error e -> Alcotest.failf "wanted Corrupt, got %s" (R.error_message e)
        | Ok _ -> Alcotest.fail "corrupted checkpoint loaded");
        rm path);
    Alcotest.test_case "config validators raise typed Mismatch" `Quick
      (fun () ->
        (match R.Field.check_str payload "kind" "test" with
        | () -> ());
        match R.Field.check_str payload "kind" "other" with
        | exception R.Error (R.Mismatch _) -> ()
        | () -> Alcotest.fail "mismatched config accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Journal                                                             *)
(* ------------------------------------------------------------------ *)

let entry n =
  Util.Json.Obj [ ("k", Util.Json.Str "e"); ("n", Util.Json.Num (float_of_int n)) ]

let journal_tests =
  [
    Alcotest.test_case "append/replay round-trips in order" `Quick (fun () ->
        let path = tmp "journal" in
        rm path;
        let w = R.Journal.open_writer path in
        List.iter (fun n -> R.Journal.append w (entry n)) [ 1; 2; 3 ];
        R.Journal.close w;
        (match R.Journal.replay path with
        | Ok (entries, torn) ->
            Alcotest.(check int) "torn" 0 torn;
            Alcotest.(check (list string))
              "entries"
              (List.map (fun n -> Util.Json.to_string (entry n)) [ 1; 2; 3 ])
              (List.map Util.Json.to_string entries)
        | Error e -> Alcotest.failf "replay: %s" (R.error_message e));
        rm path);
    Alcotest.test_case "missing journal replays as empty" `Quick (fun () ->
        let path = tmp "journal_missing" in
        rm path;
        match R.Journal.replay path with
        | Ok ([], 0) -> ()
        | Ok (es, t) ->
            Alcotest.failf "wanted ([],0), got %d entries, %d torn"
              (List.length es) t
        | Error e -> Alcotest.failf "replay: %s" (R.error_message e));
    Alcotest.test_case "a torn trailing line is dropped, prefix recovered"
      `Quick (fun () ->
        let path = tmp "journal_torn" in
        rm path;
        let w = R.Journal.open_writer path in
        List.iter (fun n -> R.Journal.append w (entry n)) [ 1; 2 ];
        R.Journal.close w;
        (* simulate a writer killed mid-append: a partial last line *)
        let oc =
          open_out_gen [ Open_append; Open_binary ] 0o644 path
        in
        output_string oc "{\"k\":\"e\",\"n\"";
        close_out oc;
        (match R.Journal.replay path with
        | Ok (entries, torn) ->
            Alcotest.(check int) "entries" 2 (List.length entries);
            Alcotest.(check int) "torn" 1 torn
        | Error e -> Alcotest.failf "replay: %s" (R.error_message e));
        rm path);
    Alcotest.test_case "corruption before the tail is a typed error" `Quick
      (fun () ->
        let path = tmp "journal_corrupt" in
        rm path;
        let w = R.Journal.open_writer path in
        List.iter (fun n -> R.Journal.append w (entry n)) [ 1; 2 ];
        R.Journal.close w;
        let lines = String.split_on_char '\n' (read_file path) in
        (match lines with
        | a :: b :: rest ->
            write_raw path
              (String.concat "\n" ((a ^ "X") :: b :: rest))
        | _ -> Alcotest.fail "journal too short");
        (match R.Journal.replay path with
        | Error (R.Corrupt _) -> ()
        | Error e -> Alcotest.failf "wanted Corrupt, got %s" (R.error_message e)
        | Ok _ -> Alcotest.fail "corrupt journal replayed");
        rm path);
    Alcotest.test_case "reset truncates; replay is empty after" `Quick
      (fun () ->
        let path = tmp "journal_reset" in
        rm path;
        let w = R.Journal.open_writer path in
        R.Journal.append w (entry 1);
        R.Journal.reset w;
        R.Journal.append w (entry 2);
        R.Journal.close w;
        (match R.Journal.replay path with
        | Ok (entries, 0) ->
            Alcotest.(check (list string))
              "post-reset entries"
              [ Util.Json.to_string (entry 2) ]
              (List.map Util.Json.to_string entries)
        | Ok (_, t) -> Alcotest.failf "%d torn lines" t
        | Error e -> Alcotest.failf "replay: %s" (R.error_message e));
        rm path);
  ]

(* ------------------------------------------------------------------ *)
(* Kill-invariance: resume from any checkpoint = never interrupted     *)
(* ------------------------------------------------------------------ *)

let strip evs =
  List.map
    (fun j -> Util.Json.to_string (Obs.Trace.strip_timing j))
    (Obs.Trace.events evs)

let take n l = List.filteri (fun i _ -> i < n) l

let stoch_eq label (a : Stoch.result) (b : Stoch.result) =
  Int64.bits_of_float a.best_time = Int64.bits_of_float b.best_time
  && a.best_moves = b.best_moves
  && Array.length a.curve = Array.length b.curve
  && Array.for_all2
       (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
       a.curve b.curve
  && a.evals = b.evals && a.skipped = b.skipped && a.deduped = b.deduped
  && a.visited = b.visited && a.failures = b.failures
  ||
  (Printf.eprintf "%s: resumed result differs\n" label;
   false)

(* Run the uninterrupted reference, snapshotting the checkpoint file as
   it stood when evaluation [k] started — exactly what a SIGKILL at
   that index leaves behind (Store.save is atomic).  Then resume from
   the snapshot and demand equality. *)
let kill_point_invariant meth k =
  let budget = 16 and every = 2 in
  let root = Kernels.relu ~n:4 ~m:4 in
  let name = match meth with `Sampling -> "sampling" | `Annealing -> "sa" in
  let ck = tmp (Printf.sprintf "ck_%s_%d" name k) in
  let snap = ck ^ ".snap" in
  rm ck;
  rm snap;
  let engine ~ck ~resume ~obs ~tick =
    Parallel.Pool.with_pool ~jobs:1 (fun pool ->
        let checkpoint = { Stoch.path = ck; every; resume } in
        let objective p =
          tick ();
          time p
        in
        match meth with
        | `Sampling ->
            Stoch.random_sampling_parallel ~seed:11 ~obs ~checkpoint ~pool
              ~space:Stoch.Heuristic ~budget caps_cpu objective root
        | `Annealing ->
            Stoch.simulated_annealing_parallel ~seed:11 ~obs ~checkpoint
              ~pool ~space:Stoch.Heuristic ~budget caps_cpu objective root)
  in
  let obs_ref = Obs.Trace.make_buffer () in
  let seen = ref 0 in
  let reference =
    engine ~ck ~resume:false ~obs:obs_ref ~tick:(fun () ->
        incr seen;
        if !seen = k && Sys.file_exists ck then copy_file ck snap)
  in
  let events =
    match R.Store.load ~path:snap with
    | Ok p -> R.Field.int "events" p
    | Error (R.Missing _) -> 0 (* killed before the first checkpoint *)
    | Error e -> Alcotest.failf "snapshot: %s" (R.error_message e)
  in
  let obs_res = Obs.Trace.make_buffer () in
  let calls = ref 0 in
  let resumed =
    engine ~ck:snap ~resume:true ~obs:obs_res ~tick:(fun () -> incr calls)
  in
  let ref_stripped = strip obs_ref in
  let ok =
    stoch_eq (Printf.sprintf "%s k=%d" name k) reference resumed
    && take events ref_stripped @ strip obs_res = ref_stripped
    && (events = 0 || !calls < reference.evals)
  in
  rm ck;
  rm snap;
  ok

let invariance_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:16
         ~name:"sampling: resume from any kill point = uninterrupted run"
         QCheck.(int_range 1 16)
         (kill_point_invariant `Sampling));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:16
         ~name:"annealing: resume from any kill point = uninterrupted run"
         QCheck.(int_range 1 16)
         (kill_point_invariant `Annealing));
    Alcotest.test_case
      "exhaustive: resume re-certifies the optimum, strictly cheaper"
      `Quick (fun () ->
        let root = Kernels.scale ~n:8 in
        let depth = 2 in
        let ck = tmp "ck_exhaustive" in
        let snap = ck ^ ".snap" in
        rm ck;
        rm snap;
        let run ~ck ~resume ~obs ~tick =
          Search.Exhaustive.run ~obs
            ~checkpoint:{ Stoch.path = ck; every = 1; resume }
            ~depth caps_cpu
            (fun p ->
              tick ();
              time p)
            root
        in
        let obs_ref = Obs.Trace.make_buffer () in
        let snapped = ref false in
        let reference =
          (* snapshot at the first evaluation that can see a completed-
             level checkpoint on disk: what SIGKILL just after the
             first BFS level leaves behind *)
          run ~ck ~resume:false ~obs:obs_ref ~tick:(fun () ->
              if (not !snapped) && Sys.file_exists ck then begin
                copy_file ck snap;
                snapped := true
              end)
        in
        Alcotest.(check bool) "a mid-run checkpoint existed" true !snapped;
        let events =
          match R.Store.load ~path:snap with
          | Ok p -> R.Field.int "events" p
          | Error e -> Alcotest.failf "snapshot: %s" (R.error_message e)
        in
        let obs_res = Obs.Trace.make_buffer () in
        let calls = ref 0 in
        let resumed =
          run ~ck:snap ~resume:true ~obs:obs_res ~tick:(fun () ->
              incr calls)
        in
        Alcotest.(check bool) "reference certified" true reference.certified;
        Alcotest.(check bool) "resumed certified" true resumed.certified;
        Alcotest.(check int64) "same optimum"
          (Int64.bits_of_float reference.best_time)
          (Int64.bits_of_float resumed.best_time);
        Alcotest.(check (list string))
          "same schedule" reference.best_moves resumed.best_moves;
        Alcotest.(check int) "same unique" reference.unique resumed.unique;
        Alcotest.(check int) "same evals" reference.evals resumed.evals;
        let ref_stripped = strip obs_ref in
        Alcotest.(check bool) "trace splice" true
          (take events ref_stripped @ strip obs_res = ref_stripped);
        Alcotest.(check bool) "strictly cheaper than cold restart" true
          (!calls < reference.evals);
        rm ck;
        rm snap);
  ]

(* ------------------------------------------------------------------ *)
(* Serve WAL: acknowledged deposits survive an unclean death           *)
(* ------------------------------------------------------------------ *)

module S = Serve.Server
module P = Serve.Protocol

let serve_tests =
  [
    Alcotest.test_case "journal replay restores every acknowledged deposit"
      `Quick (fun () ->
        let db = tmp "serve_db.jsonl" in
        rm db;
        rm (db ^ ".wal");
        let cfg =
          {
            S.default_config with
            S.workers = 1;
            default_budget = 4;
            kernels = Kernels.snitch_micro;
            db_file = Some db;
          }
        in
        (* first server: acknowledge deposits, then "die" without stop
           (stop would checkpoint + truncate — exactly what a crash
           skips).  The WAL must already hold both records. *)
        let server1 = S.create cfg in
        List.iteri
          (fun i kernel ->
            match
              S.submit server1
                (P.Optimize
                   {
                     id = i + 1;
                     kernel;
                     target = "snitch";
                     strategy = "sampling";
                     budget = 0;
                     deadline_ms = 0;
                     force = false;
                   })
            with
            | P.Optimized _ -> ()
            | r -> Alcotest.failf "optimize: %s" (P.response_kind r))
          [ "axpy"; "dot" ];
        Alcotest.(check bool) "WAL non-empty before crash" true
          (read_file (db ^ ".wal") <> "");
        Alcotest.(check bool) "db checkpoint not yet written" true
          (not (Sys.file_exists db));
        (* second server: replay must recover both deposits *)
        let server2 = S.create cfg in
        Alcotest.(check int) "replayed count" 2
          (Obs.Metrics.counter (S.metrics server2) "journal.replayed");
        List.iteri
          (fun i kernel ->
            match
              S.submit server2 (P.Query { id = 10 + i; kernel; target = "snitch" })
            with
            | P.Queried { found = true; _ } -> ()
            | P.Queried { found = false; _ } ->
                Alcotest.failf "acknowledged deposit lost: %s" kernel
            | r -> Alcotest.failf "query: %s" (P.response_kind r))
          [ "axpy"; "dot" ];
        Alcotest.(check bool) "journal truncated after checkpoint" true
          (read_file (db ^ ".wal") = "");
        ignore (S.submit server2 (P.Shutdown { id = 99 }));
        rm db;
        rm (db ^ ".wal"));
  ]

(* ------------------------------------------------------------------ *)
(* Client deadline + bounded retry                                     *)
(* ------------------------------------------------------------------ *)

let client_tests =
  [
    Alcotest.test_case "request times out against a silent server" `Quick
      (fun () ->
        let path = tmp "slow.sock" in
        rm path;
        let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind srv (Unix.ADDR_UNIX path);
        Unix.listen srv 1;
        let t =
          Thread.create
            (fun () ->
              let fd, _ = Unix.accept srv in
              Thread.delay 3.0;
              Unix.close fd)
            ()
        in
        let t0 = Unix.gettimeofday () in
        (match
           Serve.Client.with_connection path (fun conn ->
               Serve.Client.request ~deadline_ms:150 conn
                 (P.Stats { id = 1 }))
         with
        | Error (Serve.Client.Timeout _) -> ()
        | Error e ->
            Alcotest.failf "wanted Timeout, got %s"
              (Serve.Client.error_message e)
        | Ok _ -> Alcotest.fail "silent server answered");
        Alcotest.(check bool) "deadline honored (< 2s)" true
          (Unix.gettimeofday () -. t0 < 2.0);
        Thread.join t;
        Unix.close srv;
        rm path);
    Alcotest.test_case "retry is bounded when the server never comes up"
      `Quick (fun () ->
        let path = tmp "absent.sock" in
        rm path;
        match
          Serve.Client.request_retry ~attempts:3 ~base_delay_ms:1
            ~socket:path (P.Stats { id = 1 })
        with
        | Error (Serve.Client.Transport _) -> ()
        | Error e ->
            Alcotest.failf "wanted Transport, got %s"
              (Serve.Client.error_message e)
        | Ok _ -> Alcotest.fail "request to an absent server succeeded");
  ]

(* ------------------------------------------------------------------ *)
(* Interrupt flag                                                      *)
(* ------------------------------------------------------------------ *)

let interrupt_tests =
  [
    Alcotest.test_case "SIGTERM sets the flag; reset clears it" `Quick
      (fun () ->
        R.Interrupt.install ();
        R.Interrupt.reset ();
        Alcotest.(check bool) "clean" false (R.Interrupt.requested ());
        Unix.kill (Unix.getpid ()) Sys.sigterm;
        let deadline = Unix.gettimeofday () +. 2.0 in
        while
          (not (R.Interrupt.requested ()))
          && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.001
        done;
        Alcotest.(check bool) "flagged" true (R.Interrupt.requested ());
        R.Interrupt.reset ();
        Alcotest.(check bool) "cleared" false (R.Interrupt.requested ()));
  ]

let () =
  Alcotest.run "recover"
    [
      ("bits", bits_tests);
      ("durable", durable_tests);
      ("store", store_tests);
      ("journal", journal_tests);
      ("invariance", invariance_tests);
      ("serve-wal", serve_tests);
      ("client", client_tests);
      ("interrupt", interrupt_tests);
    ]
