(* Tests for the Perfdojo facade: the Game API and one-call optimize. *)

open Perfdojo

let target_cpu = Machine.Desc.Cpu Machine.Desc.avx512_cpu
let target_snitch = Machine.Desc.Snitch Machine.Desc.snitch_cluster
let target_gpu = Machine.Desc.Gpu Machine.Desc.gh200

let game_tests =
  [
    Alcotest.test_case "start validates the program" `Quick (fun () ->
        let bad : Ir.Prog.t =
          {
            buffers = [ Ir.Types.buffer "z" Ir.Types.F32 [ 2 ] ];
            inputs = [];
            outputs = [ "z" ];
            body =
              [
                Ir.Types.scope 4
                  [
                    Ir.Types.Stmt
                      {
                        dst = { array = "z"; idx = [ Ir.Index.iter 0 ] };
                        rhs = Const 1.0;
                      };
                  ];
              ];
          }
        in
        Alcotest.check_raises "invalid program rejected"
          (Ir.Validate.Invalid
             [ Ir.Validate.Out_of_bounds ("z", 0, 3, 2) ])
          (fun () -> ignore (Game.start target_cpu bad)));
    Alcotest.test_case "moves and play round trip" `Quick (fun () ->
        let game = Game.start target_cpu (Kernels.relu ~n:8 ~m:8) in
        let moves = Game.moves game in
        Alcotest.(check bool) "has moves" true (moves <> []);
        let t0 = Game.time game in
        let _ = Game.play game (fst (List.hd moves)) in
        Alcotest.(check int) "one move recorded" 1
          (List.length (Game.moves_played game));
        ignore t0);
    Alcotest.test_case "play_named rejects unknown moves" `Quick (fun () ->
        let game = Game.start target_cpu (Kernels.relu ~n:8 ~m:8) in
        Alcotest.check_raises "bad move"
          (Invalid_argument "Game.play_named: \"frobnicate\" not applicable")
          (fun () -> ignore (Game.play_named game "frobnicate")));
    Alcotest.test_case "reward is c over runtime" `Quick (fun () ->
        let game = Game.start target_cpu (Kernels.relu ~n:64 ~m:64) in
        (* at the start, reward = t0 / t0 = 1 *)
        Alcotest.(check (float 1e-6)) "initial reward" 1.0 (Game.reward game);
        let _ = Game.play_named game "parallelize([0])" in
        Alcotest.(check bool) "improves" true (Game.reward game > 1.0));
    Alcotest.test_case "verify detects nothing wrong after real moves"
      `Quick (fun () ->
        let game = Game.start target_cpu (Kernels.softmax ~n:4 ~m:8) in
        let rec play_some n =
          if n > 0 then begin
            let moves = Game.moves game in
            if moves <> [] then begin
              ignore (Game.play game (fst (List.hd moves)));
              play_some (n - 1)
            end
          end
        in
        play_some 4;
        match Game.verify game with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

let optimize_tests =
  [
    Alcotest.test_case "all strategies return valid improvements" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let t0 = Machine.time target_snitch p in
        List.iter
          (fun (name, strategy) ->
            let o = Perfdojo.optimize ~seed:3 strategy target_snitch p in
            Ir.Validate.check_exn o.schedule;
            Alcotest.(check bool)
              (Printf.sprintf "%s: %.2e <= %.2e" name o.time_s t0)
              true
              (o.time_s <= t0 *. 1.0001);
            match Interp.equivalent ~tol:1e-4 p o.schedule with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" name e)
          [
            ("naive", Naive);
            ("greedy", Greedy);
            ("heuristic", Heuristic);
            ( "sampling",
              Sampling { budget = 40; space = Search.Stochastic.Edges } );
            ( "annealing",
              Annealing { budget = 40; space = Search.Stochastic.Heuristic }
            );
            ( "rl",
              Rl_search
                {
                  Rl.Perfllm.default_config with
                  episodes = 4;
                  max_steps = 6;
                  action_cap = 12;
                } );
          ]);
    Alcotest.test_case "optimize_best picks the winner" `Quick (fun () ->
        let p = Kernels.relu ~n:64 ~m:64 in
        let b = Perfdojo.optimize_best ~budget:40 target_cpu p in
        let h = Perfdojo.optimize Heuristic target_cpu p in
        Alcotest.(check bool) "best <= heuristic" true (b.time_s <= h.time_s));
    Alcotest.test_case "gpu heuristic strategy maps to the device" `Quick
      (fun () ->
        let p = Kernels.add ~n:256 ~m:256 in
        let o = Perfdojo.optimize Heuristic target_gpu p in
        Alcotest.(check bool) "grid mapped" true
          (Codegen.contains_gpu o.schedule));
  ]

let parallel_facade_tests =
  [
    Alcotest.test_case "optimize is jobs-invariant for a search strategy"
      `Quick (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let strat =
          Annealing { budget = 40; space = Search.Stochastic.Heuristic }
        in
        let a = Perfdojo.optimize ~seed:6 ~jobs:1 strat target_snitch p in
        let b = Perfdojo.optimize ~seed:6 ~jobs:4 strat target_snitch p in
        Alcotest.(check (float 0.0)) "time" a.time_s b.time_s;
        Alcotest.(check (list string)) "moves" a.moves b.moves;
        Alcotest.(check int) "evals" a.evaluations b.evaluations);
    Alcotest.test_case "portfolio returns its best member's schedule" `Quick
      (fun () ->
        let p = Kernels.relu ~n:32 ~m:32 in
        let members = Perfdojo.default_portfolio ~seed:2 ~budget:30 () in
        let o, winner =
          Perfdojo.optimize_portfolio ~jobs:2 ~members target_cpu p
        in
        Ir.Validate.check_exn o.schedule;
        Alcotest.(check bool) "winner is a member" true
          (List.exists (fun m -> m.plabel = winner) members);
        List.iter
          (fun (m : Perfdojo.portfolio_member) ->
            let solo =
              Perfdojo.optimize ~seed:m.pseed m.pstrategy target_cpu p
            in
            Alcotest.(check bool)
              (winner ^ " beats " ^ m.plabel)
              true (o.time_s <= solo.time_s))
          members;
        match Interp.equivalent ~tol:1e-4 p o.schedule with
        | Ok () -> ()
        | Error e -> Alcotest.failf "portfolio schedule: %s" e);
    Alcotest.test_case "portfolio race is deterministic across jobs" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let strat = Portfolio { budget = 25 } in
        let a = Perfdojo.optimize ~seed:4 ~jobs:1 strat target_snitch p in
        let b = Perfdojo.optimize ~seed:4 ~jobs:3 strat target_snitch p in
        Alcotest.(check (float 0.0)) "time" a.time_s b.time_s;
        Alcotest.(check (list string)) "moves" a.moves b.moves);
    Alcotest.test_case "portfolio rejects empty and nested members" `Quick
      (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        (match Perfdojo.optimize_portfolio ~members:[] target_cpu p with
        | _ -> Alcotest.fail "accepted an empty portfolio"
        | exception Invalid_argument _ -> ());
        let nested =
          [
            {
              Perfdojo.plabel = "nested";
              pstrategy = Portfolio { budget = 5 };
              pseed = 1;
            };
          ]
        in
        match Perfdojo.optimize_portfolio ~members:nested target_cpu p with
        | _ -> Alcotest.fail "accepted a nested portfolio"
        | exception Invalid_argument _ -> ());
  ]

(* The run-context record must be a faithful repackaging of the legacy
   optional arguments: same defaults, same results. *)
let check_outcome label (a : outcome) (b : outcome) =
  Alcotest.(check (float 0.0)) (label ^ " time") a.time_s b.time_s;
  Alcotest.(check (list string)) (label ^ " moves") a.moves b.moves;
  Alcotest.(check int) (label ^ " evals") a.evaluations b.evaluations;
  Alcotest.(check int) (label ^ " failures") a.failures b.failures

let ctx_tests =
  [
    Alcotest.test_case "Ctx.default equals the wrapper defaults" `Quick
      (fun () ->
        let p = Kernels.relu ~n:32 ~m:32 in
        List.iter
          (fun strat ->
            check_outcome "default"
              (Perfdojo.optimize strat target_cpu p)
              (Perfdojo.optimize_ctx ~ctx:Ctx.default strat target_cpu p))
          [
            Heuristic;
            Annealing { budget = 40; space = Search.Stochastic.Heuristic };
            Sampling { budget = 40; space = Search.Stochastic.Edges };
          ]);
    Alcotest.test_case "builders agree with the optional arguments" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let strat =
          Annealing { budget = 40; space = Search.Stochastic.Heuristic }
        in
        let cache = Tuning.Cache.create () in
        let old_style =
          Perfdojo.optimize ~seed:7 ~cache ~jobs:2 strat target_snitch p
        in
        let ctx =
          Ctx.(
            default |> with_seed 7
            |> with_cache (Tuning.Cache.create ())
            |> with_jobs 2)
        in
        check_outcome "builders" old_style
          (Perfdojo.optimize_ctx ~ctx strat target_snitch p));
    Alcotest.test_case "of_options defaults match Ctx.default" `Quick
      (fun () ->
        let a = Ctx.of_options () in
        let b = Ctx.default in
        Alcotest.(check int) "seed" b.Ctx.seed a.Ctx.seed;
        Alcotest.(check int) "jobs" b.Ctx.jobs a.Ctx.jobs;
        Alcotest.(check (list string)) "warm" b.Ctx.warm_start
          a.Ctx.warm_start;
        Alcotest.(check bool) "cache" true (a.Ctx.cache = None);
        Alcotest.(check bool) "metrics" true (a.Ctx.metrics = None));
    Alcotest.test_case "portfolio wrapper equals optimize_portfolio_ctx"
      `Quick (fun () ->
        let p = Kernels.softmax ~n:16 ~m:16 in
        let members = Perfdojo.default_portfolio ~seed:3 ~budget:25 () in
        let a, wa =
          Perfdojo.optimize_portfolio ~jobs:2 ~members target_cpu p
        in
        let b, wb =
          Perfdojo.optimize_portfolio_ctx
            ~ctx:Ctx.(default |> with_jobs 2)
            ~members target_cpu p
        in
        Alcotest.(check string) "winner" wa wb;
        check_outcome "portfolio" a b);
    Alcotest.test_case "warm start through the context resumes the search"
      `Quick (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let strat =
          Annealing { budget = 30; space = Search.Stochastic.Heuristic }
        in
        let first = Perfdojo.optimize_ctx ~ctx:Ctx.default strat target_cpu p in
        let warm =
          Perfdojo.optimize_ctx
            ~ctx:(Ctx.with_warm_start first.moves Ctx.default)
            strat target_cpu p
        in
        let legacy =
          Perfdojo.optimize ~warm_start:first.moves strat target_cpu p
        in
        check_outcome "warm" legacy warm;
        Alcotest.(check bool) "no regression" true
          (warm.time_s <= first.time_s +. 1e-12));
  ]

let () =
  Alcotest.run "core"
    [
      ("game", game_tests);
      ("optimize", optimize_tests);
      ("parallel-facade", parallel_facade_tests);
      ("ctx", ctx_tests);
    ]
