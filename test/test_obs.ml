(* Tests for the observability layer: metrics registry semantics, trace
   sink ordering and canonical encoding, the zero-allocation guarantee
   of the disabled sink, span recording, engine events, and the
   jobs-invariance of traced parallel search. *)

let caps_x86 = Machine.caps (Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4)
let time_x86 p = Machine.time (Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4) p

let metrics_tests =
  [
    Alcotest.test_case "counters accumulate and default to 0" `Quick
      (fun () ->
        let m = Obs.Metrics.create () in
        Alcotest.(check int) "absent" 0 (Obs.Metrics.counter m "c");
        Obs.Metrics.incr m "c";
        Obs.Metrics.incr m ~by:41 "c";
        Alcotest.(check int) "42" 42 (Obs.Metrics.counter m "c");
        Obs.Metrics.incr m ~by:(-2) "c";
        Alcotest.(check int) "negative by" 40 (Obs.Metrics.counter m "c"));
    Alcotest.test_case "gauges keep the latest value" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Alcotest.(check bool) "absent" true (Obs.Metrics.gauge m "g" = None);
        Obs.Metrics.set m "g" 1.5;
        Obs.Metrics.set m "g" 2.5;
        Alcotest.(check (option (float 0.0))) "latest" (Some 2.5)
          (Obs.Metrics.gauge m "g"));
    Alcotest.test_case "histogram summary has exact quantiles" `Quick
      (fun () ->
        let m = Obs.Metrics.create () in
        for i = 1 to 100 do
          Obs.Metrics.observe m "h" (float_of_int i)
        done;
        match Obs.Metrics.histogram m "h" with
        | None -> Alcotest.fail "no histogram"
        | Some s ->
            Alcotest.(check int) "count" 100 s.count;
            Alcotest.(check (float 1e-9)) "sum" 5050.0 s.sum;
            Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
            Alcotest.(check (float 1e-9)) "max" 100.0 s.max;
            Alcotest.(check (float 1e-9)) "mean" 50.5 s.mean;
            Alcotest.(check (float 1.0)) "p50 near median" 50.5 s.p50;
            Alcotest.(check (float 1.5)) "p90" 90.0 s.p90);
    Alcotest.test_case
      "lazy counter registration under concurrency never races snapshot"
      `Quick (fun () ->
        (* the surrogate engine registers its counters lazily (first
           bump creates the entry) from pool workers while --stats /
           serve snapshot concurrently: fresh names racing snapshot
           must lose no increments and corrupt no sections *)
        let m = Obs.Metrics.create () in
        let writers = 6 and per_writer = 400 in
        let snapshots = ref 0 in
        let stop = Atomic.make false in
        let reader =
          Domain.spawn (fun () ->
              while not (Atomic.get stop) do
                let s = Obs.Metrics.snapshot m in
                incr snapshots;
                (* sections stay sorted even mid-registration *)
                ignore
                  (List.fold_left
                     (fun prev (name, _) ->
                       if prev >= name then
                         Alcotest.failf "unsorted snapshot at %s" name;
                       name)
                     "" s.counters)
              done)
        in
        let workers =
          List.init writers (fun w ->
              Domain.spawn (fun () ->
                  for i = 1 to per_writer do
                    (* a fresh name per (writer, phase): registration
                       itself races, not just the increments *)
                    Obs.Metrics.incr m
                      (Printf.sprintf "surrogate.w%d.%d" w (i mod 8))
                  done))
        in
        List.iter Domain.join workers;
        Atomic.set stop true;
        Domain.join reader;
        for w = 0 to writers - 1 do
          let total = ref 0 in
          for k = 0 to 7 do
            total :=
              !total
              + Obs.Metrics.counter m (Printf.sprintf "surrogate.w%d.%d" w k)
          done;
          Alcotest.(check int)
            (Printf.sprintf "writer %d increments all land" w)
            per_writer !total
        done;
        Alcotest.(check bool) "snapshots ran concurrently" true
          (!snapshots > 0));
    Alcotest.test_case "snapshot sections are sorted" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        Obs.Metrics.incr m "zz";
        Obs.Metrics.incr m "aa";
        Obs.Metrics.set m "g2" 1.0;
        Obs.Metrics.set m "g1" 2.0;
        let s = Obs.Metrics.snapshot m in
        Alcotest.(check (list string))
          "counters" [ "aa"; "zz" ]
          (List.map fst s.counters);
        Alcotest.(check (list string))
          "gauges" [ "g1"; "g2" ]
          (List.map fst s.gauges));
  ]

(* a top-level thunk so the no-allocation test cannot accidentally
   allocate a closure capturing locals *)
let static_fields () = [ Obs.Trace.int "x" 1 ]

let trace_tests =
  [
    Alcotest.test_case "buffer sink preserves emission order" `Quick
      (fun () ->
        let s = Obs.Trace.make_buffer () in
        Obs.Trace.emit s "a" (fun () -> [ Obs.Trace.int "i" 1 ]);
        Obs.Trace.emit s "b" (fun () -> [ Obs.Trace.str "k" "v" ]);
        let names =
          List.filter_map
            (fun e ->
              Option.bind (Util.Json.member "ev" e) Util.Json.to_str)
            (Obs.Trace.events s)
        in
        Alcotest.(check (list string)) "order" [ "a"; "b" ] names);
    Alcotest.test_case "events are canonical JSONL" `Quick (fun () ->
        let s = Obs.Trace.make_buffer () in
        Obs.Trace.emit s "e" (fun () ->
            [
              Obs.Trace.num "f" 0.1;
              Obs.Trace.int "i" (-3);
              Obs.Trace.bool "b" true;
              Obs.Trace.str "s" "q\"uote";
            ]);
        List.iter
          (fun ev ->
            let line = Util.Json.to_string ev in
            match Util.Json.of_string line with
            | Error msg -> Alcotest.failf "re-parse: %s" msg
            | Ok ev' ->
                Alcotest.(check string) "byte-identical" line
                  (Util.Json.to_string ev'))
          (Obs.Trace.events s));
    Alcotest.test_case "strip_timing drops exactly dur_s and t_s" `Quick
      (fun () ->
        let s = Obs.Trace.make_buffer () in
        Obs.Trace.emit s "e" (fun () ->
            [
              Obs.Trace.num "dur_s" 1.0;
              Obs.Trace.int "keep" 2;
              Obs.Trace.num "t_s" 3.0;
            ]);
        let stripped =
          List.map Obs.Trace.strip_timing (Obs.Trace.events s)
        in
        List.iter
          (fun e ->
            Alcotest.(check bool) "dur_s gone" true
              (Util.Json.member "dur_s" e = None);
            Alcotest.(check bool) "t_s gone" true
              (Util.Json.member "t_s" e = None);
            Alcotest.(check bool) "keep kept" true
              (Util.Json.member "keep" e <> None))
          stripped);
    Alcotest.test_case "append folds buffers in order" `Quick (fun () ->
        let a = Obs.Trace.make_buffer () in
        let b = Obs.Trace.make_buffer () in
        Obs.Trace.emit a "a1" (fun () -> []);
        Obs.Trace.emit b "b1" (fun () -> []);
        Obs.Trace.emit b "b2" (fun () -> []);
        Obs.Trace.append ~into:a b;
        let names =
          List.filter_map
            (fun e ->
              Option.bind (Util.Json.member "ev" e) Util.Json.to_str)
            (Obs.Trace.events a)
        in
        Alcotest.(check (list string)) "order" [ "a1"; "b1"; "b2" ] names);
    Alcotest.test_case "null sink is disabled and free" `Quick (fun () ->
        Alcotest.(check bool) "disabled" false
          (Obs.Trace.enabled Obs.Trace.null);
        Alcotest.(check bool) "buffer enabled" true
          (Obs.Trace.enabled (Obs.Trace.make_buffer ()));
        (* emit on the null sink must not evaluate the thunk *)
        Obs.Trace.emit Obs.Trace.null "e" (fun () ->
            Alcotest.fail "thunk evaluated on null sink");
        (* and the guarded idiom must not allocate at all *)
        let w0 = Gc.minor_words () in
        for _ = 1 to 10_000 do
          if Obs.Trace.enabled Obs.Trace.null then
            Obs.Trace.emit Obs.Trace.null "e" static_fields
        done;
        let w1 = Gc.minor_words () in
        Alcotest.(check bool) "no allocation" true (w1 -. w0 < 64.0));
  ]

let span_tests =
  [
    Alcotest.test_case "run records event and histogram" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let s = Obs.Trace.make_buffer () in
        let v = Obs.Span.run ~metrics:m ~trace:s "phase" (fun () -> 7) in
        Alcotest.(check int) "value" 7 v;
        (match Obs.Metrics.histogram m "span.phase" with
        | Some sum -> Alcotest.(check int) "one sample" 1 sum.count
        | None -> Alcotest.fail "no span histogram");
        match Obs.Trace.events s with
        | [ ev ] ->
            Alcotest.(check (option string))
              "span event" (Some "span")
              (Option.bind (Util.Json.member "ev" ev) Util.Json.to_str);
            Alcotest.(check (option string))
              "name" (Some "phase")
              (Option.bind (Util.Json.member "name" ev) Util.Json.to_str)
        | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
    Alcotest.test_case "run records even when f raises" `Quick (fun () ->
        let m = Obs.Metrics.create () in
        (try
           Obs.Span.run ~metrics:m "boom" (fun () -> failwith "die")
         with Failure _ -> ());
        match Obs.Metrics.histogram m "span.boom" with
        | Some s -> Alcotest.(check int) "recorded" 1 s.count
        | None -> Alcotest.fail "span lost on exception");
  ]

let engine_tests =
  [
    Alcotest.test_case "session emits enumerate/apply/undo events" `Quick
      (fun () ->
        let obs = Obs.Trace.make_buffer () in
        let session =
          Transform.Engine.start ~obs caps_x86 (Kernels.scale ~n:64)
        in
        (match Transform.Engine.applicable session with
        | [] -> Alcotest.fail "no applicable moves"
        | inst :: _ ->
            ignore (Transform.Engine.apply session inst);
            ignore (Transform.Engine.undo session));
        let names =
          List.filter_map
            (fun e ->
              Option.bind (Util.Json.member "ev" e) Util.Json.to_str)
            (Obs.Trace.events obs)
        in
        Alcotest.(check (list string))
          "event sequence"
          [ "engine.enumerate"; "engine.apply"; "engine.undo" ]
          names);
  ]

let search_tests =
  [
    Alcotest.test_case "sequential annealing traces steps and metrics"
      `Quick (fun () ->
        let obs = Obs.Trace.make_buffer () in
        let m = Obs.Metrics.create () in
        let r =
          Search.Stochastic.simulated_annealing ~seed:3 ~obs ~metrics:m
            ~space:Search.Stochastic.Heuristic ~budget:12 caps_x86 time_x86
            (Kernels.scale ~n:64)
        in
        Alcotest.(check int) "evals" 12 r.evals;
        Alcotest.(check int) "steps counter" 12
          (Obs.Metrics.counter m "search.steps");
        let names =
          List.filter_map
            (fun e ->
              Option.bind (Util.Json.member "ev" e) Util.Json.to_str)
            (Obs.Trace.events obs)
        in
        Alcotest.(check bool) "starts with search.start" true
          (List.hd names = "search.start");
        Alcotest.(check int) "one step event per eval" 12
          (List.length (List.filter (( = ) "search.step") names));
        match Obs.Metrics.gauge m "search.acceptance_rate" with
        | Some rate ->
            Alcotest.(check bool) "rate in [0,1]" true
              (rate >= 0.0 && rate <= 1.0)
        | None -> Alcotest.fail "no acceptance rate");
    Alcotest.test_case "traced parallel search is jobs-invariant" `Quick
      (fun () ->
        let run jobs =
          let obs = Obs.Trace.make_buffer () in
          let r =
            Parallel.Pool.with_pool ~jobs (fun pool ->
                Search.Stochastic.simulated_annealing_parallel ~seed:5 ~obs
                  ~batch:6 ~pool ~space:Search.Stochastic.Heuristic
                  ~budget:18 caps_x86 time_x86 (Kernels.scale ~n:64))
          in
          (r, List.map Obs.Trace.strip_timing (Obs.Trace.events obs))
        in
        let r1, t1 = run 1 in
        let r3, t3 = run 3 in
        Alcotest.(check (float 0.0)) "same best" r1.best_time r3.best_time;
        Alcotest.(check (list string))
          "same moves" r1.best_moves r3.best_moves;
        Alcotest.(check int) "same event count" (List.length t1)
          (List.length t3);
        List.iter2
          (fun a b ->
            Alcotest.(check string)
              "same stripped event" (Util.Json.to_string a)
              (Util.Json.to_string b))
          t1 t3);
    Alcotest.test_case "optimize --stats style run exports cache and pool"
      `Quick (fun () ->
        let m = Obs.Metrics.create () in
        let cache = Tuning.Cache.create () in
        let target = Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4 in
        let o =
          Perfdojo.optimize ~seed:1 ~cache ~jobs:2 ~metrics:m
            (Perfdojo.Annealing
               { budget = 10; space = Search.Stochastic.Heuristic })
            target (Kernels.scale ~n:64)
        in
        Alcotest.(check bool) "ran" true (o.evaluations > 0);
        Alcotest.(check bool) "cache counters exported" true
          (Obs.Metrics.counter m "cache.hits"
           + Obs.Metrics.counter m "cache.misses"
          > 0);
        (match Obs.Metrics.gauge m "pool.jobs" with
        | Some j -> Alcotest.(check (float 0.0)) "pool.jobs" 2.0 j
        | None -> Alcotest.fail "pool not exported");
        match Obs.Metrics.histogram m "span.search" with
        | Some s -> Alcotest.(check bool) "search span" true (s.count >= 1)
        | None -> Alcotest.fail "no search span");
  ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("trace", trace_tests);
      ("span", span_tests);
      ("engine", engine_tests);
      ("search", search_tests);
    ]
