(* Transformation tests.  The central property mirrors the paper's own
   validation methodology (§2.2): every transformation instance offered by
   applicability discovery, applied at its location, must produce a valid
   program that is numerically equivalent to the original. *)

open Transform

let caps_cpu = Xforms.cpu_caps ()
let caps_gpu = Xforms.gpu_caps ()
let caps_snitch = Xforms.snitch_caps ()

let check_equiv ?(tol = 1e-4) label reference transformed =
  (match Ir.Validate.check transformed with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: invalid after transform: %s" label
        (String.concat "; " (List.map Ir.Validate.error_to_string errs)));
  match Interp.equivalent ~tol reference transformed with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" label e

(* Apply every applicable instance (one step from the root) and verify. *)
let exhaustive_one_step caps (e : Kernels.entry) () =
  let p = e.build_small () in
  let insts = Xforms.all caps p in
  Alcotest.(check bool)
    (e.label ^ " has applicable transforms")
    true (insts <> []);
  List.iter
    (fun (i : Xforms.instance) ->
      let p' = i.apply p in
      check_equiv (e.label ^ " / " ^ Xforms.describe i) p p')
    insts

let one_step_suites =
  List.concat_map
    (fun (caps, cname) ->
      List.map
        (fun (e : Kernels.entry) ->
          Alcotest.test_case
            (Printf.sprintf "%s one-step (%s)" e.label cname)
            `Quick
            (exhaustive_one_step caps e))
        (Kernels.table3 @ Kernels.snitch_micro))
    [ (caps_cpu, "cpu"); (caps_gpu, "gpu"); (caps_snitch, "snitch") ]

(* Random multi-step walks: semantics must be preserved along any path in
   the transformation graph. *)
let qcheck_random_walk caps cname =
  let entries = Array.of_list (Kernels.table3 @ Kernels.snitch_micro) in
  QCheck.Test.make ~count:60
    ~name:(Printf.sprintf "random %s walk preserves semantics" cname)
    QCheck.(pair (int_bound (Array.length entries - 1)) small_int)
    (fun (kidx, seed) ->
      let e = entries.(kidx) in
      let p0 = e.Kernels.build_small () in
      let rng = Util.Rng.create (seed + 1) in
      let steps = 1 + Util.Rng.int rng 6 in
      let p = ref p0 in
      for _ = 1 to steps do
        let insts = Xforms.all caps !p in
        if insts <> [] then begin
          let i = List.nth insts (Util.Rng.int rng (List.length insts)) in
          p := i.apply !p
        end
      done;
      Ir.Validate.is_valid !p
      && Interp.equivalent ~tol:1e-4 p0 !p = Ok ())

(* -------------------------------------------------------------------- *)
(* Targeted behaviour tests                                              *)
(* -------------------------------------------------------------------- *)

let find_by_name insts name =
  List.filter (fun (i : Xforms.instance) -> i.xname = name) insts

let split_tests =
  [
    Alcotest.test_case "split rewrites indices" `Quick (fun () ->
        let p = Kernels.relu ~n:8 ~m:4 in
        let p' = Xforms.apply_split [ 0 ] 0 4 p in
        let text = Ir.Printer.body p' in
        Alcotest.(check bool) "outer 2" true
          (String.length text > 0 && String.sub text 0 1 = "2");
        (* the statement must now reference 4*{0}+{1} *)
        Alcotest.(check bool) "remapped index" true
          (let re = "4*{0}+{1}" in
           let rec contains s sub i =
             i + String.length sub <= String.length s
             && (String.sub s i (String.length sub) = sub
                || contains s sub (i + 1))
           in
           contains text re 0);
        check_equiv "split" p p');
    Alcotest.test_case "split offered only for divisors" `Quick (fun () ->
        let p = Kernels.relu ~n:6 ~m:7 in
        let insts = find_by_name (Xforms.all caps_cpu p) "split_scope" in
        List.iter
          (fun (i : Xforms.instance) ->
            (* applying must never raise *)
            ignore (i.apply p))
          insts;
        (* size 7 is prime: no split of the inner loop may be offered *)
        Alcotest.(check bool) "no factor of 7" true
          (List.for_all
             (fun (i : Xforms.instance) ->
               not (String.length i.target >= 3
                   && String.sub i.target 0 3 = "[0,"))
             insts));
  ]

let fusion_tests =
  [
    Alcotest.test_case "fusion legality matches Figure 5" `Quick (fun () ->
        (* two N-loops: producer then consumer; fusable *)
        let text =
          "x f32 [6] heap\nt f32 [6] heap\nz f32 [6] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "6\n| t[{0}] = x[{0}] * 2\n"
          ^ "6\n| z[{0}] = t[{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        let joins = find_by_name (Xforms.all caps_cpu p) "join_scopes" in
        Alcotest.(check int) "one fusion candidate" 1 (List.length joins);
        let p' = (List.hd joins).apply p in
        check_equiv "fused" p p';
        (* after fusion, reuse of t's dimension becomes applicable *)
        let reuses = find_by_name (Xforms.all caps_cpu p') "reuse_dims" in
        Alcotest.(check bool) "reuse offered after fusion" true
          (List.exists
             (fun (i : Xforms.instance) -> i.target = "t dim 0")
             reuses);
        let p'' =
          (List.find (fun (i : Xforms.instance) -> i.target = "t dim 0")
             reuses)
            .apply p'
        in
        check_equiv "fused+reused" p p'');
    Alcotest.test_case "reuse_dims NOT offered before fusion" `Quick
      (fun () ->
        let text =
          "x f32 [6] heap\nt f32 [6] heap\nz f32 [6] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "6\n| t[{0}] = x[{0}] * 2\n"
          ^ "6\n| z[{0}] = t[{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        let reuses = find_by_name (Xforms.all caps_cpu p) "reuse_dims" in
        Alcotest.(check bool) "no reuse of t" true
          (List.for_all
             (fun (i : Xforms.instance) -> i.target <> "t dim 0")
             reuses));
    Alcotest.test_case "fusion rejected for misaligned accesses" `Quick
      (fun () ->
        (* consumer reads t[{0}+1]: iteration i of the second loop needs a
           value the first loop produces at iteration i+1 *)
        let text =
          "x f32 [6] heap\nt f32 [7] heap\nz f32 [6] heap\n"
          ^ "inputs: x, t\noutputs: z\n" ^ "6\n| t[{0}] = x[{0}] * 2\n"
          ^ "6\n| z[{0}] = t[{0}+1] + 1\n"
        in
        let p = Ir.Parser.program text in
        let joins = find_by_name (Xforms.all caps_cpu p) "join_scopes" in
        Alcotest.(check int) "no fusion" 0 (List.length joins));
    Alcotest.test_case "fusion rejected across scalar accumulator" `Quick
      (fun () ->
        (* first loop accumulates into s, second reads s: fusing would
           expose partial sums *)
        let text =
          "x f32 [6] heap\ns f32 [1] heap\nz f32 [6] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "s[0] = 0\n"
          ^ "6\n| s[0] = s[0] + x[{0}]\n"
          ^ "6\n| z[{0}] = x[{0}] / s[0]\n"
        in
        let p = Ir.Parser.program text in
        let joins = find_by_name (Xforms.all caps_cpu p) "join_scopes" in
        Alcotest.(check int) "no fusion" 0 (List.length joins));
    Alcotest.test_case "fission undoes fusion" `Quick (fun () ->
        let p = Kernels.softmax ~n:3 ~m:4 in
        let fissions = find_by_name (Xforms.all caps_cpu p) "fission" in
        Alcotest.(check bool) "fission offered" true (fissions <> []);
        List.iter
          (fun (i : Xforms.instance) -> check_equiv "fission" p (i.apply p))
          fissions);
  ]

let interchange_tests =
  [
    Alcotest.test_case "interchange elementwise loops" `Quick (fun () ->
        let p = Kernels.relu ~n:4 ~m:6 in
        let insts = find_by_name (Xforms.all caps_cpu p) "interchange" in
        Alcotest.(check int) "offered once" 1 (List.length insts);
        let p' = (List.hd insts).apply p in
        check_equiv "interchange" p p';
        (* sizes swapped *)
        match p'.body with
        | [ Ir.Types.Scope s ] -> Alcotest.(check int) "outer is m" 6 s.size
        | _ -> Alcotest.fail "structure");
    Alcotest.test_case "interchange matmul reduction loops" `Quick (fun () ->
        (* c[i,j] += a[i,k]*b[k,j] : all three orders are valid thanks to
           commutative-reduction handling *)
        let p = Kernels.matmul ~m:3 ~k:4 ~n:5 in
        (* isolate k loop under n loop: path [0;0;1] is the k scope, but
           interchange applies to a scope whose only child is a scope;
           n's body is [init; k-loop], so first fission the n loop *)
        let fissions = find_by_name (Xforms.all caps_cpu p) "fission" in
        Alcotest.(check bool) "fission offered" true (fissions <> []);
        let p' = (List.hd fissions).apply p in
        check_equiv "fissioned matmul" p p';
        let inters = find_by_name (Xforms.all caps_cpu p') "interchange" in
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("interchange " ^ i.target) p (i.apply p'))
          inters);
    Alcotest.test_case "dependent iteration blocks interchange" `Quick
      (fun () ->
        (* z[{0},{1}] = z[{0}-1,{1}] * y: loop-carried on the outer loop
           with offset: interchange must not be offered after wrapping ...
           construct directly: two nested loops where inner stmt reads the
           previous outer iteration *)
        let text =
          "y f32 [4, 4] heap\nz f32 [5, 4] heap\n"
          ^ "inputs: y, z\noutputs: z\n" ^ "4\n| 4\n"
          ^ "| | z[{0}+1,{1}] = z[{0},{1}] * y[{0},{1}]\n"
        in
        let p = Ir.Parser.program text in
        let inters = find_by_name (Xforms.all caps_cpu p) "interchange" in
        (* interchange of these two loops is actually safe: distance is
           (1, 0), carried only by the outer loop -- our conservative rule
           must reject it since indices are not lockstep *)
        Alcotest.(check int) "rejected" 0 (List.length inters));
  ]

let annotation_tests =
  [
    Alcotest.test_case "vectorize after matching split" `Quick (fun () ->
        let p = Kernels.add ~n:4 ~m:32 in
        (* split m by 8, then the inner loop is vectorizable *)
        let p' = Xforms.apply_split [ 0; 0 ] 1 8 p in
        let vecs = find_by_name (Xforms.all caps_cpu p') "vectorize" in
        Alcotest.(check bool) "offered" true (vecs <> []);
        let p'' = (List.hd vecs).apply p' in
        check_equiv "vectorized" p p'');
    Alcotest.test_case "vectorize not offered on strided access" `Quick
      (fun () ->
        (* transpose-style access: x[{1},{0}] is strided in the inner
           loop; only the loop where both accesses are contiguous may be
           vectorized *)
        let text =
          "x f32 [8, 8] heap\nz f32 [8, 8] heap\n"
          ^ "inputs: x\noutputs: z\n" ^ "8\n| 8\n"
          ^ "| | z[{0},{1}] = x[{1},{0}] + 1\n"
        in
        let p = Ir.Parser.program text in
        let vecs = find_by_name (Xforms.all caps_gpu p) "vectorize" in
        Alcotest.(check int) "none" 0 (List.length vecs));
    Alcotest.test_case "reduction loop is not parallelizable" `Quick
      (fun () ->
        let p = Kernels.vecsum ~n:8 in
        let pars = find_by_name (Xforms.all caps_cpu p) "parallelize" in
        Alcotest.(check int) "none" 0 (List.length pars));
    Alcotest.test_case "row loop of softmax is parallelizable" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:4 ~m:8 in
        let pars = find_by_name (Xforms.all caps_cpu p) "parallelize" in
        Alcotest.(check bool) "offered" true
          (List.exists (fun (i : Xforms.instance) -> i.target = "[0]") pars);
        let inst =
          List.find (fun (i : Xforms.instance) -> i.target = "[0]") pars
        in
        check_equiv "parallelized" p (inst.apply p));
    Alcotest.test_case "gpu mapping discipline" `Quick (fun () ->
        let p = Kernels.add ~n:8 ~m:16 in
        let grids = find_by_name (Xforms.all caps_gpu p) "gpu_map" in
        (* only grid mappings offered initially *)
        Alcotest.(check bool) "grid offered" true
          (List.exists
             (fun (i : Xforms.instance) ->
               String.length i.target > 4
               && String.sub i.target (String.length i.target - 4) 4 = "grid")
             grids);
        let grid =
          List.find
            (fun (i : Xforms.instance) -> i.target = "[0] grid")
            grids
        in
        let p' = grid.apply p in
        check_equiv "grid" p p';
        let blocks = find_by_name (Xforms.all caps_gpu p') "gpu_map" in
        Alcotest.(check bool) "block offered under grid" true
          (List.exists
             (fun (i : Xforms.instance) ->
               String.length i.target > 5
               && String.sub i.target (String.length i.target - 5) 5
                  = "block")
             blocks));
    Alcotest.test_case "unannotate reverses annotations" `Quick (fun () ->
        let p = Kernels.relu ~n:8 ~m:8 in
        let par =
          (List.find
             (fun (i : Xforms.instance) ->
               i.xname = "parallelize" && i.target = "[0]")
             (Xforms.all caps_cpu p))
            .apply p
        in
        let unns = find_by_name (Xforms.all caps_cpu par) "unannotate" in
        Alcotest.(check int) "one annotated scope" 1 (List.length unns);
        let back = (List.hd unns).apply par in
        Alcotest.(check bool) "round trip" true (back = p));
    Alcotest.test_case "warp mapping only inside blocks" `Quick (fun () ->
        let p = Kernels.bmm ~b:8 ~m:16 ~k:8 ~n:32 in
        let warp_insts q =
          List.filter
            (fun (i : Xforms.instance) ->
              i.xname = "gpu_map"
              && String.length i.target >= 4
              && String.sub i.target (String.length i.target - 4) 4 = "warp")
            (Xforms.all caps_gpu q)
        in
        Alcotest.(check int) "no warp at root" 0 (List.length (warp_insts p));
        let grid =
          List.find
            (fun (i : Xforms.instance) ->
              i.xname = "gpu_map" && i.target = "[0] grid")
            (Xforms.all caps_gpu p)
        in
        let p1 = grid.apply p in
        let block =
          List.find
            (fun (i : Xforms.instance) ->
              i.xname = "gpu_map" && i.target = "[0,0] block")
            (Xforms.all caps_gpu p1)
        in
        let p2 = block.apply p1 in
        let ws = warp_insts p2 in
        Alcotest.(check bool) "warp offered under block" true (ws <> []);
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("warp " ^ i.target) p (i.apply p2))
          ws);
    Alcotest.test_case "pad_scope masks correctly" `Quick (fun () ->
        let p = Kernels.relu ~n:5 ~m:3 in
        let pads = find_by_name (Xforms.all caps_gpu p) "pad_scope" in
        Alcotest.(check bool) "offered" true (pads <> []);
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("pad " ^ i.target) p (i.apply p))
          pads);
    Alcotest.test_case "snitch ssr then frep" `Quick (fun () ->
        let p = Kernels.dot ~n:16 in
        let ssrs = find_by_name (Xforms.all caps_snitch p) "enable_ssr" in
        Alcotest.(check bool) "ssr offered" true (ssrs <> []);
        let p' = (List.hd ssrs).apply p in
        check_equiv "ssr" p p';
        let freps = find_by_name (Xforms.all caps_snitch p') "enable_frep" in
        Alcotest.(check bool) "frep offered after ssr" true (freps <> []);
        let p'' = (List.hd freps).apply p' in
        check_equiv "frep" p p'';
        (* frep is never offered without ssr *)
        let freps0 = find_by_name (Xforms.all caps_snitch p) "enable_frep" in
        Alcotest.(check int) "no frep without ssr" 0 (List.length freps0));
  ]

let storage_tests =
  [
    Alcotest.test_case "set_storage skips io buffers" `Quick (fun () ->
        let p = Kernels.softmax ~n:3 ~m:4 in
        let insts = find_by_name (Xforms.all caps_cpu p) "set_storage" in
        Alcotest.(check bool) "some offered" true (insts <> []);
        List.iter
          (fun (i : Xforms.instance) ->
            Alcotest.(check bool)
              ("not io: " ^ i.target)
              false
              (String.length i.target > 1
              && (String.sub i.target 0 2 = "x " || String.sub i.target 0 2
                                                    = "z "));
            check_equiv ("storage " ^ i.target) p (i.apply p))
          insts);
    Alcotest.test_case "layout reorder preserves semantics" `Quick (fun () ->
        let p = Kernels.softmax ~n:3 ~m:4 in
        let insts = find_by_name (Xforms.all caps_cpu p) "reorder_buffer_dims"
        in
        Alcotest.(check bool) "offered for e" true
          (List.exists
             (fun (i : Xforms.instance) ->
               String.length i.target > 1 && String.sub i.target 0 1 = "e")
             insts);
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("layout " ^ i.target) p (i.apply p))
          insts);
  ]

let split_reduction_tests =
  [
    Alcotest.test_case "offered for scalar reductions only" `Quick (fun () ->
        (* vecsum's loop carries a scalar accumulator: offered *)
        let p = Kernels.vecsum ~n:16 in
        let insts = find_by_name (Xforms.all caps_cpu p) "split_reduction" in
        Alcotest.(check bool) "offered" true (insts <> []);
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("split_reduction " ^ i.target) p (i.apply p))
          insts;
        (* elementwise kernels have no reduction: not offered *)
        let q = Kernels.relu ~n:16 ~m:16 in
        Alcotest.(check int) "not offered" 0
          (List.length (find_by_name (Xforms.all caps_cpu q) "split_reduction")));
    Alcotest.test_case "max reduction uses -inf identity" `Quick (fun () ->
        let text =
          "x f32 [16] heap\nz f32 [1] heap\ninputs: x\noutputs: z\n"
          ^ "z[0] = -inf\n16\n| z[0] = max(z[0], x[{0}])\n"
        in
        let p = Ir.Parser.program text in
        let insts = find_by_name (Xforms.all caps_cpu p) "split_reduction" in
        Alcotest.(check bool) "offered" true (insts <> []);
        List.iter
          (fun (i : Xforms.instance) ->
            check_equiv ("max " ^ i.target) p (i.apply p))
          insts);
    Alcotest.test_case "partials break the dependency chain" `Quick
      (fun () ->
        (* on Snitch, dot with split_reduction + unrolled partials must
           beat the greedy (chained) version *)
        let sn = Machine.Desc.snitch_cluster in
        let p = Kernels.dot ~n:1024 in
        let g = Search.Passes.greedy caps_snitch p in
        let h = Search.Passes.heuristic caps_snitch p in
        let frac q = Machine.Snitch_sim.peak_fraction sn q in
        Alcotest.(check bool)
          (Printf.sprintf "heuristic %.3f > greedy %.3f" (frac h) (frac g))
          true
          (frac h > frac g));
    Alcotest.test_case "fresh partial buffer does not collide" `Quick
      (fun () ->
        let text =
          "x f32 [16] heap\nz f32 [1] heap\nz__part f32 [4] heap\n"
          ^ "inputs: x, z__part\noutputs: z\n" ^ "z[0] = 0\n16\n"
          ^ "| z[0] = z[0] + x[{0}]\n"
        in
        let p = Ir.Parser.program text in
        let insts = find_by_name (Xforms.all caps_cpu p) "split_reduction" in
        List.iter
          (fun (i : Xforms.instance) ->
            let p' = i.apply p in
            Ir.Validate.check_exn p';
            check_equiv "fresh name" p p')
          insts);
    Alcotest.test_case "unroll replication is bounded" `Quick (fun () ->
        (* after unrolling one 16-loop, unrolling an enclosing 16-loop
           would replicate 256x > bound: not offered *)
        let p = Kernels.relu ~n:16 ~m:16 in
        let u1 =
          List.find
            (fun (i : Xforms.instance) ->
              i.xname = "unroll" && i.target = "[0,0]")
            (Xforms.all caps_cpu p)
        in
        let p' = u1.apply p in
        let remaining = find_by_name (Xforms.all caps_cpu p') "unroll" in
        Alcotest.(check bool) "outer unroll now too big" true
          (List.for_all
             (fun (i : Xforms.instance) -> i.target <> "[0]")
             remaining));
  ]

let engine_tests =
  [
    Alcotest.test_case "session applies and undoes" `Quick (fun () ->
        let p = Kernels.relu ~n:4 ~m:8 in
        let s = Engine.start caps_cpu p in
        let insts = Engine.applicable s in
        ignore (Engine.apply s (List.hd insts));
        Alcotest.(check bool) "changed" true (s.current <> p);
        (match Engine.undo s with
        | Some p' -> Alcotest.(check bool) "restored" true (p' = p)
        | None -> Alcotest.fail "undo failed");
        Alcotest.(check bool) "current restored" true (s.current = p));
    Alcotest.test_case "undo_at removes middle move" `Quick (fun () ->
        (* split twice, then undo the first split while keeping the
           second: non-destructive history in action *)
        let p = Kernels.relu ~n:8 ~m:8 in
        let s = Engine.start caps_cpu p in
        let split_of target =
          List.find
            (fun (i : Xforms.instance) ->
              i.xname = "split_scope" && i.target = target)
            (Engine.applicable s)
        in
        (* first split the inner (m) loop, then the outer (n) loop; the
           outer split's location is unaffected when the first move is
           removed, so replay succeeds *)
        ignore (Engine.apply s (split_of "[0,0] factor 2"));
        ignore (Engine.apply s (split_of "[0] factor 2"));
        let two = s.current in
        (match Engine.undo_at s 1 with
        | Some p' ->
            Alcotest.(check bool) "different from two-split state" true
              (p' <> two);
            check_equiv "after undo_at" p p'
        | None -> Alcotest.fail "undo_at failed");
        (* removing a move whose successors depended on it is refused *)
        let s2 = Engine.start caps_cpu p in
        let split2_of target =
          List.find
            (fun (i : Xforms.instance) ->
              i.xname = "split_scope" && i.target = target)
            (Engine.applicable s2)
        in
        ignore (Engine.apply s2 (split2_of "[0] factor 2"));
        ignore (Engine.apply s2 (split2_of "[0,0,0] factor 2"));
        Alcotest.(check bool) "dependent removal refused" true
          (Engine.undo_at s2 1 = None));
    Alcotest.test_case "replay by move names" `Quick (fun () ->
        let p = Kernels.relu ~n:4 ~m:8 in
        let s = Engine.start caps_cpu p in
        ignore (Engine.apply s (List.hd (Engine.applicable s)));
        ignore (Engine.apply s (List.hd (Engine.applicable s)));
        let names = List.map Xforms.describe (Engine.moves s) in
        match Engine.replay_compat caps_cpu p names with
        | Ok p' -> Alcotest.(check bool) "same result" true (p' = s.current)
        | Error e -> Alcotest.fail e);
  ]

let () =
  Alcotest.run "transform"
    [
      ("one-step-exhaustive", one_step_suites);
      ("split", split_tests);
      ("fusion", fusion_tests);
      ("interchange", interchange_tests);
      ("annotations", annotation_tests);
      ("storage", storage_tests);
      ("split-reduction", split_reduction_tests);
      ("engine", engine_tests);
      ( "qcheck",
        [
          QCheck_alcotest.to_alcotest (qcheck_random_walk caps_cpu "cpu");
          QCheck_alcotest.to_alcotest (qcheck_random_walk caps_gpu "gpu");
          QCheck_alcotest.to_alcotest (qcheck_random_walk caps_snitch "snitch");
        ] );
    ]
