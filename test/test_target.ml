(* Tests for the combinator targeting DSL and the composite engine:
   selector resolution against known programs, concrete-syntax
   round-trips (including a QCheck sweep over random selector trees),
   typed ambiguity/no-match errors, all-or-nothing composite
   application, macro-move enumeration and the enriched replay
   diagnostics. *)

open Machine
module Engine = Transform.Engine
module Xforms = Transform.Xforms
module Composites = Transfo.Composites

let target_cpu = Desc.Cpu Desc.avx512_cpu
let caps_cpu = Desc.caps_of target_cpu

(* [0] scope 8; [0,0] init stmt; [0,1] scope 8 (reduction);
   [0,1,0] accumulate stmt. *)
let rowsum () =
  Ir.Parser.program
    ("x f32 [8, 8] heap\nz f32 [8] heap\ninputs: x\noutputs: z\n"
   ^ "8\n| z[{0}] = 0\n| 8\n| | z[{0}] = z[{0}] + x[{0},{1}]\n")

let path = Alcotest.(list int)
let paths = Alcotest.(list (list int))

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

let resolution_tests =
  let open Target in
  let p = rowsum () in
  let all sel = resolve_all p sel in
  [
    Alcotest.test_case "scopes in preorder" `Quick (fun () ->
        Alcotest.check paths "scopes" [ [ 0 ]; [ 0; 1 ] ] (all cScope));
    Alcotest.test_case "stmts in preorder" `Quick (fun () ->
        Alcotest.check paths "stmts"
          [ [ 0; 0 ]; [ 0; 1; 0 ] ]
          (all (cStmt ())));
    Alcotest.test_case "size is ambiguous across equal loops" `Quick
      (fun () ->
        match resolve p (cSize 8) with
        | Error (Ambiguous { matches; _ }) ->
            Alcotest.check paths "both scopes" [ [ 0 ]; [ 0; 1 ] ] matches
        | Ok _ | Error _ -> Alcotest.fail "expected Ambiguous");
    Alcotest.test_case "conjunction disambiguates" `Quick (fun () ->
        match resolve p (cSize 8 &&& cNested) with
        | Ok anchor -> Alcotest.check path "inner loop" [ 0; 1 ] anchor
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "cNth picks by preorder index" `Quick (fun () ->
        match resolve p (cNth 1 (cStmt ())) with
        | Ok anchor -> Alcotest.check path "second stmt" [ 0; 1; 0 ] anchor
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "writes propagates to enclosing scopes" `Quick
      (fun () ->
        (* both stmts and both scopes write z somewhere below *)
        Alcotest.(check int) "matches" 4 (List.length (all (cWrites "z")));
        Alcotest.check paths "stmt writers"
          [ [ 0; 0 ]; [ 0; 1; 0 ] ]
          (all (cStmt ~writes:"z" ())));
    Alcotest.test_case "reads names the consumer" `Quick (fun () ->
        match resolve p (cStmt () &&& cReads "x") with
        | Ok anchor -> Alcotest.check path "accumulate" [ 0; 1; 0 ] anchor
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "depth counts enclosing scopes" `Quick (fun () ->
        Alcotest.check paths "depth 1"
          [ [ 0; 0 ]; [ 0; 1 ] ]
          (all (cDepth 1)));
    Alcotest.test_case "under requires a proper ancestor" `Quick (fun () ->
        Alcotest.check paths "below the root loop"
          [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 1; 0 ] ]
          (all (cUnder (cSize 8))));
    Alcotest.test_case "for matches the printed header" `Quick (fun () ->
        Alcotest.(check int) "two headers" 2 (List.length (all (cFor "8"))));
    Alcotest.test_case "no match is typed" `Quick (fun () ->
        match resolve p (cSize 99) with
        | Error (No_match _) -> ()
        | Ok _ | Error _ -> Alcotest.fail "expected No_match");
    Alcotest.test_case "path is the exact escape hatch" `Quick (fun () ->
        match resolve p (cPath [ 0; 1 ]) with
        | Ok anchor -> Alcotest.check path "exact" [ 0; 1 ] anchor
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "disjunction unions matches" `Quick (fun () ->
        Alcotest.(check int) "scopes + stmts" 4
          (List.length (all (cScope ||| cStmt ()))));
    Alcotest.test_case "cAnnot rejects unknown names" `Quick (fun () ->
        match cAnnot "bogus" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)
(* ------------------------------------------------------------------ *)

let syntax_tests =
  let open Target in
  let p = rowsum () in
  let roundtrip sel =
    match parse (to_string sel) with
    | Error e -> Alcotest.failf "reparse of %S failed: %s" (to_string sel) e
    | Ok sel' ->
        Alcotest.(check string)
          ("round-trip of " ^ to_string sel)
          (to_string sel) (to_string sel');
        Alcotest.check paths
          ("same matches for " ^ to_string sel)
          (resolve_all p sel) (resolve_all p sel')
  in
  [
    Alcotest.test_case "printed selectors reparse equivalently" `Quick
      (fun () ->
        List.iter roundtrip
          [
            cAll;
            cSize 8 &&& cNested;
            cNth 1 (cStmt ());
            cStmt ~writes:"z" ();
            cUnder (cSize 8) &&& cReads "x";
            (cScope ||| cStmt ()) &&& cDepth 1;
            cPath [ 0; 1; 0 ];
            cPath [];
            cFor "320:b/300";
            cFor "weird (header)";
            cAnnot "vec" ||| cAnnot "par";
          ]);
    Alcotest.test_case "grammar accepts the documented spellings" `Quick
      (fun () ->
        List.iter
          (fun (src, expect) ->
            match parse src with
            | Ok sel ->
                Alcotest.check paths src expect (resolve_all p sel)
            | Error e -> Alcotest.failf "%s: %s" src e)
          [
            ("size 8 & nested", [ [ 0; 1 ] ]);
            ("stmt & writes z #1", [ [ 0; 1; 0 ] ]);
            ("(scope | stmt) & depth 1", [ [ 0; 0 ]; [ 0; 1 ] ]);
            ("path [0,1]", [ [ 0; 1 ] ]);
            ("under (size 8) & stmt", [ [ 0; 0 ]; [ 0; 1; 0 ] ]);
            ("for \"8\"", [ [ 0 ]; [ 0; 1 ] ]);
          ]);
    Alcotest.test_case "malformed selectors are errors" `Quick (fun () ->
        List.iter
          (fun src ->
            match parse src with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" src)
          [
            ""; "size"; "size x"; "annot bogus"; "path [0,"; "path 0";
            "size 8 &"; "(size 8"; "size 8 ) "; "frobnicate";
            "size 8 trailing";
          ]);
  ]

(* Random selector trees must print to parseable text that reparses to
   the same canonical spelling — the property the script format leans
   on. *)
let selector_qcheck =
  let open QCheck in
  let open Target in
  let leaf =
    Gen.oneof
      [
        Gen.return cAll;
        Gen.return cNested;
        Gen.return (cStmt ());
        Gen.return cScope;
        Gen.map cSize Gen.small_nat;
        Gen.map cDepth (Gen.int_bound 4);
        Gen.map cPath (Gen.list_size (Gen.int_bound 3) (Gen.int_bound 5));
        Gen.map cFor
          (Gen.oneofl [ "8"; "320:b/300"; "64:v"; "odd word"; "q\"q" ]);
        Gen.map cWrites (Gen.oneofl [ "z"; "x"; "acc" ]);
        Gen.map cReads (Gen.oneofl [ "z"; "x" ]);
        Gen.map cAnnot
          (Gen.oneofl [ "seq"; "unroll"; "par"; "vec"; "frep" ]);
      ]
  in
  let rec tree n =
    if n = 0 then leaf
    else
      Gen.oneof
        [
          leaf;
          Gen.map2 ( &&& ) (tree (n - 1)) (tree (n - 1));
          Gen.map2 ( ||| ) (tree (n - 1)) (tree (n - 1));
          Gen.map cUnder (tree (n - 1));
          Gen.map2 cNth (Gen.int_bound 3) (tree (n - 1));
        ]
  in
  QCheck.Test.make ~count:200 ~name:"selector print/parse round-trip"
    (QCheck.make ~print:to_string (tree 3))
    (fun sel ->
      match parse (to_string sel) with
      | Ok sel' -> to_string sel' = to_string sel
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Composites: all-or-nothing application                              *)
(* ------------------------------------------------------------------ *)

let composite_tests =
  let open Target in
  [
    Alcotest.test_case "apply_at surfaces ambiguity" `Quick (fun () ->
        let session = Engine.start caps_cpu (rowsum ()) in
        match Engine.apply_at session (cSize 8) (Composites.fuse_chain ()) with
        | Error (Ambiguous _) ->
            Alcotest.(check int) "no history" 0
              (List.length (Engine.moves session))
        | Ok _ | Error _ -> Alcotest.fail "expected Ambiguous");
    Alcotest.test_case "refusal leaves the session untouched" `Quick
      (fun () ->
        let p = rowsum () in
        let session = Engine.start caps_cpu p in
        (* the root loop has no following sibling to fuse with *)
        match
          Engine.apply_at session (cPath [ 0 ]) (Composites.fuse_chain ())
        with
        | Error (Refused { reason; _ }) ->
            Alcotest.(check bool) "reason given" true (reason <> "");
            Alcotest.(check string) "program unchanged"
              (Ir.Printer.program p)
              (Ir.Printer.program session.Engine.current);
            Alcotest.(check int) "no history" 0
              (List.length (Engine.moves session))
        | Ok _ -> Alcotest.fail "fuse_chain applied with no sibling"
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "tile_and_unroll lands as one step" `Quick (fun () ->
        let session = Engine.start caps_cpu (rowsum ()) in
        match
          Engine.apply_at session
            (cSize 8 &&& cNested)
            (Composites.tile_and_unroll ~f:4 ~u:4)
        with
        | Ok q ->
            Alcotest.(check int) "two atomic moves" 2
              (List.length (Engine.moves session));
            Alcotest.(check (list string)) "validates" []
              (List.map Ir.Validate.error_to_string (Ir.Validate.check q))
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "bad arguments refuse before touching state" `Quick
      (fun () ->
        (match Composites.find "tile_and_unroll" with
        | None -> Alcotest.fail "tile_and_unroll not registered"
        | Some c -> (
            (match c.Composites.make [ ("f", "8") ] with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted missing u");
            match c.Composites.make [ ("f", "8"); ("u", "x") ] with
            | Error _ -> ()
            | Ok _ -> Alcotest.fail "accepted non-integer u"));
        (* divisibility is an expand-time condition: the transfo builds
           but cleanly refuses, leaving the session untouched *)
        let p = rowsum () in
        let session = Engine.start caps_cpu p in
        match
          Engine.apply_at session
            (cSize 8 &&& cNested)
            (Composites.tile_and_unroll ~f:8 ~u:3)
        with
        | Error (Refused { reason; _ }) ->
            Alcotest.(check string) "reason" "f must be a multiple of u"
              reason;
            Alcotest.(check string) "unchanged"
              (Ir.Printer.program p)
              (Ir.Printer.program session.Engine.current)
        | Ok _ -> Alcotest.fail "applied with u not dividing f"
        | Error e -> Alcotest.fail (error_to_string e));
    Alcotest.test_case "script-name resolution covers atomics" `Quick
      (fun () ->
        (match Composites.resolve "split" [ ("factor", "4") ] with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        (match Composites.resolve "storage" [ ("buffer", "z"); ("loc", "stack") ]
         with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        match Composites.resolve "frobnicate" [] with
        | Error msg ->
            Alcotest.(check bool) "error names the registry" true
              (String.length msg > 0)
        | Ok _ -> Alcotest.fail "resolved unknown name");
  ]

(* ------------------------------------------------------------------ *)
(* Macro-moves in the search action set                                *)
(* ------------------------------------------------------------------ *)

let macro_tests =
  [
    Alcotest.test_case "enable adds composite instances" `Quick (fun () ->
        let p = rowsum () in
        let plain = Xforms.all caps_cpu p in
        let enriched =
          Xforms.all (Composites.enable ~names:[ "all" ] caps_cpu) p
        in
        let macros =
          List.filter
            (fun (i : Xforms.instance) -> i.xname = "composite")
            enriched
        in
        Alcotest.(check bool) "strictly more moves" true
          (List.length enriched > List.length plain);
        Alcotest.(check bool) "macros present" true (macros <> []);
        (* atomic moves survive unchanged *)
        Alcotest.(check int) "atomics kept"
          (List.length plain)
          (List.length enriched - List.length macros));
    Alcotest.test_case "macro describes parse as composite moverefs" `Quick
      (fun () ->
        let p = rowsum () in
        let enriched =
          Xforms.all (Composites.enable ~names:[ "all" ] caps_cpu) p
        in
        List.iter
          (fun (i : Xforms.instance) ->
            if i.xname = "composite" then
              match Transform.Moveref.of_describe (Xforms.describe i) with
              | Some (Transform.Moveref.Composite _) -> ()
              | Some _ | None ->
                  Alcotest.failf "macro describe unparseable: %s"
                    (Xforms.describe i))
          enriched);
    Alcotest.test_case "macro application validates" `Quick (fun () ->
        let p = rowsum () in
        let enriched =
          Xforms.all (Composites.enable ~names:[ "all" ] caps_cpu) p
        in
        match
          List.find_opt
            (fun (i : Xforms.instance) -> i.xname = "composite")
            enriched
        with
        | None -> Alcotest.fail "no macro offered"
        | Some i ->
            let q = i.apply p in
            Alcotest.(check (list string)) "valid" []
              (List.map Ir.Validate.error_to_string (Ir.Validate.check q)));
    Alcotest.test_case "named subset restricts the offering" `Quick
      (fun () ->
        let p = rowsum () in
        let only_fuse =
          Xforms.all (Composites.enable ~names:[ "fuse_chain" ] caps_cpu) p
        in
        List.iter
          (fun (i : Xforms.instance) ->
            if i.xname = "composite" then
              match Transform.Moveref.of_describe (Xforms.describe i) with
              | Some (Transform.Moveref.Composite { cname; _ }) ->
                  Alcotest.(check string) "only fuse_chain" "fuse_chain" cname
              | _ -> Alcotest.fail "unparseable macro")
          only_fuse);
  ]

(* ------------------------------------------------------------------ *)
(* Enriched replay diagnostics                                         *)
(* ------------------------------------------------------------------ *)

let replay_tests =
  [
    Alcotest.test_case "replay errors carry step, path, alternatives" `Quick
      (fun () ->
        let p = rowsum () in
        match
          Engine.replay_compat caps_cpu p
            [ "parallelize([0])"; "parallelize([0])" ]
        with
        | Ok _ -> Alcotest.fail "replayed an inapplicable move"
        | Error msg ->
            let contains affix s =
              let n = String.length affix and m = String.length s in
              let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
              go 0
            in
            let has needle =
              Alcotest.(check bool)
                (Printf.sprintf "%S mentions %S" msg needle)
                true (contains needle msg)
            in
            has "step 1";
            has "parallelize([0])";
            has "[0]";
            has "nearest applicable");
    Alcotest.test_case "successful replay is unchanged" `Quick (fun () ->
        let p = rowsum () in
        match Engine.replay_compat caps_cpu p [ "parallelize([0])" ] with
        | Ok q ->
            Alcotest.(check bool) "applied" true
              (Ir.Printer.program q <> Ir.Printer.program p)
        | Error e -> Alcotest.fail e);
  ]

let () =
  Alcotest.run "target"
    [
      ("resolution", resolution_tests);
      ("syntax", syntax_tests);
      ("syntax-qcheck", [ QCheck_alcotest.to_alcotest selector_qcheck ]);
      ("composites", composite_tests);
      ("macros", macro_tests);
      ("replay", replay_tests);
    ]
