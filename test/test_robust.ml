(* Tests for the fault-tolerant search runtime: Robust.Guard's typed
   outcomes, retry/backoff/fuel semantics, the deterministic fault
   harness, quarantine in the stochastic searches, portfolio
   degradation, and the jobs-invariance of all of it under injected
   faults. *)

let target = Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4
let caps = Machine.caps target
let objective p = Machine.time target p

let count_eval_errors obs =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Util.Json.Obj (("ev", Util.Json.Str "search.eval_error") :: _) ->
          acc + 1
      | _ -> acc)
    0 (Obs.Trace.events obs)

(* ------------------------------------------------------------------ *)
(* Guard: typed outcomes                                               *)
(* ------------------------------------------------------------------ *)

let guard_tests =
  [
    Alcotest.test_case "a finite evaluation is Ok" `Quick (fun () ->
        match Robust.Guard.eval (fun x -> x *. 2.) 21. with
        | Ok v -> Alcotest.(check (float 0.)) "value" 42. v
        | Error _ -> Alcotest.fail "expected Ok");
    Alcotest.test_case "a raising evaluation is Rejected with its class"
      `Quick (fun () ->
        match Robust.Guard.eval (fun _ -> failwith "sim crashed") 0 with
        | Error (Robust.Guard.Rejected { cls; msg }) ->
            Alcotest.(check string) "class" "Failure" cls;
            Alcotest.(check bool) "msg mentions cause" true
              (String.length msg > 0)
        | _ -> Alcotest.fail "expected Rejected");
    Alcotest.test_case "NaN and infinities are Non_finite" `Quick (fun () ->
        (match Robust.Guard.eval (fun _ -> Float.nan) 0 with
        | Error (Robust.Guard.Non_finite v) ->
            Alcotest.(check bool) "nan" true (Float.is_nan v)
        | _ -> Alcotest.fail "nan not caught");
        match Robust.Guard.eval (fun _ -> Float.neg_infinity) 0 with
        | Error (Robust.Guard.Non_finite v) ->
            Alcotest.(check (float 0.)) "-inf" Float.neg_infinity v
        | _ -> Alcotest.fail "-inf not caught");
    Alcotest.test_case "a transient failure succeeds on retry" `Quick
      (fun () ->
        let calls = ref 0 in
        let f () =
          incr calls;
          if Robust.Guard.attempt () = 0 then
            raise (Robust.Guard.Transient "flaky")
          else float_of_int (Robust.Guard.attempt ())
        in
        match Robust.Guard.eval f () with
        | Ok v ->
            Alcotest.(check (float 0.)) "second attempt" 1. v;
            Alcotest.(check int) "two calls" 2 !calls
        | Error _ -> Alcotest.fail "retry should have succeeded");
    Alcotest.test_case "retries are bounded by max_retries" `Quick (fun () ->
        let calls = ref 0 in
        let cfg = { Robust.Guard.default with max_retries = 3 } in
        let f () =
          incr calls;
          raise (Robust.Guard.Transient "always")
        in
        (match Robust.Guard.eval ~cfg f () with
        | Error (Robust.Guard.Rejected { cls; _ }) ->
            Alcotest.(check bool) "transient class" true
              (cls = "Robust__Guard.Transient" || cls = "Guard.Transient"
             || String.length cls > 0)
        | _ -> Alcotest.fail "expected Rejected after retries");
        Alcotest.(check int) "1 try + 3 retries" 4 !calls);
    Alcotest.test_case "non-transient failures are not retried" `Quick
      (fun () ->
        let calls = ref 0 in
        let cfg = { Robust.Guard.default with max_retries = 5 } in
        let f () =
          incr calls;
          failwith "permanent"
        in
        ignore (Robust.Guard.eval ~cfg f ());
        Alcotest.(check int) "single call" 1 !calls);
    Alcotest.test_case "backoff doubles deterministically" `Quick (fun () ->
        let slept = ref [] in
        let cfg =
          {
            Robust.Guard.default with
            max_retries = 3;
            backoff_s = 0.5;
            sleep = (fun s -> slept := s :: !slept);
          }
        in
        ignore
          (Robust.Guard.eval ~cfg
             (fun () -> raise (Robust.Guard.Transient "x"))
             ());
        Alcotest.(check (list (float 0.)))
          "0.5, 1.0, 2.0" [ 0.5; 1.0; 2.0 ] (List.rev !slept));
    Alcotest.test_case "default backoff never sleeps" `Quick (fun () ->
        let slept = ref false in
        let cfg =
          {
            Robust.Guard.default with
            max_retries = 2;
            sleep = (fun _ -> slept := true);
          }
        in
        ignore
          (Robust.Guard.eval ~cfg
             (fun () -> raise (Robust.Guard.Transient "x"))
             ());
        (* backoff_s = 0.0: the recorded sleeps are all zero-length;
           the guard still calls sleep with 0, which real Unix.sleepf
           treats as a no-op.  What matters is no positive wait. *)
        Alcotest.(check bool) "sleep invoked with 0 only" true
          (!slept = false || Robust.Guard.default.backoff_s = 0.));
    Alcotest.test_case "fuel exhaustion is Exhausted" `Quick (fun () ->
        let cfg = { Robust.Guard.default with fuel = Some 5 } in
        let f () =
          for _ = 1 to 10 do
            Robust.Guard.tick ()
          done;
          1.0
        in
        match Robust.Guard.eval ~cfg f () with
        | Error (Robust.Guard.Exhausted { fuel }) ->
            Alcotest.(check int) "budget reported" 5 fuel
        | _ -> Alcotest.fail "expected Exhausted");
    Alcotest.test_case "enough fuel completes normally" `Quick (fun () ->
        let cfg = { Robust.Guard.default with fuel = Some 100 } in
        let f () =
          for _ = 1 to 10 do
            Robust.Guard.tick ()
          done;
          7.0
        in
        match Robust.Guard.eval ~cfg f () with
        | Ok v -> Alcotest.(check (float 0.)) "value" 7.0 v
        | Error _ -> Alcotest.fail "should not exhaust");
    Alcotest.test_case "tick outside a fuelled run is a no-op" `Quick
      (fun () ->
        Robust.Guard.tick ~cost:1_000_000 ();
        Alcotest.(check int) "attempt outside run" 0
          (Robust.Guard.attempt ()));
    Alcotest.test_case "nested guards restore the outer state" `Quick
      (fun () ->
        let cfg = { Robust.Guard.default with fuel = Some 10 } in
        let inner_cfg = { Robust.Guard.default with fuel = Some 2 } in
        let f () =
          Robust.Guard.tick ();
          (* the inner evaluation exhausts its own fuel, not ours *)
          (match
             Robust.Guard.eval ~cfg:inner_cfg
               (fun () ->
                 Robust.Guard.tick ~cost:5 ();
                 0.)
               ()
           with
          | Error (Robust.Guard.Exhausted _) -> ()
          | _ -> Alcotest.fail "inner should exhaust");
          (* outer fuel is restored: 9 more ticks still fit *)
          for _ = 1 to 8 do
            Robust.Guard.tick ()
          done;
          3.0
        in
        match Robust.Guard.eval ~cfg f () with
        | Ok v -> Alcotest.(check (float 0.)) "outer survived" 3.0 v
        | Error _ -> Alcotest.fail "outer fuel was corrupted");
    Alcotest.test_case "failure_class keys are stable" `Quick (fun () ->
        Alcotest.(check string) "rejected" "rejected"
          (Robust.Guard.failure_class
             (Robust.Guard.rejected_of_exn (Failure "x")));
        Alcotest.(check string) "non_finite" "non_finite"
          (Robust.Guard.failure_class (Robust.Guard.Non_finite Float.nan));
        Alcotest.(check string) "exhausted" "exhausted"
          (Robust.Guard.failure_class (Robust.Guard.Exhausted { fuel = 3 })));
    Alcotest.test_case "instrument counts retries in metrics" `Quick
      (fun () ->
        let m = Obs.Metrics.create () in
        let cfg =
          Robust.Guard.instrument ~metrics:m
            { Robust.Guard.default with max_retries = 2 }
        in
        ignore
          (Robust.Guard.eval ~cfg
             (fun () -> raise (Robust.Guard.Transient "x"))
             ());
        Alcotest.(check int) "robust.retries" 2
          (Obs.Metrics.counter m "robust.retries"));
    Alcotest.test_case "note emits the event and bumps counters" `Quick
      (fun () ->
        let obs = Obs.Trace.make_buffer () in
        let m = Obs.Metrics.create () in
        Robust.Guard.note ~obs ~metrics:m
          (Robust.Guard.rejected_of_exn (Failure "boom"));
        Alcotest.(check int) "one event" 1 (count_eval_errors obs);
        Alcotest.(check int) "robust.eval_failures" 1
          (Obs.Metrics.counter m "robust.eval_failures");
        Alcotest.(check int) "robust.rejected" 1
          (Obs.Metrics.counter m "robust.rejected"));
  ]

(* ------------------------------------------------------------------ *)
(* Faults: the deterministic injection harness                         *)
(* ------------------------------------------------------------------ *)

let faults_tests =
  [
    Alcotest.test_case "rate 0 is the physical identity" `Quick (fun () ->
        let f x = x +. 1. in
        Alcotest.(check bool) "physically equal" true
          (Robust.Faults.wrap Robust.Faults.none f == f));
    Alcotest.test_case "spread rejects rates outside [0,1]" `Quick (fun () ->
        (match Robust.Faults.spread 1.5 with
        | _ -> Alcotest.fail "accepted 1.5"
        | exception Invalid_argument _ -> ());
        match Robust.Faults.spread (-0.1) with
        | _ -> Alcotest.fail "accepted -0.1"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "faulting is a pure function of the input" `Quick
      (fun () ->
        let cfg = Robust.Faults.spread ~seed:42 0.6 in
        let f = Robust.Faults.wrap cfg (fun x -> float_of_int x) in
        let outcome x =
          match f x with
          | v -> Ok v
          | exception e -> Error (Printexc.to_string e)
        in
        for x = 0 to 99 do
          (* compare, not (=): a NaN fault must equal itself *)
          if compare (outcome x) (outcome x) <> 0 then
            Alcotest.failf "input %d faulted non-deterministically" x
        done);
    Alcotest.test_case "a positive rate injects some of each class" `Quick
      (fun () ->
        let cfg = Robust.Faults.spread ~seed:7 0.8 in
        let f = Robust.Faults.wrap cfg (fun x -> float_of_int x) in
        let raised = ref 0 and nan = ref 0 and ok = ref 0 in
        for x = 0 to 499 do
          match f x with
          | v when Float.is_nan v -> incr nan
          | _ -> incr ok
          | exception (Robust.Faults.Injected _ | Robust.Guard.Transient _)
            ->
              incr raised
        done;
        Alcotest.(check bool) "raises seen" true (!raised > 0);
        Alcotest.(check bool) "NaNs seen" true (!nan > 0);
        Alcotest.(check bool) "successes seen" true (!ok > 0));
    Alcotest.test_case "transient faults clear on the guard's retry" `Quick
      (fun () ->
        (* find an input whose first attempt raises Transient, then show
           the guard turns it into a success via the attempt index *)
        let cfg =
          {
            Robust.Faults.none with
            fseed = 3;
            transient_rate = 0.5;
          }
        in
        let f = Robust.Faults.wrap cfg (fun x -> float_of_int x) in
        let transient_input =
          let rec find x =
            if x > 10_000 then None
            else
              match f x with
              | _ -> find (x + 1)
              | exception Robust.Guard.Transient _ -> Some x
          in
          find 0
        in
        match transient_input with
        | None -> Alcotest.fail "no transient fault in 10k inputs at 50%"
        | Some x -> (
            match Robust.Guard.eval f x with
            | Ok v -> Alcotest.(check (float 0.)) "retried" (float_of_int x) v
            | Error f ->
                Alcotest.failf "retry did not clear: %s"
                  (Robust.Guard.failure_message f)));
  ]

(* ------------------------------------------------------------------ *)
(* Quarantine in the stochastic searches                               *)
(* ------------------------------------------------------------------ *)

let quarantine_tests =
  [
    Alcotest.test_case
      "sampling survives a permanently failing objective" `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        let obs = Obs.Trace.make_buffer () in
        let budget = 6 in
        let r =
          Search.Stochastic.random_sampling ~seed:1 ~obs
            ~space:Search.Stochastic.Heuristic ~budget caps
            (fun _ -> failwith "dead model")
            p
        in
        Alcotest.(check bool) "best is the root" true (r.best == p);
        Alcotest.(check (float 0.)) "best_time quarantined" infinity
          r.best_time;
        Alcotest.(check int) "root + every candidate failed" (budget + 1)
          r.failures;
        Alcotest.(check int) "events match failures" r.failures
          (count_eval_errors obs));
    Alcotest.test_case
      "annealing survives a permanently failing objective" `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        let obs = Obs.Trace.make_buffer () in
        let budget = 6 in
        let r =
          Search.Stochastic.simulated_annealing ~seed:1 ~obs
            ~space:Search.Stochastic.Heuristic ~budget caps
            (fun _ -> failwith "dead model")
            p
        in
        Alcotest.(check (float 0.)) "best_time quarantined" infinity
          r.best_time;
        Alcotest.(check int) "root + every step failed" (budget + 1)
          r.failures;
        Alcotest.(check int) "events match failures" r.failures
          (count_eval_errors obs));
    Alcotest.test_case "a clean objective reports zero failures" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        let r =
          Search.Stochastic.simulated_annealing ~seed:1
            ~space:Search.Stochastic.Heuristic ~budget:10 caps objective p
        in
        Alcotest.(check int) "no failures" 0 r.failures;
        Alcotest.(check bool) "finite best" true
          (Float.is_finite r.best_time));
    Alcotest.test_case
      "quarantined candidates never beat a finite best" `Quick (fun () ->
        (* every odd-hash candidate fails: the winner must still verify
           and score finitely *)
        let p = Kernels.softmax ~n:8 ~m:8 in
        let flaky q =
          if Hashtbl.hash q land 1 = 1 then Float.nan else objective q
        in
        let r =
          Search.Stochastic.simulated_annealing ~seed:1
            ~space:Search.Stochastic.Heuristic ~budget:20 caps flaky p
        in
        if Float.is_finite r.best_time then
          Alcotest.(check bool) "best not a NaN candidate" true
            (not (Float.is_nan (flaky r.best))))
  ]

(* ------------------------------------------------------------------ *)
(* Portfolio degradation                                               *)
(* ------------------------------------------------------------------ *)

(* Annealing with budget = -1 crashes inside run_curve (Array.make of a
   negative length) — a real member crash outside the per-evaluation
   guard, which is exactly what map_result-based degradation handles. *)
let crasher seed =
  {
    Perfdojo.plabel = Printf.sprintf "crasher-%d" seed;
    pstrategy =
      Perfdojo.Annealing
        { budget = -1; space = Search.Stochastic.Heuristic };
    pseed = seed;
  }

let survivor =
  {
    Perfdojo.plabel = "survivor";
    pstrategy = Perfdojo.Heuristic;
    pseed = 1;
  }

let portfolio_tests =
  [
    Alcotest.test_case "a crashing member does not kill the race" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        let obs = Obs.Trace.make_buffer () in
        let outcome, label =
          Perfdojo.optimize_portfolio ~jobs:2 ~obs
            ~members:[ crasher 2; survivor ] target p
        in
        Alcotest.(check string) "winner among survivors" "survivor" label;
        Alcotest.(check bool) "finite winner" true
          (Float.is_finite outcome.time_s);
        (* the crash is visible in the trace *)
        let member_errors =
          List.fold_left
            (fun acc ev ->
              match ev with
              | Util.Json.Obj
                  (("ev", Util.Json.Str "portfolio.member_error") :: _) ->
                  acc + 1
              | _ -> acc)
            0 (Obs.Trace.events obs)
        in
        Alcotest.(check int) "one member_error event" 1 member_errors;
        (* failures still equal the traced eval_error events: the dead
           member's partial buffer was dropped *)
        Alcotest.(check int) "accounting invariant" outcome.failures
          (count_eval_errors obs));
    Alcotest.test_case "all members dead raises Portfolio_failed" `Quick
      (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        match
          Perfdojo.optimize_portfolio ~jobs:2
            ~members:[ crasher 1; crasher 2 ] target p
        with
        | _ -> Alcotest.fail "expected Portfolio_failed"
        | exception Perfdojo.Portfolio_failed errors ->
            Alcotest.(check int) "both reported" 2 (List.length errors);
            Alcotest.(check string) "member order" "crasher-1"
              (fst (List.hd errors)));
    Alcotest.test_case "empty and nested members still Invalid_argument"
      `Quick (fun () ->
        let p = Kernels.softmax ~n:8 ~m:8 in
        (match Perfdojo.optimize_portfolio ~members:[] target p with
        | _ -> Alcotest.fail "accepted empty members"
        | exception Invalid_argument _ -> ());
        let nested =
          { survivor with pstrategy = Perfdojo.Portfolio { budget = 4 } }
        in
        match Perfdojo.optimize_portfolio ~members:[ nested ] target p with
        | _ -> Alcotest.fail "accepted nested portfolio"
        | exception Invalid_argument _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* End to end: optimize under injected faults, jobs-invariant          *)
(* ------------------------------------------------------------------ *)

let optimize_under_faults =
  QCheck.Test.make ~count:6
    ~name:"optimize degrades gracefully and jobs-invariantly under faults"
    QCheck.(pair (int_bound 1000) bool)
    (fun (fseed, annealing) ->
      let p = Kernels.softmax ~n:8 ~m:8 in
      let faults = Robust.Faults.spread ~seed:fseed 0.2 in
      let strat =
        if annealing then
          Perfdojo.Annealing
            { budget = 12; space = Search.Stochastic.Heuristic }
        else
          Perfdojo.Sampling
            { budget = 12; space = Search.Stochastic.Heuristic }
      in
      let run jobs =
        let obs = Obs.Trace.make_buffer () in
        let o = Perfdojo.optimize ~seed:3 ~jobs ~obs ~faults strat target p in
        (o, obs)
      in
      let o1, obs1 = run 1 in
      let o4, obs4 = run 4 in
      let stripped obs =
        List.map Obs.Trace.strip_timing (Obs.Trace.events obs)
      in
      let verified =
        match Interp.equivalent p o1.schedule with
        | Ok () -> true
        | Error _ -> false
      in
      verified
      && o1.time_s = o4.time_s
      && o1.moves = o4.moves
      && o1.failures = o4.failures
      && o1.failures = count_eval_errors obs1
      && o4.failures = count_eval_errors obs4
      && stripped obs1 = stripped obs4)

let sequential_faults_accounted =
  QCheck.Test.make ~count:6
    ~name:"sequential optimize accounts failures exactly"
    QCheck.(int_bound 1000)
    (fun fseed ->
      let p = Kernels.softmax ~n:8 ~m:8 in
      let faults = Robust.Faults.spread ~seed:fseed 0.25 in
      let obs = Obs.Trace.make_buffer () in
      let o =
        Perfdojo.optimize ~seed:5 ~jobs:0 ~obs ~faults
          (Perfdojo.Annealing
             { budget = 10; space = Search.Stochastic.Heuristic })
          target p
      in
      o.failures = count_eval_errors obs
      && match Interp.equivalent p o.schedule with
         | Ok () -> true
         | Error _ -> false)

let property_tests =
  List.map QCheck_alcotest.to_alcotest
    [ optimize_under_faults; sequential_faults_accounted ]

let () =
  Alcotest.run "robust"
    [
      ("guard", guard_tests);
      ("faults", faults_tests);
      ("quarantine", quarantine_tests);
      ("portfolio", portfolio_tests);
      ("properties", property_tests);
    ]
