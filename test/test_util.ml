(* Tests for the util substrate: RNG determinism and distribution
   sanity, statistics. *)

let rng_tests =
  [
    Alcotest.test_case "same seed, same stream" `Quick (fun () ->
        let a = Util.Rng.create 99 and b = Util.Rng.create 99 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same" (Util.Rng.next_int64 a)
            (Util.Rng.next_int64 b)
        done);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
        Alcotest.(check bool) "differ" true
          (Util.Rng.next_int64 a <> Util.Rng.next_int64 b));
    Alcotest.test_case "split streams are independent of parent draw order"
      `Quick (fun () ->
        let a = Util.Rng.create 7 in
        let child = Util.Rng.split a in
        let x = Util.Rng.next_int64 child in
        (* drawing more from the parent must not affect the child *)
        ignore (Util.Rng.next_int64 a);
        let a2 = Util.Rng.create 7 in
        let child2 = Util.Rng.split a2 in
        Alcotest.(check int64) "same child stream" x
          (Util.Rng.next_int64 child2));
    Alcotest.test_case "float in [0,1)" `Quick (fun () ->
        let rng = Util.Rng.create 3 in
        for _ = 1 to 1000 do
          let f = Util.Rng.float rng in
          Alcotest.(check bool) "range" true (f >= 0.0 && f < 1.0)
        done);
    Alcotest.test_case "int respects bound and hits all values" `Quick
      (fun () ->
        let rng = Util.Rng.create 5 in
        let seen = Array.make 7 false in
        for _ = 1 to 2000 do
          let v = Util.Rng.int rng 7 in
          Alcotest.(check bool) "range" true (v >= 0 && v < 7);
          seen.(v) <- true
        done;
        Alcotest.(check bool) "all hit" true (Array.for_all Fun.id seen));
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        let rng = Util.Rng.create 1 in
        Alcotest.check_raises "zero"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Util.Rng.int rng 0)));
    Alcotest.test_case "int is unbiased across the residue classes" `Quick
      (fun () ->
        (* rejection sampling: a bound that does not divide 2^62 must
           still give every residue the same probability.  With naive
           [x mod bound] a bound of 3 would skew class 0/1 measurably
           over this many draws; rejection keeps all classes within
           noise of each other. *)
        let rng = Util.Rng.create 23 in
        let bound = 3 in
        let counts = Array.make bound 0 in
        let n = 30000 in
        for _ = 1 to n do
          let v = Util.Rng.int rng bound in
          counts.(v) <- counts.(v) + 1
        done;
        let expect = float_of_int n /. float_of_int bound in
        Array.iter
          (fun c ->
            let dev = abs_float (float_of_int c -. expect) /. expect in
            Alcotest.(check bool)
              (Printf.sprintf "class within 5%% (dev %.3f)" dev)
              true (dev < 0.05))
          counts);
    Alcotest.test_case "int near max_int stays in range" `Quick (fun () ->
        (* bounds close to the 62-bit draw range exercise the rejection
           path itself (rem/limit arithmetic), not just the modulo *)
        let rng = Util.Rng.create 29 in
        let bound = max_int / 2 in
        for _ = 1 to 200 do
          let v = Util.Rng.int rng bound in
          Alcotest.(check bool) "range" true (v >= 0 && v < bound)
        done);
    Alcotest.test_case "normal has roughly zero mean, unit variance" `Quick
      (fun () ->
        let rng = Util.Rng.create 11 in
        let n = 20000 in
        let xs = Array.init n (fun _ -> Util.Rng.normal rng) in
        Alcotest.(check bool) "mean" true
          (abs_float (Util.Stats.mean xs) < 0.03);
        Alcotest.(check bool) "stddev" true
          (abs_float (Util.Stats.stddev xs -. 1.0) < 0.03));
    Alcotest.test_case "weighted_index follows the weights" `Quick (fun () ->
        let rng = Util.Rng.create 13 in
        let w = [| 1.0; 0.0; 3.0 |] in
        let counts = Array.make 3 0 in
        let n = 8000 in
        for _ = 1 to n do
          let i = Util.Rng.weighted_index rng w in
          counts.(i) <- counts.(i) + 1
        done;
        Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
        let ratio = float_of_int counts.(2) /. float_of_int counts.(0) in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f near 3" ratio)
          true
          (ratio > 2.5 && ratio < 3.5));
    Alcotest.test_case "shuffle preserves elements" `Quick (fun () ->
        let rng = Util.Rng.create 17 in
        let arr = Array.init 50 Fun.id in
        Util.Rng.shuffle_in_place rng arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id)
          sorted);
  ]

let stats_tests =
  [
    Alcotest.test_case "mean and variance" `Quick (fun () ->
        let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
        Alcotest.(check (float 1e-9)) "mean" 2.5 (Util.Stats.mean xs);
        Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0)
          (Util.Stats.variance xs));
    Alcotest.test_case "geomean of powers" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "geomean" 2.0
          (Util.Stats.geomean [| 1.0; 2.0; 4.0 |]));
    Alcotest.test_case "geomean rejects non-positive" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
            ignore (Util.Stats.geomean [| 1.0; 0.0 |])));
    Alcotest.test_case "quantiles interpolate" `Quick (fun () ->
        let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
        Alcotest.(check (float 1e-9)) "median" 25.0 (Util.Stats.median xs);
        Alcotest.(check (float 1e-9)) "q0" 10.0 (Util.Stats.quantile 0.0 xs);
        Alcotest.(check (float 1e-9)) "q1" 40.0 (Util.Stats.quantile 1.0 xs);
        Alcotest.(check (float 1e-9)) "q25" 17.5
          (Util.Stats.quantile 0.25 xs));
    Alcotest.test_case "min/max" `Quick (fun () ->
        let xs = [| 3.0; -1.0; 2.0 |] in
        Alcotest.(check (float 0.0)) "min" (-1.0) (Util.Stats.min_arr xs);
        Alcotest.(check (float 0.0)) "max" 3.0 (Util.Stats.max_arr xs));
    Alcotest.test_case "quantile propagates NaN instead of poisoning" `Quick
      (fun () ->
        (* polymorphic compare puts nan in an arbitrary sort position,
           silently corrupting the quantile; the contract is explicit
           propagation: any nan input -> nan out, at every q *)
        let xs = [| 10.0; nan; 30.0; 40.0 |] in
        Alcotest.(check bool) "median nan" true
          (Float.is_nan (Util.Stats.median xs));
        Alcotest.(check bool) "q0 nan" true
          (Float.is_nan (Util.Stats.quantile 0.0 xs));
        Alcotest.(check bool) "q1 nan" true
          (Float.is_nan (Util.Stats.quantile 1.0 xs)));
    Alcotest.test_case "quantile orders negatives and infinities" `Quick
      (fun () ->
        let xs = [| infinity; -3.0; 0.0; neg_infinity |] in
        Alcotest.(check (float 0.0)) "q0" neg_infinity
          (Util.Stats.quantile 0.0 xs);
        Alcotest.(check (float 0.0)) "q1" infinity
          (Util.Stats.quantile 1.0 xs);
        Alcotest.(check (float 1e-9)) "median" (-1.5)
          (Util.Stats.median xs));
    Alcotest.test_case "min/max propagate NaN" `Quick (fun () ->
        let xs = [| 1.0; nan |] in
        Alcotest.(check bool) "min nan" true
          (Float.is_nan (Util.Stats.min_arr xs));
        Alcotest.(check bool) "max nan" true
          (Float.is_nan (Util.Stats.max_arr xs)));
  ]

let () =
  Alcotest.run "util" [ ("rng", rng_tests); ("stats", stats_tests) ]
