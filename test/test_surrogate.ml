(* The learned surrogate cost model: feature extraction, the online
   pairwise ranker, its byte-stable serialization, and the filtered
   search engine it drives.

   The properties that matter operationally:
   - embedding / feature extraction / scoring are pure functions of the
     program (the filtered engine's determinism rests on this);
   - a filtered + deduped search is jobs-invariant: same best, same
     accounting, byte-identical stripped traces for jobs = 1 and N;
   - every budget slot is accounted exactly once:
     evals + skipped + deduped + failures = budget;
   - model save / load round-trips byte-identically. *)

let target = Machine.Desc.Cpu Machine.Desc.xeon_e5_2695v4
let caps = Machine.caps target
let time p = Machine.time target p

(* A deterministic "random schedule" source: walk [steps] applicable
   transformations from a kernel root under a seeded RNG. *)
let roots : (unit -> Ir.Prog.t) array =
  [|
    (fun () -> Kernels.scale ~n:64);
    (fun () -> Kernels.axpy ~n:48);
    (fun () -> Kernels.softmax ~n:8 ~m:12);
    (fun () -> Kernels.reducemean ~n:6 ~m:10);
    (fun () -> Kernels.gemv ~m:8 ~n:6);
  |]

let walk ~root_idx ~seed ~steps : Ir.Prog.t =
  let rng = Util.Rng.create seed in
  let p = ref (roots.(root_idx mod Array.length roots) ()) in
  for _ = 1 to steps do
    match Transform.Xforms.all caps !p with
    | [] -> ()
    | insts ->
        let i = List.nth insts (Util.Rng.int rng (List.length insts)) in
        p := i.Transform.Xforms.apply !p
  done;
  !p

let arbitrary_walk =
  QCheck.make
    ~print:(fun (r, s, n) -> Printf.sprintf "root=%d seed=%d steps=%d" r s n)
    QCheck.Gen.(
      let* r = int_bound 100 in
      let* s = int_bound 10_000 in
      let* n = int_bound 6 in
      return (r, s, n))

let float_array_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : float) y -> x = y) a b

(* ------------------------------------------------------------------ *)
(* Determinism of the feature pipeline                                 *)
(* ------------------------------------------------------------------ *)

let prop_embed_deterministic =
  QCheck.Test.make ~count:60 ~name:"Rl.Embed.embed is deterministic"
    arbitrary_walk (fun (r, s, n) ->
      let p = walk ~root_idx:r ~seed:s ~steps:n in
      let p' = walk ~root_idx:r ~seed:s ~steps:n in
      float_array_eq (Rl.Embed.embed p) (Rl.Embed.embed p'))

let prop_features_deterministic =
  QCheck.Test.make ~count:60
    ~name:"Features.extract is deterministic and fixed-width"
    arbitrary_walk (fun (r, s, n) ->
      let p = walk ~root_idx:r ~seed:s ~steps:n in
      let f = Surrogate.Features.extract p in
      Array.length f = Surrogate.Features.dim
      && float_array_eq f (Surrogate.Features.extract p))

let prop_score_deterministic =
  QCheck.Test.make ~count:40
    ~name:"surrogate score is a pure function of (model, program)"
    arbitrary_walk (fun (r, s, n) ->
      let p = walk ~root_idx:r ~seed:s ~steps:n in
      (* train two fresh models identically; they must score identically *)
      let train () =
        let m = Surrogate.Model.create () in
        Array.iteri
          (fun i root ->
            let q = root () in
            Surrogate.Model.observe_prog m ~group:"g" q
              (1e-6 *. float_of_int (i + 1)))
          roots;
        m
      in
      let m1 = train () and m2 = train () in
      Surrogate.Model.score_prog m1 p = Surrogate.Model.score_prog m2 p
      && Surrogate.Model.score_prog m1 p = Surrogate.Model.score_prog m1 p)

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let trained_model seed =
  let rng = Util.Rng.create seed in
  let m = Surrogate.Model.create () in
  for i = 0 to 20 do
    let p = walk ~root_idx:(Util.Rng.int rng 5) ~seed:(seed + i) ~steps:2 in
    Surrogate.Model.observe_prog m
      ~group:(if i mod 2 = 0 then "a" else "b")
      p
      (Util.Rng.float_range rng 1e-7 1e-3)
  done;
  m

let prop_roundtrip_bytes =
  QCheck.Test.make ~count:25
    ~name:"model to_json -> of_json -> to_json is byte-stable"
    QCheck.(small_int)
    (fun seed ->
      let m = trained_model seed in
      let s1 = Util.Json.to_string (Surrogate.Model.to_json m) in
      match Surrogate.Model.of_json (Surrogate.Model.to_json m) with
      | Error e -> QCheck.Test.fail_report e
      | Ok m' ->
          let s2 = Util.Json.to_string (Surrogate.Model.to_json m') in
          s1 = s2
          && Surrogate.Model.updates m' = Surrogate.Model.updates m)

let save_load_file () =
  let m = trained_model 7 in
  let file = Filename.temp_file "surrogate" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Surrogate.Model.save m file;
      let first = In_channel.with_open_bin file In_channel.input_all in
      Surrogate.Model.save m file;
      let second = In_channel.with_open_bin file In_channel.input_all in
      Alcotest.(check string) "same bytes on re-save" first second;
      match Surrogate.Model.load file with
      | Error e -> Alcotest.fail e
      | Ok m' ->
          Alcotest.(check int) "updates survive" (Surrogate.Model.updates m)
            (Surrogate.Model.updates m');
          Alcotest.(check string) "canonical form survives"
            (Util.Json.to_string (Surrogate.Model.to_json m))
            (Util.Json.to_string (Surrogate.Model.to_json m')))

let reject_bad_dim () =
  let m = Surrogate.Model.create () in
  let j = Surrogate.Model.to_json m in
  let j' =
    match j with
    | Util.Json.Obj fields ->
        Util.Json.Obj
          (List.map
             (function
               | "dim", _ -> ("dim", Util.Json.Num 3.0)
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "model json is not an object"
  in
  match Surrogate.Model.of_json j' with
  | Ok _ -> Alcotest.fail "accepted a model with a foreign dimension"
  | Error e ->
      Alcotest.(check bool) "error message is non-empty" true
        (String.length e > 0)

(* ------------------------------------------------------------------ *)
(* The ranker learns                                                   *)
(* ------------------------------------------------------------------ *)

let ranker_learns () =
  (* two separable points: after enough pairs the model must rank the
     fast one above the slow one *)
  let fast = Surrogate.Features.extract (Kernels.scale ~n:64) in
  let slow = Surrogate.Features.extract (Kernels.softmax ~n:8 ~m:12) in
  let m = Surrogate.Model.create () in
  for _ = 1 to 50 do
    Surrogate.Model.train_pair m ~better:fast ~worse:slow
  done;
  Alcotest.(check bool) "updates happened" true
    (Surrogate.Model.updates m > 0);
  Alcotest.(check bool) "fast scores above slow" true
    (Surrogate.Model.score m fast > Surrogate.Model.score m slow)

let offline_deterministic () =
  let mk_records () =
    List.concat_map
      (fun (e : Kernels.entry) ->
        let root = e.build_small () in
        let t0 = time root in
        [
          Tuning.Record.make ~kernel:e.label ~target:"x86" ~moves:[]
            ~best_time:t0 ~evals:1 ~root ();
          Tuning.Record.make ~kernel:e.label ~target:"x86" ~moves:[]
            ~best_time:(t0 /. 2.) ~evals:1 ~root ();
        ])
      (List.filteri (fun i _ -> i < 4) Kernels.table3)
  in
  let root_of ~kernel ~target:_ =
    match Kernels.find_entry Kernels.table3 kernel with
    | e -> Some (e.build_small (), caps)
    | exception Invalid_argument _ -> None
  in
  let train () =
    let m = Surrogate.Model.create () in
    let stats = Surrogate.Model.train_offline m ~root_of (mk_records ()) in
    (m, stats)
  in
  let m1, s1 = train () in
  let m2, s2 = train () in
  Alcotest.(check int) "pairs found" s1.Surrogate.Model.pairs
    s2.Surrogate.Model.pairs;
  Alcotest.(check bool) "some pairs" true (s1.pairs > 0);
  Alcotest.(check string) "identical trained bytes"
    (Util.Json.to_string (Surrogate.Model.to_json m1))
    (Util.Json.to_string (Surrogate.Model.to_json m2))

(* ------------------------------------------------------------------ *)
(* The filtered engine                                                 *)
(* ------------------------------------------------------------------ *)

let run_filtered ?(ratio = 0.25) ?(dedup = true) ~jobs ~seed ~budget () =
  let model = trained_model 3 in
  let obs = Obs.Trace.make_buffer () in
  let prerank = Surrogate.Model.prerank ~filter_ratio:ratio ~group:"t" model in
  let r =
    Parallel.Pool.with_pool ~jobs (fun pool ->
        Search.Stochastic.random_sampling_parallel ~seed ~obs ~pool ~prerank
          ~dedup ~space:Search.Stochastic.Heuristic ~budget caps time
          (Kernels.softmax ~n:8 ~m:12))
  in
  (r, List.map Obs.Trace.strip_timing (Obs.Trace.events obs), model)

let filtered_jobs_invariant () =
  let r1, t1, m1 = run_filtered ~jobs:1 ~seed:9 ~budget:32 () in
  let r4, t4, m4 = run_filtered ~jobs:4 ~seed:9 ~budget:32 () in
  Alcotest.(check (float 0.0)) "same best" r1.best_time r4.best_time;
  Alcotest.(check (list string)) "same moves" r1.best_moves r4.best_moves;
  Alcotest.(check int) "same evals" r1.evals r4.evals;
  Alcotest.(check int) "same skipped" r1.skipped r4.skipped;
  Alcotest.(check int) "same deduped" r1.deduped r4.deduped;
  Alcotest.(check string) "same trained model bytes"
    (Util.Json.to_string (Surrogate.Model.to_json m1))
    (Util.Json.to_string (Surrogate.Model.to_json m4));
  Alcotest.(check int) "same event count" (List.length t1)
    (List.length t4);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same stripped event"
        (Util.Json.to_string a) (Util.Json.to_string b))
    t1 t4

let slot_accounting () =
  let r, events, _ = run_filtered ~jobs:2 ~seed:5 ~budget:24 () in
  Alcotest.(check int) "evals + skipped + deduped + failures = budget" 24
    (r.evals + r.skipped + r.deduped + r.failures);
  Alcotest.(check bool) "filter actually skipped" true (r.skipped > 0);
  let names =
    List.filter_map
      (fun e -> Option.bind (Util.Json.member "ev" e) Util.Json.to_str)
      events
  in
  Alcotest.(check bool) "prerank events traced" true
    (List.mem "search.prerank" names);
  Alcotest.(check bool) "dedup events traced" true
    (List.mem "search.batch_dedup" names);
  (* one search.eval per fresh simulator evaluation, no more *)
  Alcotest.(check int) "search.eval events = evals" r.evals
    (List.length (List.filter (( = ) "search.eval") names))

let keep_all_matches_legacy () =
  (* filter_ratio 1.0 scores and trains but must not change the
     trajectory: identical best / moves / stripped trace to the plain
     batched engine *)
  let plain =
    let obs = Obs.Trace.make_buffer () in
    let r =
      Parallel.Pool.with_pool ~jobs:2 (fun pool ->
          Search.Stochastic.random_sampling_parallel ~seed:9 ~obs ~pool
            ~space:Search.Stochastic.Heuristic ~budget:32 caps time
            (Kernels.softmax ~n:8 ~m:12))
    in
    (r, List.map Obs.Trace.strip_timing (Obs.Trace.events obs))
  in
  let scored, t_scored, _ =
    run_filtered ~ratio:1.0 ~dedup:false ~jobs:2 ~seed:9 ~budget:32 ()
  in
  let plain_r, t_plain = plain in
  Alcotest.(check (float 0.0)) "same best" plain_r.best_time
    scored.best_time;
  Alcotest.(check (list string)) "same moves" plain_r.best_moves
    scored.best_moves;
  Alcotest.(check int) "keep-all skips nothing" 0 scored.skipped;
  Alcotest.(check int) "same stripped event count" (List.length t_plain)
    (List.length t_scored)

let bad_ratio_rejected () =
  let model = Surrogate.Model.create () in
  List.iter
    (fun ratio ->
      let prerank =
        Surrogate.Model.prerank ~filter_ratio:ratio ~group:"g" model
      in
      match
        Parallel.Pool.with_pool ~jobs:1 (fun pool ->
            Search.Stochastic.random_sampling_parallel ~seed:1 ~pool
              ~prerank ~space:Search.Stochastic.Heuristic ~budget:8 caps
              time (Kernels.scale ~n:32))
      with
      | _ -> Alcotest.failf "filter_ratio %g accepted" ratio
      | exception Invalid_argument _ -> ())
    [ 0.0; -0.5; 1.5 ]

let () =
  Alcotest.run "surrogate"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_embed_deterministic;
            prop_features_deterministic;
            prop_score_deterministic;
            prop_roundtrip_bytes;
          ] );
      ( "model",
        [
          Alcotest.test_case "save/load round-trips byte-identically" `Quick
            save_load_file;
          Alcotest.test_case "foreign feature dimension is rejected" `Quick
            reject_bad_dim;
          Alcotest.test_case "pairwise ranker separates a labeled pair"
            `Quick ranker_learns;
          Alcotest.test_case "offline training is deterministic" `Quick
            offline_deterministic;
        ] );
      ( "engine",
        [
          Alcotest.test_case "filtered search is jobs-invariant" `Quick
            filtered_jobs_invariant;
          Alcotest.test_case "every budget slot accounted exactly once"
            `Quick slot_accounting;
          Alcotest.test_case "keep-all filter matches the plain engine"
            `Quick keep_all_matches_legacy;
          Alcotest.test_case "filter_ratio outside (0,1] is rejected" `Quick
            bad_ratio_rejected;
        ] );
    ]
