(* Tests for the batch library generator: manifest determinism across
   --jobs, incremental fingerprint skips, degraded-pair flagging and
   database deposits. *)

open Perfdojo

let all = Libgen.default_kernels ()
let pick labels = List.map (Kernels.find_entry all) labels

(* small shapes keep every test run under a second *)
let small = pick [ "axpy"; "scale"; "sum2d"; "softmax_micro" ]
let strat = Annealing { budget = 30; space = Search.Stochastic.Heuristic }

(* each test binary runs in its own dune sandbox, so plain relative
   directories are private to this run *)
let counter = ref 0

let fresh_dir name =
  incr counter;
  Printf.sprintf "libgen_%s_%d" name !counter

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gen ?kernels ?strategy ?db ?db_file ?force ?(ctx = Ctx.default) ?(targets = [ "x86" ]) out =
  Libgen.generate ?kernels ?strategy ?db ?db_file ?force ~ctx ~targets ~out ()

let ev_name = function
  | Util.Json.Obj (("ev", Util.Json.Str n) :: _) -> n
  | _ -> "?"

let count_events sink name =
  List.length (List.filter (fun e -> ev_name e = name) (Obs.Trace.events sink))

let determinism_tests =
  [
    Alcotest.test_case "manifest and artifacts are byte-equal for jobs 1 vs 4"
      `Quick (fun () ->
        let d1 = fresh_dir "jobs1" and d4 = fresh_dir "jobs4" in
        let lib1 =
          gen ~kernels:small ~strategy:strat ~db:(Tuning.Db.create ())
            ~ctx:Ctx.(default |> with_jobs 1)
            ~targets:[ "x86"; "snitch" ] d1
        in
        let lib4 =
          gen ~kernels:small ~strategy:strat ~db:(Tuning.Db.create ())
            ~ctx:Ctx.(default |> with_jobs 4)
            ~targets:[ "x86"; "snitch" ] d4
        in
        Alcotest.(check int) "all fresh" 8 lib1.Libgen.fresh;
        Alcotest.(check string) "manifest bytes"
          (read_file (Filename.concat d1 "manifest.json"))
          (read_file (Filename.concat d4 "manifest.json"));
        Alcotest.(check string) "header bytes"
          (read_file (Filename.concat d1 lib1.Libgen.header))
          (read_file (Filename.concat d4 lib4.Libgen.header));
        List.iter
          (fun (e : Libgen.entry) ->
            Alcotest.(check string) (e.c_file ^ " bytes")
              (read_file (Filename.concat d1 e.c_file))
              (read_file (Filename.concat d4 e.c_file)))
          lib1.Libgen.entries);
    Alcotest.test_case "manifest_json is the canonical single-line file"
      `Quick (fun () ->
        let d = fresh_dir "canon" in
        let lib = gen ~kernels:small ~strategy:strat d in
        let written = read_file (Filename.concat d "manifest.json") in
        Alcotest.(check string) "file = printer + newline"
          (Util.Json.to_string (Libgen.manifest_json lib) ^ "\n")
          written;
        match Util.Json.of_string written with
        | Ok v ->
            Alcotest.(check string) "round-trips"
              (String.trim written) (Util.Json.to_string v)
        | Error e -> Alcotest.failf "manifest does not re-parse: %s" e);
    Alcotest.test_case "a shared cache across targets changes nothing" `Quick
      (fun () ->
        (* one ctx cache backs every (kernel, target) pair; scoped keys
           (Cache.memoize_scoped) keep the targets' models apart, so
           the artifacts match a cache-free run byte-for-byte *)
        let d_plain = fresh_dir "nocache" and d_cached = fresh_dir "cache" in
        let plain =
          gen ~kernels:small ~strategy:strat ~targets:[ "x86"; "snitch" ]
            d_plain
        in
        let cache = Tuning.Cache.create () in
        let _cached =
          gen ~kernels:small ~strategy:strat
            ~ctx:Ctx.(default |> with_cache cache |> with_jobs 2)
            ~targets:[ "x86"; "snitch" ] d_cached
        in
        Alcotest.(check string) "manifest bytes"
          (read_file (Filename.concat d_plain "manifest.json"))
          (read_file (Filename.concat d_cached "manifest.json"));
        Alcotest.(check bool) "cache was exercised" true
          (Tuning.Cache.misses cache > 0);
        ignore plain);
    Alcotest.test_case "alias targets collapse to one canonical pair" `Quick
      (fun () ->
        let d = fresh_dir "alias" in
        let lib =
          gen
            ~kernels:(pick [ "axpy" ])
            ~strategy:strat
            ~targets:[ "host"; "x86"; "xeon" ]
            d
        in
        Alcotest.(check int) "one entry" 1 (List.length lib.Libgen.entries);
        Alcotest.(check string) "canonical name" "x86"
          (List.hd lib.Libgen.entries).Libgen.target);
    Alcotest.test_case "unknown target raises with the known list" `Quick
      (fun () ->
        let d = fresh_dir "badtarget" in
        match gen ~kernels:small ~targets:[ "pdp11" ] d with
        | _ -> Alcotest.fail "accepted an unknown target"
        | exception Invalid_argument msg ->
            let has sub =
              let n = String.length msg and m = String.length sub in
              let rec go i =
                i + m <= n && (String.sub msg i m = sub || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "names the bad target" true (has "pdp11");
            Alcotest.(check bool) "lists known targets" true (has "snitch"));
  ]

let incremental_tests =
  [
    Alcotest.test_case "a warm database skips every up-to-date pair" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let d1 = fresh_dir "cold" and d2 = fresh_dir "warm" in
        let cold =
          gen ~kernels:small ~strategy:strat ~db
            ~targets:[ "x86"; "snitch" ] d1
        in
        Alcotest.(check int) "first run all fresh" 8 cold.Libgen.fresh;
        List.iter
          (fun (e : Libgen.entry) ->
            Alcotest.(check bool) (e.c_file ^ " recorded") true e.recorded)
          cold.Libgen.entries;
        let buf = Obs.Trace.make_buffer () in
        let warm =
          gen ~kernels:small ~strategy:strat ~db
            ~ctx:Ctx.(default |> with_obs buf)
            ~targets:[ "x86"; "snitch" ] d2
        in
        Alcotest.(check int) "second run all skipped" 8 warm.Libgen.skipped;
        Alcotest.(check int) "no fresh pairs" 0 warm.Libgen.fresh;
        Alcotest.(check int) "one libgen.skip event per pair" 8
          (count_events buf "libgen.skip");
        Alcotest.(check int) "no search events folded" 0
          (count_events buf "search.step");
        List.iter2
          (fun (a : Libgen.entry) (b : Libgen.entry) ->
            Alcotest.(check string) "same kernel" a.kernel b.kernel;
            Alcotest.(check (float 0.0)) (a.c_file ^ " same time") a.time_s
              b.time_s;
            Alcotest.(check int) (a.c_file ^ " zero evals") 0 b.evaluations)
          cold.Libgen.entries warm.Libgen.entries);
    Alcotest.test_case "--force re-optimizes despite an up-to-date record"
      `Quick (fun () ->
        let db = Tuning.Db.create () in
        let d1 = fresh_dir "seed" and d2 = fresh_dir "forced" in
        let cold = gen ~kernels:small ~strategy:strat ~db d1 in
        let forced =
          gen ~kernels:small ~strategy:strat ~db ~force:true d2
        in
        Alcotest.(check int) "all fresh again" (List.length small)
          forced.Libgen.fresh;
        (* warm-started from its own record, force can only tie or win *)
        List.iter2
          (fun (a : Libgen.entry) (b : Libgen.entry) ->
            Alcotest.(check bool) (a.c_file ^ " no regression") true
              (b.time_s <= a.time_s +. 1e-12))
          cold.Libgen.entries forced.Libgen.entries);
    Alcotest.test_case "deposited records replay to the manifest times"
      `Quick (fun () ->
        let db = Tuning.Db.create () in
        let d = fresh_dir "deposit" in
        let lib = gen ~kernels:small ~strategy:strat ~db d in
        List.iter
          (fun (e : Libgen.entry) ->
            match Tuning.Db.best db ~kernel:e.kernel ~target:e.target with
            | None -> Alcotest.failf "%s: no record deposited" e.kernel
            | Some r ->
                Alcotest.(check (float 1e-12)) (e.kernel ^ " best_time")
                  e.time_s r.Tuning.Record.best_time;
                Alcotest.(check string) (e.kernel ^ " fingerprint")
                  e.fingerprint r.Tuning.Record.fingerprint)
          lib.Libgen.entries);
    Alcotest.test_case "db_file checkpoints survive a reload" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let d = fresh_dir "ckpt" in
        let file = Filename.concat d "tune.jsonl" in
        let _ =
          gen ~kernels:small ~strategy:strat ~db ~db_file:file d
        in
        match Tuning.Db.load file with
        | Error e -> Alcotest.failf "reload failed: %s" e
        | Ok reloaded ->
            Alcotest.(check int) "same size" (Tuning.Db.size db)
              (Tuning.Db.size reloaded));
  ]

let degradation_tests =
  [
    Alcotest.test_case "a crashing strategy degrades every pair, not the run"
      `Quick (fun () ->
        (* budget -1 crashes inside the annealing run: the Error arm of
           Pool.map_result, classified by Robust.Guard.rejected_of_exn *)
        let crash = Annealing { budget = -1; space = Search.Stochastic.Heuristic } in
        let buf = Obs.Trace.make_buffer () in
        let d = fresh_dir "crash" in
        let lib =
          gen ~kernels:small ~strategy:crash
            ~ctx:Ctx.(default |> with_obs buf |> with_jobs 2)
            d
        in
        Alcotest.(check int) "all degraded" (List.length small)
          lib.Libgen.degraded;
        Alcotest.(check int) "degraded events" (List.length small)
          (count_events buf "libgen.degraded");
        List.iter
          (fun (e : Libgen.entry) ->
            Alcotest.(check bool) (e.kernel ^ " flagged") true
              (e.status = Libgen.Degraded && e.error <> None);
            Alcotest.(check bool) (e.kernel ^ " not recorded") false
              e.recorded;
            Alcotest.(check string) (e.kernel ^ " naive fallback") "naive"
              e.strategy;
            Alcotest.(check (float 0.0)) (e.kernel ^ " naive time")
              e.naive_s e.time_s;
            (* the degraded pair still ships a compilable naive C file *)
            Alcotest.(check bool) (e.c_file ^ " emitted") true
              (Sys.file_exists (Filename.concat d e.c_file)))
          lib.Libgen.entries);
    Alcotest.test_case "degraded pairs re-optimize on the next run" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let crash = Annealing { budget = -1; space = Search.Stochastic.Heuristic } in
        let d1 = fresh_dir "crash_db" and d2 = fresh_dir "recover" in
        let broken = gen ~kernels:small ~strategy:crash ~db d1 in
        Alcotest.(check int) "nothing recorded" 0 (Tuning.Db.size db);
        Alcotest.(check int) "all degraded" (List.length small)
          broken.Libgen.degraded;
        let recovered = gen ~kernels:small ~strategy:strat ~db d2 in
        Alcotest.(check int) "all fresh after recovery" (List.length small)
          recovered.Libgen.fresh;
        Alcotest.(check int) "all recorded" (List.length small)
          (Tuning.Db.size db));
    Alcotest.test_case "injected faults flag exactly the degraded entries"
      `Quick (fun () ->
        (* permanent quarantine: max_retries 0 keeps transient faults
           from clearing, so a heavily faulted pair can end non-finite *)
        let ctx =
          Ctx.(
            default
            |> with_faults (Robust.Faults.spread ~seed:3 0.5)
            |> with_guard { Robust.Guard.default with max_retries = 0 })
        in
        let d = fresh_dir "faults" in
        let lib = gen ~kernels:small ~strategy:strat ~ctx d in
        Alcotest.(check int) "every pair accounted for" (List.length small)
          (lib.Libgen.fresh + lib.Libgen.degraded);
        List.iter
          (fun (e : Libgen.entry) ->
            match e.Libgen.status with
            | Libgen.Degraded ->
                Alcotest.(check bool) (e.kernel ^ " has error") true
                  (e.error <> None)
            | Libgen.Fresh ->
                Alcotest.(check bool) (e.kernel ^ " no error") true
                  (e.error = None && Float.is_finite e.time_s)
            | Libgen.Skipped -> Alcotest.fail "nothing to skip without a db")
          lib.Libgen.entries);
  ]

let () =
  Alcotest.run "libgen"
    [
      ("determinism", determinism_tests);
      ("incremental", incremental_tests);
      ("degradation", degradation_tests);
    ]
