(* Tests for C code generation: structural properties of the emitted
   code for each flavor (plain/OpenMP, CUDA, Snitch). *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let caps_cpu = Machine.caps (Machine.Desc.Cpu Machine.Desc.avx512_cpu)
let caps_gpu = Machine.caps (Machine.Desc.Gpu Machine.Desc.gh200)
let caps_sn = Machine.caps (Machine.Desc.Snitch Machine.Desc.snitch_cluster)

let plain_tests =
  [
    Alcotest.test_case "naive softmax emits plain loops" `Quick (fun () ->
        let c = Codegen.program (Kernels.softmax ~n:8 ~m:16) in
        Alcotest.(check bool) "for loops" true (contains c "for (int i0");
        Alcotest.(check bool) "expf" true (contains c "expf(");
        Alcotest.(check bool) "fmaxf" true (contains c "fmaxf(");
        Alcotest.(check bool) "malloc for heap" true (contains c "malloc(");
        Alcotest.(check bool) "no pragmas yet" false (contains c "#pragma"));
    Alcotest.test_case "parallel + simd pragmas appear" `Quick (fun () ->
        let p = Search.Passes.cpu_heuristic caps_cpu (Kernels.add ~n:64 ~m:64)
        in
        let c = Codegen.program p in
        Alcotest.(check bool) "omp parallel" true
          (contains c "#pragma omp parallel for");
        Alcotest.(check bool) "omp simd" true (contains c "#pragma omp simd"));
    Alcotest.test_case "stack buffers become arrays" `Quick (fun () ->
        let text =
          "x f32 [8] heap\nt f32 [8] stack\nz f32 [8] heap\n"
          ^ "inputs: x\noutputs: z\n8\n| t[{0}] = x[{0}] * 2\n"
          ^ "| z[{0}] = t[{0}] + 1\n"
        in
        let c = Codegen.program (Ir.Parser.program text) in
        Alcotest.(check bool) "stack decl" true
          (contains c "float t[8];  /* stack */"));
    Alcotest.test_case "reused dim collapses in flattening" `Quick (fun () ->
        let text =
          "x f32 [8] heap\nt f32 [8:N] heap\nz f32 [8] heap\n"
          ^ "inputs: x\noutputs: z\n8\n| t[{0}] = x[{0}] * 2\n"
          ^ "| z[{0}] = t[{0}] + 1\n"
        in
        let c = Codegen.program (Ir.Parser.program text) in
        Alcotest.(check bool) "t uses slot 0" true (contains c "t[0]");
        Alcotest.(check bool) "t storage is 1 elem" true
          (contains c "t = malloc(1 "));
    Alcotest.test_case "guards emit masks" `Quick (fun () ->
        let text =
          "x f32 [5] heap\nz f32 [5] heap\ninputs: x\noutputs: z\n"
          ^ "8/5\n| z[{0}] = x[{0}] + 1\n"
        in
        let c = Codegen.program (Ir.Parser.program text) in
        Alcotest.(check bool) "mask" true
          (contains c "if (i0 >= 5) continue;"));
    Alcotest.test_case "aliases become #define" `Quick (fun () ->
        let text =
          "t f32 [4] heap -> t1, t2\nz f32 [4] heap\ninputs: t1\noutputs: z\n"
          ^ "4\n| z[{0}] = t2[{0}] + 1\n"
        in
        let c = Codegen.program (Ir.Parser.program text) in
        Alcotest.(check bool) "alias t1" true (contains c "#define t1 t");
        Alcotest.(check bool) "alias t2" true (contains c "#define t2 t"));
    Alcotest.test_case "non-finite constants emit valid C" `Quick (fun () ->
        (* the textual IR cannot spell nan/inf, so build the program
           straight from the Types constructors *)
        let open Ir.Types in
        let cell array = { array; idx = [ { terms = []; offset = 0 } ] } in
        let prog const =
          {
            buffers = [ buffer "z" F32 [ 1 ] ];
            inputs = [];
            outputs = [ "z" ];
            body = [ Stmt { dst = cell "z"; rhs = Const const } ];
          }
        in
        let c_nan = Codegen.program (prog Float.nan) in
        Alcotest.(check bool) "NAN macro" true (contains c_nan "NAN");
        Alcotest.(check bool) "no nanf literal" false (contains c_nan "nanf");
        let c_inf = Codegen.program (prog Float.infinity) in
        Alcotest.(check bool) "INFINITY" true (contains c_inf "INFINITY");
        let c_ninf = Codegen.program (prog Float.neg_infinity) in
        Alcotest.(check bool) "-INFINITY" true (contains c_ninf "-INFINITY"));
  ]

let cuda_tests =
  [
    Alcotest.test_case "grid scope becomes __global__ kernel" `Quick
      (fun () ->
        let p =
          Search.Passes.gpu_heuristic caps_gpu (Kernels.add ~n:512 ~m:256)
        in
        let c = Codegen.program p in
        Alcotest.(check bool) "__global__" true (contains c "__global__ void");
        Alcotest.(check bool) "launch syntax" true (contains c "<<<");
        Alcotest.(check bool) "blockIdx" true (contains c "blockIdx.x");
        Alcotest.(check bool) "threadIdx" true (contains c "threadIdx.x"));
    Alcotest.test_case "one kernel per grid scope" `Quick (fun () ->
        let p =
          Search.Passes.gpu_heuristic ~fuse:false caps_gpu
            (Kernels.softmax ~n:256 ~m:128)
        in
        let c = Codegen.program p in
        Alcotest.(check bool) "multiple kernels" true
          (count_substring c "__global__" >= 1);
        Alcotest.(check int) "launches match kernels"
          (count_substring c "__global__")
          (count_substring c "<<<"));
    Alcotest.test_case "padded block emits early return" `Quick (fun () ->
        let text =
          "x f32 [64, 300] heap\nz f32 [64, 300] heap\n"
          ^ "inputs: x\noutputs: z\n64:g\n| 320:b/300\n"
          ^ "| | z[{0},{1}] = x[{0},{1}] * 2\n"
        in
        let c = Codegen.program (Ir.Parser.program text) in
        Alcotest.(check bool) "mask" true
          (contains c "if (i1 >= 300) return;"));
  ]

let snitch_tests =
  [
    Alcotest.test_case "ssr+frep emit snitch intrinsics" `Quick (fun () ->
        let p = Search.Passes.greedy caps_sn (Kernels.scale ~n:256) in
        let c = Codegen.program p in
        Alcotest.(check bool) "snrt header" true (contains c "snrt.h");
        Alcotest.(check bool) "ssr enable" true
          (contains c "snrt_ssr_enable()");
        Alcotest.(check bool) "frep" true (contains c "frep.o"));
    Alcotest.test_case "unrolled tile keeps pragma form" `Quick (fun () ->
        let p = Search.Passes.heuristic caps_sn (Kernels.gemv ~m:16 ~n:16) in
        let c = Codegen.program p in
        Alcotest.(check bool) "unroll pragma" true
          (contains c "#pragma unroll"));
  ]

let all_kernels_emit =
  [
    Alcotest.test_case "every kernel generates non-empty C" `Quick (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            let c = Codegen.program (e.build_small ()) in
            Alcotest.(check bool) (e.label ^ " nonempty") true
              (String.length c > 100);
            Alcotest.(check bool) (e.label ^ " has run()") true
              (contains c "void run("))
          (Kernels.table3 @ Kernels.snitch_micro));
    Alcotest.test_case "balanced braces on optimized schedules" `Quick
      (fun () ->
        List.iter
          (fun (e : Kernels.entry) ->
            List.iter
              (fun (caps, pass) ->
                let p = pass caps (e.build_small ()) in
                let c = Codegen.program p in
                let opens = count_substring c "{"
                and closes = count_substring c "}" in
                (* index braces don't appear in C; only blocks *)
                Alcotest.(check int) (e.label ^ " balanced") opens closes)
              [
                (caps_cpu, fun c p -> Search.Passes.cpu_heuristic c p);
                (caps_sn, Search.Passes.heuristic);
                (caps_gpu, fun c p -> Search.Passes.gpu_heuristic c p);
              ])
          Kernels.table3);
  ]

let () =
  Alcotest.run "codegen"
    [
      ("plain", plain_tests);
      ("cuda", cuda_tests);
      ("snitch", snitch_tests);
      ("all-kernels", all_kernels_emit);
    ]
