(* Tests for the persistent tuning database: JSON round-trips,
   fingerprint stability, DB dedup/ordering/persistence, memoized
   evaluation, and warm-started search fidelity. *)

open Machine

let sn = Desc.snitch_cluster
let target_sn = Desc.Snitch sn
let caps_sn = Desc.caps_of target_sn
let target_cpu = Desc.Cpu Desc.avx512_cpu
let caps_cpu = Desc.caps_of target_cpu
let objective target p = Machine.time target p

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_tests =
  let module J = Tuning.Json in
  [
    Alcotest.test_case "values round-trip" `Quick (fun () ->
        let v =
          J.Obj
            [
              ("s", J.Str "quote \" backslash \\ newline \n tab \t");
              ("n", J.Num 0.1);
              ("i", J.Num 42.);
              ("neg", J.Num (-1.5e-7));
              ("b", J.Bool true);
              ("null", J.Null);
              ("arr", J.Arr [ J.Str "a"; J.Num 1.; J.Arr []; J.Obj [] ]);
            ]
        in
        match J.of_string (J.to_string v) with
        | Ok v' -> Alcotest.(check bool) "equal" true (v = v')
        | Error e -> Alcotest.failf "parse failed: %s" e);
    Alcotest.test_case "printing is stable under reparse" `Quick (fun () ->
        let v = J.Obj [ ("x", J.Num 0.239837184); ("y", J.Num 1e300) ] in
        let s1 = J.to_string v in
        match J.of_string s1 with
        | Ok v' -> Alcotest.(check string) "identical" s1 (J.to_string v')
        | Error e -> Alcotest.failf "parse failed: %s" e);
    Alcotest.test_case "control characters escape as \\u" `Quick (fun () ->
        let s = J.to_string (J.Str "a\001b") in
        Alcotest.(check string) "escaped" "\"a\\u0001b\"" s;
        match J.of_string s with
        | Ok (J.Str s') -> Alcotest.(check string) "back" "a\001b" s'
        | _ -> Alcotest.fail "expected string");
    Alcotest.test_case "trailing garbage is an error" `Quick (fun () ->
        match J.of_string "{} {}" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted trailing garbage");
    Alcotest.test_case "unterminated string is an error" `Quick (fun () ->
        match J.of_string "\"abc" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted unterminated string");
  ]

let arbitrary_record =
  let open QCheck in
  let str = string_gen_of_size (Gen.int_bound 20) Gen.printable in
  make
    ~print:(fun r -> Tuning.Record.to_json r)
    Gen.(
      let* kernel = gen str in
      let* target = gen str in
      let* moves = list_size (int_bound 6) (gen str) in
      let* best_time = float_bound_exclusive 1.0 in
      let* evals = int_bound 10_000 in
      let* fp_seed = int_bound 1_000_000 in
      return
        {
          Tuning.Record.schema = Tuning.Record.schema_version;
          kernel;
          target;
          moves;
          best_time;
          evals;
          fingerprint = Digest.to_hex (Digest.string (string_of_int fp_seed));
          script = None;
        })

let prop_record_roundtrip =
  QCheck.Test.make ~count:300 ~name:"records round-trip through JSONL"
    arbitrary_record (fun r ->
      Tuning.Record.of_json (Tuning.Record.to_json r) = Ok r)

let prop_record_stable =
  QCheck.Test.make ~count:300
    ~name:"record serialization is byte-stable under reparse"
    arbitrary_record (fun r ->
      let line = Tuning.Record.to_json r in
      match Tuning.Record.of_json line with
      | Ok r' -> Tuning.Record.to_json r' = line
      | Error _ -> false)

let record_tests =
  [
    Alcotest.test_case "unknown schema version rejected" `Quick (fun () ->
        let r =
          Tuning.Record.make ~kernel:"k" ~target:"t" ~moves:[]
            ~best_time:1.0 ~evals:1 ~root:(Kernels.scale ~n:8) ()
        in
        let line = Tuning.Record.to_json { r with schema = 99 } in
        match Tuning.Record.of_json line with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted schema 99");
    Alcotest.test_case "missing field rejected" `Quick (fun () ->
        match Tuning.Record.of_json "{\"schema\":1,\"kernel\":\"k\"}" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted truncated record");
  ]

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let fingerprint_tests =
  let invariance =
    List.map
      (fun (e : Kernels.entry) ->
        Alcotest.test_case
          (Printf.sprintf "fingerprint of %s survives parse∘print" e.label)
          `Quick
          (fun () ->
            let p = e.build_small () in
            let reparsed = Ir.Parser.program (Ir.Printer.program p) in
            Alcotest.(check string)
              "invariant" (Tuning.Record.fingerprint p)
              (Tuning.Record.fingerprint reparsed)))
      (Kernels.table3 @ Kernels.snitch_micro)
  in
  invariance
  @ [
      Alcotest.test_case "transformed program fingerprints differently"
        `Quick (fun () ->
          let p = Kernels.softmax ~n:8 ~m:8 in
          match Transform.Xforms.all caps_cpu p with
          | [] -> Alcotest.fail "no applicable moves"
          | inst :: _ ->
              Alcotest.(check bool)
                "differs" true
                (Tuning.Record.fingerprint (inst.apply p)
                <> Tuning.Record.fingerprint p));
    ]

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let mk_record ?(kernel = "k") ?(target = "t") ?(moves = []) ~best_time
    ~root () =
  Tuning.Record.make ~kernel ~target ~moves ~best_time ~evals:10 ~root ()

let db_tests =
  [
    Alcotest.test_case "add dedups by fingerprint/target/moves" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        let r = mk_record ~best_time:2.0 ~root () in
        Alcotest.(check bool) "inserted" true (Tuning.Db.add db r = `Inserted);
        Alcotest.(check bool) "duplicate" true
          (Tuning.Db.add db r = `Duplicate);
        Alcotest.(check bool) "slower duplicate ignored" true
          (Tuning.Db.add db { r with best_time = 3.0 } = `Duplicate);
        Alcotest.(check bool) "faster improves" true
          (Tuning.Db.add db { r with best_time = 1.0 } = `Improved);
        Alcotest.(check int) "one record" 1 (Tuning.Db.size db);
        match Tuning.Db.best db ~kernel:"k" ~target:"t" with
        | Some best -> Alcotest.(check (float 0.0)) "kept best" 1.0
                         best.best_time
        | None -> Alcotest.fail "no best");
    Alcotest.test_case "top_k orders by time and respects k" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        List.iter
          (fun (t, m) ->
            ignore
              (Tuning.Db.add db (mk_record ~moves:[ m ] ~best_time:t ~root ())))
          [ (3.0, "a"); (1.0, "b"); (2.0, "c"); (4.0, "d") ];
        let top = Tuning.Db.top_k db ~kernel:"k" ~target:"t" 3 in
        Alcotest.(check (list (float 0.0)))
          "sorted, truncated" [ 1.0; 2.0; 3.0 ]
          (List.map (fun (r : Tuning.Record.t) -> r.best_time) top));
    Alcotest.test_case "query filters kernel and target" `Quick (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore
          (Tuning.Db.add db
             (mk_record ~kernel:"a" ~target:"x86" ~best_time:1.0 ~root ()));
        ignore
          (Tuning.Db.add db
             (mk_record ~kernel:"a" ~target:"snitch" ~best_time:1.0 ~root ()));
        ignore
          (Tuning.Db.add db
             (mk_record ~kernel:"b" ~target:"x86" ~best_time:1.0 ~root ()));
        Alcotest.(check int) "by kernel" 2
          (List.length (Tuning.Db.query ~kernel:"a" db));
        Alcotest.(check int) "by target" 2
          (List.length (Tuning.Db.query ~target:"x86" db));
        Alcotest.(check int) "by both" 1
          (List.length (Tuning.Db.query ~kernel:"a" ~target:"x86" db)));
    Alcotest.test_case "save -> load -> save is byte-identical" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        (* insertion order deliberately scrambled: saves must sort *)
        List.iter
          (fun (e : Kernels.entry) ->
            let root = e.build_small () in
            ignore
              (Tuning.Db.add db
                 (mk_record ~kernel:e.label ~target:"snitch"
                    ~moves:[ "m1"; "m2" ] ~best_time:(Random.float 1.0)
                    ~root ()));
            ignore
              (Tuning.Db.add db
                 (mk_record ~kernel:e.label ~target:"x86"
                    ~best_time:0.2398371845 ~root ())))
          (List.rev (Kernels.snitch_micro @ [ List.hd Kernels.table3 ]));
        let f1 = Filename.temp_file "tunedb" ".jsonl" in
        let f2 = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f1;
        (match Tuning.Db.load f1 with
        | Error e -> Alcotest.failf "load: %s" e
        | Ok db' -> Tuning.Db.save db' f2);
        let slurp f =
          let ic = open_in_bin f in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let c1 = slurp f1 and c2 = slurp f2 in
        Sys.remove f1;
        Sys.remove f2;
        Alcotest.(check bool) "file non-empty" true (String.length c1 > 0);
        Alcotest.(check string) "byte-identical" c1 c2);
    Alcotest.test_case "load of a missing file is an empty db" `Quick
      (fun () ->
        match Tuning.Db.load "/nonexistent/definitely-not-here.jsonl" with
        | Ok db -> Alcotest.(check int) "empty" 0 (Tuning.Db.size db)
        | Error e -> Alcotest.failf "expected empty db, got error %s" e);
    Alcotest.test_case "strict load reports the bad line" `Quick (fun () ->
        let f = Filename.temp_file "tunedb" ".jsonl" in
        let oc = open_out f in
        output_string oc "not json at all\n";
        close_out oc;
        let r = Tuning.Db.load ~strict:true f in
        Sys.remove f;
        match r with
        | Error msg ->
            Alcotest.(check bool) "names line 1" true
              (String.length msg > 0)
        | Ok _ -> Alcotest.fail "strict load accepted malformed file");
    Alcotest.test_case "tolerant load skips and counts malformed lines"
      `Quick (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~kernel:"a" ~best_time:1.0 ~root ()));
        ignore (Tuning.Db.add db (mk_record ~kernel:"b" ~best_time:2.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        (* a second writer killed mid-append leaves a torn final line *)
        let oc = open_out_gen [ Open_append ] 0o644 f in
        output_string oc "{\"kernel\":\"torn-rec";
        close_out oc;
        let r = Tuning.Db.load f in
        Sys.remove f;
        (match r with
        | Error e -> Alcotest.failf "tolerant load failed: %s" e
        | Ok db' ->
            Alcotest.(check int) "intact records survive" 2
              (Tuning.Db.size db');
            Alcotest.(check int) "torn line counted" 1
              (Tuning.Db.skipped_lines db')));
    Alcotest.test_case "tolerant load traces a db.skipped_lines event"
      `Quick (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        let oc = open_out_gen [ Open_append ] 0o644 f in
        output_string oc "garbage\n{\"torn";
        close_out oc;
        let obs = Obs.Trace.make_buffer () in
        (match Tuning.Db.load ~obs f with
        | Error e -> Alcotest.failf "tolerant load: %s" e
        | Ok _ -> ());
        Sys.remove f;
        let skipped_events =
          List.filter
            (fun e ->
              Option.bind (Util.Json.member "ev" e) Util.Json.to_str
              = Some "db.skipped_lines")
            (Obs.Trace.events obs)
        in
        match skipped_events with
        | [ e ] ->
            Alcotest.(check (option int))
              "skip count in the event" (Some 2)
              (Option.bind (Util.Json.member "skipped" e) Util.Json.to_int);
            Alcotest.(check (option string))
              "path in the event" (Some f)
              (Option.bind (Util.Json.member "path" e) Util.Json.to_str)
        | es -> Alcotest.failf "%d db.skipped_lines events" (List.length es));
    Alcotest.test_case "clean load emits no db.skipped_lines event" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        let obs = Obs.Trace.make_buffer () in
        (match Tuning.Db.load ~obs f with
        | Error e -> Alcotest.failf "clean load: %s" e
        | Ok _ -> ());
        Sys.remove f;
        Alcotest.(check int) "no events" 0
          (List.length (Obs.Trace.events obs)));
    Alcotest.test_case "clean load reports zero skipped lines" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        let r = Tuning.Db.load f in
        Sys.remove f;
        match r with
        | Ok db' ->
            Alcotest.(check int) "no skips" 0 (Tuning.Db.skipped_lines db')
        | Error e -> Alcotest.failf "clean load: %s" e);
    Alcotest.test_case "save after tolerant load rewrites a clean file"
      `Quick (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        let oc = open_out_gen [ Open_append ] 0o644 f in
        output_string oc "garbage mid-file\n{\"also\":\"torn";
        close_out oc;
        (match Tuning.Db.load f with
        | Error e -> Alcotest.failf "tolerant load: %s" e
        | Ok db' ->
            Alcotest.(check int) "two bad lines" 2
              (Tuning.Db.skipped_lines db');
            Tuning.Db.save db' f);
        (match Tuning.Db.load ~strict:true f with
        | Ok db' -> Alcotest.(check int) "clean again" 1 (Tuning.Db.size db')
        | Error e -> Alcotest.failf "rewritten file still dirty: %s" e);
        Sys.remove f);
    Alcotest.test_case "save is atomic: no tmp left, result loadable" `Quick
      (fun () ->
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Tuning.Db.save db f;
        Alcotest.(check bool) "no tmp sibling" false
          (Sys.file_exists (f ^ ".tmp"));
        (match Tuning.Db.load f with
        | Ok db' -> Alcotest.(check int) "loadable" 1 (Tuning.Db.size db')
        | Error e -> Alcotest.failf "load after save: %s" e);
        Sys.remove f);
    Alcotest.test_case "a stale partial tmp never corrupts the db" `Quick
      (fun () ->
        (* simulate a writer killed mid-save: garbage sits at path.tmp *)
        let f = Filename.temp_file "tunedb" ".jsonl" in
        let db = Tuning.Db.create () in
        let root = Kernels.scale ~n:16 in
        ignore (Tuning.Db.add db (mk_record ~best_time:1.0 ~root ()));
        Tuning.Db.save db f;
        let oc = open_out (f ^ ".tmp") in
        output_string oc "{\"kernel\":\"trunc";
        close_out oc;
        (* the real file is untouched by the dead writer's tmp *)
        (match Tuning.Db.load f with
        | Ok db' -> Alcotest.(check int) "intact" 1 (Tuning.Db.size db')
        | Error e -> Alcotest.failf "load with stale tmp: %s" e);
        (* the next save overwrites the stale tmp and still lands *)
        ignore
          (Tuning.Db.add db (mk_record ~kernel:"k2" ~best_time:2.0 ~root ()));
        Tuning.Db.save db f;
        Alcotest.(check bool) "stale tmp cleaned" false
          (Sys.file_exists (f ^ ".tmp"));
        (match Tuning.Db.load f with
        | Ok db' -> Alcotest.(check int) "both records" 2 (Tuning.Db.size db')
        | Error e -> Alcotest.failf "load after recovery: %s" e);
        Sys.remove f);
    Alcotest.test_case "concurrent saves merge instead of clobbering" `Quick
      (fun () ->
        (* two independent writers sharing --db: the union must survive,
           and the improve rule must keep the faster of a shared record *)
        let f = Filename.temp_file "tunedb" ".jsonl" in
        Sys.remove f;
        let root = Kernels.scale ~n:16 in
        let db1 = Tuning.Db.create () in
        ignore
          (Tuning.Db.add db1 (mk_record ~kernel:"a" ~best_time:2.0 ~root ()));
        ignore
          (Tuning.Db.add db1
             (mk_record ~kernel:"shared" ~best_time:5.0 ~root ()));
        let db2 = Tuning.Db.create () in
        ignore
          (Tuning.Db.add db2 (mk_record ~kernel:"b" ~best_time:3.0 ~root ()));
        ignore
          (Tuning.Db.add db2
             (mk_record ~kernel:"shared" ~best_time:4.0 ~root ()));
        Tuning.Db.save db1 f;
        Tuning.Db.save db2 f;
        (match Tuning.Db.load f with
        | Error e -> Alcotest.failf "load merged: %s" e
        | Ok merged ->
            Alcotest.(check int) "union" 3 (Tuning.Db.size merged);
            (match Tuning.Db.best merged ~kernel:"shared" ~target:"t" with
            | Some r ->
                Alcotest.(check (float 0.0)) "improve rule kept fastest" 4.0
                  r.best_time
            | None -> Alcotest.fail "shared record lost"));
        Sys.remove f);
  ]

(* ------------------------------------------------------------------ *)
(* Memoized evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    Alcotest.test_case "hits and misses are counted" `Quick (fun () ->
        let cache = Tuning.Cache.create () in
        let calls = ref 0 in
        let raw p =
          incr calls;
          objective target_sn p
        in
        let memo = Tuning.Cache.memoize cache raw in
        let p = Kernels.scale ~n:64 in
        let q = Kernels.scale ~n:128 in
        let t1 = memo p in
        let t2 = memo p in
        let _ = memo q in
        Alcotest.(check (float 0.0)) "same value" t1 t2;
        Alcotest.(check (float 0.0)) "matches raw" (objective target_sn p) t1;
        Alcotest.(check int) "model ran twice" 2 !calls;
        Alcotest.(check int) "hits" 1 (Tuning.Cache.hits cache);
        Alcotest.(check int) "misses" 2 (Tuning.Cache.misses cache);
        Alcotest.(check int) "entries" 2 (Tuning.Cache.entries cache);
        Alcotest.(check bool) "hit rate" true
          (abs_float (Tuning.Cache.hit_rate cache -. (1. /. 3.)) < 1e-9));
    Alcotest.test_case "memoized search finds the same schedule" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let run obj =
          (Search.Stochastic.simulated_annealing ~seed:5
             ~space:Search.Stochastic.Heuristic ~budget:50 caps_sn obj p)
            .best_time
        in
        let cache = Tuning.Cache.create () in
        let plain = run (objective target_sn) in
        let memo = run (Tuning.Cache.memoize cache (objective target_sn)) in
        Alcotest.(check (float 0.0)) "identical result" plain memo;
        Alcotest.(check bool) "cache was useful" true
          (Tuning.Cache.hits cache > 0));
    Alcotest.test_case "scoped keys keep targets apart in one cache" `Quick
      (fun () ->
        (* the same program timed for two targets through one shared
           cache: unscoped keys would return the first target's time
           for the second (cross-target pollution) *)
        let cache = Tuning.Cache.create () in
        let p = Kernels.scale ~n:64 in
        let time_for target =
          Tuning.Cache.memoize_scoped cache
            ~scope:(Machine.Desc.target_name target)
            (objective target) p
        in
        let sn = time_for target_sn in
        let cpu = time_for target_cpu in
        Alcotest.(check (float 0.0)) "snitch unpolluted"
          (objective target_sn p) sn;
        Alcotest.(check (float 0.0)) "cpu unpolluted"
          (objective target_cpu p) cpu;
        Alcotest.(check int) "both evaluated" 2 (Tuning.Cache.misses cache);
        Alcotest.(check int) "two entries" 2 (Tuning.Cache.entries cache);
        (* revisits still hit within each scope *)
        ignore (time_for target_sn);
        ignore (time_for target_cpu);
        Alcotest.(check int) "scoped hits" 2 (Tuning.Cache.hits cache));
  ]

(* The cache backs the objective of the parallel search, so several
   domains hammer one instance concurrently.  The contract under races:
   hits + misses = total lookups exactly, entries never exceed the
   distinct programs, and every answer equals the raw objective. *)
let prop_cache_domain_safe =
  QCheck.Test.make ~count:15 ~name:"cache accounting is exact under domains"
    QCheck.(pair (int_range 1 6) (int_range 1 60))
    (fun (nprogs, lookups) ->
      let cache = Tuning.Cache.create () in
      let progs = Array.init nprogs (fun i -> Kernels.relu ~n:(4 + i) ~m:3) in
      let memo = Tuning.Cache.memoize cache (objective target_cpu) in
      let worker seed () =
        let rng = Util.Rng.create seed in
        for _ = 1 to lookups do
          ignore (memo progs.(Util.Rng.int rng nprogs))
        done
      in
      let domains = List.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
      List.iter Domain.join domains;
      let total = Tuning.Cache.hits cache + Tuning.Cache.misses cache in
      total = 4 * lookups
      && Tuning.Cache.entries cache <= nprogs
      && Array.for_all
           (fun p -> memo p = objective target_cpu p)
           progs)

(* ------------------------------------------------------------------ *)
(* Warm-started search                                                 *)
(* ------------------------------------------------------------------ *)

let warmstart_tests =
  [
    Alcotest.test_case
      "budget-0 warm-started annealing reproduces the recorded best_time"
      `Quick (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let cold =
          Search.Stochastic.simulated_annealing ~seed:3
            ~space:Search.Stochastic.Heuristic ~budget:80 caps_sn
            (objective target_sn) p
        in
        Alcotest.(check bool) "found moves" true (cold.best_moves <> []);
        let record =
          match
            Tuning.Warmstart.record_of ~objective:(objective target_sn)
              ~caps:caps_sn ~kernel:"gemv" ~target:"snitch" ~root:p
              ~moves:cold.best_moves ~evals:cold.evals
          with
          | Ok r -> r
          | Error e -> Alcotest.failf "record_of: %s" e
        in
        Alcotest.(check (float 0.0))
          "record matches the search" cold.best_time record.best_time;
        let warm =
          Search.Stochastic.simulated_annealing ~seed:7
            ~init:record.moves ~space:Search.Stochastic.Heuristic ~budget:0
            caps_sn (objective target_sn) p
        in
        Alcotest.(check (float 0.0))
          "replay fidelity" record.best_time warm.best_time);
    Alcotest.test_case "warm-started search never finishes behind the seed"
      `Quick (fun () ->
        let p = Kernels.softmax ~n:64 ~m:64 in
        let cold =
          Search.Stochastic.simulated_annealing ~seed:1
            ~space:Search.Stochastic.Heuristic ~budget:60 caps_cpu
            (objective target_cpu) p
        in
        let warm =
          Search.Stochastic.simulated_annealing ~seed:2
            ~init:cold.best_moves ~space:Search.Stochastic.Heuristic
            ~budget:60 caps_cpu (objective target_cpu) p
        in
        Alcotest.(check bool)
          (Printf.sprintf "%.3e <= %.3e" warm.best_time cold.best_time)
          true
          (warm.best_time <= cold.best_time +. 1e-18));
    Alcotest.test_case "warm-started sampling seeds its pool" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let cold =
          Search.Stochastic.simulated_annealing ~seed:3
            ~space:Search.Stochastic.Heuristic ~budget:60 caps_sn
            (objective target_sn) p
        in
        let warm =
          Search.Stochastic.random_sampling ~seed:11 ~init:cold.best_moves
            ~space:Search.Stochastic.Heuristic ~budget:10 caps_sn
            (objective target_sn) p
        in
        Alcotest.(check bool) "at or below the seed" true
          (warm.best_time <= cold.best_time +. 1e-18));
    Alcotest.test_case "moves_for rejects a fingerprint mismatch" `Quick
      (fun () ->
        let gemv = Kernels.gemv ~m:64 ~n:64 in
        let softmax = Kernels.softmax ~n:64 ~m:64 in
        let db = Tuning.Db.create () in
        ignore
          (Tuning.Db.add db
             (Tuning.Record.make ~kernel:"gemv" ~target:"snitch"
                ~moves:[ "m" ] ~best_time:1.0 ~evals:1 ~root:gemv ()));
        Alcotest.(check (list string))
          "matching root" [ "m" ]
          (Tuning.Warmstart.moves_for db ~kernel:"gemv" ~target:"snitch"
             ~root:gemv);
        Alcotest.(check (list string))
          "mismatched root" []
          (Tuning.Warmstart.moves_for db ~kernel:"gemv" ~target:"snitch"
             ~root:softmax));
    Alcotest.test_case "record_of refuses inapplicable moves" `Quick
      (fun () ->
        let p = Kernels.scale ~n:16 in
        match
          Tuning.Warmstart.record_of ~objective:(objective target_sn)
            ~caps:caps_sn ~kernel:"scale" ~target:"snitch" ~root:p
            ~moves:[ "bogus(move)" ] ~evals:1
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "recorded a non-replayable sequence");
    Alcotest.test_case "PerfLLM warm-start seeds the best-so-far" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:32 ~n:32 in
        let cold =
          Search.Stochastic.simulated_annealing ~seed:3
            ~space:Search.Stochastic.Heuristic ~budget:40 caps_sn
            (objective target_sn) p
        in
        let cfg =
          {
            Rl.Perfllm.default_config with
            episodes = 2;
            max_steps = 4;
            action_cap = 8;
          }
        in
        let r, _ =
          Rl.Perfllm.optimize ~cfg ~init:cold.best_moves ~seed:1 caps_sn
            (objective target_sn) p
        in
        Alcotest.(check bool) "at or below the seed" true
          (r.best_time <= cold.best_time +. 1e-18));
  ]

(* ------------------------------------------------------------------ *)
(* Facade integration                                                  *)
(* ------------------------------------------------------------------ *)

let facade_tests =
  [
    Alcotest.test_case "optimize surfaces cache counters" `Quick (fun () ->
        let p = Kernels.softmax ~n:64 ~m:64 in
        let cache = Perfdojo.Tuning.Cache.create () in
        let outcome =
          Perfdojo.optimize ~seed:1 ~cache
            (Perfdojo.Annealing
               { budget = 60; space = Search.Stochastic.Heuristic })
            target_cpu p
        in
        Alcotest.(check int) "misses surfaced"
          (Perfdojo.Tuning.Cache.misses cache)
          outcome.cache_misses;
        Alcotest.(check int) "hits surfaced"
          (Perfdojo.Tuning.Cache.hits cache)
          outcome.cache_hits;
        Alcotest.(check bool) "something was evaluated" true
          (outcome.cache_misses > 0));
    Alcotest.test_case "pass strategies honor a better warm-start" `Quick
      (fun () ->
        let p = Kernels.gemv ~m:64 ~n:64 in
        let search =
          Perfdojo.optimize ~seed:3
            (Perfdojo.Annealing
               { budget = 80; space = Search.Stochastic.Heuristic })
            target_sn p
        in
        let naive_warm =
          Perfdojo.optimize ~seed:1 ~warm_start:search.moves Perfdojo.Naive
            target_sn p
        in
        Alcotest.(check bool) "warm naive at or below plain search" true
          (naive_warm.time_s <= search.time_s +. 1e-18));
  ]

let () =
  Alcotest.run "tuning"
    [
      ("json", json_tests);
      ( "record-qcheck",
        List.map QCheck_alcotest.to_alcotest
          [ prop_record_roundtrip; prop_record_stable ] );
      ("record", record_tests);
      ("fingerprint", fingerprint_tests);
      ("db", db_tests);
      ("cache", cache_tests);
      ( "cache-qcheck",
        List.map QCheck_alcotest.to_alcotest [ prop_cache_domain_safe ] );
      ("warmstart", warmstart_tests);
      ("facade", facade_tests);
    ]
