(* C code generation from the scheduled IR (Figure 3d).

   The generator renders exactly what the annotations say:
   - [:p] scopes emit "#pragma omp parallel for";
   - [:u] scopes emit "#pragma unroll" (kept as a loop for readability);
   - [:v] scopes emit a vector-width pragma over the single statement;
   - [:g]/[:b] scopes split the program into a CUDA-style __global__
     kernel plus a host launch;
   - guarded (padded) scopes emit an if-mask;
   - Snitch SSR scopes emit the stream configuration calls and [:f]
     emits the hardware-loop FREP form.

   The output is illustrative, compilable C in structure; heap buffers
   are file-scope statics filled in by a guarded allocator that the
   entry point calls first, so a generated translation unit compiles
   and links standalone (and several of them link into one library
   without symbol clashes). *)

open Ir.Types

let buf_c_type = function F32 -> "float" | F64 -> "double" | I32 -> "int32_t"

let var d = Printf.sprintf "i%d" d

let index_c (i : index) : string =
  match (i.terms, i.offset) with
  | [], n -> string_of_int n
  | terms, off ->
      let term (c, d) =
        if c = 1 then var d else Printf.sprintf "%d*%s" c (var d)
      in
      let body = String.concat " + " (List.map term terms) in
      if off = 0 then body
      else if off > 0 then Printf.sprintf "%s + %d" body off
      else Printf.sprintf "%s - %d" body (-off)

(* Flattened row-major access honoring reuse-collapsed dimensions. *)
let access_c (prog : Ir.Prog.t) (a : access) : string =
  let b = Ir.Prog.buffer_of_array prog a.array in
  let storage = Ir.Prog.storage_shape b in
  let rec flatten idx dims reuse =
    match (idx, dims, reuse) with
    | [], [], [] -> "0"
    | i :: idx', _d :: dims', r :: reuse' ->
        let rest = flatten idx' dims' reuse' in
        let this = if r then "0" else "(" ^ index_c i ^ ")" in
        let inner_size = List.fold_left ( * ) 1 dims' in
        if inner_size = 1 then
          if rest = "0" then this else this ^ " + " ^ rest
        else
          Printf.sprintf "%s*%d%s" this inner_size
            (if rest = "0" then "" else " + " ^ rest)
    | _ -> invalid_arg "rank mismatch"
  in
  ignore storage;
  Printf.sprintf "%s[%s]" b.bname
    (flatten a.idx (Ir.Prog.storage_shape b) b.reuse)

(* Every binop arm is matched explicitly (fmaxf/fminf for Max/Min, one
   [infix_c] call per arithmetic operator), so there is no catch-all arm
   needing an unreachable Max|Min assert. *)
let rec expr_c prog (e : expr) : string =
  match e with
  | Ref a -> access_c prog a
  | IterVal i -> Printf.sprintf "(float)(%s)" (index_c i)
  | Const c ->
      (* NaN has no C literal: %g renders it as "nan", which suffixed
         with "f" became the invalid token "nanf".  Emit the math.h
         macro, like the INFINITY cases.  (NaN compares unequal to
         everything, so it must be tested before the infinity arms.) *)
      if Float.is_nan c then "NAN"
      else if c = Float.neg_infinity then "-INFINITY"
      else if c = Float.infinity then "INFINITY"
      else if Float.is_integer c && Float.abs c < 1e9 then
        Printf.sprintf "%.1ff" c
      else Printf.sprintf "%.9gf" c
  | Bin (Max, a, b) ->
      Printf.sprintf "fmaxf(%s, %s)" (expr_c prog a) (expr_c prog b)
  | Bin (Min, a, b) ->
      Printf.sprintf "fminf(%s, %s)" (expr_c prog a) (expr_c prog b)
  | Bin (Add, a, b) -> infix_c prog "+" a b
  | Bin (Sub, a, b) -> infix_c prog "-" a b
  | Bin (Mul, a, b) -> infix_c prog "*" a b
  | Bin (Div, a, b) -> infix_c prog "/" a b
  | Un (Exp, e) -> Printf.sprintf "expf(%s)" (expr_c prog e)
  | Un (Log, e) -> Printf.sprintf "logf(%s)" (expr_c prog e)
  | Un (Sqrt, e) -> Printf.sprintf "sqrtf(%s)" (expr_c prog e)
  | Un (Neg, e) -> Printf.sprintf "(-%s)" (expr_c prog e)
  | Un (Recip, e) -> Printf.sprintf "(1.0f / %s)" (expr_c prog e)
  | Un (Relu, e) -> Printf.sprintf "fmaxf(0.0f, %s)" (expr_c prog e)

and infix_c prog o a b =
  Printf.sprintf "(%s %s %s)" (expr_c prog a) o (expr_c prog b)

let stmt_c prog (s : stmt) =
  Printf.sprintf "%s = %s;" (access_c prog s.dst) (expr_c prog s.rhs)

type flavor = Plain | Cuda | Snitch_asm

let rec gen_nodes prog flavor indent depth nodes buf =
  List.iter (fun n -> gen_node prog flavor indent depth n buf) nodes

and gen_node prog flavor indent depth node buf =
  let pad = String.make indent ' ' in
  match node with
  | Stmt s -> Buffer.add_string buf (pad ^ stmt_c prog s ^ "\n")
  | Scope sc ->
      let v = var depth in
      let emit_for ?(pragma = "") () =
        if pragma <> "" then Buffer.add_string buf (pad ^ pragma ^ "\n");
        Buffer.add_string buf
          (Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {\n" pad v v
             sc.size v);
        (match sc.guard with
        | Some g ->
            Buffer.add_string buf
              (Printf.sprintf "%s  if (%s >= %d) continue;  /* padded */\n"
                 pad v g)
        | None -> ());
        if sc.ssr && flavor = Snitch_asm then
          Buffer.add_string buf
            (Printf.sprintf
               "%s  /* SSR: operands stream via ft0..ft2 */\n" pad);
        gen_nodes prog flavor (indent + 2) (depth + 1) sc.body buf;
        Buffer.add_string buf (pad ^ "}\n")
      in
      (match flavor with
      | Snitch_asm when sc.ssr && sc.annot = Frep ->
          Buffer.add_string buf
            (Printf.sprintf "%ssnrt_ssr_enable();\n" pad);
          Buffer.add_string buf
            (Printf.sprintf
               "%sasm volatile(\"frep.o %%0, 1, 0, 0\" :: \"r\"(%d));\n" pad
               (sc.size - 1));
          gen_nodes prog flavor (indent + 2) (depth + 1) sc.body buf;
          Buffer.add_string buf
            (Printf.sprintf "%ssnrt_ssr_disable();\n" pad)
      | _ -> (
          match sc.annot with
          | Seq -> emit_for ()
          | Unroll -> emit_for ~pragma:"#pragma unroll" ()
          | Par -> emit_for ~pragma:"#pragma omp parallel for" ()
          | Vec ->
              emit_for
                ~pragma:(Printf.sprintf "#pragma omp simd simdlen(%d)" sc.size)
                ()
          | Frep -> emit_for ~pragma:"/* frep hardware loop */" ()
          | GpuGrid when flavor = Cuda ->
              (* handled by kernel extraction in [program] *)
              emit_for ~pragma:"/* grid dimension */" ()
          | GpuGrid -> emit_for ~pragma:"/* grid dimension */" ()
          | GpuBlock -> emit_for ~pragma:"/* block dimension */" ()
          | GpuWarp -> emit_for ~pragma:"/* warp lane */" ()))

(* ------------------------------------------------------------------ *)
(* CUDA kernel extraction                                              *)
(* ------------------------------------------------------------------ *)

(* Replace the grid/block loop indices by CUDA builtins inside the
   kernel body. *)
let rec gen_cuda_body prog indent depth grid_depth _block_depth nodes buf =
  List.iter
    (fun node ->
      let pad = String.make indent ' ' in
      match node with
      | Stmt s -> Buffer.add_string buf (pad ^ stmt_c prog s ^ "\n")
      | Scope sc when sc.annot = GpuBlock ->
          Buffer.add_string buf
            (Printf.sprintf "%s{ const int %s = threadIdx.x;\n" pad
               (var depth));
          (match sc.guard with
          | Some g ->
              Buffer.add_string buf
                (Printf.sprintf "%s  if (%s >= %d) return; /* padded */\n" pad
                   (var depth) g)
          | None -> ());
          gen_cuda_body prog (indent + 2) (depth + 1) grid_depth (Some depth)
            sc.body buf;
          Buffer.add_string buf (pad ^ "}\n")
      | Scope sc ->
          gen_node prog Cuda indent depth (Scope sc) buf)
    nodes

let cuda_kernels prog entry buf =
  let kernel_id = ref 0 in
  let rec host indent depth nodes =
    List.iter
      (fun node ->
        let pad = String.make indent ' ' in
        match node with
        | Stmt s -> Buffer.add_string buf (pad ^ stmt_c prog s ^ "\n")
        | Scope sc when sc.annot = GpuGrid ->
            let id = !kernel_id in
            incr kernel_id;
            let tpb =
              let rec find_block nodes =
                List.fold_left
                  (fun acc n ->
                    match n with
                    | Scope s when s.annot = GpuBlock -> s.size
                    | Scope s -> max acc (find_block s.body)
                    | Stmt _ -> acc)
                  1 nodes
              in
              find_block sc.body
            in
            Buffer.add_string buf
              (Printf.sprintf "%skernel_%d<<<%d, %d>>>(%s);\n" pad id sc.size
                 tpb
                 (String.concat ", "
                    (List.map (fun b -> b.bname) prog.buffers)))
        | Scope sc ->
            Buffer.add_string buf
              (Printf.sprintf "%sfor (int %s = 0; %s < %d; ++%s) {\n" pad
                 (var depth) (var depth) sc.size (var depth));
            host (indent + 2) (depth + 1) sc.body;
            Buffer.add_string buf (pad ^ "}\n"))
      nodes
  in
  (* kernel definitions *)
  let kid = ref 0 in
  let rec defs depth nodes =
    List.iter
      (fun node ->
        match node with
        | Scope sc when sc.annot = GpuGrid ->
            let id = !kid in
            incr kid;
            let params =
              String.concat ", "
                (List.map
                   (fun b ->
                     Printf.sprintf "%s* __restrict__ %s" (buf_c_type b.dtype)
                       b.bname)
                   prog.buffers)
            in
            Buffer.add_string buf
              (Printf.sprintf "__global__ void kernel_%d(%s) {\n" id params);
            Buffer.add_string buf
              (Printf.sprintf "  const int %s = blockIdx.x;\n" (var depth));
            gen_cuda_body prog 2 (depth + 1) (Some depth) None sc.body buf;
            Buffer.add_string buf "}\n\n"
        | Scope sc -> defs (depth + 1) sc.body
        | Stmt _ -> ())
      nodes
  in
  defs 0 prog.body;
  Buffer.add_string buf (Printf.sprintf "void %s(/* host entry */) {\n" entry);
  Buffer.add_string buf "  pd_alloc_buffers();\n";
  host 2 0 prog.body;
  Buffer.add_string buf "}\n"

(* ------------------------------------------------------------------ *)
(* Program-level output                                                *)
(* ------------------------------------------------------------------ *)

(* Identifiers math.h/stdlib.h already declare as functions: a buffer
   with one of these names must not shadow them at file scope. *)
let c_reserved =
  [ "gamma"; "y0"; "y1"; "yn"; "j0"; "j1"; "jn"; "exp"; "log"; "sin"; "cos";
    "tan"; "pow"; "sqrt"; "abs"; "div"; "index"; "remainder"; "signgam" ]

let declarations (prog : Ir.Prog.t) buf =
  (* the macro renames every later use, declarations included; the
     headers above were already processed, so they are unaffected *)
  List.iter
    (fun b ->
      if List.mem b.bname c_reserved then
        Buffer.add_string buf
          (Printf.sprintf "#define %s pd_%s  /* avoids a libc clash */\n"
             b.bname b.bname))
    prog.buffers;
  let heap = ref [] in
  List.iter
    (fun b ->
      let elems = List.fold_left ( * ) 1 (Ir.Prog.storage_shape b) in
      let ty = buf_c_type b.dtype in
      (match b.loc with
      | Stack | Register ->
          Buffer.add_string buf
            (Printf.sprintf "static %s %s[%d];  /* %s */\n" ty b.bname elems
               (location_name b.loc))
      | Shared ->
          Buffer.add_string buf
            (Printf.sprintf "__shared__ %s %s[%d];\n" ty b.bname elems)
      | Heap ->
          Buffer.add_string buf (Printf.sprintf "static %s* %s;\n" ty b.bname);
          heap := (b.bname, elems, ty) :: !heap);
      List.iter
        (fun a ->
          if a <> b.bname then
            Buffer.add_string buf
              (Printf.sprintf "#define %s %s  /* alias */\n" a b.bname))
        b.arrays)
    prog.buffers;
  (* malloc at file scope is not constant-initializable; a guarded
     allocator (static, so translation units never clash in a library)
     runs once from the entry point instead *)
  Buffer.add_string buf
    "\nstatic int pd_buffers_ready;\n\
     static void pd_alloc_buffers(void) {\n\
    \  if (pd_buffers_ready) return;\n\
    \  pd_buffers_ready = 1;\n";
  List.iter
    (fun (name, elems, ty) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s = malloc(%d * sizeof(%s));\n" name elems ty))
    (List.rev !heap);
  Buffer.add_string buf "}\n"

let contains_gpu prog =
  Ir.Prog.fold_nodes
    (fun acc _ n ->
      acc
      ||
      match n with
      | Scope sc -> sc.annot = GpuGrid || sc.annot = GpuBlock
      | Stmt _ -> false)
    false prog

let contains_snitch prog =
  Ir.Prog.fold_nodes
    (fun acc _ n ->
      acc
      || match n with Scope sc -> sc.ssr || sc.annot = Frep | Stmt _ -> false)
    false prog

(* Generate C for a program, picking the flavor from its annotations. *)
let program ?(entry = "run") (prog : Ir.Prog.t) : string =
  let buf = Buffer.create 1024 in
  let flavor =
    if contains_gpu prog then Cuda
    else if contains_snitch prog then Snitch_asm
    else Plain
  in
  Buffer.add_string buf "#include <math.h>\n#include <stdlib.h>\n";
  (match flavor with
  | Snitch_asm -> Buffer.add_string buf "#include \"snrt.h\"\n"
  | _ -> ());
  Buffer.add_string buf "\n/* buffers */\n";
  declarations prog buf;
  Buffer.add_string buf "\n/* kernel */\n";
  (match flavor with
  | Cuda -> cuda_kernels prog entry buf
  | Plain | Snitch_asm ->
      Buffer.add_string buf (Printf.sprintf "void %s(void) {\n" entry);
      Buffer.add_string buf "  pd_alloc_buffers();\n";
      gen_nodes prog flavor 2 0 prog.body buf;
      Buffer.add_string buf "}\n");
  Buffer.contents buf
