(** C code generation from scheduled IR (Figure 3d).

    The flavor is chosen from the program's annotations: plain C with
    OpenMP pragmas, CUDA (grid-mapped scopes become [__global__] kernels
    plus host launches), or Snitch C with SSR/FREP forms. *)

type flavor = Plain | Cuda | Snitch_asm

val program : ?entry:string -> Ir.Prog.t -> string
(** Full translation unit: buffer declarations plus the kernel body.
    [entry] names the emitted entry-point function (default ["run"]) —
    libgen gives every library member a distinct symbol. *)

val stmt_c : Ir.Prog.t -> Ir.Types.stmt -> string
(** One statement as a C assignment (used in documentation output). *)

val expr_c : Ir.Prog.t -> Ir.Types.expr -> string
val access_c : Ir.Prog.t -> Ir.Types.access -> string
val contains_gpu : Ir.Prog.t -> bool
val contains_snitch : Ir.Prog.t -> bool
