(** Canonical forms and fingerprints for scheduled programs.

    PerfDojo's transformation graph reaches semantically identical
    schedules through many different move sequences: temporaries pick up
    history-dependent names ([split_reduction]'s [x__part] buffers),
    independent siblings end up in whichever order the moves happened to
    leave them, and commutative operands get swapped by rewrites.  The
    stochastic engines and the tuning database would otherwise pay a
    simulator evaluation for each spelling of the same state — the
    redundancy TransForm's canonicalizer collapses (222 generated
    instances, 8 unique).

    [canonicalize] maps a program to a normal form that is invariant
    under those incidental differences while preserving semantics:

    - commutative binary operands ([+], [*], [max], [min]) are sorted by
      a name-erased printed key;
    - adjacent siblings that are {e provably} independent (exactly the
      [reorder] move's safety condition, {!Transform.Dep}) are bubble-
      sorted into a canonical order — every swap performed is a legal
      [reorder], so the result is reachable from the input and
      semantically equal to it;
    - non-interface buffers and arrays are alpha-renamed to [_c0], [_c1],
      … ordered by a structural occurrence signature (name-erased
      contexts), with first use in the canonical body as tie-break;
      interface (input/output) arrays are never renamed — they are part
      of the program's meaning;
    - buffer declarations are sorted by canonical name.

    The construction is {e sound} for deduplication: it never merges two
    programs that differ in anything but the incidental choices above.
    It is deliberately not a decision procedure for semantic equivalence
    — adversarially symmetric programs can still print differently — so
    a visited set keyed on [fingerprint] may occasionally evaluate an
    equivalent state twice, but never skips a genuinely new one. *)

val version : int
(** Bumped whenever the canonical form changes; folded into
    {!fingerprint} so persisted fingerprints from different canon
    versions never collide silently. *)

val canonicalize : Ir.Prog.t -> Ir.Prog.t
(** Canonical representative of the program's equivalence class.
    Semantics-preserving and idempotent. *)

val fingerprint : Ir.Prog.t -> string
(** Hex digest of the canonical printed form (prefixed with
    {!version}).  Equal for alpha-renamed and commutatively-reordered
    spellings of the same schedule; programs with different canonical
    forms get different fingerprints (modulo digest collision). *)

val equal : Ir.Prog.t -> Ir.Prog.t -> bool
(** [fingerprint a = fingerprint b]. *)
