(* Canonicalization of scheduled programs (see canon.mli for the
   contract).

   The passes run in an order chosen so that each one's decisions are
   invariant under the incidental differences the later passes erase:

   1. commutative operand sort + sibling sort, both keyed on a printed
      form with every non-interface array name replaced by "@" — so two
      alpha-variants of the same program make identical decisions;
   2. alpha-renaming of non-interface arrays, ordered by a structural
      occurrence signature (also name-erased) so the numbering does not
      depend on the incidental sibling order the input arrived in;
   3. a second sibling sort on the full renamed text, to break ties the
      erased keys could not see;
   4. buffer declarations sorted by canonical name.

   Every sibling swap is guarded by Dep.nodes_independent — exactly the
   reorder move's safety condition — so the canonical program is
   semantically equal to (and reachable by legal moves from) the
   input. *)

open Ir.Types
module SS = Set.Make (String)
module SM = Map.Make (String)

let version = 1

(* ------------------------------------------------------------------ *)
(* Interface arrays                                                    *)
(* ------------------------------------------------------------------ *)

let io_set (p : Ir.Prog.t) : SS.t =
  List.fold_left (fun s a -> SS.add a s) SS.empty (p.inputs @ p.outputs)

(* ------------------------------------------------------------------ *)
(* Name-erased printed keys                                            *)
(* ------------------------------------------------------------------ *)

let erase_access io (a : access) =
  if SS.mem a.array io then a else { a with array = "@" }

let rec erase_expr io (e : expr) =
  match e with
  | Ref a -> Ref (erase_access io a)
  | Bin (op, a, b) -> Bin (op, erase_expr io a, erase_expr io b)
  | Un (op, a) -> Un (op, erase_expr io a)
  | (IterVal _ | Const _) as e -> e

let rec erase_node io (n : node) =
  match n with
  | Stmt s -> Stmt { dst = erase_access io s.dst; rhs = erase_expr io s.rhs }
  | Scope sc -> Scope { sc with body = List.map (erase_node io) sc.body }

let expr_key io e = Ir.Printer.expr_str (erase_expr io e)

(* Printed text of a single node subtree.  Printer.body only takes a
   whole program; a one-node body borrows the surrounding program. *)
let node_text (p : Ir.Prog.t) n = Ir.Printer.body { p with body = [ n ] }
let node_key io p n = node_text p (erase_node io n)

(* ------------------------------------------------------------------ *)
(* Pass 1a: commutative operand order                                  *)
(* ------------------------------------------------------------------ *)

let rec canon_expr_by keyf (e : expr) =
  match e with
  | Bin (((Add | Mul | Max | Min) as op), a, b) ->
      let a = canon_expr_by keyf a and b = canon_expr_by keyf b in
      if String.compare (keyf b) (keyf a) < 0 then Bin (op, b, a)
      else Bin (op, a, b)
  | Bin (op, a, b) -> Bin (op, canon_expr_by keyf a, canon_expr_by keyf b)
  | Un (op, a) -> Un (op, canon_expr_by keyf a)
  | (Ref _ | IterVal _ | Const _) as e -> e

let canon_expr io e = canon_expr_by (expr_key io) e

(* ------------------------------------------------------------------ *)
(* Sibling sort                                                        *)
(* ------------------------------------------------------------------ *)

(* Bubble sort constrained to provably-independent adjacent pairs.
   Each accepted swap removes exactly one key inversion, so the loop
   terminates; each is a legal reorder move, so semantics are
   preserved.  [prog] supplies buffer/aliasing information only — the
   independence check never looks at the surrounding body. *)
let sort_siblings ~key prog nodes =
  let arr = Array.of_list nodes in
  let keys = Array.map key arr in
  let n = Array.length arr in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 2 do
      if
        String.compare keys.(i + 1) keys.(i) < 0
        && Transform.Dep.nodes_independent prog arr.(i) arr.(i + 1)
      then begin
        let t = arr.(i) in
        arr.(i) <- arr.(i + 1);
        arr.(i + 1) <- t;
        let t = keys.(i) in
        keys.(i) <- keys.(i + 1);
        keys.(i + 1) <- t;
        changed := true
      end
    done
  done;
  Array.to_list arr

let rec sort_body ~key prog nodes =
  let nodes =
    List.map
      (fun n ->
        match n with
        | Stmt _ -> n
        | Scope sc -> Scope { sc with body = sort_body ~key prog sc.body })
      nodes
  in
  sort_siblings ~key prog nodes

(* ------------------------------------------------------------------ *)
(* Pass 2: alpha-renaming of non-interface arrays                      *)
(* ------------------------------------------------------------------ *)

(* Occurrence signature of an array: the multiset of name-erased local
   contexts it appears in.  A context is the ancestor scope-header
   chain, the erased statement text, and the role path inside the
   statement ("d" for destination, an operand path inside the rhs).
   Signatures are invariant under alpha-renaming (erased) and under
   sibling reorder (no sibling positions enter the context), so the
   numbering they induce is stable across the spellings we collapse. *)
let occurrence_signatures io (body : node list) :
    string list SM.t * int SM.t =
  let sigs = ref SM.empty in
  let first_use = ref SM.empty in
  let counter = ref 0 in
  let note_use a =
    if not (SS.mem a io) then
      if not (SM.mem a !first_use) then begin
        first_use := SM.add a !counter !first_use;
        incr counter
      end
  in
  let note_sig a ctx =
    if not (SS.mem a io) then
      sigs :=
        SM.update a
          (function None -> Some [ ctx ] | Some l -> Some (ctx :: l))
          !sigs
  in
  let rec walk chain nodes =
    List.iter
      (fun n ->
        match n with
        | Scope sc -> walk (Ir.Printer.scope_header sc :: chain) sc.body
        | Stmt s ->
            let ctx =
              String.concat "|" (List.rev chain)
              ^ "#"
              ^ Ir.Printer.stmt_str
                  {
                    dst = erase_access io s.dst;
                    rhs = erase_expr io s.rhs;
                  }
            in
            note_use s.dst.array;
            note_sig s.dst.array (ctx ^ "#d");
            let rec go path e =
              match e with
              | Ref a ->
                  note_use a.array;
                  note_sig a.array (ctx ^ "#" ^ path)
              | Bin (_, x, y) ->
                  go (path ^ "0") x;
                  go (path ^ "1") y
              | Un (_, x) -> go (path ^ "u") x
              | IterVal _ | Const _ -> ()
            in
            go "r" s.rhs)
      nodes
  in
  walk [] body;
  let sigs =
    SM.map
      (fun l -> List.sort String.compare l)
      !sigs
  in
  (sigs, !first_use)

(* Canonical name for slot [i], avoiding collision with any name we are
   not renaming. *)
let fresh_name taken i =
  let rec go c = if SS.mem c taken then go ("_" ^ c) else c in
  go (Printf.sprintf "_c%d" i)

let renaming io (p : Ir.Prog.t) : string SM.t =
  (* every non-interface array, whether or not the body references it *)
  let decl_order = ref SM.empty in
  let counter = ref 0 in
  List.iter
    (fun (b : buffer) ->
      List.iter
        (fun a ->
          if (not (SS.mem a io)) && not (SM.mem a !decl_order) then begin
            decl_order := SM.add a !counter !decl_order;
            incr counter
          end)
        (b.bname :: b.arrays))
    p.buffers;
  let sigs, first_use = occurrence_signatures io p.body in
  let arrays = SM.bindings !decl_order |> List.map fst in
  let key a =
    let s =
      match SM.find_opt a sigs with
      | Some l -> String.concat "\x00" l
      | None -> "" (* declared but unused: sorts first, decl order ties *)
    in
    let use =
      match SM.find_opt a first_use with
      | Some i -> i
      | None -> max_int
    in
    (s, use, SM.find a !decl_order)
  in
  let ordered =
    List.sort
      (fun a b -> compare (key a) (key b))
      arrays
  in
  let taken = io in
  List.fold_left
    (fun (m, i) a -> (SM.add a (fresh_name taken i) m, i + 1))
    (SM.empty, 0) ordered
  |> fst

let rename m name =
  match SM.find_opt name m with Some n -> n | None -> name

let rename_access m (a : access) = { a with array = rename m a.array }

let rec rename_expr m (e : expr) =
  match e with
  | Ref a -> Ref (rename_access m a)
  | Bin (op, a, b) -> Bin (op, rename_expr m a, rename_expr m b)
  | Un (op, a) -> Un (op, rename_expr m a)
  | (IterVal _ | Const _) as e -> e

let rec rename_node m (n : node) =
  match n with
  | Stmt s ->
      Stmt { dst = rename_access m s.dst; rhs = rename_expr m s.rhs }
  | Scope sc -> Scope { sc with body = List.map (rename_node m) sc.body }

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let rec map_stmts f nodes =
  List.map
    (fun n ->
      match n with
      | Stmt s -> Stmt (f s)
      | Scope sc -> Scope { sc with body = map_stmts f sc.body })
    nodes

let canonicalize (p : Ir.Prog.t) : Ir.Prog.t =
  let io = io_set p in
  (* pass 1: commutative operands, then erased-key sibling sort *)
  let body =
    map_stmts (fun s -> { s with rhs = canon_expr io s.rhs }) p.body
  in
  let body = sort_body ~key:(node_key io p) p body in
  (* pass 2: alpha-rename by structural signature *)
  let m = renaming io { p with body } in
  let body = List.map (rename_node m) body in
  let buffers =
    p.buffers
    |> List.map (fun (b : buffer) ->
           {
             b with
             bname = rename m b.bname;
             arrays = List.map (rename m) b.arrays;
           })
    |> List.stable_sort (fun (a : buffer) b ->
           String.compare a.bname b.bname)
  in
  (* pass 3: re-sort on the full renamed text — first commutative
     operands (the erased keys of pass 1 cannot order two distinct
     temporaries with identical access shapes, e.g. [_c1[i] * _c2[i]]),
     then siblings.  The independence checks must see the renamed
     buffer table. *)
  let body =
    map_stmts
      (fun s -> { s with rhs = canon_expr_by Ir.Printer.expr_str s.rhs })
      body
  in
  let renamed = { p with buffers; body } in
  let body = sort_body ~key:(node_text renamed) renamed body in
  { renamed with body }

let fingerprint (p : Ir.Prog.t) : string =
  let canonical = canonicalize p in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "perfdojo-canon-%d\n%s" version
          (Ir.Printer.program canonical)))

let equal a b = String.equal (fingerprint a) (fingerprint b)
