(** A small fixed-size worker pool on stdlib [Domain] / [Mutex] /
    [Condition] — no external dependencies.

    The pool provides [jobs]-way parallelism: [create ~jobs] spawns
    [jobs - 1] worker domains and the calling domain itself participates
    in every {!map}, so [jobs = 1] is a pure sequential loop with zero
    domain overhead (and therefore bit-identical to unpooled code).

    Intended use is the search layer's batched candidate evaluation:
    the submitting thread generates a deterministic batch of pure tasks,
    [map] fans them across domains, and results come back {e in input
    order} regardless of completion order — which is what makes
    [--jobs 1] and [--jobs N] runs produce identical search
    trajectories.

    Tasks must be pure or internally synchronized; the pool gives no
    protection for shared mutable state inside tasks. *)

type t

val create : jobs:int -> t
(** [create ~jobs] builds a pool of [jobs]-way parallelism ([jobs - 1]
    worker domains).  Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : t -> int
(** The parallelism degree the pool was created with. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~jobs] for
    saturating the machine. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element of [arr] across the
    pool's domains and returns the results in input order.

    If any [f] raises, the first exception (in completion order) is
    re-raised in the caller with its original backtrace; remaining
    unclaimed tasks are cancelled.  [map] may only be called from one
    submitter at a time (the pool is not a reentrant scheduler). *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent; the pool must
    not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} on exit, exceptional or not. *)
