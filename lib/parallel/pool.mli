(** A small fixed-size worker pool on stdlib [Domain] / [Mutex] /
    [Condition] — no external dependencies.

    The pool provides [jobs]-way parallelism: [create ~jobs] spawns
    [jobs - 1] worker domains and the calling domain itself participates
    in every {!map}, so [jobs = 1] is a pure sequential loop with zero
    domain overhead (and therefore bit-identical to unpooled code).

    Intended use is the search layer's batched candidate evaluation:
    the submitting thread generates a deterministic batch of pure tasks,
    [map] fans them across domains, and results come back {e in input
    order} regardless of completion order — which is what makes
    [--jobs 1] and [--jobs N] runs produce identical search
    trajectories.

    Tasks must be pure or internally synchronized; the pool gives no
    protection for shared mutable state inside tasks. *)

type t

val create : ?instrument:bool -> jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool of [jobs]-way parallelism ([jobs - 1]
    worker domains).  Raises [Invalid_argument] if [jobs < 1].

    [~instrument:true] (default false) keeps per-slot busy-time and
    task counters readable via {!stats}/{!export}; the default pays for
    no clock calls at all. *)

val jobs : t -> int
(** The parallelism degree the pool was created with. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~jobs] for
    saturating the machine. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element of [arr] across the
    pool's domains and returns the results in input order.

    If any [f] raises, the first exception (in completion order) is
    re-raised in the caller with its original backtrace; remaining
    unclaimed tasks are cancelled.  [map] may only be called from one
    submitter at a time (the pool is not a reentrant scheduler). *)

val map_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** [map_result pool f arr] is {!map} with per-task outcomes and {e no}
    batch cancellation: a raising task yields [Error] in its own slot
    while every other task still runs to completion.  Use this where
    graceful degradation matters (portfolio racing, fault-tolerant
    evaluation); keep {!map} where one failure should abort the batch. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent; the pool must
    not be used afterwards. *)

val with_pool : ?instrument:bool -> jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} on exit, exceptional or not. *)

(** {1 Instrumentation}

    Available when the pool was created with [~instrument:true]; an
    uninstrumented pool reports zeros.  Read between maps — the pool is
    quiescent then, so the lock-free per-slot accounting is consistent. *)

type stats = {
  sjobs : int;
  busy_s : float array;
      (** per-slot busy seconds; slot 0 is the calling domain, slots
          1..jobs-1 the spawned workers *)
  tasks : int array;  (** tasks each slot ran *)
  batches : int;  (** [map] calls submitted *)
  max_queue : int;  (** largest batch size submitted (queue depth) *)
  elapsed_s : float;  (** wall time since [create] *)
  utilization : float;
      (** total busy time / (elapsed × jobs): 1.0 means every domain was
          evaluating the whole time *)
}

val stats : t -> stats

val export : t -> Obs.Metrics.t -> unit
(** Write the current {!stats} as gauges under the ["pool."] prefix
    ([pool.utilization], [pool.max_queue_depth], [pool.worker<i>.busy_s]
    / [.idle_s], ...).  Absolute values: re-exporting refreshes rather
    than double-counts. *)
