(* Fixed-size worker pool over stdlib Domains.

   Design: [create ~jobs] spawns [jobs - 1] persistent worker domains;
   the caller participates in draining every batch, so jobs = 1 never
   touches the domain machinery and is exactly a sequential loop.  A
   batch is a shared task record; workers claim indices one at a time
   under the pool mutex and run the body unlocked.  Results are written
   into a caller-owned array slot per index, so output order is input
   order no matter which domain ran what.

   Exceptions: the task body wrapper catches everything, records the
   first exception (with its backtrace) and flips [cancelled], which
   stops further claims; [map] re-raises once the in-flight tasks have
   drained.  This is fail-fast but still leaves the pool reusable. *)

type task = {
  body : int -> unit; (* never raises: map wraps the user function *)
  size : int;
  mutable next : int; (* next unclaimed index *)
  mutable active : int; (* claimed but not yet finished *)
  cancelled : bool ref;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  have_work : Condition.t; (* a task with runnable items (or stop) *)
  work_done : Condition.t; (* a task just completed *)
  mutable current : task option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

let task_exhausted task = task.next >= task.size || !(task.cancelled)
let task_finished task = task_exhausted task && task.active = 0

(* Claim-and-run loop over one task.  Called and returns with the pool
   mutex held. *)
let drain pool task =
  while not (task_exhausted task) do
    let i = task.next in
    task.next <- i + 1;
    task.active <- task.active + 1;
    Mutex.unlock pool.mutex;
    task.body i;
    Mutex.lock pool.mutex;
    task.active <- task.active - 1;
    if task_finished task then begin
      pool.current <- None;
      Condition.broadcast pool.work_done
    end
  done

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec await () =
    if pool.stop then None
    else
      match pool.current with
      | Some task when not (task_exhausted task) -> Some task
      | _ ->
          Condition.wait pool.have_work pool.mutex;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.mutex
  | Some task ->
      drain pool task;
      Mutex.unlock pool.mutex;
      worker_loop pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      mutex = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      current = None;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let map pool (f : 'a -> 'b) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  if pool.jobs = 1 || n <= 1 then Array.map f arr
  else begin
    let results : 'b option array = Array.make n None in
    let error = ref None in
    let cancelled = ref false in
    let body i =
      match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.mutex;
          if !error = None then error := Some (e, bt);
          cancelled := true;
          Mutex.unlock pool.mutex
    in
    let task = { body; size = n; next = 0; active = 0; cancelled } in
    Mutex.lock pool.mutex;
    if Option.is_some pool.current then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: concurrent map on the same pool"
    end;
    pool.current <- Some task;
    Condition.broadcast pool.have_work;
    (* the caller is a worker too *)
    drain pool task;
    while not (task_finished task) do
      Condition.wait pool.work_done pool.mutex
    done;
    (* the finishing worker's epilogue clears [current]; make sure it is
       gone even on edge paths before releasing the pool for reuse *)
    (match pool.current with
    | Some t when t == task -> pool.current <- None
    | _ -> ());
    Mutex.unlock pool.mutex;
    match !error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all ran *))
          results
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.have_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
