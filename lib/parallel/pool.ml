(* Fixed-size worker pool over stdlib Domains.

   Design: [create ~jobs] spawns [jobs - 1] persistent worker domains;
   the caller participates in draining every batch, so jobs = 1 never
   touches the domain machinery and is exactly a sequential loop.  A
   batch is a shared task record; workers claim indices one at a time
   under the pool mutex and run the body unlocked.  Results are written
   into a caller-owned array slot per index, so output order is input
   order no matter which domain ran what.

   Exceptions: the task body wrapper catches everything, records the
   first exception (with its backtrace) and flips [cancelled], which
   stops further claims; [map] re-raises once the in-flight tasks have
   drained.  This is fail-fast but still leaves the pool reusable.

   Instrumentation: [create ~instrument:true] keeps per-slot busy-time
   and task counters (slot 0 is the calling domain, slots 1..jobs-1 the
   workers).  Each slot's record is written only by its own domain, so
   the accounting is lock-free; [stats] must be read between maps (the
   pool is quiescent then).  The default is instrument = false, which
   skips every clock call — a plain pool pays nothing. *)

type slot_stats = { mutable busy_s : float; mutable tasks : int }

type task = {
  body : int -> int -> unit;
      (* slot -> index -> unit; never raises: map wraps the user function *)
  size : int;
  mutable next : int; (* next unclaimed index *)
  mutable active : int; (* claimed but not yet finished *)
  cancelled : bool ref;
}

type t = {
  jobs : int;
  instrument : bool;
  created_at : float;
  slots : slot_stats array; (* length jobs; slot 0 = the caller *)
  mutable batches : int;
  mutable max_queue : int; (* largest batch submitted *)
  mutex : Mutex.t;
  have_work : Condition.t; (* a task with runnable items (or stop) *)
  work_done : Condition.t; (* a task just completed *)
  mutable current : task option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs
let default_jobs () = Domain.recommended_domain_count ()

let task_exhausted task = task.next >= task.size || !(task.cancelled)
let task_finished task = task_exhausted task && task.active = 0

(* Claim-and-run loop over one task, accounting busy time to [slot].
   Called and returns with the pool mutex held. *)
let drain pool slot task =
  while not (task_exhausted task) do
    let i = task.next in
    task.next <- i + 1;
    task.active <- task.active + 1;
    Mutex.unlock pool.mutex;
    let t0 = if pool.instrument then Unix.gettimeofday () else 0.0 in
    task.body slot i;
    if pool.instrument then begin
      (* own slot only: no lock needed *)
      let s = pool.slots.(slot) in
      s.busy_s <- s.busy_s +. Float.max 0.0 (Unix.gettimeofday () -. t0);
      s.tasks <- s.tasks + 1
    end;
    Mutex.lock pool.mutex;
    task.active <- task.active - 1;
    if task_finished task then begin
      pool.current <- None;
      Condition.broadcast pool.work_done
    end
  done

let rec worker_loop pool slot =
  Mutex.lock pool.mutex;
  let rec await () =
    if pool.stop then None
    else
      match pool.current with
      | Some task when not (task_exhausted task) -> Some task
      | _ ->
          Condition.wait pool.have_work pool.mutex;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.mutex
  | Some task ->
      drain pool slot task;
      Mutex.unlock pool.mutex;
      worker_loop pool slot

let create ?(instrument = false) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      instrument;
      created_at = (if instrument then Unix.gettimeofday () else 0.0);
      slots = Array.init jobs (fun _ -> { busy_s = 0.0; tasks = 0 });
      batches = 0;
      max_queue = 0;
      mutex = Mutex.create ();
      have_work = Condition.create ();
      work_done = Condition.create ();
      current = None;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let note_batch pool n =
  pool.batches <- pool.batches + 1;
  if n > pool.max_queue then pool.max_queue <- n

let map pool (f : 'a -> 'b) (arr : 'a array) : 'b array =
  let n = Array.length arr in
  if pool.jobs = 1 || n <= 1 then
    if not pool.instrument then Array.map f arr
    else begin
      (* sequential path, but keep the books so --stats is meaningful
         at jobs = 1 too *)
      let t0 = Unix.gettimeofday () in
      let out = Array.map f arr in
      let s = pool.slots.(0) in
      s.busy_s <- s.busy_s +. Float.max 0.0 (Unix.gettimeofday () -. t0);
      s.tasks <- s.tasks + n;
      note_batch pool n;
      out
    end
  else begin
    let results : 'b option array = Array.make n None in
    let error = ref None in
    let cancelled = ref false in
    let body _slot i =
      match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock pool.mutex;
          if !error = None then error := Some (e, bt);
          cancelled := true;
          Mutex.unlock pool.mutex
    in
    let task = { body; size = n; next = 0; active = 0; cancelled } in
    Mutex.lock pool.mutex;
    if Option.is_some pool.current then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: concurrent map on the same pool"
    end;
    note_batch pool n;
    pool.current <- Some task;
    Condition.broadcast pool.have_work;
    (* the caller is a worker too *)
    drain pool 0 task;
    while not (task_finished task) do
      Condition.wait pool.work_done pool.mutex
    done;
    (* the finishing worker's epilogue clears [current]; make sure it is
       gone even on edge paths before releasing the pool for reuse *)
    (match pool.current with
    | Some t when t == task -> pool.current <- None
    | _ -> ());
    Mutex.unlock pool.mutex;
    match !error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some v -> v | None -> assert false (* all ran *))
          results
  end

(* Per-task outcomes, no batch cancellation: wrapping the body in
   [result] means the fail-fast machinery underneath never sees an
   exception, so every task runs to a verdict.  The search layer uses
   this where one faulty evaluation must not abort the batch. *)
let map_result pool (f : 'a -> 'b) (arr : 'a array) :
    ('b, exn) result array =
  map pool (fun x -> match f x with v -> Ok v | exception e -> Error e) arr

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  sjobs : int;
  busy_s : float array; (* per slot; slot 0 is the calling domain *)
  tasks : int array;
  batches : int;
  max_queue : int;
  elapsed_s : float; (* wall time since create *)
  utilization : float; (* sum busy / (elapsed * jobs); 0 uninstrumented *)
}

let stats pool : stats =
  let busy_s = Array.map (fun (s : slot_stats) -> s.busy_s) pool.slots in
  let tasks = Array.map (fun (s : slot_stats) -> s.tasks) pool.slots in
  let elapsed_s =
    if pool.instrument then
      Float.max 1e-12 (Unix.gettimeofday () -. pool.created_at)
    else 0.0
  in
  let total_busy = Array.fold_left ( +. ) 0.0 busy_s in
  {
    sjobs = pool.jobs;
    busy_s;
    tasks;
    batches = pool.batches;
    max_queue = pool.max_queue;
    elapsed_s;
    utilization =
      (if pool.instrument then
         total_busy /. (elapsed_s *. float_of_int pool.jobs)
       else 0.0);
  }

(* Gauges under the "pool." prefix.  [export] writes absolute values, so
   calling it again (e.g. once per optimize phase) refreshes rather than
   double-counts. *)
let export pool (m : Obs.Metrics.t) =
  let s = stats pool in
  Obs.Metrics.set m "pool.jobs" (float_of_int s.sjobs);
  Obs.Metrics.set m "pool.batches" (float_of_int s.batches);
  Obs.Metrics.set m "pool.max_queue_depth" (float_of_int s.max_queue);
  Obs.Metrics.set m "pool.utilization" s.utilization;
  Obs.Metrics.set m "pool.tasks"
    (float_of_int (Array.fold_left ( + ) 0 s.tasks));
  Array.iteri
    (fun i busy ->
      Obs.Metrics.set m (Printf.sprintf "pool.worker%d.busy_s" i) busy;
      Obs.Metrics.set m
        (Printf.sprintf "pool.worker%d.idle_s" i)
        (Float.max 0.0 (s.elapsed_s -. busy)))
    s.busy_s

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.have_work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?instrument ~jobs f =
  let pool = create ?instrument ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
