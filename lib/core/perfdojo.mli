(** PerfDojo: the top-level facade.

    Ties the IR, the transformation engine, the performance models and
    the search/RL machinery into the two interfaces the paper describes:
    the interactive performance {!Game} (§2, Figure 2) and one-call
    automatic {!optimize} (§3, §4). *)

module Ir = Ir
module Interp = Interp
module Transform = Transform
module Machine = Machine
module Kernels = Kernels
module Search = Search
module Rl = Rl
module Baselines = Baselines
module Codegen = Codegen
module Util = Util
module Tuning = Tuning
module Obs = Obs
module Robust = Robust
module Surrogate = Surrogate
module Recover = Recover
module Target = Target
module Transfo = Transfo

type target = Machine.Desc.target

exception Portfolio_failed of (string * string) list
(** Raised by {!optimize_portfolio} only when {e every} member crashed:
    one [(label, error)] pair per member, in member order.  A partial
    crash is survived (see {!optimize_portfolio}). *)

(** The performance game (§2): a session over a program where each move
    is a semantics-preserving transformation and the score is the
    modelled runtime — the environment PerfLLM trains in, and equally the
    interface for manual transformation-centric optimization. *)
module Game : sig
  type t = {
    session : Transform.Engine.session;
    target : target;
    reward_c : float;  (** the c of the reward r = c / T (§3.1) *)
    mutable evaluations : int;
  }

  val start : ?obs:Obs.Trace.sink -> target -> Ir.Prog.t -> t
  (** Validates the program and opens a session.  Raises
      {!Ir.Validate.Invalid} on a structurally invalid program.  [obs]
      receives the engine's [engine.apply] / [engine.undo] /
      [engine.enumerate] events. *)

  val state : t -> Ir.Prog.t
  val moves_played : t -> string list

  val moves : t -> (int * string) list
  (** Applicable moves at the current state with their indices. *)

  val time : t -> float
  (** Modelled runtime of the current state (counted as an evaluation). *)

  val reward : t -> float
  (** r = c / T of the current state. *)

  val play : t -> int -> float
  (** Apply move [i] from the current {!moves} list; returns the new
      runtime. *)

  val play_named : t -> string -> float
  (** Apply a move by its description string. *)

  val undo : t -> Ir.Prog.t option
  val undo_at : t -> int -> Ir.Prog.t option

  val verify : t -> (unit, string) result
  (** Numerical check of the whole session against the initial program
      (the paper's §2.2 empirical validation). *)
end

type strategy =
  | Naive  (** fuse + reuse until exhaustion (§4.1) *)
  | Greedy  (** naive + hardware transformations exhaustively *)
  | Heuristic  (** the per-target hardware-expert pass *)
  | Sampling of { budget : int; space : Search.Stochastic.space }
  | Annealing of { budget : int; space : Search.Stochastic.space }
  | Rl_search of Rl.Perfllm.config  (** PerfLLM (§3) *)
  | Portfolio of { budget : int }
      (** race {!default_portfolio} across domains, keep the best *)
  | Exhaustive
      (** enumerate the full transformation graph to
          [Ctx.exhaustive_depth] moves with canonical dedup
          ({!Search.Exhaustive.run}) — the provable-optimum baseline for
          small kernels; sequential and deterministic *)

type portfolio_member = {
  plabel : string;  (** shown as the winner's name *)
  pstrategy : strategy;  (** must not itself be [Portfolio] *)
  pseed : int;
}

type outcome = {
  schedule : Ir.Prog.t;
  time_s : float;
  moves : string list;
  evaluations : int;
  cache_hits : int;
      (** memoized objective lookups answered from the cache (0 without
          a cache) *)
  cache_misses : int;  (** lookups that ran the performance model *)
  failures : int;
      (** evaluations quarantined by {!Robust.Guard} — equal to the
          number of [search.eval_error] events the run traced (for a
          portfolio: summed over the surviving members) *)
}

val heuristic_pass_for :
  target -> Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t

val default_portfolio :
  ?seed:int -> budget:int -> unit -> portfolio_member list
(** The member set {!optimize} races for [Portfolio]: the expert pass,
    heuristic-space annealing under two seeds, edges-space annealing and
    heuristic-space sampling. *)

(** The run context: every cross-cutting knob of an optimization run —
    determinism ([seed]), memoization ([cache]), resumption
    ([warm_start]), parallelism ([jobs]), observability ([obs],
    [metrics]) and fault tolerance ([guard], [faults]) — in one record,
    so call sites thread a single value instead of eight optional
    arguments.  Build one by piping builders over {!Ctx.default}:

    {[
      let ctx =
        Perfdojo.Ctx.(default |> with_seed 7 |> with_jobs 4 |> with_cache c)
      in
      Perfdojo.optimize_ctx ~ctx strategy target prog
    ]}

    The per-field semantics are documented on {!optimize}, which is now
    a thin wrapper over {!optimize_ctx} (as are {!optimize_portfolio}
    and {!optimize_best}); new code should pass a [Ctx.t]. *)
module Ctx : sig
  type t = {
    seed : int;  (** search determinism; default [1] *)
    cache : Tuning.Cache.t option;  (** objective memoization *)
    warm_start : string list;  (** recorded moves to resume from *)
    jobs : int;  (** [0] sequential, [>= 1] pooled domains *)
    obs : Obs.Trace.sink;  (** structured trace; default {!Obs.Trace.null} *)
    metrics : Obs.Metrics.t option;  (** counter/gauge registry *)
    guard : Robust.Guard.config;  (** evaluation quarantine policy *)
    faults : Robust.Faults.config;  (** deterministic fault injection *)
    surrogate : Surrogate.Model.t option;
        (** learned cost model: trained online by every real evaluation
            and (when [filter_ratio < 1]) used to pre-rank candidate
            batches so only the top fraction hits the simulator *)
    filter_ratio : float;
        (** fraction of each batch's distinct candidates sent to the
            simulator, in (0, 1]; default [1.0] (keep all — the
            surrogate then only trains). Ignored without [surrogate]. *)
    dedup : bool;
        (** evaluate each distinct candidate program once per batch;
            duplicates share the measurement (default [false]) *)
    visited_dedup : bool;
        (** remember the canonical fingerprint of every state measured
            so far and never re-evaluate an equivalent one (implies
            per-batch [dedup]; default [false]) *)
    exhaustive_depth : int;
        (** move-sequence depth bound for the {!Exhaustive} strategy;
            default [3] *)
    checkpoint : string option;
        (** crash-safe checkpoint file ({!Recover.Store}): search state
            is snapshotted there at round/level boundaries, atomically
            and durably, so a killed run can resume (default [None]).
            Enabling it promotes a sequential run to the batched
            [jobs = 1] engine (rounds are the checkpoint unit).
            Disabled inside portfolio members. *)
    checkpoint_every : int;
        (** minimum budget slots between snapshots (default [64]; the
            exhaustive strategy checkpoints every BFS level instead) *)
    resume : bool;
        (** restore from [checkpoint] if the file exists and continue
            the exact uninterrupted trajectory — same outcome, exact
            accounting, splice-identical stripped traces (default
            [false]; without the file this is a cold start).  A corrupt
            or mismatched checkpoint raises {!Recover.Error}. *)
    composites : string list;
        (** named composite transformations ({!Transfo.Composites}, or
            [["all"]] for every one) offered to search as macro-moves —
            one composite step instead of 3–5 atomic ones, so
            exhaustive certification reaches the same schedules at
            shallower depth (default [[]]: atomic moves only) *)
  }

  val default : t
  (** [seed = 1], no cache, cold start, sequential, untraced, unmetered,
      {!Robust.Guard.default}, {!Robust.Faults.none}, no surrogate,
      [filter_ratio = 1.0], no dedup, no visited-set,
      [exhaustive_depth = 3] — exactly the defaults the
      optional-argument entry points always used. *)

  val with_seed : int -> t -> t
  val with_cache : Tuning.Cache.t -> t -> t
  val with_warm_start : string list -> t -> t
  val with_jobs : int -> t -> t
  val with_obs : Obs.Trace.sink -> t -> t
  val with_metrics : Obs.Metrics.t -> t -> t
  val with_guard : Robust.Guard.config -> t -> t
  val with_faults : Robust.Faults.config -> t -> t
  val with_surrogate : Surrogate.Model.t -> t -> t
  val with_filter_ratio : float -> t -> t
  val with_dedup : bool -> t -> t
  val with_visited_dedup : bool -> t -> t
  val with_exhaustive_depth : int -> t -> t

  val with_checkpoint : ?every:int -> string -> t -> t
  (** Enable crash-safe checkpointing to the given file; [every]
      overrides the snapshot cadence (default: keep the current
      [checkpoint_every]). *)

  val with_resume : bool -> t -> t
  val with_composites : string list -> t -> t

  val of_options :
    ?seed:int ->
    ?cache:Tuning.Cache.t ->
    ?warm_start:string list ->
    ?jobs:int ->
    ?obs:Obs.Trace.sink ->
    ?metrics:Obs.Metrics.t ->
    ?guard:Robust.Guard.config ->
    ?faults:Robust.Faults.config ->
    ?surrogate:Surrogate.Model.t ->
    ?filter_ratio:float ->
    ?dedup:bool ->
    ?visited_dedup:bool ->
    ?exhaustive_depth:int ->
    ?checkpoint:string ->
    ?checkpoint_every:int ->
    ?resume:bool ->
    ?composites:string list ->
    unit ->
    t
  (** {!default} overridden by whichever arguments are given — the
      bridge the legacy optional-argument wrappers are built on. *)
end

val caps_of : ctx:Ctx.t -> target -> Transform.Xforms.caps
(** The action set of a run: {!Machine.caps} enriched with the
    context's composite macro-moves.  Replaying a recorded schedule that
    was found with composites needs these caps, not the bare machine
    ones. *)

val optimize_ctx : ctx:Ctx.t -> strategy -> target -> Ir.Prog.t -> outcome
(** One-call optimization of a kernel for a target under a run context.
    This is the primary entry point; see {!optimize} for the semantics
    of each context field (that wrapper is [optimize_ctx] over
    {!Ctx.of_options}). *)

val optimize_recorded :
  ctx:Ctx.t ->
  kernel:string ->
  target_name:string ->
  strategy ->
  target ->
  Ir.Prog.t ->
  outcome * Tuning.Record.t option
(** {!optimize_ctx} plus the tuning-database record of the winner in one
    call — the entry long-running consumers (the serve daemon, the CLI's
    optimize verb) deposit from.  The record is built by {e replaying}
    the winning move sequence and re-timing it
    ({!Tuning.Warmstart.record_of}), so everything deposited is
    reproducible; an empty move sequence records the root itself (a
    kernel already optimal in naive form still warms up).  The record is
    [None] when a move no longer replays or the replayed time would be
    slower than the outcome's (recording that would make warm starts
    regress). *)

val optimize_portfolio_ctx :
  ctx:Ctx.t ->
  members:portfolio_member list ->
  target ->
  Ir.Prog.t ->
  outcome * string
(** {!optimize_portfolio} under a run context; the member seeds override
    [ctx.seed] member-by-member. *)

val optimize :
  ?seed:int ->
  ?cache:Tuning.Cache.t ->
  ?warm_start:string list ->
  ?jobs:int ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?faults:Robust.Faults.config ->
  strategy ->
  target ->
  Ir.Prog.t ->
  outcome
(** One-call optimization of a kernel for a target.  Deterministic given
    the seed.  [cache] memoizes the performance model by program
    fingerprint (repeated candidates cost zero evaluations; counters in
    the outcome).  [warm_start] seeds search strategies with a recorded
    move sequence — typically {!Tuning.Warmstart.moves_for} — so tuning
    resumes from a database's best instead of restarting.

    [jobs] selects the evaluation backend for the stochastic strategies:
    [0] (the default) is the sequential path, bit-identical to earlier
    releases; [jobs >= 1] evaluates candidates in rounds of a fixed
    batch on a {!Parallel.Pool} of [jobs] domains — results depend on
    the batch size but not on [jobs], so [jobs = 1] and [jobs = N] agree
    exactly.  [Portfolio] races its members across [jobs] domains.

    [obs] receives the run's trace: a ["search"] span around the whole
    strategy, a ["warm-start"] span around the replay fallback, and the
    search layer's per-step events.  [metrics] additionally collects
    the search counters, the per-phase span histograms, pool
    utilization ([Parallel.Pool.export]) and — when [cache] is given —
    the cache counters ([Tuning.Cache.export]).  Both default to off
    and then cost nothing.

    Fault tolerance: every evaluation runs through {!Robust.Guard.run}
    under [guard] (default {!Robust.Guard.default}) — a raising, NaN or
    fuel-exhausted evaluation is quarantined at +∞ instead of aborting
    the run, traced as a [search.eval_error] event, counted in
    [robust.*] metrics and in the outcome's [failures].  Which
    candidates fail is deterministic, so jobs-invariance extends to the
    failures themselves.  [faults] (default {!Robust.Faults.none}, the
    identity) injects deterministic faults into the objective — a
    test/bench knob for proving the degradation story, never for
    production use.

    {b Deprecated-in-docs:} this optional-argument form is kept for
    source compatibility and is exactly
    [optimize_ctx ~ctx:(Ctx.of_options ... ())]; new code should build
    a {!Ctx.t} and call {!optimize_ctx}. *)

val optimize_portfolio :
  ?cache:Tuning.Cache.t ->
  ?warm_start:string list ->
  ?jobs:int ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?faults:Robust.Faults.config ->
  members:portfolio_member list ->
  target ->
  Ir.Prog.t ->
  outcome * string
(** Race an explicit member list; returns the winning outcome (its
    [evaluations] and [failures] are summed over the surviving members —
    what the race spent) and the winner's label.  Ties resolve by member
    order, so the result is deterministic for any [jobs].  Raises
    [Invalid_argument] on an empty list or a nested [Portfolio] member.

    Degradation: members run under {!Parallel.Pool.map_result}, so a
    crashing member does not cancel the race — it becomes a
    [portfolio.member_error] trace event plus a [robust.member_failures]
    count (its partial trace buffer is dropped), and the winner is
    picked among the survivors.  Only when every member dies does the
    race raise {!Portfolio_failed} with the per-member errors.

    Each surviving member traces into a private buffer; the buffers fold
    into [obs] in member order behind [portfolio.member] headers,
    followed by a [portfolio.winner] event — the merged stream is
    independent of race scheduling (modulo {!Obs.Trace.strip_timing}).

    {b Deprecated-in-docs:} wrapper over {!optimize_portfolio_ctx};
    prefer passing a {!Ctx.t}. *)

val optimize_best :
  ?seed:int ->
  ?cache:Tuning.Cache.t ->
  ?warm_start:string list ->
  ?jobs:int ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?faults:Robust.Faults.config ->
  ?budget:int ->
  target ->
  Ir.Prog.t ->
  outcome
(** Heuristic pass and a heuristic-space annealing run; keeps the
    winner.  [jobs] as in {!optimize}. *)
