(* PerfDojo: the top-level facade.

   This module ties the IR, the transformation engine, the performance
   models and the search/RL machinery into the two interfaces the paper
   describes:

   - {!Game}: the interactive "performance game" (§2) — a session over a
     program where each move is a semantics-preserving transformation
     and the score is the modelled runtime.  This is the environment
     PerfLLM trains in, and equally the interface for manual
     transformation-centric optimization (Figure 2).
   - {!optimize}: one-call automatic optimization under a chosen
     strategy (the §4.1 passes, §4.2 stochastic searches, or §3 RL). *)

module Ir = Ir
module Interp = Interp
module Transform = Transform
module Machine = Machine
module Kernels = Kernels
module Search = Search
module Rl = Rl
module Baselines = Baselines
module Codegen = Codegen
module Util = Util
module Tuning = Tuning
module Obs = Obs
module Robust = Robust
module Surrogate = Surrogate
module Recover = Recover
module Target = Target
module Transfo = Transfo

type target = Machine.Desc.target

exception
  Portfolio_failed of (string * string) list
    (* every member crashed: (label, error) per member, in member order *)

(* ------------------------------------------------------------------ *)
(* The performance game                                                *)
(* ------------------------------------------------------------------ *)

module Game = struct
  type t = {
    session : Transform.Engine.session;
    target : target;
    reward_c : float;
    mutable evaluations : int;
  }

  let start ?obs (target : target) (prog : Ir.Prog.t) : t =
    Ir.Validate.check_exn prog;
    let caps = Machine.caps target in
    let session = Transform.Engine.start ?obs caps prog in
    let t0 = Machine.time target prog in
    { session; target; reward_c = t0; evaluations = 1 }

  let state (g : t) = g.session.current
  let moves_played (g : t) =
    List.map Transform.Xforms.describe (Transform.Engine.moves g.session)

  (* Applicable moves at the current state, each with its description. *)
  let moves (g : t) : (int * string) list =
    List.mapi
      (fun i inst -> (i, Transform.Xforms.describe inst))
      (Transform.Engine.applicable g.session)

  let time (g : t) : float =
    g.evaluations <- g.evaluations + 1;
    Machine.time g.target (state g)

  (* Reward of the current state: r = c / T (§3.1). *)
  let reward (g : t) : float = g.reward_c /. Float.max (time g) 1e-12

  (* Play move [i] from the current applicable list; returns the new
     runtime. *)
  let play (g : t) (i : int) : float =
    let insts = Transform.Engine.applicable g.session in
    match List.nth_opt insts i with
    | None -> invalid_arg "Game.play: no such move"
    | Some inst ->
        ignore (Transform.Engine.apply g.session inst);
        time g

  (* Play a move by its description string. *)
  let play_named (g : t) (name : string) : float =
    let insts = Transform.Engine.applicable g.session in
    match
      List.find_opt (fun i -> Transform.Xforms.describe i = name) insts
    with
    | None -> invalid_arg (Printf.sprintf "Game.play_named: %S not applicable" name)
    | Some inst ->
        ignore (Transform.Engine.apply g.session inst);
        time g

  let undo (g : t) = Transform.Engine.undo g.session
  let undo_at (g : t) k = Transform.Engine.undo_at g.session k

  (* Numerical check of the whole session against the initial program —
     the empirical validation loop of §2.2. *)
  let verify (g : t) : (unit, string) result =
    Interp.equivalent g.session.initial (state g)
end

(* ------------------------------------------------------------------ *)
(* One-call optimization                                               *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Naive (* fuse + reuse until exhaustion (§4.1) *)
  | Greedy (* naive + hardware transformations exhaustively *)
  | Heuristic (* hardware-expert pass *)
  | Sampling of { budget : int; space : Search.Stochastic.space }
  | Annealing of { budget : int; space : Search.Stochastic.space }
  | Rl_search of Rl.Perfllm.config
  | Portfolio of { budget : int }
      (* race the default member set across domains, keep the best *)
  | Exhaustive
      (* enumerate the full transformation graph to Ctx.exhaustive_depth
         with canonical dedup — certified optima for small kernels *)

type portfolio_member = {
  plabel : string;
  pstrategy : strategy;
  pseed : int;
}

type outcome = {
  schedule : Ir.Prog.t;
  time_s : float;
  moves : string list;
  evaluations : int;
  cache_hits : int; (* memoized objective lookups answered from cache *)
  cache_misses : int; (* lookups that ran the performance model *)
  failures : int; (* evaluations quarantined by the guard *)
}

let heuristic_pass_for (target : target) caps prog =
  match target with
  | Machine.Desc.Snitch _ -> Search.Passes.heuristic caps prog
  | Machine.Desc.Cpu _ -> Search.Passes.cpu_heuristic caps prog
  | Machine.Desc.Gpu g ->
      Search.Passes.gpu_heuristic ~warp:g.warp
        ~score:(fun p -> Machine.time target p)
        caps prog

(* The default portfolio: complementary strategies and seeds racing for
   the same kernel.  Heuristic-space annealing is usually strongest, so
   it gets two seeds; the edges-space and sampling members cover the
   schedules it plateaus on; the expert pass is the safety net. *)
let default_portfolio ?(seed = 1) ~budget () : portfolio_member list =
  [
    { plabel = "heuristic-pass"; pstrategy = Heuristic; pseed = seed };
    {
      plabel = "annealing/heuristic";
      pstrategy = Annealing { budget; space = Search.Stochastic.Heuristic };
      pseed = seed;
    };
    {
      plabel = "annealing/heuristic+1";
      pstrategy = Annealing { budget; space = Search.Stochastic.Heuristic };
      pseed = seed + 1;
    };
    {
      plabel = "annealing/edges";
      pstrategy = Annealing { budget; space = Search.Stochastic.Edges };
      pseed = seed;
    };
    {
      plabel = "sampling/heuristic";
      pstrategy = Sampling { budget; space = Search.Stochastic.Heuristic };
      pseed = seed;
    };
  ]

(* ------------------------------------------------------------------ *)
(* The run context                                                     *)
(* ------------------------------------------------------------------ *)

(* Every cross-cutting knob of a run in one record.  The optional-
   argument entry points below are thin wrappers over [of_options]; all
   internal call sites (portfolio members, optimize_best, libgen, the
   CLI, the bench harness) thread a [Ctx.t]. *)
module Ctx = struct
  type t = {
    seed : int;
    cache : Tuning.Cache.t option;
    warm_start : string list;
    jobs : int;
    obs : Obs.Trace.sink;
    metrics : Obs.Metrics.t option;
    guard : Robust.Guard.config;
    faults : Robust.Faults.config;
    surrogate : Surrogate.Model.t option;
    filter_ratio : float;
    dedup : bool;
    visited_dedup : bool;
    exhaustive_depth : int;
    checkpoint : string option;
    checkpoint_every : int;
    resume : bool;
    composites : string list;
  }

  let default =
    {
      seed = 1;
      cache = None;
      warm_start = [];
      jobs = 0;
      obs = Obs.Trace.null;
      metrics = None;
      guard = Robust.Guard.default;
      faults = Robust.Faults.none;
      surrogate = None;
      filter_ratio = 1.0;
      dedup = false;
      visited_dedup = false;
      exhaustive_depth = 3;
      checkpoint = None;
      checkpoint_every = 64;
      resume = false;
      composites = [];
    }

  let with_seed seed t = { t with seed }
  let with_cache cache t = { t with cache = Some cache }
  let with_warm_start warm_start t = { t with warm_start }
  let with_jobs jobs t = { t with jobs }
  let with_obs obs t = { t with obs }
  let with_metrics metrics t = { t with metrics = Some metrics }
  let with_guard guard t = { t with guard }
  let with_faults faults t = { t with faults }
  let with_surrogate surrogate t = { t with surrogate = Some surrogate }
  let with_filter_ratio filter_ratio t = { t with filter_ratio }
  let with_dedup dedup t = { t with dedup }
  let with_visited_dedup visited_dedup t = { t with visited_dedup }

  let with_exhaustive_depth exhaustive_depth t =
    { t with exhaustive_depth }

  let with_checkpoint ?every path t =
    {
      t with
      checkpoint = Some path;
      checkpoint_every =
        (match every with Some e -> e | None -> t.checkpoint_every);
    }

  let with_resume resume t = { t with resume }
  let with_composites composites t = { t with composites }

  let of_options ?seed ?cache ?warm_start ?jobs ?obs ?metrics ?guard
      ?faults ?surrogate ?filter_ratio ?dedup ?visited_dedup
      ?exhaustive_depth ?checkpoint ?checkpoint_every ?resume ?composites
      () =
    {
      seed = Option.value seed ~default:default.seed;
      cache = (match cache with None -> default.cache | some -> some);
      warm_start = Option.value warm_start ~default:default.warm_start;
      jobs = Option.value jobs ~default:default.jobs;
      obs = Option.value obs ~default:default.obs;
      metrics = (match metrics with None -> default.metrics | some -> some);
      guard = Option.value guard ~default:default.guard;
      faults = Option.value faults ~default:default.faults;
      surrogate =
        (match surrogate with None -> default.surrogate | some -> some);
      filter_ratio =
        Option.value filter_ratio ~default:default.filter_ratio;
      dedup = Option.value dedup ~default:default.dedup;
      visited_dedup =
        Option.value visited_dedup ~default:default.visited_dedup;
      exhaustive_depth =
        Option.value exhaustive_depth ~default:default.exhaustive_depth;
      checkpoint =
        (match checkpoint with None -> default.checkpoint | some -> some);
      checkpoint_every =
        Option.value checkpoint_every ~default:default.checkpoint_every;
      resume = Option.value resume ~default:default.resume;
      composites = Option.value composites ~default:default.composites;
    }
end

(* The action set of a run: the target's capabilities enriched with the
   context's composite macro-moves.  Search, replay-for-record and
   warm-start replay must all enumerate against the same caps, or a
   schedule found with composites would not replay when deposited. *)
let caps_of ~(ctx : Ctx.t) (target : target) =
  let base = Machine.caps target in
  match ctx.Ctx.composites with
  | [] -> base
  | names -> Transfo.Composites.enable ~names base

let rec optimize_ctx ~(ctx : Ctx.t) (strategy : strategy) (target : target)
    (prog : Ir.Prog.t) : outcome =
  let {
    Ctx.seed;
    cache;
    warm_start;
    jobs;
    obs;
    metrics;
    guard;
    faults;
    surrogate;
    filter_ratio;
    dedup;
    visited_dedup;
    exhaustive_depth;
    checkpoint;
    checkpoint_every;
    resume;
    composites = _;
  } =
    ctx
  in
  (* Crash-safe checkpointing (Recover.Store): the search engines
     snapshot their full state at round/level boundaries and, with
     [resume], restore it and continue the exact uninterrupted
     trajectory.  The surrogate model rides along as the opaque
     [snapshot_extra] payload so its weights and pairing ring survive
     the crash too. *)
  let checkpoint_cfg =
    Option.map
      (fun path ->
        { Search.Stochastic.path; every = checkpoint_every; resume })
      checkpoint
  in
  let snapshot_extra =
    match (checkpoint_cfg, surrogate) with
    | Some _, Some m -> Some (fun () -> Surrogate.Model.snapshot m)
    | _ -> None
  in
  let restore_extra =
    match (checkpoint_cfg, surrogate) with
    | Some _, Some m ->
        Some
          (fun json ->
            match Surrogate.Model.restore m json with
            | Ok () -> ()
            | Error e -> raise (Recover.Error (Recover.Corrupt e)))
    | _ -> None
  in
  let caps = caps_of ~ctx target in
  let raw_objective p = Machine.time target p in
  (* Evaluation pipeline: model -> fault injection (tests/bench only;
     [Faults.none] is the identity) -> memoization.  The guard sits
     outermost, inside the search layer, so a quarantined evaluation's
     non-finite score never reaches the cache (memoize skips non-finite
     stores as a second line of defense). *)
  let faulty = Robust.Faults.wrap faults raw_objective in
  (* Cache keys are scoped by target: two targets time the same program
     differently, and one context (hence one cache) routinely spans
     several targets in a batch run (Libgen). *)
  let objective =
    match cache with
    | None -> faulty
    | Some c ->
        Tuning.Cache.memoize_scoped c
          ~scope:(Machine.Desc.target_name target)
          faulty
  in
  let guard = Robust.Guard.instrument ?metrics guard in
  let failures = ref 0 in
  (* Guarded single evaluation for the pass/RL strategies and the
     warm-start replay — same quarantine semantics as the search layer:
     failure scores +inf, is recorded as a [search.eval_error] event
     (i = -1) plus robust.* counters, and counts into the outcome. *)
  let guarded_time p =
    match Robust.Guard.eval ~cfg:guard objective p with
    | Ok t -> t
    | Error f ->
        incr failures;
        Robust.Guard.note ~obs ?metrics
          ~fields:[ Obs.Trace.int "i" (-1) ]
          f;
        infinity
  in
  let hits0, misses0 =
    match cache with
    | None -> (0, 0)
    | Some c -> (Tuning.Cache.hits c, Tuning.Cache.misses c)
  in
  (* An instrumented pool keeps per-worker busy time for [--stats]; the
     default stays clock-free.  Exports happen inside [with_pool] —
     the pool must still be alive to be read. *)
  let instrument = metrics <> None in
  let export_pool pool =
    match metrics with
    | Some m -> Parallel.Pool.export pool m
    | None -> ()
  in
  (* jobs = 0 (the default) is the sequential path, bit-identical to the
     pre-parallel code; jobs >= 1 runs the batched-synchronous-parallel
     search variants, whose trajectory depends on the batch size but not
     on jobs (jobs = 1 and jobs = N give identical results). *)
  (* Surrogate wiring: candidates are only batched — hence rankable and
     dedupable — on the parallel path, so enabling either knob promotes
     a sequential run to a jobs = 1 pool (the caller-participating pool:
     no nested domains, safe inside portfolio/libgen workers).  The
     training group tag scopes ranking pairs to this (target, root):
     runtimes are only comparable within one such group. *)
  let prerank =
    match surrogate with
    | None -> None
    | Some m ->
        let group =
          Machine.Desc.target_name target
          ^ "|"
          ^ Tuning.Record.fingerprint prog
        in
        Some (Surrogate.Model.prerank ~filter_ratio ~group m)
  in
  (* the visited set needs the batched engine too, and it subsumes
     intra-batch dedup (a state must never be measured twice, whether
     its duplicate sits in the same round or an earlier one) *)
  let dedup = dedup || visited_dedup in
  (* checkpointing lives in the batched engines (rounds are their unit
     of determinism), so it promotes a sequential run to jobs = 1 *)
  let batched =
    jobs >= 1 || Option.is_some prerank || dedup || visited_dedup
    || Option.is_some checkpoint_cfg
  in
  let pool_jobs = max jobs 1 in
  let base =
    Obs.Span.run ?metrics ~trace:obs "search" (fun () ->
        match strategy with
        | Naive ->
            let s = Search.Passes.naive caps prog in
            (s, guarded_time s, [], 1)
        | Greedy ->
            let s = Search.Passes.greedy caps prog in
            (s, guarded_time s, [], 1)
        | Heuristic ->
            let s = heuristic_pass_for target caps prog in
            (s, guarded_time s, [], 1)
        | Sampling { budget; space } ->
            let r =
              if batched then
                Parallel.Pool.with_pool ~instrument ~jobs:pool_jobs
                  (fun pool ->
                    let r =
                      Search.Stochastic.random_sampling_parallel ~seed
                        ~init:warm_start ~obs ?metrics ~guard ?prerank
                        ~dedup ~visited_dedup ?checkpoint:checkpoint_cfg
                        ?snapshot_extra ?restore_extra ~pool ~space
                        ~budget caps objective prog
                    in
                    export_pool pool;
                    r)
              else
                Search.Stochastic.random_sampling ~seed ~init:warm_start
                  ~obs ?metrics ~guard ~space ~budget caps objective prog
            in
            failures := !failures + r.failures;
            (r.best, r.best_time, r.best_moves, r.evals)
        | Annealing { budget; space } ->
            let r =
              if batched then
                Parallel.Pool.with_pool ~instrument ~jobs:pool_jobs
                  (fun pool ->
                    let r =
                      Search.Stochastic.simulated_annealing_parallel ~seed
                        ~init:warm_start ~obs ?metrics ~guard ?prerank
                        ~dedup ~visited_dedup ?checkpoint:checkpoint_cfg
                        ?snapshot_extra ?restore_extra ~pool ~space
                        ~budget caps objective prog
                    in
                    export_pool pool;
                    r)
              else
                Search.Stochastic.simulated_annealing ~seed
                  ~init:warm_start ~obs ?metrics ~guard ~space ~budget caps
                  objective prog
            in
            failures := !failures + r.failures;
            (r.best, r.best_time, r.best_moves, r.evals)
        | Rl_search cfg ->
            (* The RL loop evaluates through the same guard: a failed
               episode step scores +inf instead of killing training. *)
            let r, _agent =
              Rl.Perfllm.optimize ~cfg ~init:warm_start ~seed caps
                guarded_time prog
            in
            (r.best, r.best_time, r.best_moves, r.evaluations)
        | Portfolio { budget } ->
            let o, _winner =
              optimize_portfolio_ctx
                ~ctx:{ ctx with Ctx.guard }
                ~members:(default_portfolio ~seed ~budget ())
                target prog
            in
            failures := !failures + o.failures;
            (o.schedule, o.time_s, o.moves, o.evaluations)
        | Exhaustive ->
            (* sequential and deterministic; depth comes from the
               context (Ctx.with_exhaustive_depth) *)
            let r =
              Search.Exhaustive.run ~obs ?metrics ~guard
                ?checkpoint:checkpoint_cfg ~depth:exhaustive_depth caps
                objective prog
            in
            failures := !failures + r.failures;
            (r.best, r.best_time, r.best_moves, r.evals))
  in
  (* Pass strategies cannot absorb a warm-start sequence themselves:
     replay it and keep whichever schedule is faster, so a warm run
     never finishes behind the database's recorded best. *)
  let schedule, time_s, moves, evaluations =
    let s, t, m, e = base in
    if warm_start = [] || m <> [] then base
    else
      Obs.Span.run ?metrics ~trace:obs "warm-start" (fun () ->
          let warm, applied =
            Search.Stochastic.replay_skipping caps prog warm_start
          in
          let wt = guarded_time warm in
          if wt < t then (warm, wt, applied, e + 1) else (s, t, m, e + 1))
  in
  let cache_hits, cache_misses =
    match cache with
    | None -> (0, 0)
    | Some c ->
        (Tuning.Cache.hits c - hits0, Tuning.Cache.misses c - misses0)
  in
  (match (cache, metrics) with
  | Some c, Some m -> Tuning.Cache.export c m
  | _ -> ());
  {
    schedule;
    time_s;
    moves;
    evaluations;
    cache_hits;
    cache_misses;
    failures = !failures;
  }

(* Race portfolio members across domains; each member runs its own
   sequential search (jobs = 0 inside workers), so a member's result is
   independent of how the race is scheduled.  The winner is the fastest
   schedule among the *surviving* members, ties resolved by member
   order — deterministic for any [jobs].

   Degradation: members run under [Parallel.Pool.map_result], so one
   member crashing (a strategy bug, a hostile budget) does not cancel
   the race — it becomes a [portfolio.member_error] event and a
   [robust.member_failures] count, and the winner is picked among the
   survivors.  Only when every member dies does the race raise
   [Portfolio_failed] with the per-member errors.  A dead member's
   partial trace buffer is dropped (only its error event is folded), so
   the merged stream's [search.eval_error] count still equals the
   summed [failures] of the survivors.

   The returned outcome carries the winner's schedule but the total
   evaluation count of the surviving members (what the race actually
   spent and can account for); cache counters are the winner's own;
   [failures] sums the survivors' quarantined evaluations. *)
and optimize_portfolio_ctx ~(ctx : Ctx.t)
    ~(members : portfolio_member list) (target : target)
    (prog : Ir.Prog.t) : outcome * string =
  let { Ctx.jobs; obs; metrics; _ } = ctx in
  let members = Array.of_list members in
  let n = Array.length members in
  if n = 0 then invalid_arg "optimize_portfolio: empty portfolio";
  Array.iter
    (fun m ->
      match m.pstrategy with
      | Portfolio _ -> invalid_arg "optimize_portfolio: nested portfolio"
      | _ -> ())
    members;
  (* Each member traces into its own buffer sink; the buffers are
     folded into [obs] in member order after the race, prefixed with a
     [portfolio.member] header — so the merged stream does not depend
     on race scheduling.  The metrics registry is shared (it is
     mutex-protected and its counters commute). *)
  let traced = Obs.Trace.enabled obs in
  let sinks =
    Array.init n (fun _ ->
        if traced then Obs.Trace.make_buffer () else Obs.Trace.null)
  in
  (* Each member runs its own sequential search (jobs = 0 inside the
     workers) under its own seed and trace buffer; everything else —
     cache, warm start, guard, faults, metrics — is the shared ctx. *)
  (* checkpointing is disabled inside the race: one checkpoint file
     cannot hold five members' states, and a member is cheap to rerun *)
  let run i =
    let m = members.(i) in
    optimize_ctx
      ~ctx:
        {
          ctx with
          Ctx.seed = m.pseed;
          obs = sinks.(i);
          jobs = 0;
          checkpoint = None;
          resume = false;
        }
      m.pstrategy target prog
  in
  let jobs = max 1 (min jobs n) in
  let instrument = metrics <> None in
  let results =
    Parallel.Pool.with_pool ~instrument ~jobs (fun pool ->
        let results =
          Parallel.Pool.map_result pool run (Array.init n (fun i -> i))
        in
        (match metrics with
        | Some m -> Parallel.Pool.export pool m
        | None -> ());
        results)
  in
  let dead =
    Array.to_list results
    |> List.mapi (fun i r -> (i, r))
    |> List.filter_map (fun (i, r) ->
           match r with
           | Ok _ -> None
           | Error e -> Some (members.(i).plabel, Printexc.to_string e))
  in
  (match (metrics, dead) with
  | Some m, _ :: _ ->
      Obs.Metrics.incr m ~by:(List.length dead) "robust.member_failures"
  | _ -> ());
  if List.length dead = n then raise (Portfolio_failed dead);
  let besti = ref (-1) in
  Array.iteri
    (fun i r ->
      match r with
      | Error _ -> ()
      | Ok (o : outcome) ->
          if !besti < 0 then besti := i
          else begin
            match results.(!besti) with
            | Ok b -> if o.time_s < b.time_s then besti := i
            | Error _ -> assert false
          end)
    results;
  let besti = !besti in
  let winner =
    match results.(besti) with Ok o -> o | Error _ -> assert false
  in
  if traced then
    Array.iteri
      (fun i r ->
        match r with
        | Ok (o : outcome) ->
            Obs.Trace.emit obs "portfolio.member" (fun () ->
                Obs.Trace.
                  [
                    str "label" members.(i).plabel;
                    num "time_s" o.time_s;
                    int "evals" o.evaluations;
                  ]);
            Obs.Trace.append ~into:obs sinks.(i)
        | Error e ->
            Obs.Trace.emit obs "portfolio.member_error" (fun () ->
                Obs.Trace.
                  [
                    str "label" members.(i).plabel;
                    str "error" (Printexc.to_string e);
                  ]))
      results;
  if traced then
    Obs.Trace.emit obs "portfolio.winner" (fun () ->
        Obs.Trace.
          [
            str "label" members.(besti).plabel; num "time_s" winner.time_s;
          ]);
  let sum_survivors f =
    Array.fold_left
      (fun acc r -> match r with Ok o -> acc + f o | Error _ -> acc)
      0 results
  in
  let total_evals = sum_survivors (fun o -> o.evaluations) in
  let total_failures = sum_survivors (fun o -> o.failures) in
  ( { winner with evaluations = total_evals; failures = total_failures },
    members.(besti).plabel )

(* One tuned request, ready to deposit: optimize under the context and
   build the replayed-and-retimed database record of the winner in the
   same call — the entry a long-running consumer (the serve daemon, the
   CLI's optimize verb) needs, so each does not reimplement the
   "optimize, then Warmstart.record_of, then decide recordability"
   dance.  The record is [None] when the winner carries no move trace
   (pass strategies), when some move no longer replays, or when the
   replayed schedule would record a *slower* time than the outcome —
   depositing that would make a future warm start worse than cold. *)
let optimize_recorded ~(ctx : Ctx.t) ~kernel ~target_name strategy
    (target : target) (prog : Ir.Prog.t) : outcome * Tuning.Record.t option
    =
  let o = optimize_ctx ~ctx strategy target prog in
  (* an empty move list is still recordable: it replays to the root, so
     a kernel whose naive form is already optimal warms up like any
     other instead of re-searching forever *)
  let record =
    match
      Tuning.Warmstart.record_of
        ~objective:(fun q -> Machine.time target q)
        ~caps:(caps_of ~ctx target) ~kernel ~target:target_name ~root:prog
        ~moves:o.moves ~evals:o.evaluations
    with
    | Error _ -> None
    | Ok r ->
        if r.Tuning.Record.best_time <= o.time_s *. (1. +. 1e-9) then Some r
        else None
  in
  (o, record)

(* ------------------------------------------------------------------ *)
(* Legacy optional-argument wrappers                                   *)
(* ------------------------------------------------------------------ *)

(* Kept for source compatibility (deprecated in the docs): each is
   exactly its _ctx counterpart over [Ctx.of_options]. *)

let optimize ?seed ?cache ?warm_start ?jobs ?obs ?metrics ?guard ?faults
    strategy target prog =
  optimize_ctx
    ~ctx:
      (Ctx.of_options ?seed ?cache ?warm_start ?jobs ?obs ?metrics ?guard
         ?faults ())
    strategy target prog

let optimize_portfolio ?cache ?warm_start ?jobs ?obs ?metrics ?guard
    ?faults ~members target prog =
  optimize_portfolio_ctx
    ~ctx:
      (Ctx.of_options ?cache ?warm_start ?jobs ?obs ?metrics ?guard ?faults
         ())
    ~members target prog

(* Best-of: run a heuristic pass and a search, keep the winner — the
   usual production setting.  The pass runs sequentially (it is a
   single construction); only the search uses [jobs]. *)
let optimize_best ?seed ?cache ?warm_start ?jobs ?obs ?metrics ?guard
    ?faults ?(budget = 300) target prog =
  let ctx =
    Ctx.of_options ?seed ?cache ?warm_start ?jobs ?obs ?metrics ?guard
      ?faults ()
  in
  let h = optimize_ctx ~ctx:{ ctx with Ctx.jobs = 0 } Heuristic target prog in
  let s =
    optimize_ctx ~ctx
      (Annealing { budget; space = Search.Stochastic.Heuristic })
      target prog
  in
  if h.time_s <= s.time_s then h else s
