(* PerfDojo: the top-level facade.

   This module ties the IR, the transformation engine, the performance
   models and the search/RL machinery into the two interfaces the paper
   describes:

   - {!Game}: the interactive "performance game" (§2) — a session over a
     program where each move is a semantics-preserving transformation
     and the score is the modelled runtime.  This is the environment
     PerfLLM trains in, and equally the interface for manual
     transformation-centric optimization (Figure 2).
   - {!optimize}: one-call automatic optimization under a chosen
     strategy (the §4.1 passes, §4.2 stochastic searches, or §3 RL). *)

module Ir = Ir
module Interp = Interp
module Transform = Transform
module Machine = Machine
module Kernels = Kernels
module Search = Search
module Rl = Rl
module Baselines = Baselines
module Codegen = Codegen
module Util = Util
module Tuning = Tuning

type target = Machine.Desc.target

(* ------------------------------------------------------------------ *)
(* The performance game                                                *)
(* ------------------------------------------------------------------ *)

module Game = struct
  type t = {
    session : Transform.Engine.session;
    target : target;
    reward_c : float;
    mutable evaluations : int;
  }

  let start (target : target) (prog : Ir.Prog.t) : t =
    Ir.Validate.check_exn prog;
    let caps = Machine.caps target in
    let session = Transform.Engine.start caps prog in
    let t0 = Machine.time target prog in
    { session; target; reward_c = t0; evaluations = 1 }

  let state (g : t) = g.session.current
  let moves_played (g : t) =
    List.map Transform.Xforms.describe (Transform.Engine.moves g.session)

  (* Applicable moves at the current state, each with its description. *)
  let moves (g : t) : (int * string) list =
    List.mapi
      (fun i inst -> (i, Transform.Xforms.describe inst))
      (Transform.Engine.applicable g.session)

  let time (g : t) : float =
    g.evaluations <- g.evaluations + 1;
    Machine.time g.target (state g)

  (* Reward of the current state: r = c / T (§3.1). *)
  let reward (g : t) : float = g.reward_c /. Float.max (time g) 1e-12

  (* Play move [i] from the current applicable list; returns the new
     runtime. *)
  let play (g : t) (i : int) : float =
    let insts = Transform.Engine.applicable g.session in
    match List.nth_opt insts i with
    | None -> invalid_arg "Game.play: no such move"
    | Some inst ->
        ignore (Transform.Engine.apply g.session inst);
        time g

  (* Play a move by its description string. *)
  let play_named (g : t) (name : string) : float =
    let insts = Transform.Engine.applicable g.session in
    match
      List.find_opt (fun i -> Transform.Xforms.describe i = name) insts
    with
    | None -> invalid_arg (Printf.sprintf "Game.play_named: %S not applicable" name)
    | Some inst ->
        ignore (Transform.Engine.apply g.session inst);
        time g

  let undo (g : t) = Transform.Engine.undo g.session
  let undo_at (g : t) k = Transform.Engine.undo_at g.session k

  (* Numerical check of the whole session against the initial program —
     the empirical validation loop of §2.2. *)
  let verify (g : t) : (unit, string) result =
    Interp.equivalent g.session.initial (state g)
end

(* ------------------------------------------------------------------ *)
(* One-call optimization                                               *)
(* ------------------------------------------------------------------ *)

type strategy =
  | Naive (* fuse + reuse until exhaustion (§4.1) *)
  | Greedy (* naive + hardware transformations exhaustively *)
  | Heuristic (* hardware-expert pass *)
  | Sampling of { budget : int; space : Search.Stochastic.space }
  | Annealing of { budget : int; space : Search.Stochastic.space }
  | Rl_search of Rl.Perfllm.config

type outcome = {
  schedule : Ir.Prog.t;
  time_s : float;
  moves : string list;
  evaluations : int;
  cache_hits : int; (* memoized objective lookups answered from cache *)
  cache_misses : int; (* lookups that ran the performance model *)
}

let heuristic_pass_for (target : target) caps prog =
  match target with
  | Machine.Desc.Snitch _ -> Search.Passes.heuristic caps prog
  | Machine.Desc.Cpu _ -> Search.Passes.cpu_heuristic caps prog
  | Machine.Desc.Gpu g ->
      Search.Passes.gpu_heuristic ~warp:g.warp
        ~score:(fun p -> Machine.time target p)
        caps prog

let optimize ?(seed = 1) ?cache ?(warm_start = []) (strategy : strategy)
    (target : target) (prog : Ir.Prog.t) : outcome =
  let caps = Machine.caps target in
  let raw_objective p = Machine.time target p in
  let objective =
    match cache with
    | None -> raw_objective
    | Some c -> Tuning.Cache.memoize c raw_objective
  in
  let hits0, misses0 =
    match cache with
    | None -> (0, 0)
    | Some c -> (Tuning.Cache.hits c, Tuning.Cache.misses c)
  in
  let base =
    match strategy with
    | Naive ->
        let s = Search.Passes.naive caps prog in
        (s, objective s, [], 1)
    | Greedy ->
        let s = Search.Passes.greedy caps prog in
        (s, objective s, [], 1)
    | Heuristic ->
        let s = heuristic_pass_for target caps prog in
        (s, objective s, [], 1)
    | Sampling { budget; space } ->
        let r =
          Search.Stochastic.random_sampling ~seed ~init:warm_start ~space
            ~budget caps objective prog
        in
        (r.best, r.best_time, r.best_moves, r.evals)
    | Annealing { budget; space } ->
        let r =
          Search.Stochastic.simulated_annealing ~seed ~init:warm_start ~space
            ~budget caps objective prog
        in
        (r.best, r.best_time, r.best_moves, r.evals)
    | Rl_search cfg ->
        let r, _agent =
          Rl.Perfllm.optimize ~cfg ~init:warm_start ~seed caps objective prog
        in
        (r.best, r.best_time, r.best_moves, r.evaluations)
  in
  (* Pass strategies cannot absorb a warm-start sequence themselves:
     replay it and keep whichever schedule is faster, so a warm run
     never finishes behind the database's recorded best. *)
  let schedule, time_s, moves, evaluations =
    let s, t, m, e = base in
    if warm_start = [] || m <> [] then base
    else
      let warm, applied =
        Search.Stochastic.replay_skipping caps prog warm_start
      in
      let wt = objective warm in
      if wt < t then (warm, wt, applied, e + 1) else (s, t, m, e + 1)
  in
  let cache_hits, cache_misses =
    match cache with
    | None -> (0, 0)
    | Some c ->
        (Tuning.Cache.hits c - hits0, Tuning.Cache.misses c - misses0)
  in
  { schedule; time_s; moves; evaluations; cache_hits; cache_misses }

(* Best-of: run a heuristic pass and a search, keep the winner — the
   usual production setting. *)
let optimize_best ?(seed = 1) ?cache ?(warm_start = []) ?(budget = 300)
    target prog =
  let h = optimize ~seed ?cache ~warm_start Heuristic target prog in
  let s =
    optimize ~seed ?cache ~warm_start
      (Annealing { budget; space = Search.Stochastic.Heuristic })
      target prog
  in
  if h.time_s <= s.time_s then h else s
