(* The tuning-service wire protocol.

   One JSON object per message through Util.Json's canonical printer:
   fixed member order, round-trip-exact floats, so encode is a
   deterministic function of the value and decode∘encode is the byte
   identity — the same discipline as the tuning database and the trace
   sink, checked by the QCheck round-trip properties in test_serve.

   Decoding is strict: a wrong version, an unknown kind, a missing or
   ill-typed member is an [Error], never a silent default — a server
   must not guess what a client meant. *)

module J = Util.Json

let version = 1

type request =
  | Optimize of {
      id : int;
      kernel : string;
      target : string;
      strategy : string;
      budget : int;
      deadline_ms : int;
      force : bool;
    }
  | Query of { id : int; kernel : string; target : string }
  | Generate of {
      id : int;
      kernel : string;
      target : string;
      strategy : string;
      budget : int;
      deadline_ms : int;
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

let request_id = function
  | Optimize { id; _ }
  | Query { id; _ }
  | Generate { id; _ }
  | Stats { id }
  | Shutdown { id } ->
      id

let request_kind = function
  | Optimize _ -> "optimize"
  | Query _ -> "query"
  | Generate _ -> "generate"
  | Stats _ -> "stats"
  | Shutdown _ -> "shutdown"

type error_code =
  | Overloaded
  | Bad_request
  | Protocol_error
  | Deadline
  | Faulted of string

let error_code_name = function
  | Overloaded -> "overloaded"
  | Bad_request -> "bad_request"
  | Protocol_error -> "protocol"
  | Deadline -> "deadline"
  | Faulted cls -> "faulted." ^ cls

let error_code_of_name = function
  | "overloaded" -> Some Overloaded
  | "bad_request" -> Some Bad_request
  | "protocol" -> Some Protocol_error
  | "deadline" -> Some Deadline
  | s ->
      let prefix = "faulted." in
      let n = String.length prefix in
      if String.length s >= n && String.sub s 0 n = prefix then
        Some (Faulted (String.sub s n (String.length s - n)))
      else None

type response =
  | Optimized of {
      id : int;
      kernel : string;
      target : string;
      warm : bool;
      time_s : float;
      moves : string list;
      script : string;
      evaluations : int;
      failures : int;
    }
  | Queried of {
      id : int;
      kernel : string;
      target : string;
      found : bool;
      time_s : float;
      moves : string list;
    }
  | Generated of {
      id : int;
      kernel : string;
      target : string;
      warm : bool;
      time_s : float;
      c_entry : string;
      c : string;
    }
  | Stats_reply of {
      id : int;
      counters : (string * int) list;
      gauges : (string * float) list;
    }
  | Shutdown_ack of { id : int; records : int }
  | Error of { id : int; code : error_code; msg : string }

let response_id = function
  | Optimized { id; _ }
  | Queried { id; _ }
  | Generated { id; _ }
  | Stats_reply { id; _ }
  | Shutdown_ack { id; _ }
  | Error { id; _ } ->
      id

let response_kind = function
  | Optimized _ -> "optimized"
  | Queried _ -> "queried"
  | Generated _ -> "generated"
  | Stats_reply _ -> "stats"
  | Shutdown_ack _ -> "shutdown"
  | Error _ -> "error"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let jint i = J.Num (float_of_int i)
let jstrs ss = J.Arr (List.map (fun s -> J.Str s) ss)

(* The kind and version lead every message, then the id, then the
   kind-specific members in declaration order. *)
let head kind_key kind id =
  [ (kind_key, J.Str kind); ("v", jint version); ("id", jint id) ]

let request_json = function
  | Optimize { id; kernel; target; strategy; budget; deadline_ms; force } ->
      J.Obj
        (head "req" "optimize" id
        @ [
            ("kernel", J.Str kernel);
            ("target", J.Str target);
            ("strategy", J.Str strategy);
            ("budget", jint budget);
            ("deadline_ms", jint deadline_ms);
            ("force", J.Bool force);
          ])
  | Query { id; kernel; target } ->
      J.Obj
        (head "req" "query" id
        @ [ ("kernel", J.Str kernel); ("target", J.Str target) ])
  | Generate { id; kernel; target; strategy; budget; deadline_ms } ->
      J.Obj
        (head "req" "generate" id
        @ [
            ("kernel", J.Str kernel);
            ("target", J.Str target);
            ("strategy", J.Str strategy);
            ("budget", jint budget);
            ("deadline_ms", jint deadline_ms);
          ])
  | Stats { id } -> J.Obj (head "req" "stats" id)
  | Shutdown { id } -> J.Obj (head "req" "shutdown" id)

let response_json = function
  | Optimized
      { id; kernel; target; warm; time_s; moves; script; evaluations; failures }
    ->
      J.Obj
        (head "resp" "optimized" id
        @ [
            ("kernel", J.Str kernel);
            ("target", J.Str target);
            ("warm", J.Bool warm);
            ("time_s", J.Num time_s);
            ("moves", jstrs moves);
            ("script", J.Str script);
            ("evaluations", jint evaluations);
            ("failures", jint failures);
          ])
  | Queried { id; kernel; target; found; time_s; moves } ->
      J.Obj
        (head "resp" "queried" id
        @ [
            ("kernel", J.Str kernel);
            ("target", J.Str target);
            ("found", J.Bool found);
            ("time_s", J.Num time_s);
            ("moves", jstrs moves);
          ])
  | Generated { id; kernel; target; warm; time_s; c_entry; c } ->
      J.Obj
        (head "resp" "generated" id
        @ [
            ("kernel", J.Str kernel);
            ("target", J.Str target);
            ("warm", J.Bool warm);
            ("time_s", J.Num time_s);
            ("c_entry", J.Str c_entry);
            ("c", J.Str c);
          ])
  | Stats_reply { id; counters; gauges } ->
      J.Obj
        (head "resp" "stats" id
        @ [
            ( "counters",
              J.Obj (List.map (fun (k, v) -> (k, jint v)) counters) );
            ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) gauges));
          ])
  | Shutdown_ack { id; records } ->
      J.Obj (head "resp" "shutdown" id @ [ ("records", jint records) ])
  | Error { id; code; msg } ->
      J.Obj
        (head "resp" "error" id
        @ [ ("code", J.Str (error_code_name code)); ("msg", J.Str msg) ])

let encode_request r = J.to_string (request_json r)
let encode_response r = J.to_string (response_json r)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* [Error] below always means [Stdlib.result]'s — the [response]
   constructor of the same name is disambiguated by the annotations *)
let field name conv obj : ('a, string) result =
  match J.member name obj with
  | None -> Error (Printf.sprintf "missing member %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "ill-typed member %S" name))

let to_bool = function J.Bool b -> Some b | _ -> None

let to_strings v =
  match J.to_list v with
  | None -> None
  | Some items ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | J.Str s :: rest -> go (s :: acc) rest
        | _ -> None
      in
      go [] items

let to_int_pairs = function
  | J.Obj members ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, v) :: rest -> (
            match J.to_int v with
            | Some i -> go ((k, i) :: acc) rest
            | None -> None)
      in
      go [] members
  | _ -> None

let to_float_pairs = function
  | J.Obj members ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, v) :: rest -> (
            match J.to_float v with
            | Some f -> go ((k, f) :: acc) rest
            | None -> None)
      in
      go [] members
  | _ -> None

(* Parse the shared envelope: the kind under [kind_key], the version
   (rejected unless exactly {!version}) and the correlation id. *)
let envelope kind_key line =
  let* obj =
    match J.of_string line with
    | Error msg -> Error ("unparseable message: " ^ msg)
    | Ok (J.Obj _ as o) -> Ok o
    | Ok _ -> Error "message is not a JSON object"
  in
  let* kind = field kind_key J.to_str obj in
  let* v = field "v" J.to_int obj in
  let* () =
    if v = version then Ok ()
    else Error (Printf.sprintf "unsupported protocol version %d" v)
  in
  let* id = field "id" J.to_int obj in
  Ok (obj, kind, id)

let decode_request line : (request, string) result =
  let* obj, kind, id = envelope "req" line in
  match kind with
  | "optimize" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      let* strategy = field "strategy" J.to_str obj in
      let* budget = field "budget" J.to_int obj in
      let* deadline_ms = field "deadline_ms" J.to_int obj in
      let* force = field "force" to_bool obj in
      Ok (Optimize { id; kernel; target; strategy; budget; deadline_ms; force })
  | "query" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      Ok (Query { id; kernel; target })
  | "generate" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      let* strategy = field "strategy" J.to_str obj in
      let* budget = field "budget" J.to_int obj in
      let* deadline_ms = field "deadline_ms" J.to_int obj in
      Ok (Generate { id; kernel; target; strategy; budget; deadline_ms })
  | "stats" -> Ok (Stats { id })
  | "shutdown" -> Ok (Shutdown { id })
  | k -> Error (Printf.sprintf "unknown request kind %S" k)

let decode_response line : (response, string) result =
  let* obj, kind, id = envelope "resp" line in
  match kind with
  | "optimized" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      let* warm = field "warm" to_bool obj in
      let* time_s = field "time_s" J.to_float obj in
      let* moves = field "moves" to_strings obj in
      (* absent on replies from pre-script servers; tolerated so mixed
         deployments keep talking *)
      let script =
        match Option.bind (J.member "script" obj) J.to_str with
        | Some s -> s
        | None -> ""
      in
      let* evaluations = field "evaluations" J.to_int obj in
      let* failures = field "failures" J.to_int obj in
      Ok
        (Optimized
           {
             id; kernel; target; warm; time_s; moves; script; evaluations;
             failures;
           })
  | "queried" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      let* found = field "found" to_bool obj in
      let* time_s = field "time_s" J.to_float obj in
      let* moves = field "moves" to_strings obj in
      Ok (Queried { id; kernel; target; found; time_s; moves })
  | "generated" ->
      let* kernel = field "kernel" J.to_str obj in
      let* target = field "target" J.to_str obj in
      let* warm = field "warm" to_bool obj in
      let* time_s = field "time_s" J.to_float obj in
      let* c_entry = field "c_entry" J.to_str obj in
      let* c = field "c" J.to_str obj in
      Ok (Generated { id; kernel; target; warm; time_s; c_entry; c })
  | "stats" ->
      let* counters = field "counters" to_int_pairs obj in
      let* gauges = field "gauges" to_float_pairs obj in
      Ok (Stats_reply { id; counters; gauges })
  | "shutdown" ->
      let* records = field "records" J.to_int obj in
      Ok (Shutdown_ack { id; records })
  | "error" ->
      let* code_s = field "code" J.to_str obj in
      let* code =
        match error_code_of_name code_s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown error code %S" code_s)
      in
      let* msg = field "msg" J.to_str obj in
      Ok (Error { id; code; msg })
  | k -> Error (Printf.sprintf "unknown response kind %S" k)
