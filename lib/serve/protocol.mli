(** The tuning-service wire protocol: typed requests and responses with
    a canonical one-line JSON encoding.

    Every message is one JSON object; requests carry a ["req"] kind
    member, responses a ["resp"] kind member, and both carry the
    client-chosen correlation [id] echoed back verbatim.  The encoding
    is canonical ({!Util.Json.to_string}): members in a fixed order,
    round-trip-exact floats — decode∘encode is the identity on bytes,
    the property the protocol round-trip tests pin down.

    Versioning is explicit: both encoders stamp {!version} as ["v"],
    and the decoders reject other versions rather than mis-parse. *)

val version : int

(** {1 Requests} *)

type request =
  | Optimize of {
      id : int;
      kernel : string;  (** kernel label, e.g. ["softmax"] *)
      target : string;  (** target short name or alias, e.g. ["x86"] *)
      strategy : string;  (** CLI strategy spelling, e.g. ["annealing"] *)
      budget : int;  (** search budget; [<= 0] means the server default *)
      deadline_ms : int;
          (** queueing deadline; [0] means the server default *)
      force : bool;  (** bypass the warm fast path and re-optimize *)
    }
  | Query of { id : int; kernel : string; target : string }
      (** fingerprint lookup only — never touches the search *)
  | Generate of {
      id : int;
      kernel : string;
      target : string;
      strategy : string;
      budget : int;
      deadline_ms : int;
    }  (** a {!Libgen}-style pair: optimized C for one (kernel, target) *)
  | Stats of { id : int }
  | Shutdown of { id : int }

val request_id : request -> int
val request_kind : request -> string
(** ["optimize"] / ["query"] / ["generate"] / ["stats"] / ["shutdown"]. *)

(** {1 Responses} *)

type error_code =
  | Overloaded  (** admission control: the pending queue is full *)
  | Bad_request  (** unknown kernel / target / strategy, bad field *)
  | Protocol_error  (** unparseable or ill-framed message *)
  | Deadline  (** the request expired in the queue *)
  | Faulted of string
      (** the optimization failed; the payload is the
          {!Robust.Guard.failure_class} (["rejected"], ["non_finite"],
          ["exhausted"]) *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

type response =
  | Optimized of {
      id : int;
      kernel : string;
      target : string;
      warm : bool;  (** answered from the database without any search *)
      time_s : float;
      moves : string list;
      script : string;
          (** the schedule as a [pds] script (schema-3 provenance);
              [""] when replying from a record that predates scripts *)
      evaluations : int;
      failures : int;
    }
  | Queried of {
      id : int;
      kernel : string;
      target : string;
      found : bool;
      time_s : float;  (** [0.] when not found *)
      moves : string list;
    }
  | Generated of {
      id : int;
      kernel : string;
      target : string;
      warm : bool;
      time_s : float;
      c_entry : string;  (** entry-point symbol of the emitted C *)
      c : string;  (** the full translation unit *)
    }
  | Stats_reply of {
      id : int;
      counters : (string * int) list;
      gauges : (string * float) list;
    }
  | Shutdown_ack of { id : int; records : int }
  | Error of { id : int; code : error_code; msg : string }

val response_id : response -> int
val response_kind : response -> string

(** {1 Encoding} *)

val encode_request : request -> string
(** One-line canonical JSON (no trailing newline). *)

val decode_request : string -> (request, string) result
(** Strict: unknown kinds, wrong version, missing or ill-typed members
    are errors, never silent defaults. *)

val encode_response : response -> string
val decode_response : string -> (response, string) result
