(** Client side of the tuning service: connect to a server's
    Unix-domain socket, exchange framed {!Protocol} messages, close.

    One connection carries any number of request/response exchanges in
    order.  Connection failures propagate as [Unix.Unix_error] (the CLI
    renders them as its one-line error); a response the server framed
    but this library cannot parse is an [Error _] from {!request}. *)

type t

val connect : ?max_frame:int -> string -> t
(** Connect to the socket at the given path.  Raises [Unix.Unix_error]
    (e.g. [ENOENT], [ECONNREFUSED]) when no server is listening. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response. *)

val close : t -> unit

val with_connection :
  ?max_frame:int -> string -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)
