(** Client side of the tuning service: connect to a server's
    Unix-domain socket, exchange framed {!Protocol} messages, close.

    One connection carries any number of request/response exchanges in
    order.  Connection failures propagate as [Unix.Unix_error] (the CLI
    renders them as its one-line error); request-level failures are the
    typed {!error}. *)

type t

type error =
  | Timeout of int
      (** no response arrived within the request's [deadline_ms] *)
  | Transport of string  (** connection or framing failure *)
  | Decode of string
      (** the server framed a response this library cannot parse *)

val error_message : error -> string

val connect : ?max_frame:int -> string -> t
(** Connect to the socket at the given path.  Raises [Unix.Unix_error]
    (e.g. [ENOENT], [ECONNREFUSED]) when no server is listening. *)

val request :
  ?deadline_ms:int -> t -> Protocol.request -> (Protocol.response, error) result
(** Send one request and block for its response.  With [deadline_ms]
    the wait for the response is bounded ([select]-based on the raw
    descriptor): expiry returns [Timeout] without reading, and the
    connection should then be considered desynchronized and closed —
    the late response, if any, is still in flight.  Note the server may
    have executed a timed-out request; only re-issue idempotent ones. *)

val close : t -> unit

val with_connection : ?max_frame:int -> string -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)

val request_retry :
  ?attempts:int ->
  ?base_delay_ms:int ->
  ?deadline_ms:int ->
  ?max_frame:int ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, error) result
(** One request with bounded exponential-backoff retry over {e fresh}
    connections: attempt [k] (0-based) sleeps [base_delay_ms * 2^(k-1)]
    first, so a client rides out a server restart.  Defaults: 3
    attempts, 100 ms base delay, no per-attempt deadline.  Connection
    failures, transport failures and timeouts retry; a [Decode] error
    does not (a reply did arrive — re-issuing could double-execute).

    {b Only pass idempotent requests} (query / optimize / generate /
    stats): a timed-out attempt may still have executed server-side.
    Raises [Invalid_argument] on [attempts < 1] or a negative delay. *)
