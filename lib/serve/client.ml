type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  max_frame : int;
}

let connect ?(max_frame = Frame.max_payload_default) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    max_frame;
  }

let request t req =
  Frame.write t.oc (Protocol.encode_request req);
  match Frame.read ~max:t.max_frame t.ic with
  | Error e -> Error (Frame.error_message e)
  | Ok payload -> Protocol.decode_response payload

let close t =
  (* the channels share [fd]; closing it once is enough, flushing first *)
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?max_frame path f =
  let t = connect ?max_frame path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
