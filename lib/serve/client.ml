type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  max_frame : int;
}

type error =
  | Timeout of int
  | Transport of string
  | Decode of string

let error_message = function
  | Timeout ms -> Printf.sprintf "no response within %d ms" ms
  | Transport msg -> msg
  | Decode msg -> Printf.sprintf "unparseable response: %s" msg

let connect ?(max_frame = Frame.max_payload_default) path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    max_frame;
  }

(* The deadline is select-based on the raw fd, which is sound here
   because the channel buffer is empty between exchanges: the server
   sends exactly one response per request and [Frame.read] consumes the
   whole frame. *)
let request ?deadline_ms t req =
  Frame.write t.oc (Protocol.encode_request req);
  let ready =
    match deadline_ms with
    | None -> true
    | Some ms ->
        let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
        let rec wait () =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining <= 0. then false
          else
            match Unix.select [ t.fd ] [] [] remaining with
            | [], _, _ -> false
            | _ :: _, _, _ -> true
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        wait ()
  in
  match deadline_ms with
  | Some ms when not ready -> Error (Timeout ms)
  | _ -> (
      match Frame.read ~max:t.max_frame t.ic with
      | Error e -> Error (Transport (Frame.error_message e))
      | Ok payload -> (
          match Protocol.decode_response payload with
          | Ok resp -> Ok resp
          | Error msg -> Error (Decode msg)))

let close t =
  (* the channels share [fd]; closing it once is enough, flushing first *)
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?max_frame path f =
  let t = connect ?max_frame path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Bounded exponential-backoff retry over fresh connections: attempt k
   sleeps [base_delay_ms * 2^(k-1)] first, so a client rides out a
   server restart.  Only safe for idempotent requests — the caller
   (the CLI gates shutdown out) must guarantee that, because a timed-out
   request may still execute on the server. *)
let request_retry ?(attempts = 3) ?(base_delay_ms = 100) ?deadline_ms
    ?max_frame ~socket req =
  if attempts < 1 then invalid_arg "Client.request_retry: attempts < 1";
  if base_delay_ms < 0 then
    invalid_arg "Client.request_retry: negative base_delay_ms";
  let rec go k last =
    if k >= attempts then last
    else begin
      if k > 0 then
        Unix.sleepf (float_of_int (base_delay_ms * (1 lsl (k - 1))) /. 1000.);
      let result =
        match connect ?max_frame socket with
        | exception Unix.Unix_error (e, _, _) ->
            Error (Transport (Unix.error_message e))
        | t ->
            Fun.protect
              ~finally:(fun () -> close t)
              (fun () ->
                match request ?deadline_ms t req with
                | r -> r
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Transport (Unix.error_message e))
                | exception Sys_error msg -> Error (Transport msg))
      in
      match result with
      | Ok _ as r -> r
      | Error (Decode _) as r -> r (* a reply arrived; don't re-issue *)
      | Error _ as r -> go (k + 1) r
    end
  in
  go 0 (Error (Transport "unreachable"))
