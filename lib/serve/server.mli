(** The tuning service: an always-on server over the batch optimizer.

    One server owns one tolerantly-loaded tuning {!Tuning.Db} plus one
    scoped {!Tuning.Cache}, shared by every request it ever answers:

    - a {e warm} request — a [query], or an [optimize]/[generate] whose
      kernel fingerprint already has a database record — is answered
      inline from the database in microseconds, without touching the
      search or the performance models (no [search.*] trace events);
    - a {e cold} request runs the full guarded search on a worker and
      deposits its winner, so every future caller of the same pair is
      warm.

    Admission control and backpressure: cold requests enter a bounded
    pending queue ([queue_depth]); when it is full the request is
    rejected immediately with a typed [overloaded] response instead of
    queuing unboundedly.  A dispatcher thread drains the queue in
    batches onto a {!Parallel.Pool} of [workers] domains.  Each request
    runs under the configured {!Robust.Guard} (fuel, retries) and fault
    injection, with an optional per-request deadline — an expired
    request is answered [deadline] without running.  A failed or
    faulted optimization degrades to a typed [faulted.<class>] error
    response; it never takes down the server, and its non-finite score
    never reaches the shared cache or database.

    Observability: [serve.accept] / [serve.dispatch] / [serve.reply] /
    [serve.reject] / [serve.shutdown] trace events (the sink is
    mutex-synchronized, safe for concurrent writers), request-latency
    histograms [serve.latency_warm_s] / [serve.latency_cold_s] with
    exact quantiles, the [serve.queue_depth] gauge and warm/cold/reject
    counters — all exported through the [stats] request. *)

type config = {
  queue_depth : int;  (** bounded pending queue for cold requests *)
  workers : int;  (** pool parallelism for cold requests (>= 1) *)
  default_budget : int;  (** for requests with [budget <= 0] *)
  deadline_ms : int;  (** default queueing deadline; [0] = none *)
  fuel : int option;
      (** per-request evaluation fuel via {!Robust.Guard} *)
  seed : int;
  db_file : string option;
      (** checkpoint target: loaded at {!create}, saved crash-safely at
          shutdown and every 64 deposits.  Between checkpoints each
          deposit is appended (fsynced) to a write-ahead journal at
          [db_file ^ ".wal"] {e before} the response is sent, and
          {!create} replays any journal a crashed predecessor left — so
          [kill -9] loses zero acknowledged deposits *)
  max_frame : int;  (** frame size limit for the transports *)
  kernels : Kernels.entry list;  (** the servable kernel registry *)
  guard : Robust.Guard.config;
  faults : Robust.Faults.config;
  obs : Obs.Trace.sink;  (** synchronized internally *)
  metrics : Obs.Metrics.t option;
      (** registry to export into; the server creates a private one
          when absent (the [stats] request always has data) *)
  surrogate : bool;
      (** share one {!Perfdojo.Surrogate.Model} across all cold
          requests: every guarded evaluation trains it online, and
          [stats] exports the [surrogate.*] counters *)
  filter_ratio : float;
      (** when [surrogate] is on and this is [< 1.0], each candidate
          batch is pre-ranked by the model and only the top fraction
          reaches the simulator *)
  dedup : bool;  (** intra-batch candidate dedup for cold searches *)
  visited_dedup : bool;
      (** canonical visited-set dedup for cold searches: a state
          measured once is never re-measured across rounds *)
  exhaustive_depth : int;
      (** depth bound for the ["exhaustive"] strategy (default 3) *)
}

val default_config : config
(** [queue_depth 16], [workers 1], [default_budget 300], no deadline,
    no fuel, seed 1, no database file, {!Frame.max_payload_default},
    the full kernel suite, default guard, no faults, untraced, no
    surrogate ([filter_ratio 1.0], no dedup, no visited-set,
    [exhaustive_depth 3]). *)

type t

val create : ?start:bool -> config -> t
(** Build a server: load the database (tolerantly — skipped lines
    surface as a [db.skipped_lines] trace event), create the shared
    cache, and — unless [~start:false] — launch the dispatcher.
    Raises [Failure] when the database file exists but is unreadable. *)

val start : t -> unit
(** Launch the dispatcher thread if not yet running ([create
    ~start:false] defers it — tests pause dispatch to pin down
    admission-control behaviour deterministically). *)

val db : t -> Tuning.Db.t
val metrics : t -> Obs.Metrics.t

val surrogate_model : t -> Perfdojo.Surrogate.Model.t option
(** The shared cost model, when [config.surrogate] was set — tests
    inspect its update counter to check that cold requests train it. *)

val stopping : t -> bool

(** {1 Submitting requests} *)

type ticket

val submit_async :
  t -> Protocol.request -> [ `Done of Protocol.response | `Queued of ticket ]
(** Admission: warm and administrative requests (and every rejection)
    complete inline as [`Done]; an admitted cold request returns a
    [`Queued] ticket to {!await}. *)

val await : ticket -> Protocol.response
(** Block until the dispatcher fulfils the ticket. *)

val submit : t -> Protocol.request -> Protocol.response
(** [submit_async] + [await]: the synchronous entry the transports and
    in-process callers use.  Safe to call from any thread or domain. *)

(** {1 Lifecycle} *)

val stop : t -> unit
(** Graceful shutdown: refuse new cold work, drain the in-flight
    batches and the pending queue, checkpoint the database to
    [db_file] via the atomic {!Tuning.Db.save}, and emit a final
    [serve.shutdown] trace event.  Idempotent; concurrent callers
    block until the first finishes. *)

(** {1 Transports} *)

val run_pipe : t -> in_channel -> out_channel -> unit
(** Serve framed requests from a channel pair (the [--pipe] mode tests
    and CI drive over stdin/stdout).  Requests are answered in order;
    EOF or a [shutdown] request stops the server gracefully.  An
    unparseable or oversized message is answered with a typed
    [protocol] error and the stream survives; a torn frame closes it. *)

val run_socket :
  ?should_stop:(unit -> bool) -> ?on_ready:(unit -> unit) -> t -> string ->
  unit
(** Bind a Unix-domain socket at the given path and serve connections,
    one thread per connection, until a [shutdown] request arrives or
    [should_stop] turns true (polled a few times per second — the CLI
    points it at a SIGINT flag).  [on_ready] runs once the socket is
    bound and listening (the CLI's banner; tests' ready signal).
    Binding errors (unwritable directory,
    already-bound path) propagate as [Unix.Unix_error] for the CLI's
    one-line error contract.  On exit the server stops gracefully and
    the socket file is removed. *)

(** {1 Shared parsing} *)

val strategy_of_string :
  budget:int -> string -> (Perfdojo.strategy, string) result
(** The CLI strategy vocabulary (naive, greedy, heuristic,
    sampling[-edges], annealing[-edges], rl, portfolio) — shared by the
    request handlers and the serve/client CLI. *)
