(** Length-prefixed framing for protocol messages.

    Wire format of one frame: the payload byte count as ASCII decimal,
    a ['\n'], the payload bytes, a closing ['\n'] — self-describing,
    printable for JSON payloads, and trivially parseable from any
    language.  The closing newline doubles as a checksum against length
    desynchronization: a frame whose payload is not followed by ['\n']
    is {!Malformed}.

    Failure handling is typed so a server can distinguish a clean
    disconnect ({!Eof}) from a half-written frame ({!Torn}) and keep a
    connection alive across an {!Oversized} frame — the oversized
    payload is consumed and discarded, leaving the stream positioned at
    the next frame. *)

type error =
  | Eof  (** clean end of stream before any byte of a frame *)
  | Torn of string  (** the stream ended mid-frame; payload lost *)
  | Oversized of { len : int; max : int }
      (** the declared length exceeds [max]; the payload was consumed
          and discarded, so the stream is still framed *)
  | Malformed of string  (** unparseable length header or bad trailer *)

val error_message : error -> string

val max_payload_default : int
(** 4 MiB — far above any protocol message (generated C included) but
    small enough to bound a hostile allocation. *)

(** {1 Pure string transport (tests, QCheck properties)} *)

val encode : string -> string
(** The exact bytes {!write} would send. *)

val decode : ?max:int -> string -> (string * string, error) result
(** [decode s] splits the first frame off [s]: [(payload, rest)].  An
    incomplete trailing frame is {!Torn}; an {!Oversized} frame is an
    error but the returned exception carries enough to skip it (use
    {!decode_skip} to resume). *)

val decode_skip : ?max:int -> string -> (string * string, error) result * string
(** Like {!decode} but also returns the stream remainder {e after} the
    offending frame on {!Oversized} — what a surviving connection reads
    next.  On success and on other errors the remainder equals
    {!decode}'s. *)

(** {1 Channel transport} *)

val write : out_channel -> string -> unit
(** Write one frame and flush. *)

val read : ?max:int -> in_channel -> (string, error) result
(** Read one frame.  On {!Oversized} the payload has been consumed, so
    the next {!read} starts at the following frame; on {!Torn} /
    {!Malformed} the stream position is unspecified and the connection
    should close. *)
