(* The tuning service engine.

   Concurrency layout:
   - any number of submitter threads/domains call [submit] (transport
     connection threads, in-process tests, the bench harness);
   - warm and administrative requests are answered inline by the
     submitter itself — the fast path takes a couple of mutex hops and
     one database lookup, no search, no evaluation;
   - cold requests pass admission control into a bounded queue; one
     dispatcher thread drains the queue in batches onto a
     Parallel.Pool of [workers] domains and fulfils the tickets.

   Shared state and its locks:
   - tuning_db + db_mutex: lookups, deposits, checkpoints;
   - cache: internally sharded (Tuning.Cache is domain-safe);
   - metrics: internally mutex-guarded;
   - obs: wrapped in Obs.Trace.synchronized at [create];
   - queue/state/in_flight + qm (qcv wakes the dispatcher, drained
     signals stop progress and batch completion).

   A request's failure is always converted to a typed error response —
   the Robust.Guard failure classes for faulted optimizations — and
   never escapes to kill the dispatcher or a connection thread. *)

module P = Perfdojo

type config = {
  queue_depth : int;
  workers : int;
  default_budget : int;
  deadline_ms : int;
  fuel : int option;
  seed : int;
  db_file : string option;
  max_frame : int;
  kernels : Kernels.entry list;
  guard : Robust.Guard.config;
  faults : Robust.Faults.config;
  obs : Obs.Trace.sink;
  metrics : Obs.Metrics.t option;
  surrogate : bool;
  filter_ratio : float;
  dedup : bool;
  visited_dedup : bool;
  exhaustive_depth : int;
}

let default_config =
  {
    queue_depth = 16;
    workers = 1;
    default_budget = 300;
    deadline_ms = 0;
    fuel = None;
    seed = 1;
    db_file = None;
    max_frame = Frame.max_payload_default;
    kernels = Kernels.table3 @ Kernels.snitch_micro;
    guard = Robust.Guard.default;
    faults = Robust.Faults.none;
    obs = Obs.Trace.null;
    metrics = None;
    surrogate = false;
    filter_ratio = 1.0;
    dedup = false;
    visited_dedup = false;
    exhaustive_depth = 3;
  }

type ticket = {
  rid : int;
  rkind : string;
  work : unit -> Protocol.response;
  enqueued_at : float;
  deadline_at : float option;  (* absolute, seconds *)
  tm : Mutex.t;
  tcv : Condition.t;
  mutable reply : Protocol.response option;
}

type stop_state = Running | Stopping | Stopped

type t = {
  cfg : config;
  obs : Obs.Trace.sink;
  traced : bool;
  ms : Obs.Metrics.t;
  tuning_db : Tuning.Db.t;
  db_mutex : Mutex.t;
  (* write-ahead journal at [db_file ^ ".wal"] (present iff db_file
     is): every deposit is fsync-appended there before the reply is
     sent, the database file itself is checkpointed every
     [wal_checkpoint_every] appends (and at [stop]), and [create]
     replays the journal — so kill -9 loses zero acknowledged
     deposits.  Guarded by db_mutex. *)
  wal : Recover.Journal.writer option;
  mutable wal_appends : int;
  cache : Tuning.Cache.t;
  (* shared learned cost model: every cold optimization trains it
     online (Surrogate.Model is internally locked), and when
     cfg.filter_ratio < 1 it pre-ranks candidate batches *)
  model : P.Surrogate.Model.t option;
  (* kernel label -> (root program, dual fingerprint keys), built once:
     the warm path must not pay a program construction per lookup *)
  roots : (string, Ir.Prog.t * (string * string)) Hashtbl.t;
  roots_mutex : Mutex.t;
  qm : Mutex.t;
  qcv : Condition.t;
  drained : Condition.t;
  queue : ticket Queue.t;
  mutable in_flight : int;
  mutable state : stop_state;
  mutable dispatcher : Thread.t option;
}

let db t = t.tuning_db
let metrics t = t.ms
let surrogate_model t = t.model
let stopping t = t.state <> Running

(* ------------------------------------------------------------------ *)
(* Shared parsing                                                      *)
(* ------------------------------------------------------------------ *)

let strategy_of_string ~budget s : (P.strategy, string) result =
  match s with
  | "naive" -> Ok P.Naive
  | "greedy" -> Ok P.Greedy
  | "heuristic" -> Ok P.Heuristic
  | "sampling" ->
      Ok (P.Sampling { budget; space = Search.Stochastic.Heuristic })
  | "sampling-edges" ->
      Ok (P.Sampling { budget; space = Search.Stochastic.Edges })
  | "annealing" ->
      Ok (P.Annealing { budget; space = Search.Stochastic.Heuristic })
  | "annealing-edges" ->
      Ok (P.Annealing { budget; space = Search.Stochastic.Edges })
  | "rl" ->
      Ok
        (P.Rl_search
           {
             P.Rl.Perfllm.default_config with
             episodes = max 4 (budget / 24);
             max_steps = 20;
           })
  | "portfolio" -> Ok (P.Portfolio { budget })
  | "exhaustive" -> Ok P.Exhaustive
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_queue_gauge_locked t =
  Obs.Metrics.set t.ms "serve.queue_depth"
    (float_of_int (Queue.length t.queue))

let emit t name fields = if t.traced then Obs.Trace.emit t.obs name fields

let sanitize s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    s

let entry_symbol ~kernel ~tname =
  "perfdojo_" ^ sanitize kernel ^ "_" ^ sanitize tname

let root_of t (e : Kernels.entry) : Ir.Prog.t * (string * string) =
  with_lock t.roots_mutex (fun () ->
      match Hashtbl.find_opt t.roots e.label with
      | Some pair -> pair
      | None ->
          let root = e.build () in
          let keys = Tuning.Record.root_keys root in
          Hashtbl.replace t.roots e.label (root, keys);
          (root, keys))

(* Best record for the pair whose fingerprint matches the current root
   — canonical or legacy, so pre-canonicalization databases stay warm —
   the only records the warm path may answer from (Db.query returns
   best-first, so the first match is the fastest trustworthy one). *)
let warm_lookup t ~kernel ~tname ~keys : Tuning.Record.t option =
  with_lock t.db_mutex (fun () ->
      Tuning.Db.query ~kernel ~target:tname t.tuning_db
      |> List.find_opt (Tuning.Record.matches_root ~keys))

let wal_checkpoint_every = 64

let deposit t (record : Tuning.Record.t option) =
  match record with
  | None -> ()
  | Some r ->
      with_lock t.db_mutex (fun () ->
          match Tuning.Db.add t.tuning_db r with
          | `Duplicate -> ()
          | `Inserted | `Improved -> (
              Obs.Metrics.incr t.ms "serve.deposits";
              match t.wal with
              | None -> ()
              | Some w -> (
                  (* WAL append (fsynced) makes the deposit durable
                     before the reply; the full database file is only
                     rewritten at checkpoint cadence *)
                  match Util.Json.of_string (Tuning.Record.to_json r) with
                  | Error msg -> failwith msg
                  | Ok data ->
                      Recover.Journal.append w data;
                      Obs.Metrics.incr t.ms "journal.appends";
                      emit t "journal.append" (fun () ->
                          Obs.Trace.
                            [
                              str "kind" "serve";
                              str "key"
                                (r.Tuning.Record.kernel ^ "|"
                               ^ r.Tuning.Record.target);
                            ]);
                      t.wal_appends <- t.wal_appends + 1;
                      if t.wal_appends >= wal_checkpoint_every then begin
                        (match t.cfg.db_file with
                        | Some f -> Tuning.Db.save t.tuning_db f
                        | None -> ());
                        Recover.Journal.reset w;
                        t.wal_appends <- 0
                      end)))

let err t ~id ~code ~msg : Protocol.response =
  Obs.Metrics.incr t.ms "serve.errors";
  Protocol.Error { id; code; msg }

(* ------------------------------------------------------------------ *)
(* Cold request bodies (run on dispatcher pool workers)                *)
(* ------------------------------------------------------------------ *)

let request_ctx t sink ~warm_start =
  let guard =
    match t.cfg.fuel with
    | None -> t.cfg.guard
    | Some _ as fuel -> { t.cfg.guard with Robust.Guard.fuel }
  in
  let ctx =
    P.Ctx.(
      default |> with_seed t.cfg.seed |> with_cache t.cache |> with_obs sink
      |> with_metrics t.ms |> with_guard guard |> with_faults t.cfg.faults
      |> with_warm_start warm_start
      |> with_filter_ratio t.cfg.filter_ratio
      |> with_dedup t.cfg.dedup
      |> with_visited_dedup t.cfg.visited_dedup
      |> with_exhaustive_depth t.cfg.exhaustive_depth)
  in
  match t.model with
  | None -> ctx
  | Some m -> P.Ctx.with_surrogate m ctx

(* Optimize under the shared context into a private trace buffer, fold
   the buffer back, degrade any failure — a raising strategy, an
   all-evaluations-quarantined (+inf) outcome — to a typed error
   response with the guard's fault class. *)
let run_cold t ~id ~kernel ~tname ~target ~strat ~root finish :
    Protocol.response =
  let sink = if t.traced then Obs.Trace.make_buffer () else Obs.Trace.null in
  let warm_start =
    with_lock t.db_mutex (fun () ->
        Tuning.Warmstart.moves_for t.tuning_db ~kernel ~target:tname ~root)
  in
  let ctx = request_ctx t sink ~warm_start in
  let result =
    match P.optimize_recorded ~ctx ~kernel ~target_name:tname strat target root
    with
    | pair -> Ok pair
    | exception e -> Error (Robust.Guard.rejected_of_exn e)
  in
  if t.traced then Obs.Trace.append ~into:t.obs sink;
  match result with
  | Error f ->
      err t ~id
        ~code:(Protocol.Faulted (Robust.Guard.failure_class f))
        ~msg:(Robust.Guard.failure_message f)
  | Ok (o, _) when not (Float.is_finite o.P.time_s) ->
      err t ~id
        ~code:(Protocol.Faulted "non_finite")
        ~msg:"every evaluation of the request was quarantined"
  | Ok (o, record) ->
      deposit t record;
      finish o record

let record_script (record : Tuning.Record.t option) =
  match record with
  | Some r -> Option.value r.Tuning.Record.script ~default:""
  | None -> ""

let cold_optimize t ~id ~kernel ~tname ~target ~strat ~root () =
  run_cold t ~id ~kernel ~tname ~target ~strat ~root
    (fun (o : P.outcome) record ->
      Protocol.Optimized
        {
          id;
          kernel;
          target = tname;
          warm = false;
          time_s = o.time_s;
          moves = o.moves;
          script = record_script record;
          evaluations = o.evaluations;
          failures = o.failures;
        })

let cold_generate t ~id ~kernel ~tname ~target ~strat ~root () =
  run_cold t ~id ~kernel ~tname ~target ~strat ~root
    (fun (o : P.outcome) (_ : Tuning.Record.t option) ->
      let c_entry = entry_symbol ~kernel ~tname in
      Protocol.Generated
        {
          id;
          kernel;
          target = tname;
          warm = false;
          time_s = o.time_s;
          c_entry;
          c = Codegen.program ~entry:c_entry o.schedule;
        })

(* ------------------------------------------------------------------ *)
(* Tickets, dispatcher, admission                                      *)
(* ------------------------------------------------------------------ *)

let fulfil (tk : ticket) resp =
  with_lock tk.tm (fun () ->
      tk.reply <- Some resp;
      Condition.broadcast tk.tcv)

let await (tk : ticket) =
  Mutex.lock tk.tm;
  while tk.reply = None do
    Condition.wait tk.tcv tk.tm
  done;
  let r = Option.get tk.reply in
  Mutex.unlock tk.tm;
  r

let run_ticket t (tk : ticket) : Protocol.response =
  let now = Obs.Span.now () in
  match tk.deadline_at with
  | Some d when now > d ->
      err t ~id:tk.rid ~code:Protocol.Deadline
        ~msg:
          (Printf.sprintf "request expired after %.0f ms in the queue"
             ((now -. tk.enqueued_at) *. 1000.))
  | _ ->
      emit t "serve.dispatch" (fun () ->
          Obs.Trace.[ int "id" tk.rid; str "kind" tk.rkind ]);
      tk.work ()

(* Completion of a cold ticket: latency histogram (queue wait plus
   processing — what a client actually observes), reply event,
   fulfilment. *)
let finish_ticket t (tk : ticket) resp =
  Obs.Metrics.observe t.ms "serve.latency_cold_s"
    (Obs.Span.now () -. tk.enqueued_at);
  emit t "serve.reply" (fun () ->
      Obs.Trace.
        [
          int "id" tk.rid;
          str "kind" (Protocol.response_kind resp);
          bool "warm" false;
        ]);
  fulfil tk resp

let dispatcher_loop t =
  Parallel.Pool.with_pool ~instrument:true ~jobs:t.cfg.workers (fun pool ->
      let running = ref true in
      while !running do
        Mutex.lock t.qm;
        while Queue.is_empty t.queue && t.state = Running do
          Condition.wait t.qcv t.qm
        done;
        if Queue.is_empty t.queue then begin
          (* state left Running and nothing is pending: exit *)
          running := false;
          Condition.broadcast t.drained;
          Mutex.unlock t.qm
        end
        else begin
          let batch = ref [] in
          let n = ref 0 in
          while (not (Queue.is_empty t.queue)) && !n < t.cfg.workers do
            batch := Queue.pop t.queue :: !batch;
            incr n
          done;
          let batch = Array.of_list (List.rev !batch) in
          t.in_flight <- Array.length batch;
          set_queue_gauge_locked t;
          Mutex.unlock t.qm;
          let results = Parallel.Pool.map_result pool (run_ticket t) batch in
          Array.iteri
            (fun i r ->
              let tk = batch.(i) in
              let resp =
                match r with
                | Ok resp -> resp
                | Error e ->
                    (* run_ticket catches request failures itself; this
                       is the last line of defence for a bug in the
                       handler — the ticket still gets an answer *)
                    let f = Robust.Guard.rejected_of_exn e in
                    err t ~id:tk.rid
                      ~code:(Protocol.Faulted (Robust.Guard.failure_class f))
                      ~msg:(Robust.Guard.failure_message f)
              in
              finish_ticket t tk resp)
            results;
          Parallel.Pool.export pool t.ms;
          Mutex.lock t.qm;
          t.in_flight <- 0;
          Condition.broadcast t.drained;
          Mutex.unlock t.qm
        end
      done)

let start t =
  with_lock t.qm (fun () ->
      if t.dispatcher = None && t.state = Running then
        t.dispatcher <- Some (Thread.create dispatcher_loop t))

let create ?(start = true) (cfg : config) : t =
  let obs = Obs.Trace.synchronized cfg.obs in
  let ms =
    match cfg.metrics with Some m -> m | None -> Obs.Metrics.create ()
  in
  let tuning_db =
    match cfg.db_file with
    | None -> Tuning.Db.create ()
    | Some f -> (
        match Tuning.Db.load ~obs f with
        | Ok db -> db
        | Error msg -> failwith msg)
  in
  (* WAL recovery: fold any journaled deposits a crashed predecessor
     acknowledged but never checkpointed back into the database, then
     checkpoint and truncate so the journal never grows unbounded. *)
  let wal, wal_replayed =
    match cfg.db_file with
    | None -> (None, 0)
    | Some f -> (
        let path = f ^ ".wal" in
        match Recover.Journal.replay path with
        | Error e -> raise (Recover.Error e)
        | Ok (entries, _torn) ->
            let n =
              List.fold_left
                (fun n data ->
                  match
                    Tuning.Record.of_json (Util.Json.to_string data)
                  with
                  | Ok r ->
                      ignore (Tuning.Db.add tuning_db r);
                      n + 1
                  | Error msg ->
                      raise (Recover.Error (Recover.Corrupt msg)))
                0 entries
            in
            let w = Recover.Journal.open_writer path in
            if n > 0 then begin
              Tuning.Db.save tuning_db f;
              Recover.Journal.reset w
            end;
            (Some w, n))
  in
  if wal_replayed > 0 then begin
    Obs.Metrics.incr ms ~by:wal_replayed "journal.replayed";
    if Obs.Trace.enabled obs then
      Obs.Trace.emit obs "journal.replay" (fun () ->
          Obs.Trace.[ str "kind" "serve"; int "entries" wal_replayed ])
  end;
  let t =
    {
      cfg;
      obs;
      traced = Obs.Trace.enabled obs;
      ms;
      tuning_db;
      db_mutex = Mutex.create ();
      wal;
      wal_appends = 0;
      cache = Tuning.Cache.create ();
      model =
        (if cfg.surrogate then Some (P.Surrogate.Model.create ())
         else None);
      roots = Hashtbl.create 16;
      roots_mutex = Mutex.create ();
      qm = Mutex.create ();
      qcv = Condition.create ();
      drained = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      state = Running;
      dispatcher = None;
    }
  in
  Obs.Metrics.set t.ms "serve.queue_depth" 0.;
  if start then
    t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t

(* Graceful shutdown: refuse new cold admissions, drain what is queued
   and in flight, checkpoint, trace.  Idempotent; a concurrent caller
   blocks until the first finishes. *)
let stop t =
  Mutex.lock t.qm;
  match t.state with
  | Stopped -> Mutex.unlock t.qm
  | Stopping ->
      while t.state <> Stopped do
        Condition.wait t.drained t.qm
      done;
      Mutex.unlock t.qm
  | Running ->
      t.state <- Stopping;
      Condition.broadcast t.qcv;
      let disp = t.dispatcher in
      (match disp with
      | Some _ ->
          while not (Queue.is_empty t.queue && t.in_flight = 0) do
            Condition.wait t.drained t.qm
          done
      | None ->
          (* dispatch was never started: nothing can drain the queue,
             so fail the queued tickets instead of hanging awaiters *)
          Queue.iter
            (fun tk ->
              fulfil tk
                (err t ~id:tk.rid ~code:Protocol.Overloaded
                   ~msg:"server stopped before the request was dispatched"))
            t.queue;
          Queue.clear t.queue;
          set_queue_gauge_locked t);
      t.dispatcher <- None;
      Mutex.unlock t.qm;
      (match disp with Some th -> Thread.join th | None -> ());
      (match t.cfg.db_file with
      | Some f ->
          with_lock t.db_mutex (fun () ->
              Tuning.Db.save t.tuning_db f;
              (* everything journaled is now in the checkpoint *)
              match t.wal with
              | Some w ->
                  Recover.Journal.reset w;
                  Recover.Journal.close w
              | None -> ())
      | None -> ());
      emit t "serve.shutdown" (fun () ->
          Obs.Trace.
            [
              int "records" (Tuning.Db.size t.tuning_db);
              bool "checkpointed" (t.cfg.db_file <> None);
            ]);
      with_lock t.qm (fun () ->
          t.state <- Stopped;
          Condition.broadcast t.drained)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let overloaded t ~id ~kind ~msg =
  Obs.Metrics.incr t.ms "serve.rejected_overload";
  emit t "serve.reject" (fun () ->
      Obs.Trace.[ int "id" id; str "kind" kind; str "reason" msg ]);
  err t ~id ~code:Protocol.Overloaded ~msg

let admit t (tk : ticket) : [ `Queued of ticket | `Done of Protocol.response ]
    =
  Mutex.lock t.qm;
  let verdict =
    if t.state <> Running then `Reject "server is shutting down"
    else if Queue.length t.queue >= t.cfg.queue_depth then
      `Reject
        (Printf.sprintf "pending queue is full (depth %d)" t.cfg.queue_depth)
    else begin
      Queue.push tk t.queue;
      set_queue_gauge_locked t;
      Obs.Metrics.incr t.ms "serve.cold_misses";
      Condition.signal t.qcv;
      `Accept
    end
  in
  Mutex.unlock t.qm;
  match verdict with
  | `Accept -> `Queued tk
  | `Reject msg -> `Done (overloaded t ~id:tk.rid ~kind:tk.rkind ~msg)

(* ------------------------------------------------------------------ *)
(* The stats reply                                                     *)
(* ------------------------------------------------------------------ *)

let stats_reply t ~id : Protocol.response =
  with_lock t.qm (fun () -> set_queue_gauge_locked t);
  let snap = Obs.Metrics.snapshot t.ms in
  let counters =
    snap.Obs.Metrics.counters
    @ List.map
        (fun (n, (s : Obs.Metrics.summary)) -> (n ^ ".count", s.count))
        snap.Obs.Metrics.histograms
  in
  let gauges =
    snap.Obs.Metrics.gauges
    @ List.concat_map
        (fun (n, (s : Obs.Metrics.summary)) ->
          [
            (n ^ ".mean", s.mean);
            (n ^ ".p50", s.p50);
            (n ^ ".p90", s.p90);
            (n ^ ".p99", s.p99);
          ])
        snap.Obs.Metrics.histograms
  in
  Protocol.Stats_reply { id; counters; gauges }

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let resolve_kernel t name : (Kernels.entry, string) result =
  match Kernels.find_entry t.cfg.kernels name with
  | e -> Ok e
  | exception Invalid_argument _ ->
      Error
        (Printf.sprintf "unknown kernel %S (available: %s)" name
           (String.concat ", "
              (List.map (fun (e : Kernels.entry) -> e.label) t.cfg.kernels)))

let resolve_target name : (string * Machine.Desc.target, string) result =
  match Machine.Desc.resolve_target name with
  | Some pair -> Ok pair
  | None ->
      Error
        (Printf.sprintf "unknown target %S (%s)" name
           (String.concat ", " (List.map fst Machine.Desc.known_targets)))

(* Resolve the (kernel, target, strategy) triple of a tuning request;
   any failure is the client's fault, answered [bad_request]. *)
let resolve_tuning t ~kernel ~target ~strategy ~budget =
  let* e = resolve_kernel t kernel in
  let* tname, tgt = resolve_target target in
  let budget = if budget <= 0 then t.cfg.default_budget else budget in
  let* strat = strategy_of_string ~budget strategy in
  Ok (e, tname, tgt, strat)

let deadline_of t ~enqueued_at ~deadline_ms =
  let ms = if deadline_ms > 0 then deadline_ms else t.cfg.deadline_ms in
  if ms > 0 then Some (enqueued_at +. (float_of_int ms /. 1000.)) else None

let warm_reply t ~t0 resp =
  Obs.Metrics.incr t.ms "serve.warm_hits";
  Obs.Metrics.observe t.ms "serve.latency_warm_s" (Obs.Span.now () -. t0);
  emit t "serve.reply" (fun () ->
      Obs.Trace.
        [
          int "id" (Protocol.response_id resp);
          str "kind" (Protocol.response_kind resp);
          bool "warm" true;
        ]);
  resp

let submit_async t (req : Protocol.request) :
    [ `Done of Protocol.response | `Queued of ticket ] =
  let id = Protocol.request_id req in
  let kind = Protocol.request_kind req in
  let t0 = Obs.Span.now () in
  Obs.Metrics.incr t.ms "serve.requests";
  emit t "serve.accept" (fun () ->
      Obs.Trace.[ int "id" id; str "kind" kind ]);
  let queued tk = admit t tk in
  let ticket work deadline_ms =
    {
      rid = id;
      rkind = kind;
      work;
      enqueued_at = t0;
      deadline_at = deadline_of t ~enqueued_at:t0 ~deadline_ms;
      tm = Mutex.create ();
      tcv = Condition.create ();
      reply = None;
    }
  in
  match req with
  | Protocol.Stats _ -> `Done (stats_reply t ~id)
  | Protocol.Shutdown _ ->
      stop t;
      `Done (Protocol.Shutdown_ack { id; records = Tuning.Db.size t.tuning_db })
  | Protocol.Query { kernel; target; _ } -> (
      match
        let* e = resolve_kernel t kernel in
        let* tname, _ = resolve_target target in
        Ok (e, tname)
      with
      | Error msg -> `Done (err t ~id ~code:Protocol.Bad_request ~msg)
      | Ok (e, tname) -> (
          let _, keys = root_of t e in
          match warm_lookup t ~kernel:e.label ~tname ~keys with
          | Some r ->
              `Done
                (warm_reply t ~t0
                   (Protocol.Queried
                      {
                        id;
                        kernel = e.label;
                        target = tname;
                        found = true;
                        time_s = r.Tuning.Record.best_time;
                        moves = r.Tuning.Record.moves;
                      }))
          | None ->
              (* a miss is still the fast path: no search ran *)
              Obs.Metrics.observe t.ms "serve.latency_warm_s"
                (Obs.Span.now () -. t0);
              `Done
                (Protocol.Queried
                   {
                     id;
                     kernel = e.label;
                     target = tname;
                     found = false;
                     time_s = 0.;
                     moves = [];
                   })))
  | Protocol.Optimize
      { kernel; target; strategy; budget; deadline_ms; force; _ } -> (
      match resolve_tuning t ~kernel ~target ~strategy ~budget with
      | Error msg -> `Done (err t ~id ~code:Protocol.Bad_request ~msg)
      | Ok (e, tname, tgt, strat) -> (
          let root, keys = root_of t e in
          match
            if force then None else warm_lookup t ~kernel:e.label ~tname ~keys
          with
          | Some r ->
              `Done
                (warm_reply t ~t0
                   (Protocol.Optimized
                      {
                        id;
                        kernel = e.label;
                        target = tname;
                        warm = true;
                        time_s = r.Tuning.Record.best_time;
                        moves = r.Tuning.Record.moves;
                        script =
                          Option.value r.Tuning.Record.script ~default:"";
                        evaluations = 0;
                        failures = 0;
                      }))
          | None ->
              queued
                (ticket
                   (cold_optimize t ~id ~kernel:e.label ~tname ~target:tgt
                      ~strat ~root)
                   deadline_ms)))
  | Protocol.Generate { kernel; target; strategy; budget; deadline_ms; _ } -> (
      match resolve_tuning t ~kernel ~target ~strategy ~budget with
      | Error msg -> `Done (err t ~id ~code:Protocol.Bad_request ~msg)
      | Ok (e, tname, tgt, strat) -> (
          let root, keys = root_of t e in
          let warm_c =
            match warm_lookup t ~kernel:e.label ~tname ~keys with
            | None -> None
            | Some r -> (
                (* replay the recorded schedule; a stale record that no
                   longer replays falls through to the cold path *)
                match
                  Transform.Engine.replay_compat (Machine.caps tgt) root
                    r.Tuning.Record.moves
                with
                | Ok sched -> Some (r, sched)
                | Error _ -> None)
          in
          match warm_c with
          | Some (r, sched) ->
              let c_entry = entry_symbol ~kernel:e.label ~tname in
              `Done
                (warm_reply t ~t0
                   (Protocol.Generated
                      {
                        id;
                        kernel = e.label;
                        target = tname;
                        warm = true;
                        time_s = r.Tuning.Record.best_time;
                        c_entry;
                        c = Codegen.program ~entry:c_entry sched;
                      }))
          | None ->
              queued
                (ticket
                   (cold_generate t ~id ~kernel:e.label ~tname ~target:tgt
                      ~strat ~root)
                   deadline_ms)))

let submit t req =
  match submit_async t req with `Done r -> r | `Queued tk -> await tk

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

let protocol_error ~id msg =
  Protocol.Error { id; code = Protocol.Protocol_error; msg }

(* One framed request/response exchange loop over a channel pair.
   [on_eof] distinguishes the transports: the pipe server stops with
   its stdin, a socket connection just closes.  Returns when the
   stream ends or a shutdown request was answered. *)
let serve_channels t ic oc ~on_eof =
  let max = t.cfg.max_frame in
  let rec loop () =
    match Frame.read ~max ic with
    | Error Frame.Eof -> on_eof ()
    | Error (Frame.Oversized _ as e) ->
        (* the payload was consumed; the connection survives *)
        Obs.Metrics.incr t.ms "serve.errors";
        Frame.write oc
          (Protocol.encode_response
             (protocol_error ~id:0 (Frame.error_message e)));
        loop ()
    | Error (Frame.Torn _ as e) | Error (Frame.Malformed _ as e) ->
        (* the stream lost framing: answer if possible, then close *)
        Obs.Metrics.incr t.ms "serve.errors";
        (try
           Frame.write oc
             (Protocol.encode_response
                (protocol_error ~id:0 (Frame.error_message e)))
         with Sys_error _ -> ());
        on_eof ()
    | Ok payload -> (
        match Protocol.decode_request payload with
        | Error msg ->
            Obs.Metrics.incr t.ms "serve.errors";
            Frame.write oc
              (Protocol.encode_response (protocol_error ~id:0 msg));
            loop ()
        | Ok req ->
            let resp = submit t req in
            Frame.write oc (Protocol.encode_response resp);
            (match req with
            | Protocol.Shutdown _ -> () (* submit already stopped us *)
            | _ -> loop ()))
  in
  loop ()

let run_pipe t ic oc = serve_channels t ic oc ~on_eof:(fun () -> stop t)

let run_socket ?(should_stop = fun () -> false) ?(on_ready = fun () -> ()) t
    path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  Unix.listen fd 64;
  on_ready ();
  let conn client =
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    Fun.protect
      ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
      (fun () ->
        try serve_channels t ic oc ~on_eof:(fun () -> ())
        with Sys_error _ | End_of_file -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* poll between accepts so a shutdown request (which flips
         [stopping]) or the caller's flag (SIGINT) ends the loop *)
      let rec accept_loop () =
        if stopping t || should_stop () then ()
        else begin
          (match Unix.select [ fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ :: _, _, _ -> (
              match Unix.accept fd with
              | client, _ -> ignore (Thread.create conn client)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      stop t)
