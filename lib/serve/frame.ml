(* Length-prefixed framing: "<decimal len>\n<payload>\n".

   The pure string functions and the channel functions share the same
   grammar; the QCheck properties in test_serve drive the string pair
   (encode → decode identity, torn/oversized classification) and the
   server drives the channel pair. *)

type error =
  | Eof
  | Torn of string
  | Oversized of { len : int; max : int }
  | Malformed of string

let error_message = function
  | Eof -> "end of stream"
  | Torn what -> "torn frame: stream ended " ^ what
  | Oversized { len; max } ->
      Printf.sprintf "oversized frame: %d bytes exceeds the %d-byte limit"
        len max
  | Malformed what -> "malformed frame: " ^ what

let max_payload_default = 4 * 1024 * 1024

(* The length header is bounded: max_payload_default has 7 digits, so
   anything past 19 digits is garbage, not a huge frame. *)
let max_header_digits = 19

let encode payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* ------------------------------------------------------------------ *)
(* Pure string transport                                               *)
(* ------------------------------------------------------------------ *)

let parse_header (s : string) :
    (int * int, [ `Need_more | `Bad of string ]) result =
  match String.index_opt s '\n' with
  | None ->
      if String.length s > max_header_digits then
        Error (`Bad "length header is not a decimal integer")
      else Error `Need_more
  | Some nl -> (
      let header = String.sub s 0 nl in
      match int_of_string_opt header with
      | Some len when len >= 0 -> Ok (len, nl + 1)
      | _ ->
          Error (`Bad (Printf.sprintf "length header %S is not a decimal \
                                       integer" header)))

let decode ?(max = max_payload_default) (s : string) :
    (string * string, error) result =
  if s = "" then Error Eof
  else
    match parse_header s with
    | Error (`Bad msg) -> Error (Malformed msg)
    | Error `Need_more -> Error (Torn "inside the length header")
    | Ok (len, start) ->
        if len > max then Error (Oversized { len; max })
        else if String.length s < start + len + 1 then
          Error (Torn "inside the payload")
        else if s.[start + len] <> '\n' then
          Error (Malformed "payload is not terminated by a newline")
        else
          Ok
            ( String.sub s start len,
              String.sub s (start + len + 1)
                (String.length s - start - len - 1) )

let decode_skip ?(max = max_payload_default) (s : string) :
    (string * string, error) result * string =
  match decode ~max s with
  | Ok (_, rest) as ok -> (ok, rest)
  | Error (Oversized { len; _ }) as e -> (
      (* skip header + payload + trailer if the stream holds them all *)
      match parse_header s with
      | Ok (_, start) when String.length s >= start + len + 1 ->
          (e, String.sub s (start + len + 1) (String.length s - start - len - 1))
      | _ -> (e, ""))
  | Error _ as e -> (e, s)

(* ------------------------------------------------------------------ *)
(* Channel transport                                                   *)
(* ------------------------------------------------------------------ *)

let write oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

let read ?(max = max_payload_default) ic : (string, error) result =
  (* header: digits up to '\n' *)
  let buf = Buffer.create 16 in
  let rec header first =
    match input_char ic with
    | exception End_of_file ->
        if first then Error Eof else Error (Torn "inside the length header")
    | '\n' -> (
        match int_of_string_opt (Buffer.contents buf) with
        | Some len when len >= 0 -> Ok len
        | _ ->
            Error
              (Malformed
                 (Printf.sprintf "length header %S is not a decimal integer"
                    (Buffer.contents buf))))
    | c ->
        if Buffer.length buf > max_header_digits then
          Error (Malformed "length header is not a decimal integer")
        else begin
          Buffer.add_char buf c;
          header false
        end
  in
  match header true with
  | Error _ as e -> e
  | Ok len ->
      if len > max then begin
        (* consume and discard payload + trailer so the stream stays
           framed and the connection survives the oversized message *)
        let chunk = Bytes.create 65536 in
        let rec skip remaining =
          if remaining <= 0 then ()
          else
            let n = input ic chunk 0 (min remaining (Bytes.length chunk)) in
            if n = 0 then raise End_of_file else skip (remaining - n)
        in
        match skip (len + 1) with
        | () -> Error (Oversized { len; max })
        | exception End_of_file -> Error (Torn "inside the payload")
      end
      else begin
        match really_input_string ic len with
        | exception End_of_file -> Error (Torn "inside the payload")
        | payload -> (
            match input_char ic with
            | exception End_of_file -> Error (Torn "at the frame trailer")
            | '\n' -> Ok payload
            | _ -> Error (Malformed "payload is not terminated by a newline"))
      end
