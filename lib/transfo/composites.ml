open Transform

type composite = {
  cname : string;
  doc : string;
  params : (string * string) list;
  make : (string * string) list -> (Engine.transfo, string) result;
  variants : Xforms.caps -> (string * string) list list;
}

(* ------------------------------------------------------------------ *)
(* Expansion plumbing                                                  *)
(* ------------------------------------------------------------------ *)

(* Composites expand against the atomic action set only (never against
   caps.extra), so a macro-move can never contain another macro-move. *)
let find_atomic caps prog (m : Moveref.t) : (Xforms.instance, string) result =
  let d = Moveref.describe m in
  match Xforms.lookup (Xforms.atomics caps prog) d with
  | Some i -> Ok i
  | None -> Error (d ^ ": not applicable here")

let step prog (inst : Xforms.instance) : (Ir.Prog.t, string) result =
  match inst.apply prog with
  | next -> Ok next
  | exception Xforms.Not_applicable m -> Error m
  | exception Ir.Prog.Invalid_path p ->
      Error ("path vanished: " ^ Xforms.path_str p)

(* Expand a static sequence of move references, validating each against
   the intermediate state it will actually see. *)
let plan caps prog (mrefs : Moveref.t list) :
    (Xforms.instance list, string) result =
  let rec go p acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest -> (
        match find_atomic caps p m with
        | Error e -> Error e
        | Ok inst -> (
            match step p inst with
            | Error e -> Error e
            | Ok q -> go q (inst :: acc) rest))
  in
  go prog [] mrefs

let ( let* ) = Result.bind

let int_arg args name =
  match List.assoc_opt name args with
  | None -> Error (Printf.sprintf "missing argument %s=<int>" name)
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "argument %s: not an integer: %s" name v))

let str_arg args name =
  match List.assoc_opt name args with
  | None -> Error (Printf.sprintf "missing argument %s=<name>" name)
  | Some v -> Ok v

let no_anchor_err tname =
  Printf.sprintf "%s needs an anchor: use 'at <selector> do %s(...)'" tname
    tname

let node_anchored tname targs expand_at : Engine.transfo =
  {
    tname;
    targs;
    expand =
      (fun caps prog ~anchor ->
        if anchor = [] then Error (no_anchor_err tname)
        else expand_at caps prog anchor);
  }

(* ------------------------------------------------------------------ *)
(* The composites                                                      *)
(* ------------------------------------------------------------------ *)

let tile_and_unroll ~f ~u =
  node_anchored "tile_and_unroll"
    [ ("f", string_of_int f); ("u", string_of_int u) ]
    (fun caps prog anchor ->
      if u < 2 then Error "u must be >= 2"
      else if f mod u <> 0 then Error "f must be a multiple of u"
      else
        let mrefs =
          if f = u then
            [ Moveref.Split (anchor, f); Moveref.Unroll (anchor @ [ 0 ]) ]
          else
            [
              Moveref.Split (anchor, f);
              Moveref.Split (anchor @ [ 0 ], u);
              Moveref.Unroll (anchor @ [ 0; 0 ]);
            ]
        in
        plan caps prog mrefs)

let tile_and_vectorize ~lanes =
  node_anchored "tile_and_vectorize"
    [ ("lanes", string_of_int lanes) ]
    (fun caps prog anchor ->
      plan caps prog
        [ Moveref.Split (anchor, lanes); Moveref.Vectorize (anchor @ [ 0 ]) ])

let tile_and_parallelize ~f =
  node_anchored "tile_and_parallelize"
    [ ("f", string_of_int f) ]
    (fun caps prog anchor ->
      plan caps prog
        [ Moveref.Split (anchor, f); Moveref.Parallelize anchor ])

let fuse_chain () =
  node_anchored "fuse_chain" [] (fun caps prog anchor ->
      (* keep fusing the anchor with its (shifting) next sibling while
         legal; refuse only when not even one fusion applies *)
      let rec go p acc =
        match find_atomic caps p (Moveref.Join anchor) with
        | Error e -> if acc = [] then Error e else Ok (List.rev acc)
        | Ok inst -> (
            match step p inst with
            | Error e -> if acc = [] then Error e else Ok (List.rev acc)
            | Ok q -> go q (inst :: acc))
      in
      go prog [])

let hoist_memset () =
  node_anchored "hoist_memset" [] (fun caps prog anchor ->
      match Ir.Prog.node_at prog anchor with
      | exception Ir.Prog.Invalid_path _ -> Error "anchor path does not exist"
      | Ir.Types.Stmt _ -> Error "anchor is a statement, not a scope"
      | Ir.Types.Scope sc -> (
          match sc.body with
          | Ir.Types.Stmt { rhs = Ir.Types.Const _; _ } :: _ :: _ ->
              plan caps prog [ Moveref.Fission (anchor, 1) ]
          | _ ->
              Error
                "anchor body does not start with a constant initialization \
                 followed by more work"))

let split_reduce_unroll ~k =
  node_anchored "split_reduce_unroll"
    [ ("into", string_of_int k) ]
    (fun caps prog anchor ->
      match List.rev anchor with
      | [] -> Error "anchor path is empty"
      | last :: rev_parent ->
          let parent = List.rev rev_parent in
          (* split_reduction splices [init; main; combine] in place of the
             anchor; the accumulator tile is main's sole child *)
          let main = parent @ [ last + 1 ] in
          plan caps prog
            [
              Moveref.Split_reduction (anchor, k);
              Moveref.Unroll (main @ [ 0 ]);
            ])

let all : composite list =
  [
    {
      cname = "tile_and_unroll";
      doc = "split by f, split the tile by u when u < f, unroll the tile";
      params = [ ("f", "tile factor"); ("u", "unroll factor, divides f") ];
      make =
        (fun args ->
          let* f = int_arg args "f" in
          let* u = int_arg args "u" in
          Ok (tile_and_unroll ~f ~u));
      variants =
        (fun caps ->
          List.filter_map
            (fun f ->
              if f >= 2 && f <= caps.Xforms.max_unroll then
                Some [ ("f", string_of_int f); ("u", string_of_int f) ]
              else None)
            caps.Xforms.split_factors);
    };
    {
      cname = "tile_and_vectorize";
      doc = "split by the lane width and vectorize the tile";
      params = [ ("lanes", "vector width, a permitted lane count") ];
      make =
        (fun args ->
          let* lanes = int_arg args "lanes" in
          Ok (tile_and_vectorize ~lanes));
      variants =
        (fun caps ->
          List.map
            (fun l -> [ ("lanes", string_of_int l) ])
            caps.Xforms.vec_lanes);
    };
    {
      cname = "tile_and_parallelize";
      doc = "split by f and run the outer scope on CPU threads";
      params = [ ("f", "tile factor") ];
      make =
        (fun args ->
          let* f = int_arg args "f" in
          Ok (tile_and_parallelize ~f));
      variants =
        (fun caps ->
          if caps.Xforms.can_parallelize then
            List.map
              (fun f -> [ ("f", string_of_int f) ])
              caps.Xforms.split_factors
          else []);
    };
    {
      cname = "fuse_chain";
      doc = "fuse the anchor with following equal-size siblings, repeatedly";
      params = [];
      make = (fun _ -> Ok (fuse_chain ()));
      variants = (fun _ -> [ [] ]);
    };
    {
      cname = "hoist_memset";
      doc = "distribute a leading constant initialization into its own loop";
      params = [];
      make = (fun _ -> Ok (hoist_memset ()));
      variants = (fun _ -> [ [] ]);
    };
    {
      cname = "split_reduce_unroll";
      doc = "k partial accumulators for a reduction, accumulator tile unrolled";
      params = [ ("into", "accumulator count") ];
      make =
        (fun args ->
          let* k = int_arg args "into" in
          Ok (split_reduce_unroll ~k));
      variants =
        (fun caps ->
          List.map
            (fun k -> [ ("into", string_of_int k) ])
            caps.Xforms.reduction_split);
    };
  ]

let names = List.map (fun c -> c.cname) all
let find name = List.find_opt (fun c -> c.cname = name) all

(* ------------------------------------------------------------------ *)
(* Atomic wrappers: script surface names for single moves              *)
(* ------------------------------------------------------------------ *)

let atomic tname targs (mk : Ir.Types.path -> (Moveref.t, string) result) :
    Engine.transfo =
  {
    tname;
    targs;
    expand =
      (fun caps prog ~anchor ->
        let* m = mk anchor in
        let needs_anchor =
          match m with
          | Moveref.Reuse_dims _ | Moveref.Set_storage _
          | Moveref.Reorder_dims _ ->
              false
          | _ -> true
        in
        if needs_anchor && anchor = [] then Error (no_anchor_err tname)
        else
          let* inst = find_atomic caps prog m in
          Ok [ inst ]);
  }

let resolve name args : (Engine.transfo, string) result =
  let node mk = Ok (atomic name args (fun anchor -> mk anchor)) in
  match name with
  | "split" ->
      let* f = int_arg args "factor" in
      node (fun a -> Ok (Moveref.Split (a, f)))
  | "join" -> node (fun a -> Ok (Moveref.Join a))
  | "fission" ->
      let* k = int_arg args "at" in
      node (fun a -> Ok (Moveref.Fission (a, k)))
  | "interchange" -> node (fun a -> Ok (Moveref.Interchange a))
  | "reorder" -> node (fun a -> Ok (Moveref.Reorder a))
  | "unroll" -> node (fun a -> Ok (Moveref.Unroll a))
  | "vectorize" -> node (fun a -> Ok (Moveref.Vectorize a))
  | "parallelize" -> node (fun a -> Ok (Moveref.Parallelize a))
  | "gpu" ->
      let* dim = str_arg args "dim" in
      if dim = "grid" || dim = "block" || dim = "warp" then
        node (fun a -> Ok (Moveref.Gpu (a, dim)))
      else Error "gpu: dim must be grid, block or warp"
  | "pad" ->
      let* m = int_arg args "multiple" in
      node (fun a -> Ok (Moveref.Pad (a, m)))
  | "unannotate" -> node (fun a -> Ok (Moveref.Unannotate a))
  | "ssr" -> node (fun a -> Ok (Moveref.Ssr a))
  | "frep" -> node (fun a -> Ok (Moveref.Frep a))
  | "split_reduction" ->
      let* k = int_arg args "into" in
      node (fun a -> Ok (Moveref.Split_reduction (a, k)))
  | "reuse" ->
      let* b = str_arg args "buffer" in
      let* d = int_arg args "dim" in
      node (fun _ -> Ok (Moveref.Reuse_dims (b, d)))
  | "storage" ->
      let* b = str_arg args "buffer" in
      let* loc = str_arg args "loc" in
      node (fun _ -> Ok (Moveref.Set_storage (b, loc)))
  | "transpose" ->
      let* b = str_arg args "buffer" in
      let* i = int_arg args "swap" in
      node (fun _ -> Ok (Moveref.Reorder_dims (b, i)))
  | _ -> (
      match find name with
      | Some c -> c.make args
      | None ->
          Error
            (Printf.sprintf
               "unknown transformation %S (atomics: split, join, ...; \
                composites: %s)"
               name
               (String.concat ", " names)))

(* ------------------------------------------------------------------ *)
(* Macro-moves for search                                              *)
(* ------------------------------------------------------------------ *)

let scope_anchors prog =
  List.rev
    (Ir.Prog.fold_nodes
       (fun acc p node ->
         match node with Ir.Types.Scope _ -> p :: acc | _ -> acc)
       [] prog)

let macro_instances ~names:selected caps =
  (* close over caps with the hook cleared: expansion must only ever see
     atomic moves, or macros would nest *)
  let base = Xforms.with_extra (fun _ -> []) caps in
  let comps =
    if List.mem "all" selected then all
    else List.filter (fun c -> List.mem c.cname selected) all
  in
  fun prog ->
    let anchors = scope_anchors prog in
    List.concat_map
      (fun c ->
        List.concat_map
          (fun args ->
            match c.make args with
            | Error _ -> []
            | Ok t ->
                List.filter_map
                  (fun anchor ->
                    match t.Engine.expand base prog ~anchor with
                    | Ok (_ :: _ as _insts) ->
                        let args_s =
                          String.concat ","
                            (List.map (fun (k, v) -> k ^ "=" ^ v) args)
                        in
                        Some
                          {
                            Xforms.xname = "composite";
                            target =
                              Printf.sprintf "%s(%s) @ %s" c.cname args_s
                                (Xforms.path_str anchor);
                            apply =
                              (fun p ->
                                match t.Engine.expand base p ~anchor with
                                | Error m -> raise (Xforms.Not_applicable m)
                                | Ok insts ->
                                    List.fold_left
                                      (fun acc (i : Xforms.instance) ->
                                        i.apply acc)
                                      p insts);
                          }
                    | Ok [] | Error _ -> None)
                  anchors)
          (c.variants base))
      comps

let enable ~names:selected caps =
  Xforms.with_extra (macro_instances ~names:selected caps) caps
