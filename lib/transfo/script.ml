open Transform

let version = 1

type stmt =
  | Apply of {
      sel : Target.t option;
      name : string;
      args : (string * string) list;
    }
  | Raw of string

type t = {
  kernel : string option;
  ktarget : string option;
  stmts : (int * stmt) list;
}

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let call_str name args =
  if args = [] then name
  else
    name ^ "("
    ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args)
    ^ ")"

let stmt_to_string = function
  | Apply { sel = Some sel; name; args } ->
      "at " ^ Target.to_string sel ^ " do " ^ call_str name args
  | Apply { sel = None; name; args } -> "do " ^ call_str name args
  | Raw d -> "move " ^ d

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "pds %d\n" version);
  Option.iter (fun k -> Buffer.add_string buf ("kernel " ^ k ^ "\n")) s.kernel;
  Option.iter (fun t -> Buffer.add_string buf ("target " ^ t ^ "\n")) s.ktarget;
  List.iter
    (fun (_, st) ->
      Buffer.add_string buf (stmt_to_string st);
      Buffer.add_char buf '\n')
    s.stmts;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  (* '#' starts a comment unless inside a quoted string *)
  let n = String.length line in
  let rec scan i in_quote =
    if i >= n then line
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_quote)
      | '\\' when in_quote && i + 1 < n -> scan (i + 2) in_quote
      | '#' when not in_quote -> String.sub line 0 i
      | _ -> scan (i + 1) in_quote
  in
  scan 0 false

let parse_call s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None ->
      if s = "" then Error "missing transformation name"
      else Ok (s, [])
  | Some i ->
      let n = String.length s in
      if s.[n - 1] <> ')' then Error "unterminated argument list"
      else
        let name = String.trim (String.sub s 0 i) in
        let inner = String.sub s (i + 1) (n - i - 2) in
        if String.trim inner = "" then Ok (name, [])
        else
          let parts = String.split_on_char ',' inner in
          let rec build acc = function
            | [] -> Ok (name, List.rev acc)
            | kv :: rest -> (
                match String.index_opt kv '=' with
                | None -> Error ("argument without '=': " ^ String.trim kv)
                | Some e ->
                    let k = String.trim (String.sub kv 0 e) in
                    let v =
                      String.trim
                        (String.sub kv (e + 1) (String.length kv - e - 1))
                    in
                    if k = "" || v = "" then
                      Error ("empty argument in: " ^ String.trim kv)
                    else build ((k, v) :: acc) rest)
          in
          build [] parts

(* last " do " outside quotes separates selector from call *)
let split_at_do s =
  let n = String.length s in
  let rec scan i in_quote best =
    if i + 4 > n then best
    else
      match s.[i] with
      | '"' -> scan (i + 1) (not in_quote) best
      | '\\' when in_quote -> scan (i + 2) in_quote best
      | _ when (not in_quote) && String.sub s i 4 = " do " ->
          scan (i + 1) in_quote (Some i)
      | _ -> scan (i + 1) in_quote best
  in
  match scan 0 false None with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 4) (n - i - 4))

let parse text =
  let lines = String.split_on_char '\n' text in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec header = function
    | [] -> Error "empty script: expected 'pds 1' header"
    | (lineno, l) :: rest -> (
        let l = String.trim (strip_comment l) in
        if l = "" then header rest
        else
          match String.split_on_char ' ' l with
          | [ "pds"; v ] -> (
              match int_of_string_opt v with
              | Some 1 -> Ok rest
              | Some v ->
                  err lineno
                    (Printf.sprintf "unsupported script version %d (this \
                                     build reads pds %d)" v version)
              | None -> err lineno "malformed version in 'pds' header")
          | _ -> err lineno "first statement must be the 'pds 1' header")
  in
  let numbered = List.mapi (fun i l -> (i + 1, l)) lines in
  match header numbered with
  | Error e -> Error e
  | Ok rest ->
      let rec go kernel ktarget acc = function
        | [] -> Ok { kernel; ktarget; stmts = List.rev acc }
        | (lineno, raw) :: tail -> (
            let l = String.trim (strip_comment raw) in
            if l = "" then go kernel ktarget acc tail
            else if String.length l > 7 && String.sub l 0 7 = "kernel " then
              go (Some (String.trim (String.sub l 7 (String.length l - 7))))
                ktarget acc tail
            else if String.length l > 7 && String.sub l 0 7 = "target " then
              go kernel
                (Some (String.trim (String.sub l 7 (String.length l - 7))))
                acc tail
            else if String.length l > 5 && String.sub l 0 5 = "move " then
              go kernel ktarget
                ((lineno, Raw (String.trim (String.sub l 5 (String.length l - 5))))
                :: acc)
                tail
            else if String.length l > 3 && String.sub l 0 3 = "at " then
              match split_at_do (String.sub l 3 (String.length l - 3)) with
              | None -> err lineno "'at' statement without ' do '"
              | Some (sel_s, call_s) -> (
                  match Target.parse sel_s with
                  | Error e -> err lineno e
                  | Ok sel -> (
                      match parse_call call_s with
                      | Error e -> err lineno e
                      | Ok (name, args) ->
                          go kernel ktarget
                            ((lineno, Apply { sel = Some sel; name; args })
                            :: acc)
                            tail))
            else if String.length l > 3 && String.sub l 0 3 = "do " then
              match parse_call (String.sub l 3 (String.length l - 3)) with
              | Error e -> err lineno e
              | Ok (name, args) ->
                  go kernel ktarget
                    ((lineno, Apply { sel = None; name; args }) :: acc)
                    tail
            else err lineno ("unrecognized statement: " ^ l))
      in
      go None None [] rest

(* ------------------------------------------------------------------ *)
(* Conversion from recorded describe strings                           *)
(* ------------------------------------------------------------------ *)

let of_moves ?kernel ?ktarget moves =
  let stmt_of d =
    match Moveref.of_describe d with
    | None -> Raw d
    | Some m ->
        let anchor, name, args = Moveref.script_stmt m in
        let sel = Option.map (fun p -> Target.Path p) anchor in
        Apply { sel; name; args }
  in
  {
    kernel;
    ktarget;
    stmts = List.mapi (fun i d -> (i + 1, stmt_of d)) moves;
  }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type run_error = { line : int; stext : string; err : Target.error }

let run_error_to_string { line; stext; err } =
  Printf.sprintf "script line %d (%s): %s" line stext
    (Target.error_to_string err)

let run ?(obs = Obs.Trace.null) caps prog (s : t) =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit obs "script.run" (fun () ->
        [
          Obs.Trace.int "version" version;
          Obs.Trace.int "statements" (List.length s.stmts);
        ]);
  let session = Engine.start ~obs caps prog in
  let fail line st err = Error { line; stext = stmt_to_string st; err } in
  let rec go = function
    | [] ->
        Ok (session.Engine.current,
            List.map Xforms.describe (Engine.moves session))
    | (line, st) :: rest -> (
        match st with
        | Raw d -> (
            match Xforms.lookup (Engine.applicable session) d with
            | Some inst -> (
                match Engine.apply session inst with
                | _ -> go rest
                | exception Invalid_argument m ->
                    fail line st
                      (Target.Refused
                         { transfo = "move " ^ d; anchor = []; reason = m }))
            | None ->
                let anchor =
                  match Option.bind (Moveref.of_describe d) Moveref.anchor with
                  | Some p -> p
                  | None -> []
                in
                fail line st
                  (Target.Refused
                     {
                       transfo = "move " ^ d;
                       anchor;
                       reason = "not applicable at this state";
                     }))
        | Apply { sel; name; args } -> (
            match Composites.resolve name args with
            | Error m ->
                fail line st
                  (Target.Refused { transfo = name; anchor = []; reason = m })
            | Ok transfo -> (
                let outcome =
                  match sel with
                  | Some sel -> Engine.apply_at session sel transfo
                  | None -> Engine.apply_anchored session ~anchor:[] transfo
                in
                match outcome with
                | Ok _ -> go rest
                | Error err -> fail line st err)))
  in
  go s.stmts
