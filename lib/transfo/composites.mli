(** Named composite transformations: reusable, parameterized schedule
    fragments expressed as selector-guarded sequences of atomic moves
    (ROADMAP item 2; the granularity KForge/OptiML synthesize at).

    A composite's [expand] walks the intermediate states its steps will
    see, so it either returns the complete atomic sequence or a refusal
    reason — {!Transform.Engine.apply_at} then guarantees all-or-nothing
    application.  {!macro_instances} additionally packages composites as
    single {!Transform.Xforms.instance} macro-moves, which is how search
    takes one composite step instead of 3–5 atomic ones. *)

type composite = {
  cname : string;
  doc : string;
  params : (string * string) list;  (** parameter name, documentation *)
  make :
    (string * string) list -> (Transform.Engine.transfo, string) result;
      (** validate arguments, build the transfo *)
  variants : Transform.Xforms.caps -> (string * string) list list;
      (** argument sets offered to search as macro-moves *)
}

val all : composite list
val names : string list
val find : string -> composite option

(** {1 Direct constructors} *)

val tile_and_unroll : f:int -> u:int -> Transform.Engine.transfo
(** Split the anchor scope by [f], split the inner scope by [u] when
    [u < f], and unroll the innermost tile.  Requires [u >= 2] and
    [f mod u = 0]. *)

val tile_and_vectorize : lanes:int -> Transform.Engine.transfo
(** Split the anchor scope by [lanes] and vectorize the inner tile —
    the paper's explicit tile-then-vectorize discipline as one step. *)

val tile_and_parallelize : f:int -> Transform.Engine.transfo
(** Split the anchor scope by [f] and mark the outer scope parallel. *)

val fuse_chain : unit -> Transform.Engine.transfo
(** Fuse the anchor scope with following siblings of equal size,
    repeating while fusion stays legal (at least one fusion). *)

val hoist_memset : unit -> Transform.Engine.transfo
(** Distribute a constant-initialization statement leading the anchor
    scope's body into its own loop (fission at 1). *)

val split_reduce_unroll : k:int -> Transform.Engine.transfo
(** Introduce [k] partial accumulators for the reduction at the anchor
    and unroll the accumulator tile. *)

(** {1 Script-name resolution} *)

val resolve :
  string ->
  (string * string) list ->
  (Transform.Engine.transfo, string) result
(** Resolve a script statement name — either an atomic wrapper
    ([split(factor=16)], [storage(buffer=mx, loc=stack)], ...) or a
    registered composite — to a transfo. *)

(** {1 Search integration} *)

val macro_instances :
  names:string list ->
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  Transform.Xforms.instance list
(** Composite macro-moves applicable at a program state: for each named
    composite (["all"] selects every one), each capability-derived
    argument set, each scope anchor where expansion succeeds.  Instances
    describe as [composite(name(k=v) @ \[p\])] and re-expand at
    application time (raising [Not_applicable] when stale).  Intended as
    the {!Transform.Xforms.with_extra} hook: enumeration closes over the
    given caps with its own hook cleared, so macros never nest. *)

val enable :
  names:string list -> Transform.Xforms.caps -> Transform.Xforms.caps
(** [with_extra (macro_instances ~names caps) caps] — caps whose action
    set includes the named composites. *)
