(** The PerfDojo schedule script: a versioned, human-readable format
    ([.pds]) that serializes schedules as selector-targeted named
    transformations instead of raw move indices.

    {v
    pds 1
    # tiled matmul, x86
    kernel matmul
    target x86
    at size 256 & nested do split(factor=16)
    at path [0,4,0] do vectorize
    do storage(buffer=acc, loc=register)
    move split_scope([0,2] factor 8)        # deprecated raw escape
    v}

    Statements run through {!Target.resolve} and
    {!Transform.Engine.apply_at}, so a script either fully applies or
    stops at the first statement with a typed error carrying its line
    number.  [of_moves] converts recorded describe-string sequences to
    scripts ([run (of_moves ms)] reproduces the replayed program
    byte-for-byte), which is how schema-2 tuning DBs gain script
    provenance. *)

val version : int
(** Current format version (1); the first line of a script is
    [pds <version>]. *)

type stmt =
  | Apply of {
      sel : Target.t option;  (** [None]: buffer-level, no anchor *)
      name : string;
      args : (string * string) list;
    }
  | Raw of string
      (** [move <describe-string>] — the deprecated compatibility escape;
          resolved against the full applicable set. *)

type t = {
  kernel : string option;  (** [kernel NAME] header, informational *)
  ktarget : string option;  (** [target NAME] header, informational *)
  stmts : (int * stmt) list;  (** statements with their 1-based line *)
}

val parse : string -> (t, string) result
val to_string : t -> string
val stmt_to_string : stmt -> string

val of_moves : ?kernel:string -> ?ktarget:string -> string list -> t
(** Script equivalent of a recorded {!Transform.Xforms.describe}
    sequence: parseable moves become [at path [..] do name(...)]
    statements, the rest stay [move] escapes. *)

type run_error = {
  line : int;
  stext : string;  (** the statement as written *)
  err : Target.error;
}

val run_error_to_string : run_error -> string

val run :
  ?obs:Obs.Trace.sink ->
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  t ->
  (Ir.Prog.t * string list, run_error) result
(** Execute every statement in order.  Returns the final program and
    the atomic describe-string provenance (replayable through
    {!Transform.Engine.replay_compat}).  Emits a [script.run] trace
    event. *)
