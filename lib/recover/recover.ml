(* Crash-safe persistence primitives: durable file writes, a versioned
   checksummed checkpoint store, a write-ahead journal, cooperative
   interrupts, and a deterministic kill-injection harness.

   Everything here speaks the canonical JSON encoding (Util.Json), so
   checkpoints and journals inherit the byte-stable parse∘print
   round-trip the rest of the system relies on.  Corruption — torn
   writes, truncation, bit rot — is detected by version + MD5 checksum
   and surfaces as a typed [error], never as deserialized garbage. *)

type error =
  | Missing of string  (** no file at the given path *)
  | Corrupt of string  (** parse / version / checksum failure *)
  | Mismatch of string  (** checkpoint is for a different run configuration *)

exception Error of error

let error_message = function
  | Missing path -> Printf.sprintf "no checkpoint at %s" path
  | Corrupt msg -> Printf.sprintf "corrupt checkpoint/journal: %s" msg
  | Mismatch msg -> Printf.sprintf "checkpoint mismatch: %s" msg

let corrupt fmt = Printf.ksprintf (fun m -> Stdlib.Error (Corrupt m)) fmt

(* Exact float round-trip through JSON, including non-finite values
   (quarantined runtimes are +inf, which plain JSON cannot carry): the
   IEEE-754 bit pattern as a hex string. *)
module Bits = struct
  let of_float f = Util.Json.Str (Printf.sprintf "%Lx" (Int64.bits_of_float f))

  let to_float = function
    | Util.Json.Str s -> (
        match Int64.of_string_opt ("0x" ^ s) with
        | Some bits -> Some (Int64.float_of_bits bits)
        | None -> None)
    | _ -> None
end

(* Strict accessors for decoding checkpoint/journal payloads: a missing
   or ill-typed field raises the typed [Error] rather than producing
   garbage state. *)
module Field = struct
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Error (Corrupt m))) fmt

  let mismatch field ~run ~ckpt =
    raise
      (Error
         (Mismatch
            (Printf.sprintf "%s: run has %s, checkpoint has %s" field run ckpt)))

  let member name json =
    match Util.Json.member name json with
    | Some v -> v
    | None -> corrupt "missing field %S" name

  let int name json =
    match Util.Json.to_int (member name json) with
    | Some v -> v
    | None -> corrupt "field %S is not an int" name

  let str name json =
    match Util.Json.to_str (member name json) with
    | Some v -> v
    | None -> corrupt "field %S is not a string" name

  let bool name json =
    match member name json with
    | Util.Json.Bool b -> b
    | _ -> corrupt "field %S is not a bool" name

  let list name json =
    match Util.Json.to_list (member name json) with
    | Some v -> v
    | None -> corrupt "field %S is not an array" name

  let float_bits name json =
    match Bits.to_float (member name json) with
    | Some v -> v
    | None -> corrupt "field %S is not a float bit pattern" name

  let str_list name json =
    List.map
      (function
        | Util.Json.Str s -> s
        | _ -> corrupt "field %S holds a non-string" name)
      (list name json)

  let check_str json field run =
    let ckpt = str field json in
    if not (String.equal run ckpt) then mismatch field ~run ~ckpt

  let check_int json field run =
    let ckpt = int field json in
    if run <> ckpt then
      mismatch field ~run:(string_of_int run) ~ckpt:(string_of_int ckpt)
end

module Durable = struct
  (* fsync a directory so a rename inside it survives power loss.  Some
     filesystems reject fsync on a directory fd; that only weakens the
     power-loss guarantee, so errors are swallowed. *)
  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        Unix.close fd

  (* Durable atomic replace: write [path ^ ".tmp"], fsync the data to
     disk, rename over [path], then fsync the directory so the rename
     itself is durable.  Readers never observe a partial file, and an
     acknowledged write survives kill -9 and power loss.  On any
     exception the tmp file is removed and [path] is untouched. *)
  let write_file ~path writer =
    let tmp = path ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let oc = Unix.out_channel_of_descr fd in
    (try
       writer oc;
       flush oc;
       Unix.fsync fd;
       close_out oc
     with e ->
       (try close_out oc with _ -> ());
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    Sys.rename tmp path;
    fsync_dir (Filename.dirname path)

  let write_string ~path s = write_file ~path (fun oc -> output_string oc s)
end

module Store = struct
  let version = 1

  let save ~path (payload : Util.Json.t) =
    let body = Util.Json.to_string payload in
    let envelope =
      Util.Json.Obj
        [
          ("v", Util.Json.Num (float_of_int version));
          ("sum", Util.Json.Str (Digest.to_hex (Digest.string body)));
          ("payload", payload);
        ]
    in
    Durable.write_string ~path (Util.Json.to_string envelope ^ "\n")

  let load ~path : (Util.Json.t, error) result =
    if not (Sys.file_exists path) then Stdlib.Error (Missing path)
    else
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Util.Json.of_string (String.trim contents) with
      | Stdlib.Error e -> corrupt "%s: %s" path e
      | Ok json -> (
          match
            ( Option.bind (Util.Json.member "v" json) Util.Json.to_int,
              Option.bind (Util.Json.member "sum" json) Util.Json.to_str,
              Util.Json.member "payload" json )
          with
          | Some v, _, _ when v <> version ->
              corrupt "%s: version %d, expected %d" path v version
          | Some _, Some sum, Some payload ->
              let body = Util.Json.to_string payload in
              if String.equal sum (Digest.to_hex (Digest.string body)) then Ok payload
              else corrupt "%s: checksum mismatch" path
          | _ -> corrupt "%s: malformed envelope" path)
end

module Journal = struct
  type writer = { fd : Unix.file_descr; path : string }

  let entry_line (data : Util.Json.t) =
    let body = Util.Json.to_string data in
    Util.Json.to_string
      (Util.Json.Obj
         [
           ("sum", Util.Json.Str (Digest.to_hex (Digest.string body)));
           ("data", data);
         ])

  let open_writer path =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
    Durable.fsync_dir (Filename.dirname path);
    { fd; path }

  (* Append one entry and fsync before returning: once [append] returns
     the entry will be recovered by [replay] even after kill -9. *)
  let append w (data : Util.Json.t) =
    let line = entry_line data ^ "\n" in
    let n = String.length line in
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write_substring w.fd line !written (n - !written)
    done;
    Unix.fsync w.fd

  (* Empty the journal after its entries have been checkpointed into the
     primary store. *)
  let reset w =
    Unix.ftruncate w.fd 0;
    Unix.fsync w.fd

  let close w = Unix.close w.fd

  let parse_line line =
    match Util.Json.of_string line with
    | Stdlib.Error e -> Stdlib.Error e
    | Ok json -> (
        match
          ( Option.bind (Util.Json.member "sum" json) Util.Json.to_str,
            Util.Json.member "data" json )
        with
        | Some sum, Some data ->
            if String.equal sum (Digest.to_hex (Digest.string (Util.Json.to_string data)))
            then Ok data
            else Stdlib.Error "checksum mismatch"
        | _ -> Stdlib.Error "malformed entry")

  (* Replay a journal: all verified entries in order, plus the number of
     torn trailing lines dropped (at most one partial line can result
     from a crash mid-append; it is expected and not an error).  A bad
     line that is *not* the last one means real corruption → [Corrupt]. *)
  let replay path : (Util.Json.t list * int, error) result =
    if not (Sys.file_exists path) then Ok ([], 0)
    else begin
      let lines = ref [] in
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            while true do
              lines := input_line ic :: !lines
            done
          with End_of_file -> ());
      let lines = List.rev !lines |> List.filter (fun l -> String.trim l <> "") in
      let n = List.length lines in
      let rec go i acc = function
        | [] -> Ok (List.rev acc, 0)
        | line :: rest -> (
            match parse_line line with
            | Ok data -> go (i + 1) (data :: acc) rest
            | Stdlib.Error e ->
                if i = n - 1 then Ok (List.rev acc, 1) (* torn tail from a crash *)
                else corrupt "%s: line %d: %s" path (i + 1) e)
      in
      go 0 [] lines
    end
end

module Interrupt = struct
  exception Interrupted of string option

  let flag = Atomic.make false
  let requested () = Atomic.get flag
  let reset () = Atomic.set flag false

  (* Cooperative handler: first SIGINT/SIGTERM sets a flag that
     long-running loops poll at safe points (round/level/pair
     boundaries) to checkpoint and exit; a second signal exits
     immediately for loops that never reach a safe point. *)
  let install () =
    let handler =
      Sys.Signal_handle
        (fun _ -> if Atomic.get flag then Stdlib.exit 130 else Atomic.set flag true)
    in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler

  (* Raising handler, for loops blocked in a syscall (the serve pipe
     transport reading stdin): the signal unwinds the read so the caller
     can drain and checkpoint. *)
  let install_raising () =
    let handler = Sys.Signal_handle (fun _ -> raise (Interrupted None)) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
end

module Chaos = struct
  (* Run [f] in a forked child and report how it died.  The child exits
     via [Unix._exit] (no at_exit, no double-flush of the parent's
     buffered channels), so anything it must persist it writes and
     syncs itself — which is exactly the discipline under test. *)
  let in_subprocess (f : unit -> unit) : Unix.process_status =
    (* the child inherits the parent's channel buffers; flush them so a
       buffer-full flush in the child cannot replay the parent's
       pending output (the child itself exits via [_exit], unflushed) *)
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (try f () with _ -> Unix._exit 99);
        Unix._exit 0
    | pid ->
        let _, status = Unix.waitpid [] pid in
        status

  (* A tick that SIGKILLs the calling process on its [at]-th invocation
     (1-based); thread-safe so it can be called from pool workers.
     Threading it through an objective gives a deterministic, seedable
     crash at a chosen evaluation index. *)
  let kill_switch ~at =
    let n = Atomic.make 0 in
    fun () ->
      if at > 0 && Atomic.fetch_and_add n 1 + 1 = at then
        Unix.kill (Unix.getpid ()) Sys.sigkill

  let killed status = status = Unix.WSIGNALED Sys.sigkill
end
