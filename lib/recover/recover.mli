(** Crash-safe persistence primitives (the tentpole of the recovery
    subsystem): durable file writes, a versioned + checksummed
    checkpoint store, a write-ahead journal, cooperative interrupts,
    and a deterministic kill-injection harness.

    Every artifact is canonical JSON ({!Util.Json}), so checkpoints and
    journals round-trip byte-identically.  Torn or truncated files are
    detected by version and MD5 checksum and rejected with a typed
    {!error} — never deserialized as garbage. *)

type error =
  | Missing of string  (** no file at the given path *)
  | Corrupt of string  (** parse / version / checksum failure *)
  | Mismatch of string  (** checkpoint is for a different run configuration *)

exception Error of error
(** Raised by resume paths that cannot return a [result] (e.g. deep in
    a search engine); the CLI maps it to a one-line error. *)

val error_message : error -> string

(** Exact float round-trip through JSON — including the non-finite
    values plain JSON cannot carry (quarantined runtimes are [+inf]) —
    as the IEEE-754 bit pattern in hex. *)
module Bits : sig
  val of_float : float -> Util.Json.t
  val to_float : Util.Json.t -> float option
end

(** Strict accessors for decoding checkpoint/journal payloads: a
    missing or ill-typed field raises {!Error} ([Corrupt]) rather than
    producing garbage state; the [check_*] validators raise [Mismatch]
    when a checkpoint belongs to a different run configuration. *)
module Field : sig
  val corrupt : ('a, unit, string, 'b) format4 -> 'a
  val mismatch : string -> run:string -> ckpt:string -> 'a
  val member : string -> Util.Json.t -> Util.Json.t
  val int : string -> Util.Json.t -> int
  val str : string -> Util.Json.t -> string
  val bool : string -> Util.Json.t -> bool
  val list : string -> Util.Json.t -> Util.Json.t list
  val float_bits : string -> Util.Json.t -> float
  val str_list : string -> Util.Json.t -> string list
  val check_str : Util.Json.t -> string -> string -> unit
  val check_int : Util.Json.t -> string -> int -> unit
end

module Durable : sig
  val fsync_dir : string -> unit
  (** Best-effort fsync of a directory, making renames inside it
      durable across power loss. *)

  val write_file : path:string -> (out_channel -> unit) -> unit
  (** Durable atomic replace: write [path ^ ".tmp"], [fsync] the data,
      rename over [path], fsync the directory.  Readers never observe a
      partial file; once this returns the contents survive [kill -9]
      and power loss.  On exception the tmp file is removed and [path]
      is untouched. *)

  val write_string : path:string -> string -> unit
end

(** Whole-state checkpoints: one canonical-JSON payload wrapped in a
    [{"v";"sum";"payload"}] envelope, written durably and atomically. *)
module Store : sig
  val version : int

  val save : path:string -> Util.Json.t -> unit
  val load : path:string -> (Util.Json.t, error) result
end

(** Write-ahead journal: fsynced append of checksummed canonical-JSON
    entries, one per line.  Once {!append} returns, the entry will be
    recovered by {!replay} even after [kill -9]. *)
module Journal : sig
  type writer

  val open_writer : string -> writer
  (** Open (creating if needed) for appending. *)

  val append : writer -> Util.Json.t -> unit
  (** Append one entry and [fsync] before returning. *)

  val reset : writer -> unit
  (** Truncate to empty — called after the journaled entries have been
      checkpointed into the primary store. *)

  val close : writer -> unit

  val replay : string -> (Util.Json.t list * int, error) result
  (** All verified entries in order, plus the count of torn trailing
      lines dropped (a crash mid-append can leave at most one partial
      line; that is expected, not corruption).  A missing file replays
      as [([], 0)]; an invalid line {e before} the tail is [Corrupt]. *)
end

(** Cooperative SIGINT/SIGTERM handling: long-running loops poll
    {!requested} at safe points (round / BFS-level / pair boundaries),
    write a final checkpoint, and raise {!Interrupted} carrying the
    checkpoint path for the CLI's one-line exit message. *)
module Interrupt : sig
  exception Interrupted of string option

  val install : unit -> unit
  (** Flag-setting handler for both SIGINT and SIGTERM; a second signal
      exits immediately (code 130). *)

  val install_raising : unit -> unit
  (** Raising handler, for loops blocked in a syscall (the serve pipe
      transport): the signal unwinds the read so the caller can drain
      and checkpoint. *)

  val requested : unit -> bool
  val reset : unit -> unit
end

(** Deterministic kill-injection: fork a run, [SIGKILL] it at a seeded
    evaluation index, resume in a fresh process, and compare against
    the uninterrupted run — the acceptance harness for crash safety. *)
module Chaos : sig
  val in_subprocess : (unit -> unit) -> Unix.process_status
  (** Run in a forked child (exiting via [_exit], so the child flushes
      and syncs what it must persist — the discipline under test). *)

  val kill_switch : at:int -> unit -> unit
  (** A thread-safe tick that SIGKILLs the calling process on its
      [at]-th invocation (1-based; [at <= 0] never fires). *)

  val killed : Unix.process_status -> bool
  (** Did the process die by SIGKILL? *)
end
