(* Deterministic fault injection.

   The fault decision for one evaluation is drawn from a throwaway RNG
   seeded by (fseed, structural hash of the input, current guard
   attempt).  [Hashtbl.hash] is a pure structural hash, so the decision
   is stable across domains and runs — per-site mutable RNG state would
   make faults depend on evaluation order and break jobs-invariance. *)

exception Injected of string

type config = {
  fseed : int;
  raise_rate : float;
  transient_rate : float;
  nan_rate : float;
  delay_rate : float;
  delay_cost : int;
}

let none =
  {
    fseed = 0;
    raise_rate = 0.0;
    transient_rate = 0.0;
    nan_rate = 0.0;
    delay_rate = 0.0;
    delay_cost = 0;
  }

let spread ?(seed = 0) rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Faults.spread: rate not in [0,1]";
  {
    fseed = seed;
    raise_rate = rate /. 2.0;
    transient_rate = rate /. 8.0;
    nan_rate = rate /. 4.0;
    delay_rate = rate /. 8.0;
    delay_cost = 1_000;
  }

let active cfg =
  cfg.raise_rate > 0.0 || cfg.transient_rate > 0.0 || cfg.nan_rate > 0.0
  || cfg.delay_rate > 0.0

let total_rate cfg =
  cfg.raise_rate +. cfg.transient_rate +. cfg.nan_rate +. cfg.delay_rate

(* One uniform draw per (input, attempt).  [Hashtbl.hash] only folds a
   bounded prefix of the structure by default; widen the meaningful
   limit so distinct programs land in distinct fault cells. *)
let draw cfg x =
  let h = Hashtbl.hash_param 128 256 x in
  let k = Guard.attempt () in
  let rng = Util.Rng.create (cfg.fseed lxor (h * 0x9e3779b1) lxor (k * 0x85ebca6b)) in
  Util.Rng.float rng

let wrap cfg (objective : 'a -> float) : 'a -> float =
  if not (active cfg) then objective
  else fun x ->
    let u = draw cfg x in
    if u < cfg.raise_rate then raise (Injected "injected fault")
    else if u < cfg.raise_rate +. cfg.transient_rate then
      raise (Guard.Transient "injected transient fault")
    else if u < cfg.raise_rate +. cfg.transient_rate +. cfg.nan_rate then
      Float.nan
    else begin
      if u < total_rate cfg then Guard.tick ~cost:cfg.delay_cost ();
      objective x
    end
