(** Deterministic fault injection for objective evaluations — the test
    and bench harness behind the degradation story.

    [wrap cfg objective] returns an objective that fails on a
    configurable fraction of inputs: raising {!Injected}, raising
    {!Guard.Transient} (so the guard's retry path is exercised), scoring
    NaN, or burning {!Guard.tick} fuel before answering.

    Whether a given input faults — and how — is a pure function of
    [(fseed, Hashtbl.hash input, Guard.attempt ())]: no mutable harness
    state, no call-order dependence.  Two pool workers evaluating the
    same candidate fault identically, which is what lets the search
    layer's jobs-invariance extend to {e which candidates failed}; and
    because the current {!Guard.attempt} index is mixed in, a transient
    fault on attempt 0 can succeed on the retry, deterministically. *)

exception Injected of string
(** The permanent injected failure (never retried by the default
    guard). *)

type config = {
  fseed : int;  (** fault stream identity, independent of search seed *)
  raise_rate : float;  (** probability of raising {!Injected} *)
  transient_rate : float;  (** probability of raising {!Guard.Transient} *)
  nan_rate : float;  (** probability of returning NaN *)
  delay_rate : float;  (** probability of burning [delay_cost] fuel *)
  delay_cost : int;  (** fuel units per delay fault (wall-clock free) *)
}

val none : config
(** All rates zero; {!wrap} with this config returns the objective
    unchanged (physically equal — zero overhead at fault rate 0). *)

val spread : ?seed:int -> float -> config
(** [spread rate] distributes a total fault [rate] across the classes:
    half raising, a quarter NaN, an eighth each transient and delay.
    The shape used by the bench/CLI [--fault-rate] knob. *)

val active : config -> bool
(** Whether any rate is positive. *)

val total_rate : config -> float

val wrap : config -> ('a -> float) -> 'a -> float
(** Wrap an objective; identity when the config is not {!active}. *)
