(** Guarded objective evaluation: run a candidate evaluation to a typed
    outcome instead of letting one raising cost model, one NaN, or one
    runaway simulation abort a whole search run.

    Real autotuners treat failed configurations as a normal part of
    tuning (AutoTVM measures them as errors, not crashes).  [run] is the
    single choke point the search layer routes every evaluation through:

    - a raising evaluation becomes {!Rejected} (exception class +
      message, both deterministic for a deterministic objective);
    - a NaN/∞ cost becomes {!Non_finite} — a model bug must not be
      mistaken for an excellent schedule or poison a memoization cache;
    - an evaluation that burns through its deterministic {e fuel} budget
      (see {!tick}) becomes {!Exhausted} — the guard against runaway
      interpreter/simulator evaluations, measured in work units rather
      than wall-clock so outcomes stay reproducible;
    - failures classed transient ({!Transient} by default) are retried
      up to [max_retries] times with deterministic exponential backoff
      before they are given up as {!Rejected}.

    Everything here is deterministic given the objective: no clocks or
    ambient randomness enter the outcome, which is what lets the search
    layer keep its jobs-invariance guarantee even for the failing
    candidates. *)

exception Transient of string
(** The default transient class: raise this from an objective (or a
    fault harness) to request a bounded retry. *)

exception Out_of_fuel
(** Raised by {!tick} when the current evaluation's fuel budget is
    spent.  Escapes to the enclosing {!run}, never further. *)

type failure =
  | Rejected of { cls : string; msg : string }
      (** the evaluation raised; [cls] is the exception constructor,
          [msg] its rendering *)
  | Non_finite of float  (** the evaluation returned NaN or ±∞ *)
  | Exhausted of { fuel : int }
      (** the evaluation consumed its whole fuel budget *)

type outcome = (float, failure) result

type config = {
  max_retries : int;  (** retries after the first attempt (default 1) *)
  backoff_s : float;
      (** base backoff; attempt [k] sleeps [backoff_s *. 2^k].  The
          default 0.0 never sleeps — backoff is for real measurement
          backends, not the analytic models. *)
  fuel : int option;
      (** per-attempt work budget enforced via {!tick}; [None] (the
          default) never exhausts *)
  is_transient : exn -> bool;
      (** which exceptions earn a retry (default: {!Transient} only) *)
  on_retry : int -> exn -> unit;
      (** called before attempt [k + 1] with the attempt index [k] that
          failed and its exception *)
  sleep : float -> unit;  (** backoff implementation (default
          [Unix.sleepf]); tests substitute a recorder *)
}

val default : config

val instrument : ?metrics:Obs.Metrics.t -> config -> config
(** Compose [on_retry] with a [robust.retries] counter bump; identity
    when [metrics] is absent. *)

val run :
  ?cfg:config -> cost:('b -> float) -> ('a -> 'b) -> 'a -> ('b, failure) result
(** [run ~cost f x] evaluates [f x] under the guard.  [cost] projects
    the finite score out of the result for the {!Non_finite} check —
    the whole construction (replay plus evaluation) runs guarded, so a
    transform raising during replay is quarantined like an objective
    raising during costing. *)

val eval : ?cfg:config -> ('a -> float) -> 'a -> outcome
(** [run] specialized to a float-valued objective. *)

val tick : ?cost:int -> unit -> unit
(** Consume [cost] (default 1) units of the current evaluation's fuel;
    raises {!Out_of_fuel} when the budget is spent.  A no-op outside a
    fuelled {!run} — instrumented evaluators can tick unconditionally. *)

val attempt : unit -> int
(** The current {!run} attempt index (0 for the first try).  Lets a
    deterministic fault harness make transient faults succeed on retry
    without wall-clock or shared state.  0 outside a [run]. *)

val rejected_of_exn : exn -> failure
(** Classify an exception caught outside [run] (e.g. during candidate
    expansion) into the same {!Rejected} shape. *)

val failure_class : failure -> string
(** ["rejected"] / ["non_finite"] / ["exhausted"] — stable keys for
    trace events and [robust.*] metric names. *)

val failure_message : failure -> string
(** One-line human rendering, deterministic for deterministic inputs. *)

val note :
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?ev:string ->
  ?fields:(string * Util.Json.t) list ->
  failure ->
  unit
(** Record one failure: emit an event (default name [search.eval_error])
    carrying [class] / [msg] plus the caller's [fields], and bump the
    [robust.eval_failures] and [robust.<class>] counters.  Free when
    both sinks are absent. *)
