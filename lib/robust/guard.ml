(* Guarded objective evaluation.

   The fuel budget and the attempt index live in domain-local storage:
   each pool worker guards its own evaluations without sharing state,
   and a cooperative evaluator calls [tick] with no handle threading.
   [run] saves and restores the cell around every attempt, so nested
   guards (a guarded search whose objective is itself guarded) behave
   like properly scoped dynamic binding.

   Determinism: nothing here reads a clock or an RNG.  Retries are
   bounded, backoff durations are a pure function of the attempt index,
   and fuel is a work counter — so whether and how a candidate fails is
   a function of the candidate alone, which the search layer's
   jobs-invariance relies on. *)

exception Transient of string
exception Out_of_fuel

type failure =
  | Rejected of { cls : string; msg : string }
  | Non_finite of float
  | Exhausted of { fuel : int }

type outcome = (float, failure) result

type config = {
  max_retries : int;
  backoff_s : float;
  fuel : int option;
  is_transient : exn -> bool;
  on_retry : int -> exn -> unit;
  sleep : float -> unit;
}

let default =
  {
    max_retries = 1;
    backoff_s = 0.0;
    fuel = None;
    is_transient = (function Transient _ -> true | _ -> false);
    on_retry = (fun _ _ -> ());
    sleep = Unix.sleepf;
  }

let instrument ?metrics cfg =
  match metrics with
  | None -> cfg
  | Some m ->
      let prev = cfg.on_retry in
      {
        cfg with
        on_retry =
          (fun k e ->
            Obs.Metrics.incr m "robust.retries";
            prev k e);
      }

(* Per-domain evaluation context.  [fuel < 0] encodes "unfuelled". *)
type dstate = { mutable fuel : int; mutable att : int }

let key = Domain.DLS.new_key (fun () -> { fuel = -1; att = 0 })

let tick ?(cost = 1) () =
  let st = Domain.DLS.get key in
  if st.fuel >= 0 then begin
    st.fuel <- st.fuel - cost;
    if st.fuel < 0 then begin
      st.fuel <- -1;
      raise Out_of_fuel
    end
  end

let attempt () = (Domain.DLS.get key).att

let rejected_of_exn e =
  Rejected { cls = Printexc.exn_slot_name e; msg = Printexc.to_string e }

let run ?(cfg = default) ~(cost : 'b -> float) (f : 'a -> 'b) (x : 'a) :
    ('b, failure) result =
  let st = Domain.DLS.get key in
  let saved_fuel = st.fuel and saved_att = st.att in
  let restore () =
    st.fuel <- saved_fuel;
    st.att <- saved_att
  in
  let rec go k =
    st.att <- k;
    (match cfg.fuel with Some n -> st.fuel <- max n 0 | None -> ());
    match f x with
    | v ->
        restore ();
        let c = cost v in
        if Float.is_finite c then Ok v else Error (Non_finite c)
    | exception Out_of_fuel ->
        restore ();
        Error (Exhausted { fuel = Option.value cfg.fuel ~default:0 })
    | exception e when k < cfg.max_retries && cfg.is_transient e ->
        restore ();
        cfg.on_retry k e;
        if cfg.backoff_s > 0.0 then
          cfg.sleep (cfg.backoff_s *. (2.0 ** float_of_int k));
        go (k + 1)
    | exception e ->
        restore ();
        Error (rejected_of_exn e)
  in
  go 0

let eval ?cfg (objective : 'a -> float) (x : 'a) : outcome =
  run ?cfg ~cost:Fun.id objective x

let failure_class = function
  | Rejected _ -> "rejected"
  | Non_finite _ -> "non_finite"
  | Exhausted _ -> "exhausted"

let failure_message = function
  | Rejected { cls; msg } -> Printf.sprintf "%s: %s" cls msg
  | Non_finite c -> Printf.sprintf "non-finite cost %h" c
  | Exhausted { fuel } -> Printf.sprintf "fuel budget %d exhausted" fuel

let note ?obs ?metrics ?(ev = "search.eval_error") ?(fields = []) failure =
  (match obs with
  | None -> ()
  | Some sink ->
      if Obs.Trace.enabled sink then
        Obs.Trace.emit sink ev (fun () ->
            fields
            @ [
                Obs.Trace.str "class" (failure_class failure);
                Obs.Trace.str "msg" (failure_message failure);
              ]));
  match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr m "robust.eval_failures";
      Obs.Metrics.incr m ("robust." ^ failure_class failure)
