(** Machine descriptors for the performance models.

    These stand in for the paper's evaluation hardware (Intel Xeon
    E5-2695 v4, NVIDIA GH200, AMD MI300A, the Snitch RISC-V cluster);
    parameters come from public spec sheets.  The models built on them
    are deterministic — see DESIGN.md for the substitution rationale. *)

type cpu = {
  cpu_name : string;
  cores : int;
  vector_bits : int;  (** SIMD width: 512 = AVX-512, 256 = AVX2, 128 = NEON *)
  issue_width : int;  (** scalar FP ops issued per cycle *)
  fp_latency : int;  (** FP pipeline use latency in cycles *)
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  cache_line : int;
  freq_ghz : float;
  dram_gbs : float;  (** sustained DRAM bandwidth, GB/s, whole socket *)
  loop_overhead : float;  (** cycles per sequential loop iteration *)
  par_region_overhead : float;  (** cycles to fork/join a parallel region *)
  mem_par_scale : float;  (** how far parallelism scales memory streams *)
}

type gpu = {
  gpu_name : string;
  sms : int;  (** streaming multiprocessors / compute units *)
  warp : int;  (** 32 on NVIDIA, 64-lane wavefront on AMD *)
  max_threads_per_block : int;
  gpu_freq_ghz : float;
  hbm_gbs : float;
  fp32_gflops : float;
  launch_overhead_s : float;
  host_gflops : float;  (** host-side compute for unmapped code *)
  host_gbs : float;
}

type snitch = {
  sn_name : string;
  sn_freq_ghz : float;
  sn_fp_latency : int;  (** 4-cycle FPU use latency *)
  sn_ssr_streams : int;  (** available stream semantic registers *)
  sn_loop_overhead : int;  (** cycles per software-loop iteration *)
  sn_mem_latency : int;
}

type target = Cpu of cpu | Gpu of gpu | Snitch of snitch

val target_name : target -> string

val known_targets : (string * target) list
(** Every modelled machine under its canonical short name — the
    namespace tuning-database records, libgen manifests and the CLI's
    [--target] flag share ([x86], [avx512], [arm], [riscv], [snitch],
    [gh200], [mi300a]). *)

val resolve_target : string -> (string * target) option
(** Short name (or an accepted alias: [xeon]/[host] for [x86], [grace]
    for [arm]) to the canonical name and descriptor; [None] when
    unknown. *)

val short_name : target -> string option
(** Reverse lookup into {!known_targets} (structural equality); [None]
    for a hand-built descriptor. *)

val xeon_e5_2695v4 : cpu
(** The paper's §4.2 x86 machine (18 cores, AVX2). *)

val avx512_cpu : cpu
(** An AVX-512 CPU for the Figures 4/9 softmax journey. *)

val gh200 : gpu
(** NVIDIA GH200 (Hopper), §4.3 / Figure 1b. *)

val mi300a : gpu
(** AMD MI300A (CDNA3, 64-lane wavefronts), §4.3 / Figure 13. *)

val snitch_cluster : snitch
(** Single Snitch core with SSR + FREP, §4.1. *)

val grace_arm : cpu
(** Neoverse-V2-class Arm cluster (the GH200's Grace side). *)

val riscv_scalar : cpu
(** An in-order scalar RISC-V core without the Snitch extensions. *)

val caps_of : target -> Transform.Xforms.caps
(** The transformation capabilities the target exposes (§1: vendors
    ship hardware-aware transformations, not libraries). *)
