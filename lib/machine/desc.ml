(* Machine descriptors for the performance models.

   These stand in for the paper's evaluation hardware (Intel Xeon E5-2695
   v4, NVIDIA GH200, AMD MI300A, the Snitch RISC-V cluster).  Parameters
   are taken from public spec sheets; the models built on top of them are
   deterministic analytic/cycle-approximate simulators (see DESIGN.md for
   the substitution rationale). *)

type cpu = {
  cpu_name : string;
  cores : int;
  vector_bits : int; (* SIMD width: 512 = AVX-512, 128 = NEON *)
  issue_width : int; (* scalar FP ops issued per cycle *)
  fp_latency : int; (* FP pipeline latency in cycles *)
  l1_bytes : int;
  l2_bytes : int;
  llc_bytes : int;
  cache_line : int;
  freq_ghz : float;
  dram_gbs : float; (* sustained DRAM bandwidth, GB/s, whole socket *)
  loop_overhead : float; (* cycles per sequential loop iteration *)
  par_region_overhead : float; (* cycles to fork/join a parallel region *)
  mem_par_scale : float; (* how far parallelism scales memory streams *)
}

type gpu = {
  gpu_name : string;
  sms : int; (* streaming multiprocessors / compute units *)
  warp : int; (* 32 on NVIDIA, 64 wavefront on AMD *)
  max_threads_per_block : int;
  gpu_freq_ghz : float;
  hbm_gbs : float;
  fp32_gflops : float; (* peak vector FP32 throughput *)
  launch_overhead_s : float; (* per kernel launch *)
  host_gflops : float; (* host-side scalar compute for unmapped code *)
  host_gbs : float;
}

type snitch = {
  sn_name : string;
  sn_freq_ghz : float;
  sn_fp_latency : int; (* FPU pipeline depth: 4-cycle use latency *)
  sn_ssr_streams : int; (* available stream semantic registers *)
  sn_loop_overhead : int; (* cycles per iteration of a software loop *)
  sn_mem_latency : int; (* TCDM access, single cycle when streamed *)
}

type target = Cpu of cpu | Gpu of gpu | Snitch of snitch

let target_name = function
  | Cpu c -> c.cpu_name
  | Gpu g -> g.gpu_name
  | Snitch s -> s.sn_name

(* Intel Xeon E5-2695 v4 (Broadwell, 18C, AVX2 256-bit; the paper runs
   with all 18 cores, hyper-threading off).  §4.2. *)
let xeon_e5_2695v4 : cpu =
  {
    cpu_name = "Intel Xeon E5-2695 v4";
    cores = 18;
    vector_bits = 256;
    issue_width = 2;
    fp_latency = 5;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    llc_bytes = 45 * 1024 * 1024;
    cache_line = 64;
    freq_ghz = 2.1;
    dram_gbs = 68.0;
    loop_overhead = 2.0;
    par_region_overhead = 8000.0;
    mem_par_scale = 4.0;
  }

(* An AVX-512 capable CPU for the softmax journey of Figures 4 and 9. *)
let avx512_cpu : cpu =
  {
    xeon_e5_2695v4 with
    cpu_name = "x86 AVX-512";
    vector_bits = 512;
    cores = 16;
    freq_ghz = 2.4;
    dram_gbs = 90.0;
  }

(* NVIDIA GH200 (Hopper H100 96GB part). §4.3 / Figure 1b. *)
let gh200 : gpu =
  {
    gpu_name = "NVIDIA GH200";
    sms = 132;
    warp = 32;
    max_threads_per_block = 1024;
    gpu_freq_ghz = 1.83;
    hbm_gbs = 4000.0;
    fp32_gflops = 67_000.0;
    launch_overhead_s = 5.0e-6;
    host_gflops = 6.0;
    host_gbs = 80.0;
  }

(* AMD MI300A (CDNA3 APU, 64-lane wavefronts). §4.3 / Figure 13. *)
let mi300a : gpu =
  {
    gpu_name = "AMD MI300A";
    sms = 228;
    warp = 64;
    max_threads_per_block = 1024;
    gpu_freq_ghz = 2.1;
    hbm_gbs = 5300.0;
    fp32_gflops = 61_000.0;
    launch_overhead_s = 8.0e-6;
    host_gflops = 8.0;
    host_gbs = 100.0;
  }

(* Single Snitch core with SSR + FREP extensions (Zaruba et al.), as
   simulated by the paper's Verilator model of the Snitch cluster. §4.1 *)
let snitch_cluster : snitch =
  {
    sn_name = "Snitch (SSR+FREP)";
    sn_freq_ghz = 1.0;
    sn_fp_latency = 4;
    sn_ssr_streams = 3;
    sn_loop_overhead = 2;
    sn_mem_latency = 1;
  }

(* A Neoverse-class Arm core cluster (the GH200's Grace side), used for
   the paper's Arm results.  NEON/SVE 128-bit lanes. *)
let grace_arm : cpu =
  {
    cpu_name = "Arm Neoverse V2 (Grace)";
    cores = 72;
    vector_bits = 128;
    issue_width = 4;
    fp_latency = 4;
    l1_bytes = 64 * 1024;
    l2_bytes = 1024 * 1024;
    llc_bytes = 114 * 1024 * 1024;
    cache_line = 64;
    freq_ghz = 3.0;
    dram_gbs = 380.0;
    loop_overhead = 1.5;
    par_region_overhead = 6000.0;
    mem_par_scale = 8.0;
  }

(* A RISC-V in-order scalar core without the Snitch extensions, the
   baseline "naive hardware" point. *)
let riscv_scalar : cpu =
  {
    cpu_name = "RISC-V scalar";
    cores = 1;
    vector_bits = 0;
    issue_width = 1;
    fp_latency = 4;
    l1_bytes = 8 * 1024;
    l2_bytes = 64 * 1024;
    llc_bytes = 1024 * 1024;
    cache_line = 32;
    freq_ghz = 1.0;
    dram_gbs = 8.0;
    loop_overhead = 2.0;
    par_region_overhead = 0.0;
    mem_par_scale = 1.0;
  }

(* The canonical short-name registry shared by the tuning database, the
   libgen manifest and the CLI's --target flag.  Record keys and
   manifest entries use exactly these names, so they live here rather
   than in the CLI. *)
let known_targets : (string * target) list =
  [
    ("x86", Cpu xeon_e5_2695v4);
    ("avx512", Cpu avx512_cpu);
    ("arm", Cpu grace_arm);
    ("riscv", Cpu riscv_scalar);
    ("snitch", Snitch snitch_cluster);
    ("gh200", Gpu gh200);
    ("mi300a", Gpu mi300a);
  ]

let resolve_target s : (string * target) option =
  let canonical =
    match s with "xeon" | "host" -> "x86" | "grace" -> "arm" | s -> s
  in
  List.assoc_opt canonical known_targets
  |> Option.map (fun t -> (canonical, t))

let short_name (t : target) : string option =
  List.find_opt (fun (_, t') -> t' = t) known_targets |> Option.map fst

(* The transformation capabilities each target exposes — the paper's
   "hardware-aware transformations" interface (§1): vendors ship
   capabilities, not tuned libraries. *)
let caps_of : target -> Transform.Xforms.caps = function
  | Cpu c ->
      let lanes_f32 = c.vector_bits / 32 in
      Transform.Xforms.cpu_caps
        ~vec_lanes:(if lanes_f32 >= 2 then [ lanes_f32 ] else [])
        ~max_unroll:16 ()
  | Gpu g -> Transform.Xforms.gpu_caps ~max_block:g.max_threads_per_block ()
  | Snitch _ -> Transform.Xforms.snitch_caps ()
