type t =
  | All
  | For of string
  | Size of int
  | Annot of Ir.Types.annot
  | Writes of string
  | Reads of string
  | Depth of int
  | Nested
  | IsStmt
  | IsScope
  | Under of t
  | Path of Ir.Types.path
  | And of t * t
  | Or of t * t
  | Nth of t * int

let annot_of_name = function
  | "seq" -> Some Ir.Types.Seq
  | "unroll" | "u" -> Some Ir.Types.Unroll
  | "par" | "p" -> Some Ir.Types.Par
  | "vec" | "v" -> Some Ir.Types.Vec
  | "grid" | "g" -> Some Ir.Types.GpuGrid
  | "block" | "b" -> Some Ir.Types.GpuBlock
  | "warp" | "w" -> Some Ir.Types.GpuWarp
  | "frep" | "f" -> Some Ir.Types.Frep
  | _ -> None

let annot_name = function
  | Ir.Types.Seq -> "seq"
  | Ir.Types.Unroll -> "unroll"
  | Ir.Types.Par -> "par"
  | Ir.Types.Vec -> "vec"
  | Ir.Types.GpuGrid -> "grid"
  | Ir.Types.GpuBlock -> "block"
  | Ir.Types.GpuWarp -> "warp"
  | Ir.Types.Frep -> "frep"

let cAll = All
let cFor header = For header
let cSize n = Size n

let cAnnot name =
  match annot_of_name name with
  | Some a -> Annot a
  | None -> invalid_arg (Printf.sprintf "Target.cAnnot: unknown annotation %S" name)

let cStmt ?writes () =
  match writes with None -> IsStmt | Some a -> And (IsStmt, Writes a)

let cWrites a = Writes a
let cReads a = Reads a
let cDepth d = Depth d
let cNested = Nested
let cScope = IsScope
let cUnder s = Under s
let cPath p = Path p
let cNth k s = Nth (s, k)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)

let path_str (p : Ir.Types.path) =
  "[" ^ String.concat "," (List.map string_of_int p) ^ "]"

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let needs_quote w =
  w = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '(' | ')' | '&' | '|' | '#' | '[' | ']' | ',' | '"' ->
             true
         | _ -> false)
       w

let quote_word w =
  if needs_quote w then
    let buf = Buffer.create (String.length w + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      w;
    Buffer.add_char buf '"';
    Buffer.contents buf
  else w

(* Precedence: atoms > And ('&') > Or ('|') > Nth ('#'). *)
let rec print prec s =
  let wrap level body = if prec > level then "(" ^ body ^ ")" else body in
  match s with
  | All -> "all"
  | Nested -> "nested"
  | IsStmt -> "stmt"
  | IsScope -> "scope"
  | For w -> "for " ^ quote_word w
  | Size n -> "size " ^ string_of_int n
  | Annot a -> "annot " ^ annot_name a
  | Writes a -> "writes " ^ quote_word a
  | Reads a -> "reads " ^ quote_word a
  | Depth d -> "depth " ^ string_of_int d
  | Path p -> "path " ^ path_str p
  | Under inner -> "under " ^ print 3 inner
  | And (a, b) -> wrap 2 (print 2 a ^ " & " ^ print 2 b)
  | Or (a, b) -> wrap 1 (print 1 a ^ " | " ^ print 1 b)
  (* '#' is the loosest level: it wraps at 0 so a Nth nested anywhere —
     under another Nth, inside '|' or '&' — prints parenthesized and
     reparses to the same tree. *)
  | Nth (inner, k) -> wrap 0 (print 1 inner ^ " #" ^ string_of_int k)

let to_string s = print 0 s

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | LPAREN
  | RPAREN
  | AMP
  | BAR
  | HASH
  | LBRACK
  | RBRACK
  | COMMA
  | WORD of string

exception Parse_error of string

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '(' -> push LPAREN; incr i
    | ')' -> push RPAREN; incr i
    | '&' -> push AMP; incr i
    | '|' -> push BAR; incr i
    | '#' -> push HASH; incr i
    | '[' -> push LBRACK; incr i
    | ']' -> push RBRACK; incr i
    | ',' -> push COMMA; incr i
    | '"' ->
        let buf = Buffer.create 8 in
        incr i;
        let closed = ref false in
        while (not !closed) && !i < n do
          (match src.[!i] with
          | '"' -> closed := true
          | '\\' when !i + 1 < n ->
              incr i;
              Buffer.add_char buf src.[!i]
          | ch -> Buffer.add_char buf ch);
          incr i
        done;
        if not !closed then raise (Parse_error "unterminated string");
        push (WORD (Buffer.contents buf))
    | _ ->
        let start = !i in
        while
          !i < n
          &&
          match src.[!i] with
          | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '&' | '|' | '#' | '['
          | ']' | ',' | '"' ->
              false
          | _ -> true
        do
          incr i
        done;
        push (WORD (String.sub src start (!i - start))));
    ()
  done;
  List.rev !toks

let parse src =
  try
    let toks = ref (tokenize src) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let next () =
      match !toks with
      | [] -> raise (Parse_error "unexpected end of selector")
      | t :: rest ->
          toks := rest;
          t
    in
    let expect t what =
      if next () <> t then raise (Parse_error ("expected " ^ what))
    in
    let word what =
      match next () with
      | WORD w -> w
      | _ -> raise (Parse_error ("expected " ^ what))
    in
    let int_arg what =
      let w = word what in
      match int_of_string_opt w with
      | Some n -> n
      | None -> raise (Parse_error (what ^ ": not an integer: " ^ w))
    in
    let rec parse_sel () =
      let u = parse_union () in
      match peek () with
      | Some HASH ->
          ignore (next ());
          Nth (u, int_arg "#k")
      | _ -> u
    and parse_union () =
      let a = ref (parse_inter ()) in
      let continue = ref true in
      while !continue do
        match peek () with
        | Some BAR ->
            ignore (next ());
            a := Or (!a, parse_inter ())
        | _ -> continue := false
      done;
      !a
    and parse_inter () =
      let a = ref (parse_atom ()) in
      let continue = ref true in
      while !continue do
        match peek () with
        | Some AMP ->
            ignore (next ());
            a := And (!a, parse_atom ())
        | _ -> continue := false
      done;
      !a
    and parse_atom () =
      match next () with
      | LPAREN ->
          let s = parse_sel () in
          expect RPAREN "')'";
          s
      | WORD "all" -> All
      | WORD "nested" -> Nested
      | WORD "stmt" -> IsStmt
      | WORD "scope" -> IsScope
      | WORD "for" -> For (word "for <header>")
      | WORD "size" -> Size (int_arg "size <n>")
      | WORD "annot" -> (
          let w = word "annot <name>" in
          match annot_of_name w with
          | Some a -> Annot a
          | None -> raise (Parse_error ("unknown annotation: " ^ w)))
      | WORD "writes" -> Writes (word "writes <array>")
      | WORD "reads" -> Reads (word "reads <array>")
      | WORD "depth" -> Depth (int_arg "depth <d>")
      | WORD "under" -> Under (parse_atom ())
      | WORD "path" ->
          expect LBRACK "'['";
          let ints = ref [] in
          (match peek () with
          | Some RBRACK -> ignore (next ())
          | _ ->
              ints := [ int_arg "path index" ];
              let continue = ref true in
              while !continue do
                match next () with
                | COMMA -> ints := int_arg "path index" :: !ints
                | RBRACK -> continue := false
                | _ -> raise (Parse_error "expected ',' or ']' in path")
              done);
          Path (List.rev !ints)
      | WORD w -> raise (Parse_error ("unknown selector atom: " ^ w))
      | _ -> raise (Parse_error "expected selector atom")
    in
    let s = parse_sel () in
    (match !toks with
    | [] -> ()
    | _ -> raise (Parse_error "trailing tokens after selector"));
    Ok s
  with Parse_error m -> Error ("selector: " ^ m)

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

type error =
  | No_match of { selector : string }
  | Ambiguous of { selector : string; matches : Ir.Types.path list }
  | Refused of { transfo : string; anchor : Ir.Types.path; reason : string }

let error_to_string = function
  | No_match { selector } -> Printf.sprintf "no node matches selector %s" selector
  | Ambiguous { selector; matches } ->
      Printf.sprintf "selector %s is ambiguous: %d matches (%s); add '& path [..]' or '#k'"
        selector (List.length matches)
        (String.concat " " (List.map path_str matches))
  | Refused { transfo; anchor; reason } ->
      Printf.sprintf "%s refused at %s: %s" transfo (path_str anchor) reason

let rec has_nested_scope = function
  | Ir.Types.Stmt _ -> false
  | Ir.Types.Scope sc ->
      List.exists
        (function Ir.Types.Scope _ -> true | Ir.Types.Stmt _ -> false)
        sc.body
      || List.exists has_nested_scope sc.body

let rec matches prog path node sel =
  match sel with
  | All -> true
  | For header -> (
      match node with
      | Ir.Types.Scope sc -> Ir.Printer.scope_header sc = header
      | Ir.Types.Stmt _ -> false)
  | Size n -> (
      match node with
      | Ir.Types.Scope sc -> sc.size = n
      | Ir.Types.Stmt _ -> false)
  | Annot a -> (
      match node with
      | Ir.Types.Scope sc -> sc.annot = a
      | Ir.Types.Stmt _ -> false)
  | Writes a -> List.mem a (Ir.Prog.written_arrays node)
  | Reads a -> List.mem a (Ir.Prog.read_arrays node)
  | Depth d -> Ir.Prog.depth_of_path prog path = d
  | Nested -> (
      match node with
      | Ir.Types.Scope _ -> not (has_nested_scope node)
      | Ir.Types.Stmt _ -> false)
  | IsStmt -> ( match node with Ir.Types.Stmt _ -> true | _ -> false)
  | IsScope -> ( match node with Ir.Types.Scope _ -> true | _ -> false)
  | Under inner ->
      let rec ancestors acc = function
        | [] -> acc
        | p -> ancestors (p :: acc) (List.filteri (fun i _ -> i < List.length p - 1) p)
      in
      let proper = List.filter (fun p -> p <> path) (ancestors [] path) in
      List.exists
        (fun p ->
          match Ir.Prog.node_at prog p with
          | n -> matches prog p n inner
          | exception Ir.Prog.Invalid_path _ -> false)
        proper
  | Path p -> path = p
  | And (a, b) -> matches prog path node a && matches prog path node b
  | Or (a, b) -> matches prog path node a || matches prog path node b
  | Nth (inner, k) -> (
      match List.nth_opt (resolve_all prog inner) k with
      | Some p -> p = path
      | None -> false)

and resolve_all prog sel =
  List.rev
    (Ir.Prog.fold_nodes
       (fun acc path node -> if matches prog path node sel then path :: acc else acc)
       [] prog)

let resolve prog sel =
  match resolve_all prog sel with
  | [ p ] -> Ok p
  | [] -> Error (No_match { selector = to_string sel })
  | ps -> Error (Ambiguous { selector = to_string sel; matches = ps })
