(** Combinator targeting DSL (ROADMAP item 2, OptiTrust-style).

    A selector is a predicate over IR nodes that resolves against a
    program to node {!Ir.Types.path}s.  Selectors free schedules from
    raw child indices: a script can say "the innermost loop of size 64
    that writes [z]" instead of [[0,4,0]], and survives IR refactors
    that renumber children.

    Scopes in this IR are anonymous (iterators are positional [{d}]
    references), so [cFor] matches the printed scope header
    ({!Ir.Printer.scope_header}) — ["64:v"], ["320:b/300"] — rather
    than a loop-variable name.

    [resolve] demands a {e unique} match and returns typed errors
    otherwise, so composite transformations either land on exactly the
    node the author meant or refuse cleanly. *)

type t =
  | All  (** every node *)
  | For of string  (** scope whose printed header equals the string *)
  | Size of int  (** scope of this iteration count *)
  | Annot of Ir.Types.annot  (** scope carrying this annotation *)
  | Writes of string  (** node writing (directly or below) this array *)
  | Reads of string  (** node reading this array *)
  | Depth of int  (** node enclosed by exactly [d] scopes *)
  | Nested  (** innermost scope: no scope anywhere below it *)
  | IsStmt  (** leaf statement *)
  | IsScope  (** any scope *)
  | Under of t  (** node with a proper ancestor matching the selector *)
  | Path of Ir.Types.path  (** exact path — the raw-index escape hatch *)
  | And of t * t
  | Or of t * t
  | Nth of t * int  (** the [k]-th match (preorder, 0-based) *)

(** {1 Combinators} *)

val cAll : t
val cFor : string -> t
val cSize : int -> t

val cAnnot : string -> t
(** Accepts ["seq"], ["unroll"], ["par"], ["vec"], ["grid"], ["block"],
    ["warp"], ["frep"] and the one-letter suffix forms; raises
    [Invalid_argument] on an unknown name. *)

val cStmt : ?writes:string -> unit -> t
val cWrites : string -> t
val cReads : string -> t
val cDepth : int -> t
val cNested : t
val cScope : t
val cUnder : t -> t
val cPath : Ir.Types.path -> t
val cNth : int -> t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t

(** {1 Resolution} *)

type error =
  | No_match of { selector : string }
  | Ambiguous of { selector : string; matches : Ir.Types.path list }
  | Refused of { transfo : string; anchor : Ir.Types.path; reason : string }
      (** A transformation resolved its anchor but could not apply
          there; carried through {!Transform.Engine.apply_at}. *)

val error_to_string : error -> string

val resolve_all : Ir.Prog.t -> t -> Ir.Types.path list
(** All matching paths in preorder (outer before inner, in order). *)

val resolve : Ir.Prog.t -> t -> (Ir.Types.path, error) result
(** The unique match, or [No_match] / [Ambiguous]. *)

(** {1 Concrete syntax}

    The script grammar ([.pds] files, v1):
    {v
    sel   := union ('#' INT)?           -- '#k' takes the k-th match
    union := inter ('|' inter)*
    inter := atom ('&' atom)*
    atom  := '(' sel ')' | 'all' | 'nested' | 'stmt' | 'scope'
           | 'for' WORD | 'size' INT | 'annot' NAME
           | 'writes' NAME | 'reads' NAME | 'depth' INT
           | 'under' atom | 'path' '[' INT (',' INT)* ']'
    v}
    WORD is a bare token (may contain [:] and [/], as scope headers
    do) or a double-quoted string. *)

val to_string : t -> string
val parse : string -> (t, string) result
(** [parse (to_string s)] returns a selector equivalent to [s]. *)

val path_str : Ir.Types.path -> string
(** ["[0,4]"] — shared formatting for paths in messages and scripts. *)
