(* Minimal JSON reader/writer shared by the tuning database and the
   observability trace sink.

   Hand-rolled on purpose: the package has no yojson dependency, and the
   JSONL stores need a *canonical* printer — compact, member order
   preserved, floats rendered by the shortest %g format that round-trips
   exactly — so that save -> load -> save is byte-identical.  Historically
   this lived in [Tuning.Json]; it moved here so [Obs] (which the search
   and tuning layers both depend on) can reuse the canonical encoding
   without a dependency cycle.  [Tuning.Json] remains as an alias. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest of %.15g / %.16g / %.17g that parses back to the same float:
   exact, and stable under parse-then-reprint. *)
let num_string (f : float) : string =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match try_prec 15 with
  | Some s -> s
  | None -> ( match try_prec 16 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" f)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        if Float.is_finite f then Buffer.add_string buf (num_string f)
        else Buffer.add_string buf "null"
    | Str s -> escape_string buf s
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go v)
          members;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let of_string (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* UTF-8 encode a code point parsed from \uXXXX (surrogate pairs are
     passed through as-is: the database only ever holds ASCII). *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> add_code_point buf cp
            | None -> fail "bad \\u escape")
        | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec members_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members_loop ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
