(** Amortized growable array (doubling backing store): O(1) amortized
    {!push} instead of the O(n)-per-append [Array.append] pattern.

    A small 5.1-compatible subset of the stdlib [Dynarray] that lands in
    OCaml 5.2; the [dummy] element fills unused capacity so the
    implementation stays free of [Obj] magic. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create ?capacity dummy] — [dummy] pads unreached capacity. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append at the end; amortized O(1). *)

val unsafe_data : 'a t -> 'a array
(** The backing store; only indices [< length] are live (the rest hold
    the dummy).  For length-bounded array consumers such as
    {!Rng.weighted_index_n}. *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val to_array : 'a t -> 'a array
(** Copy of the live prefix. *)
