(* Amortized growable array.

   The stochastic search pool previously grew with
   [Array.append pool [| child |]] — an O(n) copy per evaluation, i.e.
   O(budget^2) overall.  This buffer doubles its backing store instead,
   giving O(1) amortized [push].  (Stdlib gains Dynarray in 5.2; this is
   the small subset the repo needs, on 5.1.) *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a; (* fills unused capacity so no [Obj] tricks are needed *)
}

let create ?(capacity = 16) dummy =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarray.get: out of bounds";
  t.data.(i)

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * t.len) t.dummy in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

(* The live prefix of the backing store, for functions that take a
   [len]-bounded array view (e.g. Rng.weighted_index_n).  Elements at
   indices >= length are the dummy; callers must respect the bound. *)
let unsafe_data t = t.data

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len
