(* Deterministic, splittable pseudo-random number generator.

   All stochastic components of the reproduction (search, RL, baseline
   failure models, test-input generation) draw from this generator so that
   every experiment is bit-reproducible.  The core is xoshiro256** by
   Blackman and Vigna; state initialisation uses splitmix64 as they
   recommend. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 (seed : int64 ref) : int64 =
  let open Int64 in
  seed := add !seed 0x9E3779B97F4A7C15L;
  let z = !seed in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let s = ref (Int64.of_int seed) in
  let s0 = splitmix64 s in
  let s1 = splitmix64 s in
  let s2 = splitmix64 s in
  let s3 = splitmix64 s in
  { s0; s1; s2; s3 }

(* The raw xoshiro quadruple, for checkpointing: [of_state (state t)]
   continues the exact draw sequence of [t]. *)
let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state a =
  if Array.length a <> 4 then invalid_arg "Rng.of_state: need 4 words";
  { s0 = a.(0); s1 = a.(1); s2 = a.(2); s3 = a.(3) }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Split off an independent stream; mixes a fresh draw through splitmix64 so
   child streams do not overlap with the parent in practice. *)
let split t =
  let s = ref (next_int64 t) in
  let s0 = splitmix64 s in
  let s1 = splitmix64 s in
  let s2 = splitmix64 s in
  let s3 = splitmix64 s in
  { s0; s1; s2; s3 }

(* Uniform float in [0, 1), using the top 53 bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound), by rejection sampling: [x mod bound] alone
   is biased towards small residues whenever [bound] does not divide the
   2^62 draw range.  We reject draws above the largest multiple of
   [bound] that fits.  2^62 itself is not representable in a 63-bit
   native int, so the accept limit is computed from the mask:
   with [rem = 2^62 mod bound = ((mask mod bound) + 1) mod bound], the
   accept region [0 .. mask - rem] holds exactly
   [floor(2^62 / bound) * bound] values.  The rejection probability is
   [bound / 2^62] — negligible for realistic bounds, so draw sequences
   are in practice identical to the pre-fix generator. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative as a native int *)
  let mask = 0x3FFFFFFFFFFFFFFF in
  let rem = ((mask mod bound) + 1) mod bound in
  let limit = mask - rem in
  let rec draw () =
    let x = Int64.to_int (Int64.logand (next_int64 t) 0x3FFFFFFFFFFFFFFFL) in
    if x <= limit then x mod bound else draw ()
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(* Standard normal via Box-Muller. *)
let normal t =
  let u1 = max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(* Sample an index proportionally to the first [n] non-negative weights.
   Draw-for-draw identical to [weighted_index] on an n-element array, so
   search code can keep weights in a growable buffer without copying. *)
let weighted_index_n t weights n =
  if n <= 0 || n > Array.length weights then
    invalid_arg "Rng.weighted_index_n: bad prefix length";
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. weights.(i)
  done;
  if !total <= 0.0 then int t n
  else begin
    let target = float t *. !total in
    let rec go i acc =
      if i >= n - 1 then n - 1
      else
        let acc = acc +. weights.(i) in
        if target < acc then i else go (i + 1) acc
    in
    go 0 0.0
  end

let weighted_index t weights = weighted_index_n t weights (Array.length weights)
