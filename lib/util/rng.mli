(** Deterministic, splittable pseudo-random number generator
    (xoshiro256{^**}).

    Every stochastic component of the system — search, RL, baseline
    failure models, test-input generation — draws from this generator, so
    all experiments are bit-reproducible given their seeds. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] initializes a generator from an integer seed via
    splitmix64. *)

val split : t -> t
(** [split t] derives an independent child stream, advancing [t]. *)

val state : t -> int64 array
(** The raw 4-word xoshiro256{^**} state, for checkpointing. *)

val of_state : int64 array -> t
(** Rebuild a generator from {!state}; [of_state (state t)] continues
    the exact draw sequence of [t].  Raises [Invalid_argument] unless
    given exactly 4 words. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling over the 62-bit draw range rather than a biased
    [mod]. Raises [Invalid_argument] when [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** [weighted_index t w] samples an index with probability proportional
    to the non-negative weights [w]; uniform if all weights are zero. *)

val weighted_index_n : t -> float array -> int -> int
(** [weighted_index_n t w n] is {!weighted_index} restricted to the
    first [n] entries of [w] — same draw sequence, no copy; lets callers
    keep weights in a growable buffer.  Raises [Invalid_argument] when
    [n <= 0] or [n > Array.length w]. *)
