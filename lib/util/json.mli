(** Minimal JSON reader/writer for the tuning database and the
    observability trace sink (the package deliberately carries no yojson
    dependency).

    The printer is canonical: compact one-line output, members in the
    order given, floats via a round-trip-exact format.  Parsing a
    printed value and printing it again is byte-identical — the property
    the JSONL database relies on for stable saves. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Non-finite numbers print as [null]. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error.  Accepts the
    full JSON grammar (escapes, [\uXXXX], exponents, nested values). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

val num_string : float -> string
(** The canonical number rendering used by {!to_string}: the shortest
    of ["%.15g"], ["%.16g"], ["%.17g"] that parses back to the identical
    float — exact round-trip with stable re-printing. *)
