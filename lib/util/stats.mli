(** Statistics helpers used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean ([nan] on empty input). *)

val geomean : float array -> float
(** Geometric mean; raises [Invalid_argument] on non-positive values.
    Used for the paper's geometric-mean speedup summaries. *)

val variance : float array -> float
(** Unbiased sample variance (0 for fewer than two samples). *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_arr : float array -> float
val max_arr : float array -> float
(** IEEE min/max folds; any NaN input makes the result NaN. *)

val quantile : float -> float array -> float
(** [quantile q xs] with linear interpolation, [q] in [\[0, 1\]].
    [nan] on empty input or when any sample is NaN — a NaN must not be
    silently ranked (polymorphic compare would order it below [-inf]
    and return a bogus finite quantile). *)

val median : float array -> float
(** [quantile 0.5]; propagates NaN like {!quantile}. *)
