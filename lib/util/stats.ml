(* Small statistics helpers used by benches and EXPERIMENTS.md generation. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

(* Geometric mean; all inputs must be positive. Used for the paper's
   geometric-mean speedup summaries (Figs. 1b, 7, 8, 11, 13). *)
let geomean xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_arr xs = Array.fold_left Float.min infinity xs
let max_arr xs = Array.fold_left Float.max neg_infinity xs

(* Quantile with linear interpolation, q in [0, 1].  Polymorphic
   [compare] orders NaN below -inf, so a single NaN used to shift every
   rank and return a bogus but finite-looking quantile; instead NaN
   poisons the result explicitly, like [mean] over NaN inputs. *)
let quantile q xs =
  let n = Array.length xs in
  if n = 0 then nan
  else if Array.exists Float.is_nan xs then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then sorted.(lo)
    else
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile 0.5 xs
