(** The persistent tuning database: an append-only set of schedule
    {!Record}s behind a JSONL file, deduplicated by program fingerprint
    (plus target and move sequence) and queried per (kernel, target).

    This is the log-based store production autotuners keep: every search
    run deposits its winner, later runs warm-start from it, and the best
    record per (kernel, target) {e is} the generated library entry. *)

type t

val create : unit -> t
(** An empty in-memory database. *)

val load : ?strict:bool -> ?obs:Obs.Trace.sink -> string -> (t, string) result
(** Load a JSONL file.  A missing file is an empty database (first run
    bootstraps it).

    Malformed lines — typically the torn final line of a writer killed
    mid-append — are skipped and counted ({!skipped_lines}), so a crash
    never bricks future warm starts; [~strict:true] restores the old
    contract where the first malformed line is an [Error] naming it.
    An unreadable file (permissions, I/O) is an [Error] either way.

    A tolerant load that skipped anything emits one [db.skipped_lines]
    trace event ([path], [skipped]) on [obs] — the uniform signal every
    caller (CLI, serve daemon, bench) observes corruption through;
    the CLI additionally prints its stderr warning. *)

val skipped_lines : t -> int
(** Malformed lines tolerated by the {!load} that produced this
    database; [0] for a strict or clean load.  Callers surface it as a
    warning (the CLI does). *)

val save : t -> string -> unit
(** Write all records, one JSON object per line, in the stable
    {!Record.compare_order}.  save → load → save is byte-identical.

    Crash-safe and durable ({!Recover.Durable.write_file}): the file is
    written to [path ^ ".tmp"], [fsync]ed, atomically renamed into
    place, and the directory is fsynced — so an interrupt at any point
    leaves either the previous complete file or the new one (never a
    truncated mix), once [save] returns the contents survive [kill -9]
    and power loss, and a stale tmp from an earlier crash is cleaned up
    by the next save.

    Concurrent-writer-safe: records already on disk are first merged
    into [db] under the {!add} improve/dedupe rules, so two processes
    sharing one database file cannot silently drop each other's
    records; each key keeps the fastest schedule either writer found. *)

val add : t -> Record.t -> [ `Inserted | `Improved | `Duplicate ]
(** Insert with dedup: a record whose {!Record.key} is already present
    replaces the incumbent only when strictly faster ([`Improved]);
    an equal-or-slower duplicate leaves the database unchanged. *)

val size : t -> int

val records : t -> Record.t list
(** All records in stable order. *)

val query : ?kernel:string -> ?target:string -> t -> Record.t list
(** Records matching the given kernel and/or target, best first. *)

val best : t -> kernel:string -> target:string -> Record.t option
(** Fastest record for the pair. *)

val top_k : t -> kernel:string -> target:string -> int -> Record.t list
(** The [k] fastest records for the pair, best first. *)
