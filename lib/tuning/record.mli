(** One tuning result: the best transformation sequence found for a
    (kernel, target) pair, replayable via {!Transform.Engine.replay},
    plus the provenance a later search needs to trust it (program
    fingerprint, modelled runtime, evaluation count, schema version).

    Records serialize to one JSON object per line (JSONL) with a
    hand-rolled, canonical printer — see {!Json}. *)

type t = {
  schema : int;  (** {!schema_version} at write time *)
  kernel : string;  (** kernel label, e.g. ["softmax"] *)
  target : string;  (** canonical target name, e.g. ["snitch"] *)
  moves : string list;  (** {!Transform.Xforms.describe} strings, in order *)
  best_time : float;  (** modelled runtime of the replayed schedule, s *)
  evals : int;  (** performance-model evaluations spent finding it *)
  fingerprint : string;  (** {!fingerprint} of the {e root} program *)
  script : string option;
      (** schema >= 3: the schedule as a [pds] script
          ([Transfo.Script.of_moves]) — the human-auditable provenance
          replaying identically to [moves]; [None] on records written by
          older schemas *)
}

val schema_version : int
(** 3: records may carry script provenance.  Schema-2 (canonical
    fingerprints, no script) and schema-1 records (raw printed-text
    digests) still parse — [script] reads back as [None] — and stay
    warm via the dual-key helpers below. *)

val fingerprint : Ir.Prog.t -> string
(** Canonical program identity: {!Canon.fingerprint} — invariant under
    alpha-renaming of temporaries and provably-commutative sibling
    reorder, so equivalent spellings of a root share their records. *)

val fingerprint_legacy : Ir.Prog.t -> string
(** Schema-1 identity: MD5 digest (hex) of the raw
    {!Ir.Printer.program} text. *)

val root_keys : Ir.Prog.t -> string * string
(** [(fingerprint p, fingerprint_legacy p)], computed once per root for
    the dual-key lookups. *)

val matches_root : keys:string * string -> t -> bool
(** Does this record belong to the root with these {!root_keys}?
    True for both canonical (schema 2) and legacy (schema 1)
    fingerprints, so databases written before the canonical form stay
    warm. *)

val make :
  ?script:string ->
  kernel:string ->
  target:string ->
  moves:string list ->
  best_time:float ->
  evals:int ->
  root:Ir.Prog.t ->
  unit ->
  t

val to_json : t -> string
(** One-line JSON object, canonical member order. *)

val of_json : string -> (t, string) result
(** Parse one JSONL line.  Unknown schema versions and missing or
    ill-typed fields are errors, never silent defaults. *)

val key : t -> string
(** Dedup identity: kernel + fingerprint + target + move sequence, so
    re-tuning the same program deduplicates while distinct kernel labels
    stay independently queryable. *)

val compare_order : t -> t -> int
(** Total order used for stable database saves: by kernel, target,
    best_time, moves, evals, fingerprint. *)
