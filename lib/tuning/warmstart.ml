(* Warm-started search: seed new tuning runs from the database's best
   recorded schedule. *)

let moves_for (db : Db.t) ~kernel ~target ~(root : Ir.Prog.t) : string list =
  let keys = Record.root_keys root in
  match Db.best db ~kernel ~target with
  | Some (r : Record.t) when Record.matches_root ~keys r -> r.moves
  | Some _ | None -> []

let replay caps prog moves = Search.Stochastic.replay_skipping caps prog moves

(* Build a record by replaying the winner: the stored best_time is the
   replayed schedule's modelled runtime, so the record is reproducible
   by construction (budget-0 warm-start lands exactly on it).  Script
   provenance is derived from the applied moves — deterministic, so a
   record built from a resumed or re-run search carries identical
   bytes. *)
let record_of ~objective ~caps ~kernel ~target ~root ~moves ~evals :
    (Record.t, string) result =
  let replayed, applied = replay caps root moves in
  if List.length applied <> List.length moves then
    Error
      (Printf.sprintf
         "record_of: only %d of %d moves replayed from the root"
         (List.length applied) (List.length moves))
  else
    let script =
      Transfo.Script.to_string
        (Transfo.Script.of_moves ~kernel ~ktarget:target applied)
    in
    Ok
      (Record.make ~script ~kernel ~target ~moves:applied
         ~best_time:(objective replayed) ~evals ~root ())
