(** Alias of {!Util.Json}, the canonical JSON reader/writer the JSONL
    database is built on.  The implementation moved to [lib/util] so the
    observability trace sink can share the canonical encoding; this
    module keeps the historical [Tuning.Json] name and type equality. *)

include module type of struct
  include Util.Json
end
