(* Alias: the canonical JSON encoder moved to [Util.Json] so that the
   observability layer can share it; tuning code keeps its historical
   [Tuning.Json] name. *)

include Util.Json
