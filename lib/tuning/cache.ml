(* Memoized objective evaluation, keyed on the program fingerprint.

   Domain-safe: the table is sharded by fingerprint hash and every shard
   carries its own mutex, so concurrent search workers (Parallel.Pool)
   share memoization without races and without serializing on a single
   lock.  The objective itself runs *outside* the shard lock — it is the
   expensive part, and holding the lock there would serialize the very
   evaluations the pool exists to overlap.  Two workers racing on the
   same fresh fingerprint may thus both evaluate it (both count as
   misses — for a deterministic objective they store the same value);
   what is guaranteed is hits + misses = total lookups, exactly. *)

type shard = {
  table : (string, float) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

type t = shard array

let shard_count = 16 (* power of two: shard index is a mask *)

let create () : t =
  Array.init shard_count (fun _ ->
      {
        table = Hashtbl.create 64;
        lock = Mutex.create ();
        hits = 0;
        misses = 0;
      })

let shard_of (cache : t) fp = cache.(Hashtbl.hash fp land (shard_count - 1))

let memoize (cache : t) (objective : Ir.Prog.t -> float) (p : Ir.Prog.t) :
    float =
  let fp = Record.fingerprint p in
  let s = shard_of cache fp in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.table fp with
  | Some time ->
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      time
  | None ->
      s.misses <- s.misses + 1;
      Mutex.unlock s.lock;
      let time = objective p in
      Mutex.lock s.lock;
      if not (Hashtbl.mem s.table fp) then Hashtbl.add s.table fp time;
      Mutex.unlock s.lock;
      time

let sum (cache : t) f = Array.fold_left (fun acc s -> acc + f s) 0 cache
let hits (c : t) = sum c (fun s -> s.hits)
let misses (c : t) = sum c (fun s -> s.misses)

let hit_rate (c : t) =
  let h = hits c and m = misses c in
  let total = h + m in
  if total = 0 then 0. else float_of_int h /. float_of_int total

let entries (c : t) = sum c (fun s -> Hashtbl.length s.table)
