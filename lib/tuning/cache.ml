(* Memoized objective evaluation, keyed on the program fingerprint.

   Domain-safe: the table is sharded by fingerprint hash and every shard
   carries its own mutex, so concurrent search workers (Parallel.Pool)
   share memoization without races and without serializing on a single
   lock.  The objective itself runs *outside* the shard lock — it is the
   expensive part, and holding the lock there would serialize the very
   evaluations the pool exists to overlap.  Two workers racing on the
   same fresh fingerprint may thus both evaluate it (both count as
   misses — for a deterministic objective they store the same value);
   what is guaranteed is hits + misses = total lookups, exactly. *)

type shard = {
  table : (string, float) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable contended : int;
      (* lock acquisitions that found the shard lock already held *)
}

type t = shard array

let shard_count = 16 (* power of two: shard index is a mask *)

let create () : t =
  Array.init shard_count (fun _ ->
      {
        table = Hashtbl.create 64;
        lock = Mutex.create ();
        hits = 0;
        misses = 0;
        contended = 0;
      })

let shard_of (cache : t) fp = cache.(Hashtbl.hash fp land (shard_count - 1))

(* Lock the shard, counting contention: a failed try_lock means another
   domain held this shard at that instant.  The counter is written after
   the lock is acquired, so it needs no extra synchronization. *)
let lock_shard (s : shard) =
  if not (Mutex.try_lock s.lock) then begin
    Mutex.lock s.lock;
    s.contended <- s.contended + 1
  end

let memoize_key (cache : t) (fp : string) (objective : Ir.Prog.t -> float)
    (p : Ir.Prog.t) : float =
  let s = shard_of cache fp in
  lock_shard s;
  match Hashtbl.find_opt s.table fp with
  | Some time ->
      s.hits <- s.hits + 1;
      Mutex.unlock s.lock;
      time
  | None ->
      s.misses <- s.misses + 1;
      Mutex.unlock s.lock;
      let time = objective p in
      lock_shard s;
      (* Non-finite scores are never stored: a quarantined (failed)
         evaluation must not poison warm restarts — a transient fault
         would otherwise be remembered as "this schedule is infinitely
         slow" for the lifetime of the cache. *)
      if Float.is_finite time && not (Hashtbl.mem s.table fp) then
        Hashtbl.add s.table fp time;
      Mutex.unlock s.lock;
      time

let memoize (cache : t) objective p =
  memoize_key cache (Record.fingerprint p) objective p

(* The scope joins the key with a byte no fingerprint (hex) or scope
   name contains, so distinct (scope, program) pairs never collide. *)
let memoize_scoped (cache : t) ~scope objective p =
  memoize_key cache (scope ^ "\x00" ^ Record.fingerprint p) objective p

let sum (cache : t) f = Array.fold_left (fun acc s -> acc + f s) 0 cache
let hits (c : t) = sum c (fun s -> s.hits)
let misses (c : t) = sum c (fun s -> s.misses)
let contended (c : t) = sum c (fun s -> s.contended)

let hit_rate (c : t) =
  let h = hits c and m = misses c in
  let total = h + m in
  if total = 0 then 0. else float_of_int h /. float_of_int total

let entries (c : t) = sum c (fun s -> Hashtbl.length s.table)

(* Counters are written as absolute values (incr by the delta against
   what the registry already holds), so re-exporting after each phase
   refreshes rather than double-counts. *)
let export (c : t) (m : Obs.Metrics.t) =
  let set_counter name v =
    Obs.Metrics.incr m ~by:(v - Obs.Metrics.counter m name) name
  in
  set_counter "cache.hits" (hits c);
  set_counter "cache.misses" (misses c);
  set_counter "cache.contended" (contended c);
  Obs.Metrics.set m "cache.hit_rate" (hit_rate c);
  Obs.Metrics.set m "cache.entries" (float_of_int (entries c))
