(* Memoized objective evaluation, keyed on the program fingerprint. *)

type t = {
  table : (string, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 512; hits = 0; misses = 0 }

let memoize (cache : t) (objective : Ir.Prog.t -> float) (p : Ir.Prog.t) :
    float =
  let fp = Record.fingerprint p in
  match Hashtbl.find_opt cache.table fp with
  | Some time ->
      cache.hits <- cache.hits + 1;
      time
  | None ->
      cache.misses <- cache.misses + 1;
      let time = objective p in
      Hashtbl.add cache.table fp time;
      time

let hits (c : t) = c.hits
let misses (c : t) = c.misses

let hit_rate (c : t) =
  let total = c.hits + c.misses in
  if total = 0 then 0. else float_of_int c.hits /. float_of_int total

let entries (c : t) = Hashtbl.length c.table
