(** Warm-started search: seed a new tuning run from the database's best
    recorded schedule so search resumes instead of restarting.

    Sequences replay through {!Search.Stochastic.replay_skipping}; a
    record is only offered when its fingerprint matches the root program
    being tuned, so a stale database can never seed the wrong kernel. *)

val moves_for :
  Db.t -> kernel:string -> target:string -> root:Ir.Prog.t -> string list
(** Best recorded move sequence for the pair whose fingerprint matches
    [root]; [[]] when the database has nothing to offer. *)

val replay :
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  string list ->
  Ir.Prog.t * string list
(** {!Search.Stochastic.replay_skipping}, re-exported so callers outside
    the search layer need no extra dependency. *)

val record_of :
  objective:(Ir.Prog.t -> float) ->
  caps:Transform.Xforms.caps ->
  kernel:string ->
  target:string ->
  root:Ir.Prog.t ->
  moves:string list ->
  evals:int ->
  (Record.t, string) result
(** Build a database record from a search winner by {e replaying} its
    move sequence from the root and re-timing the result — the stored
    [best_time] is the replayed schedule's, so every record in the
    database is reproducible by construction.  [Error] when some move no
    longer applies. *)
