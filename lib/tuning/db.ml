(* Append-only tuning database over a JSONL file.

   In memory the store is a hashtable keyed by Record.key (fingerprint +
   target + move sequence); on disk it is one canonical JSON object per
   line in Record.compare_order, so save -> load -> save is
   byte-identical and diffs stay reviewable. *)

type t = {
  table : (string, Record.t) Hashtbl.t;
  mutable skipped : int; (* malformed lines tolerated by the last load *)
}

let create () = { table = Hashtbl.create 64; skipped = 0 }

let skipped_lines (db : t) = db.skipped

let add (db : t) (r : Record.t) : [ `Inserted | `Improved | `Duplicate ] =
  let k = Record.key r in
  match Hashtbl.find_opt db.table k with
  | None ->
      Hashtbl.replace db.table k r;
      `Inserted
  | Some old ->
      if r.best_time < old.best_time then begin
        Hashtbl.replace db.table k r;
        `Improved
      end
      else `Duplicate

let size (db : t) = Hashtbl.length db.table

let records (db : t) : Record.t list =
  Hashtbl.fold (fun _ r acc -> r :: acc) db.table []
  |> List.sort Record.compare_order

(* Tolerant by default: a malformed line — typically the torn final
   line of a writer killed mid-append — is skipped and counted rather
   than bricking the whole database (and with it every future warm
   start).  [~strict:true] restores the old fail-on-first-bad-line
   contract for callers that want corruption to be loud.

   Skipped lines are also surfaced as one [db.skipped_lines] trace
   event on [obs], so every tolerant load — the CLI's, the serve
   daemon's, a bench harness's — reports corruption the same way
   instead of each caller inventing its own stderr warning. *)
let load ?(strict = false) ?(obs = Obs.Trace.null) (path : string) :
    (t, string) result =
  if not (Sys.file_exists path) then Ok (create ())
  else begin
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
        let db = create () in
        let rec loop lineno =
          match input_line ic with
          | exception End_of_file -> Ok db
          | line ->
              let line = String.trim line in
              if line = "" then loop (lineno + 1)
              else begin
                match Record.of_json line with
                | Ok r ->
                    ignore (add db r);
                    loop (lineno + 1)
                | Error msg when strict ->
                    Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Error _ ->
                    db.skipped <- db.skipped + 1;
                    loop (lineno + 1)
              end
        in
        let result = loop 1 in
        close_in ic;
        (match result with
        | Ok db when db.skipped > 0 ->
            Obs.Trace.emit obs "db.skipped_lines" (fun () ->
                Obs.Trace.[ str "path" path; int "skipped" db.skipped ])
        | _ -> ());
        result
  end

(* Crash-safe, concurrent-writer-safe save.

   Atomicity: the records are written to [path ^ ".tmp"] and renamed
   over [path] — rename is atomic on POSIX, so a reader (or a crash at
   any instruction) sees either the complete old file or the complete
   new one, never a truncated mix.  A stale tmp left by an interrupted
   earlier save is simply overwritten; on any failure mid-write the tmp
   is removed and the original is untouched.

   Concurrency: two processes sharing one --db used to clobber each
   other (last writer wins, the other's records silently dropped).
   [save] therefore re-reads the file first and folds the on-disk
   records through the same [add] improve/dedupe rules before writing,
   so a concurrent writer's deposits survive — each key keeps the
   fastest record either side knew.  The tolerant [load] means a torn
   trailing line no longer discards the whole disk-side merge: the
   intact records still survive, the torn one is dropped and the
   rewritten file is clean again.  An unreadable file is not merged:
   save still persists this database's records rather than losing the
   run's work.  The merge also flows back into [db] itself, keeping the
   in-memory view consistent with what was written. *)
let save (db : t) (path : string) : unit =
  (match load path with
  | Ok disk -> List.iter (fun r -> ignore (add db r)) (records disk)
  | Error _ -> ());
  Recover.Durable.write_file ~path (fun oc ->
      List.iter
        (fun r ->
          output_string oc (Record.to_json r);
          output_char oc '\n')
        (records db))

let by_time (a : Record.t) (b : Record.t) =
  let c = compare a.best_time b.best_time in
  if c <> 0 then c else Record.compare_order a b

let query ?kernel ?target (db : t) : Record.t list =
  Hashtbl.fold
    (fun _ (r : Record.t) acc ->
      let keep =
        (match kernel with None -> true | Some k -> r.kernel = k)
        && match target with None -> true | Some t -> r.target = t
      in
      if keep then r :: acc else acc)
    db.table []
  |> List.sort by_time

let top_k (db : t) ~kernel ~target k : Record.t list =
  let matching = query ~kernel ~target db in
  List.filteri (fun i _ -> i < k) matching

let best (db : t) ~kernel ~target : Record.t option =
  match top_k db ~kernel ~target 1 with [] -> None | r :: _ -> Some r
