(* Append-only tuning database over a JSONL file.

   In memory the store is a hashtable keyed by Record.key (fingerprint +
   target + move sequence); on disk it is one canonical JSON object per
   line in Record.compare_order, so save -> load -> save is
   byte-identical and diffs stay reviewable. *)

type t = { table : (string, Record.t) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let add (db : t) (r : Record.t) : [ `Inserted | `Improved | `Duplicate ] =
  let k = Record.key r in
  match Hashtbl.find_opt db.table k with
  | None ->
      Hashtbl.replace db.table k r;
      `Inserted
  | Some old ->
      if r.best_time < old.best_time then begin
        Hashtbl.replace db.table k r;
        `Improved
      end
      else `Duplicate

let size (db : t) = Hashtbl.length db.table

let records (db : t) : Record.t list =
  Hashtbl.fold (fun _ r acc -> r :: acc) db.table []
  |> List.sort Record.compare_order

let load (path : string) : (t, string) result =
  if not (Sys.file_exists path) then Ok (create ())
  else begin
    let ic = open_in path in
    let db = create () in
    let rec loop lineno =
      match input_line ic with
      | exception End_of_file -> Ok db
      | line ->
          let line = String.trim line in
          if line = "" then loop (lineno + 1)
          else begin
            match Record.of_json line with
            | Ok r ->
                ignore (add db r);
                loop (lineno + 1)
            | Error msg ->
                Error (Printf.sprintf "%s:%d: %s" path lineno msg)
          end
    in
    let result = loop 1 in
    close_in ic;
    result
  end

let save (db : t) (path : string) : unit =
  let oc = open_out path in
  List.iter
    (fun r ->
      output_string oc (Record.to_json r);
      output_char oc '\n')
    (records db);
  close_out oc

let by_time (a : Record.t) (b : Record.t) =
  let c = compare a.best_time b.best_time in
  if c <> 0 then c else Record.compare_order a b

let query ?kernel ?target (db : t) : Record.t list =
  Hashtbl.fold
    (fun _ (r : Record.t) acc ->
      let keep =
        (match kernel with None -> true | Some k -> r.kernel = k)
        && match target with None -> true | Some t -> r.target = t
      in
      if keep then r :: acc else acc)
    db.table []
  |> List.sort by_time

let top_k (db : t) ~kernel ~target k : Record.t list =
  let matching = query ~kernel ~target db in
  List.filteri (fun i _ -> i < k) matching

let best (db : t) ~kernel ~target : Record.t option =
  match top_k db ~kernel ~target 1 with [] -> None | r :: _ -> Some r
