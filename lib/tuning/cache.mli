(** Memoized objective evaluation.

    Stochastic search and RL episodes revisit the same program many
    times (mutations that cancel, replayed prefixes, repeated candidate
    enumeration); keying the performance model on the program
    {!Record.fingerprint} makes every revisit free.  Hit/miss counters
    quantify the saving — they feed the CLI report and the tuning
    bench's [BENCH_tuning.json].

    Domain-safe: the table is sharded with a mutex per shard, so a cache
    can back the objective of a parallel search ({!Search.Stochastic}'s
    [_parallel] variants) shared across worker domains.  The invariant
    [hits + misses = total lookups] holds exactly under concurrency;
    two workers racing on the same fresh program may both miss (the
    objective runs outside the lock), which for a deterministic
    objective is only a duplicated evaluation, never a wrong value. *)

type t

val create : unit -> t

val memoize : t -> (Ir.Prog.t -> float) -> Ir.Prog.t -> float
(** [memoize cache objective] behaves exactly like [objective] but
    evaluates each distinct program at most once per cache (up to
    concurrent first-evaluation races, see above).

    Non-finite results (NaN/∞ — a failed or quarantined evaluation) are
    returned but never stored, so a transient fault is not remembered
    for the lifetime of the cache; a raising [objective] stores nothing
    either (the exception propagates before the store). *)

val memoize_scoped :
  t -> scope:string -> (Ir.Prog.t -> float) -> Ir.Prog.t -> float
(** Like {!memoize}, but keyed on [scope] alongside the program
    fingerprint.  Use it whenever one cache backs objectives that can
    disagree on the same program — above all different targets, whose
    performance models return different times for identical IR.  The
    facade scopes by target name, so a single cache shared across a
    batch run (e.g. {!Libgen.generate} over several targets) stays
    correct. *)

val hits : t -> int
(** Evaluations answered from the cache. *)

val misses : t -> int
(** Evaluations that ran the underlying model. *)

val hit_rate : t -> float
(** [hits / (hits + misses)]; [0.] before any lookup. *)

val entries : t -> int
(** Distinct programs cached. *)

val contended : t -> int
(** Shard-lock acquisitions that found the lock already held by another
    domain — a direct measure of sharding pressure under parallel
    search ([0] in any single-domain run). *)

val export : t -> Obs.Metrics.t -> unit
(** Publish the counters into a metrics registry: [cache.hits],
    [cache.misses], [cache.contended] (counters), [cache.hit_rate],
    [cache.entries] (gauges).  Writes absolute values, so re-exporting
    refreshes rather than double-counts. *)
