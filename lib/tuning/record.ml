(* One tuning result: the best move sequence found for a
   (kernel, target) pair, with the provenance needed to reuse it —
   program fingerprint, modelled runtime, evaluation count, schema
   version.  Serialized as one canonical JSON object per line. *)

type t = {
  schema : int;
  kernel : string;
  target : string;
  moves : string list;
  best_time : float;
  evals : int;
  fingerprint : string;
  script : string option;
}

let schema_version = 3

(* Canonical program identity (schema >= 2): digest of the canonicalized
   program, so alpha-renamed and commutatively-reordered spellings of
   the same root share their records. *)
let fingerprint (p : Ir.Prog.t) : string = Canon.fingerprint p

(* Schema-1 identity: digest of the raw printed text.  Kept so databases
   written before the canonical fingerprint stay warm — lookups match
   either key (see [root_keys]/[matches_root]). *)
let fingerprint_legacy (p : Ir.Prog.t) : string =
  Digest.to_hex (Digest.string (Ir.Printer.program p))

let root_keys (p : Ir.Prog.t) : string * string =
  (fingerprint p, fingerprint_legacy p)

let matches_root ~keys:(canonical, legacy) (r : t) =
  String.equal r.fingerprint canonical || String.equal r.fingerprint legacy

let make ?script ~kernel ~target ~moves ~best_time ~evals ~root () =
  {
    schema = schema_version;
    kernel;
    target;
    moves;
    best_time;
    evals;
    fingerprint = fingerprint root;
    script;
  }

let to_json (r : t) : string =
  (* the member is absent, not null, on script-less records, so schema-2
     readers of a schema-3 line fail on the schema number alone and older
     writers' bytes stay untouched *)
  let script_member =
    match r.script with None -> [] | Some s -> [ ("script", Json.Str s) ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.Num (float_of_int r.schema));
          ("kernel", Json.Str r.kernel);
          ("target", Json.Str r.target);
          ("moves", Json.Arr (List.map (fun m -> Json.Str m) r.moves));
          ("best_time", Json.Num r.best_time);
          ("evals", Json.Num (float_of_int r.evals));
          ("fingerprint", Json.Str r.fingerprint);
        ]
       @ script_member))

let of_json (line : string) : (t, string) result =
  match Json.of_string line with
  | Error msg -> Error ("record: " ^ msg)
  | Ok v -> (
      let str_field name =
        match Option.bind (Json.member name v) Json.to_str with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "record: missing string %S" name)
      in
      let int_field name =
        match Option.bind (Json.member name v) Json.to_int with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "record: missing int %S" name)
      in
      let float_field name =
        match Option.bind (Json.member name v) Json.to_float with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "record: missing number %S" name)
      in
      let moves_field () =
        match Option.bind (Json.member "moves" v) Json.to_list with
        | None -> Error "record: missing array \"moves\""
        | Some items ->
            List.fold_right
              (fun item acc ->
                match (Json.to_str item, acc) with
                | Some s, Ok rest -> Ok (s :: rest)
                | None, _ -> Error "record: non-string move"
                | _, (Error _ as e) -> e)
              items (Ok [])
      in
      let ( let* ) = Result.bind in
      let* schema = int_field "schema" in
      (* schema 1 records carry legacy printed-text fingerprints; they
         parse fine and stay warm through the dual-key lookups *)
      if schema <> 1 && schema <> 2 && schema <> schema_version then
        Error (Printf.sprintf "record: unsupported schema version %d" schema)
      else
        let* kernel = str_field "kernel" in
        let* target = str_field "target" in
        let* moves = moves_field () in
        let* best_time = float_field "best_time" in
        let* evals = int_field "evals" in
        let* fingerprint = str_field "fingerprint" in
        let script = Option.bind (Json.member "script" v) Json.to_str in
        Ok
          { schema; kernel; target; moves; best_time; evals; fingerprint;
            script })

let key (r : t) : string =
  r.kernel ^ "|" ^ r.fingerprint ^ "|" ^ r.target ^ "|"
  ^ String.concat ";" r.moves

(* Total order for stable saves: every field participates so equal-keyed
   records compare equal only when byte-identical. *)
let compare_order (a : t) (b : t) : int =
  let c = compare a.kernel b.kernel in
  if c <> 0 then c
  else
    let c = compare a.target b.target in
    if c <> 0 then c
    else
      let c = compare a.best_time b.best_time in
      if c <> 0 then c
      else
        let c = compare a.moves b.moves in
        if c <> 0 then c
        else
          let c = compare a.evals b.evals in
          if c <> 0 then c
          else
            let c = compare a.fingerprint b.fingerprint in
            if c <> 0 then c else compare a.script b.script
