(** The transformation engine: a session over a program with applicable-
    move enumeration, application with structural re-validation, and a
    non-destructive history (any move can be undone while later moves are
    replayed — Table 1's "non-destructive transformations"). *)

type session = {
  caps : Xforms.caps;
  initial : Ir.Prog.t;
  obs : Obs.Trace.sink;
      (** trace sink for [engine.apply] / [engine.undo] /
          [engine.enumerate] events; {!Obs.Trace.null} when tracing is
          off (the default — and then no event is even constructed) *)
  mutable current : Ir.Prog.t;
  mutable history : (Xforms.instance * Ir.Prog.t) list;
      (** most recent first; each entry stores the state {e before} the
          move *)
}

val start : ?obs:Obs.Trace.sink -> Xforms.caps -> Ir.Prog.t -> session

val applicable : session -> Xforms.instance list
(** All moves offered at the current state. *)

val apply : session -> Xforms.instance -> Ir.Prog.t
(** Apply a move, validate the result structurally, record history.
    Raises [Invalid_argument] when the instance does not apply cleanly. *)

val undo : session -> Ir.Prog.t option
(** Undo the most recent move. *)

val undo_at : session -> int -> Ir.Prog.t option
(** [undo_at s k] removes the move [k] steps back (0 = most recent) and
    replays every later move.  Returns [None] — leaving the session
    unchanged — when a later move no longer applies without it. *)

val moves : session -> Xforms.instance list
(** Moves played so far, oldest first. *)

(** {1 Composite transformations}

    A composite is a named, parameterized sequence of atomic moves
    ([Transfo.Composites.tile_and_unroll], ...).  [expand] resolves the
    sequence against the current state (validating each step against the
    intermediate program it will see) and either returns the full
    instance list or a refusal reason — so a composite {e fully applies
    or cleanly refuses}; the non-destructive history makes partial
    application impossible. *)
type transfo = {
  tname : string;
  targs : (string * string) list;  (** parameters, for labels/scripts *)
  expand :
    Xforms.caps ->
    Ir.Prog.t ->
    anchor:Ir.Types.path ->
    (Xforms.instance list, string) result;
}

val transfo_label : transfo -> string
(** ["tile_and_unroll(f=16, u=4)"] — used in errors and trace events. *)

val apply_at :
  session -> Target.t -> transfo -> (Ir.Prog.t, Target.error) result
(** Resolve the selector to a unique anchor ([No_match]/[Ambiguous]
    otherwise), then apply the composite there; on a mid-sequence
    failure the session is rolled back to its entry state and a
    [Refused] error is returned.  Emits [target.resolve] and
    [transfo.refused] trace events. *)

val apply_anchored :
  session -> anchor:Ir.Types.path -> transfo -> (Ir.Prog.t, Target.error) result
(** [apply_at] with an already-resolved anchor (buffer-level transfos
    ignore it — pass [[]]). *)

val replay_compat :
  Xforms.caps -> Ir.Prog.t -> string list -> (Ir.Prog.t, string) result
(** Replay a recorded sequence of {!Xforms.describe} strings, resolving
    each against the applicable set at that point.  Errors carry the
    step index, the path the failing string parses to, and up to three
    applicable alternatives of the same transformation.  This is the
    compatibility path that keeps schema-2 tuning DBs warm; new code
    should record and replay scripts ({!Transfo.Script}). *)

val replay :
  Xforms.caps -> Ir.Prog.t -> string list -> (Ir.Prog.t, string) result
  [@@deprecated
    "use Transfo.Script.run (script replay) or Engine.replay_compat for \
     recorded describe-string sequences."]
