(** The transformation engine: a session over a program with applicable-
    move enumeration, application with structural re-validation, and a
    non-destructive history (any move can be undone while later moves are
    replayed — Table 1's "non-destructive transformations"). *)

type session = {
  caps : Xforms.caps;
  initial : Ir.Prog.t;
  obs : Obs.Trace.sink;
      (** trace sink for [engine.apply] / [engine.undo] /
          [engine.enumerate] events; {!Obs.Trace.null} when tracing is
          off (the default — and then no event is even constructed) *)
  mutable current : Ir.Prog.t;
  mutable history : (Xforms.instance * Ir.Prog.t) list;
      (** most recent first; each entry stores the state {e before} the
          move *)
}

val start : ?obs:Obs.Trace.sink -> Xforms.caps -> Ir.Prog.t -> session

val applicable : session -> Xforms.instance list
(** All moves offered at the current state. *)

val apply : session -> Xforms.instance -> Ir.Prog.t
(** Apply a move, validate the result structurally, record history.
    Raises [Invalid_argument] when the instance does not apply cleanly. *)

val undo : session -> Ir.Prog.t option
(** Undo the most recent move. *)

val undo_at : session -> int -> Ir.Prog.t option
(** [undo_at s k] removes the move [k] steps back (0 = most recent) and
    replays every later move.  Returns [None] — leaving the session
    unchanged — when a later move no longer applies without it. *)

val moves : session -> Xforms.instance list
(** Moves played so far, oldest first. *)

val replay :
  Xforms.caps -> Ir.Prog.t -> string list -> (Ir.Prog.t, string) result
(** Replay a recorded sequence of {!Xforms.describe} strings, resolving
    each against the applicable set at that point. *)
