type t =
  | Split of Ir.Types.path * int
  | Join of Ir.Types.path
  | Fission of Ir.Types.path * int
  | Interchange of Ir.Types.path
  | Reorder of Ir.Types.path
  | Unroll of Ir.Types.path
  | Vectorize of Ir.Types.path
  | Parallelize of Ir.Types.path
  | Gpu of Ir.Types.path * string
  | Pad of Ir.Types.path * int
  | Unannotate of Ir.Types.path
  | Ssr of Ir.Types.path
  | Frep of Ir.Types.path
  | Split_reduction of Ir.Types.path * int
  | Reuse_dims of string * int
  | Set_storage of string * string
  | Reorder_dims of string * int
  | Composite of {
      cname : string;
      args : (string * string) list;
      anchor : Ir.Types.path;
    }

let path_str = Xforms.path_str

(* "[0,4]" -> Some [0;4]; "[]" -> Some [] *)
let parse_path s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then None
  else
    let inner = String.sub s 1 (n - 2) in
    if String.trim inner = "" then Some []
    else
      let parts = String.split_on_char ',' inner in
      let ints = List.filter_map (fun p -> int_of_string_opt (String.trim p)) parts in
      if List.length ints = List.length parts then Some ints else None

let describe = function
  | Split (p, f) -> Printf.sprintf "split_scope(%s factor %d)" (path_str p) f
  | Join p -> Printf.sprintf "join_scopes(%s)" (path_str p)
  | Fission (p, k) -> Printf.sprintf "fission(%s at %d)" (path_str p) k
  | Interchange p -> Printf.sprintf "interchange(%s)" (path_str p)
  | Reorder p -> Printf.sprintf "reorder(%s)" (path_str p)
  | Unroll p -> Printf.sprintf "unroll(%s)" (path_str p)
  | Vectorize p -> Printf.sprintf "vectorize(%s)" (path_str p)
  | Parallelize p -> Printf.sprintf "parallelize(%s)" (path_str p)
  | Gpu (p, dim) -> Printf.sprintf "gpu_map(%s %s)" (path_str p) dim
  | Pad (p, m) -> Printf.sprintf "pad_scope(%s to multiple of %d)" (path_str p) m
  | Unannotate p -> Printf.sprintf "unannotate(%s)" (path_str p)
  | Ssr p -> Printf.sprintf "enable_ssr(%s)" (path_str p)
  | Frep p -> Printf.sprintf "enable_frep(%s)" (path_str p)
  | Split_reduction (p, k) ->
      Printf.sprintf "split_reduction(%s into %d)" (path_str p) k
  | Reuse_dims (b, d) -> Printf.sprintf "reuse_dims(%s dim %d)" b d
  | Set_storage (b, loc) -> Printf.sprintf "set_storage(%s -> %s)" b loc
  | Reorder_dims (b, i) ->
      Printf.sprintf "reorder_buffer_dims(%s swap %d,%d)" b i (i + 1)
  | Composite { cname; args; anchor } ->
      let args_s =
        String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) args)
      in
      Printf.sprintf "composite(%s(%s) @ %s)" cname args_s (path_str anchor)

let xname = function
  | Split _ -> "split_scope"
  | Join _ -> "join_scopes"
  | Fission _ -> "fission"
  | Interchange _ -> "interchange"
  | Reorder _ -> "reorder"
  | Unroll _ -> "unroll"
  | Vectorize _ -> "vectorize"
  | Parallelize _ -> "parallelize"
  | Gpu _ -> "gpu_map"
  | Pad _ -> "pad_scope"
  | Unannotate _ -> "unannotate"
  | Ssr _ -> "enable_ssr"
  | Frep _ -> "enable_frep"
  | Split_reduction _ -> "split_reduction"
  | Reuse_dims _ -> "reuse_dims"
  | Set_storage _ -> "set_storage"
  | Reorder_dims _ -> "reorder_buffer_dims"
  | Composite _ -> "composite"

let anchor = function
  | Split (p, _) | Join p | Fission (p, _) | Interchange p | Reorder p
  | Unroll p | Vectorize p | Parallelize p | Gpu (p, _) | Pad (p, _)
  | Unannotate p | Ssr p | Frep p | Split_reduction (p, _) ->
      Some p
  | Reuse_dims _ | Set_storage _ | Reorder_dims _ -> None
  | Composite { anchor; _ } -> Some anchor

(* Split "name(rest)" into (name, rest); the final ')' closes the move. *)
let split_call d =
  match String.index_opt d '(' with
  | None -> None
  | Some i ->
      let n = String.length d in
      if n = 0 || d.[n - 1] <> ')' then None
      else Some (String.sub d 0 i, String.sub d (i + 1) (n - i - 2))

let words s =
  List.filter (fun w -> w <> "") (String.split_on_char ' ' s)

let of_describe d =
  match split_call d with
  | None -> None
  | Some (name, rest) -> (
      let path_and w =
        match words rest with
        | [ ps; kw; v ] when kw = w -> (
            match (parse_path ps, int_of_string_opt v) with
            | Some p, Some n -> Some (p, n)
            | _ -> None)
        | _ -> None
      in
      let path_only () =
        match words rest with [ ps ] -> parse_path ps | _ -> None
      in
      match name with
      | "split_scope" -> (
          match path_and "factor" with
          | Some (p, f) -> Some (Split (p, f))
          | None -> None)
      | "join_scopes" -> Option.map (fun p -> Join p) (path_only ())
      | "fission" -> (
          match path_and "at" with
          | Some (p, k) -> Some (Fission (p, k))
          | None -> None)
      | "interchange" -> Option.map (fun p -> Interchange p) (path_only ())
      | "reorder" -> Option.map (fun p -> Reorder p) (path_only ())
      | "unroll" -> Option.map (fun p -> Unroll p) (path_only ())
      | "vectorize" -> Option.map (fun p -> Vectorize p) (path_only ())
      | "parallelize" -> Option.map (fun p -> Parallelize p) (path_only ())
      | "gpu_map" -> (
          match words rest with
          | [ ps; dim ] when dim = "grid" || dim = "block" || dim = "warp" ->
              Option.map (fun p -> Gpu (p, dim)) (parse_path ps)
          | _ -> None)
      | "pad_scope" -> (
          match words rest with
          | [ ps; "to"; "multiple"; "of"; m ] -> (
              match (parse_path ps, int_of_string_opt m) with
              | Some p, Some n -> Some (Pad (p, n))
              | _ -> None)
          | _ -> None)
      | "unannotate" -> Option.map (fun p -> Unannotate p) (path_only ())
      | "enable_ssr" -> Option.map (fun p -> Ssr p) (path_only ())
      | "enable_frep" -> Option.map (fun p -> Frep p) (path_only ())
      | "split_reduction" -> (
          match path_and "into" with
          | Some (p, k) -> Some (Split_reduction (p, k))
          | None -> None)
      | "reuse_dims" -> (
          match words rest with
          | [ b; "dim"; d ] ->
              Option.map (fun n -> Reuse_dims (b, n)) (int_of_string_opt d)
          | _ -> None)
      | "set_storage" -> (
          match words rest with
          | [ b; "->"; loc ] -> Some (Set_storage (b, loc))
          | _ -> None)
      | "reorder_buffer_dims" -> (
          match words rest with
          | [ b; "swap"; ij ] -> (
              match String.split_on_char ',' ij with
              | [ i; j ] -> (
                  match (int_of_string_opt i, int_of_string_opt j) with
                  | Some i, Some j when j = i + 1 -> Some (Reorder_dims (b, i))
                  | _ -> None)
              | _ -> None)
          | _ -> None)
      | "composite" -> (
          (* "name(k=v,...) @ [p]" *)
          match String.index_opt rest '(' with
          | None -> None
          | Some i -> (
              let cname = String.sub rest 0 i in
              match String.rindex_opt rest ')' with
              | None -> None
              | Some j when j > i -> (
                  let args_s = String.sub rest (i + 1) (j - i - 1) in
                  let tail = String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) in
                  let args =
                    if String.trim args_s = "" then Some []
                    else
                      let parts = String.split_on_char ',' args_s in
                      let kvs =
                        List.filter_map
                          (fun kv ->
                            match String.index_opt kv '=' with
                            | Some e ->
                                Some
                                  ( String.trim (String.sub kv 0 e),
                                    String.trim
                                      (String.sub kv (e + 1)
                                         (String.length kv - e - 1)) )
                            | None -> None)
                          parts
                      in
                      if List.length kvs = List.length parts then Some kvs
                      else None
                  in
                  match (args, tail) with
                  | Some args, tail when String.length tail > 2 && String.sub tail 0 2 = "@ " -> (
                      match parse_path (String.sub tail 2 (String.length tail - 2)) with
                      | Some anchor -> Some (Composite { cname; args; anchor })
                      | None -> None)
                  | _ -> None)
              | Some _ -> None))
      | _ -> None)

let script_stmt = function
  | Split (p, f) -> (Some p, "split", [ ("factor", string_of_int f) ])
  | Join p -> (Some p, "join", [])
  | Fission (p, k) -> (Some p, "fission", [ ("at", string_of_int k) ])
  | Interchange p -> (Some p, "interchange", [])
  | Reorder p -> (Some p, "reorder", [])
  | Unroll p -> (Some p, "unroll", [])
  | Vectorize p -> (Some p, "vectorize", [])
  | Parallelize p -> (Some p, "parallelize", [])
  | Gpu (p, dim) -> (Some p, "gpu", [ ("dim", dim) ])
  | Pad (p, m) -> (Some p, "pad", [ ("multiple", string_of_int m) ])
  | Unannotate p -> (Some p, "unannotate", [])
  | Ssr p -> (Some p, "ssr", [])
  | Frep p -> (Some p, "frep", [])
  | Split_reduction (p, k) ->
      (Some p, "split_reduction", [ ("into", string_of_int k) ])
  | Reuse_dims (b, d) ->
      (None, "reuse", [ ("buffer", b); ("dim", string_of_int d) ])
  | Set_storage (b, loc) -> (None, "storage", [ ("buffer", b); ("loc", loc) ])
  | Reorder_dims (b, i) ->
      (None, "transpose", [ ("buffer", b); ("swap", string_of_int i) ])
  | Composite { cname; args; anchor } -> (Some anchor, cname, args)
