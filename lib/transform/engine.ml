(* The transformation engine: enumerates applicable moves, applies them,
   and keeps a non-destructive history so any move can be undone while
   later state is reconstructible (Table 1's "non-destructive
   transformations" requirement: programs are immutable values, a session
   records every intermediate state). *)

type session = {
  caps : Xforms.caps;
  initial : Ir.Prog.t;
  obs : Obs.Trace.sink;
  mutable current : Ir.Prog.t;
  mutable history : (Xforms.instance * Ir.Prog.t) list;
      (* most recent first; the stored program is the state *before* the
         move was applied *)
}

let start ?(obs = Obs.Trace.null) caps prog =
  { caps; initial = prog; obs; current = prog; history = [] }

let applicable session =
  let insts = Xforms.all session.caps session.current in
  if Obs.Trace.enabled session.obs then
    Obs.Trace.emit session.obs "engine.enumerate" (fun () ->
        [
          Obs.Trace.int "count" (List.length insts);
          Obs.Trace.int "depth" (List.length session.history);
        ]);
  insts

let apply session (inst : Xforms.instance) =
  let before = session.current in
  let after = inst.apply before in
  (match Ir.Validate.check after with
  | [] -> ()
  | errs ->
      let msgs = String.concat "; " (List.map Ir.Validate.error_to_string errs)
      in
      invalid_arg
        (Printf.sprintf "%s produced invalid program: %s"
           (Xforms.describe inst) msgs));
  session.history <- (inst, before) :: session.history;
  session.current <- after;
  if Obs.Trace.enabled session.obs then
    Obs.Trace.emit session.obs "engine.apply" (fun () ->
        [
          Obs.Trace.str "move" (Xforms.describe inst);
          Obs.Trace.int "depth" (List.length session.history);
        ]);
  after

(* Undo the most recent move. *)
let undo session =
  match session.history with
  | [] -> None
  | ((inst : Xforms.instance), before) :: rest ->
      session.history <- rest;
      session.current <- before;
      if Obs.Trace.enabled session.obs then
        Obs.Trace.emit session.obs "engine.undo" (fun () ->
            [
              Obs.Trace.str "move" (Xforms.describe inst);
              Obs.Trace.int "depth" (List.length session.history);
            ]);
      Some before

(* Undo the move [k] steps back (0 = most recent) while replaying every
   later move.  Returns [None] when some later move is no longer
   applicable after the removal — the engine refuses to produce an
   invalid program. *)
let undo_at session k =
  let hist = List.rev session.history in (* oldest first *)
  let n = List.length hist in
  if k < 0 || k >= n then None
  else begin
    let idx = n - 1 - k in
    let replay =
      List.filteri (fun i _ -> i <> idx) hist
    in
    try
      let state = ref session.initial in
      let new_hist = ref [] in
      List.iter
        (fun ((inst : Xforms.instance), _) ->
          let before = !state in
          let after = inst.apply before in
          Ir.Validate.check_exn after;
          new_hist := (inst, before) :: !new_hist;
          state := after)
        replay;
      session.history <- !new_hist;
      session.current <- !state;
      Some !state
    with
    (* only the expected staleness/validation failures mean "cannot
       remove"; anything else (Invalid_argument from an indexing bug,
       Not_found, ...) is a genuine error and must propagate *)
    | Xforms.Not_applicable _ | Ir.Prog.Invalid_path _
    | Ir.Validate.Invalid _ ->
      None
  end

let moves session = List.rev_map (fun (i, _) -> i) session.history

(* ------------------------------------------------------------------ *)
(* Composite transformations                                           *)
(* ------------------------------------------------------------------ *)

type transfo = {
  tname : string;
  targs : (string * string) list;
  expand :
    Xforms.caps ->
    Ir.Prog.t ->
    anchor:Ir.Types.path ->
    (Xforms.instance list, string) result;
}

let transfo_label t =
  if t.targs = [] then t.tname
  else
    t.tname ^ "("
    ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) t.targs)
    ^ ")"

let emit_refused session t anchor reason =
  if Obs.Trace.enabled session.obs then
    Obs.Trace.emit session.obs "transfo.refused" (fun () ->
        [
          Obs.Trace.str "transfo" (transfo_label t);
          Obs.Trace.str "anchor" (Xforms.path_str anchor);
          Obs.Trace.str "reason" reason;
        ])

(* Apply a composite at a resolved anchor.  [expand] pre-validates the
   whole sequence against intermediate states, and the history rollback
   below guarantees the "fully apply or cleanly refuse" contract even if
   a step goes stale between expansion and application. *)
let apply_anchored session ~anchor (t : transfo) :
    (Ir.Prog.t, Target.error) result =
  match t.expand session.caps session.current ~anchor with
  | Error reason ->
      emit_refused session t anchor reason;
      Error (Target.Refused { transfo = transfo_label t; anchor; reason })
  | Ok insts -> (
      let entry = List.length session.history in
      let refuse reason =
        while List.length session.history > entry do
          ignore (undo session)
        done;
        emit_refused session t anchor reason;
        Error (Target.Refused { transfo = transfo_label t; anchor; reason })
      in
      let rec go = function
        | [] -> Ok session.current
        | inst :: rest -> (
            match apply session inst with
            | _ -> go rest
            | exception Xforms.Not_applicable m -> refuse m
            | exception Invalid_argument m -> refuse m
            | exception Ir.Prog.Invalid_path p ->
                refuse ("path vanished: " ^ Xforms.path_str p))
      in
      go insts)

let apply_at session (sel : Target.t) (t : transfo) :
    (Ir.Prog.t, Target.error) result =
  match Target.resolve session.current sel with
  | Error e -> Error e
  | Ok anchor ->
      if Obs.Trace.enabled session.obs then
        Obs.Trace.emit session.obs "target.resolve" (fun () ->
            [
              Obs.Trace.str "selector" (Target.to_string sel);
              Obs.Trace.str "path" (Xforms.path_str anchor);
            ]);
      apply_anchored session ~anchor t

(* ------------------------------------------------------------------ *)
(* Describe-string replay (compatibility path)                         *)
(* ------------------------------------------------------------------ *)

(* Apply a named sequence of moves, resolving each by [describe] string
   against the applicable set at that point.  Used to express recorded
   optimization journeys (Figure 4).  Failures report the step index,
   the path the failing string resolves to, and the nearest applicable
   alternatives of the same transformation. *)
let replay_compat caps prog (names : string list) : (Ir.Prog.t, string) result
    =
  let session = start caps prog in
  let rec go step = function
    | [] -> Ok session.current
    | name :: rest -> (
        (* hash-table resolution per step: one describe per instance
           instead of a linear scan re-describing until a match *)
        let offered = applicable session in
        match Xforms.lookup offered name with
        | Some inst ->
            ignore (apply session inst);
            go (step + 1) rest
        | None ->
            let mref = Moveref.of_describe name in
            let path_s =
              match Option.bind mref Moveref.anchor with
              | Some p -> Xforms.path_str p
              | None -> "(no path)"
            in
            let same_xname =
              match Option.map Moveref.xname mref with
              | Some xn ->
                  List.filter
                    (fun (i : Xforms.instance) -> i.xname = xn)
                    offered
              | None -> []
            in
            let pool = if same_xname = [] then offered else same_xname in
            let alts =
              List.filteri (fun k _ -> k < 3) (List.map Xforms.describe pool)
            in
            Error
              (Printf.sprintf
                 "step %d: move %S not applicable at %s; nearest applicable: %s"
                 step name path_s
                 (if alts = [] then "none" else String.concat ", " alts)))
  in
  go 0 names

let replay = replay_compat
