(* The transformation engine: enumerates applicable moves, applies them,
   and keeps a non-destructive history so any move can be undone while
   later state is reconstructible (Table 1's "non-destructive
   transformations" requirement: programs are immutable values, a session
   records every intermediate state). *)

type session = {
  caps : Xforms.caps;
  initial : Ir.Prog.t;
  obs : Obs.Trace.sink;
  mutable current : Ir.Prog.t;
  mutable history : (Xforms.instance * Ir.Prog.t) list;
      (* most recent first; the stored program is the state *before* the
         move was applied *)
}

let start ?(obs = Obs.Trace.null) caps prog =
  { caps; initial = prog; obs; current = prog; history = [] }

let applicable session =
  let insts = Xforms.all session.caps session.current in
  if Obs.Trace.enabled session.obs then
    Obs.Trace.emit session.obs "engine.enumerate" (fun () ->
        [
          Obs.Trace.int "count" (List.length insts);
          Obs.Trace.int "depth" (List.length session.history);
        ]);
  insts

let apply session (inst : Xforms.instance) =
  let before = session.current in
  let after = inst.apply before in
  (match Ir.Validate.check after with
  | [] -> ()
  | errs ->
      let msgs = String.concat "; " (List.map Ir.Validate.error_to_string errs)
      in
      invalid_arg
        (Printf.sprintf "%s produced invalid program: %s"
           (Xforms.describe inst) msgs));
  session.history <- (inst, before) :: session.history;
  session.current <- after;
  if Obs.Trace.enabled session.obs then
    Obs.Trace.emit session.obs "engine.apply" (fun () ->
        [
          Obs.Trace.str "move" (Xforms.describe inst);
          Obs.Trace.int "depth" (List.length session.history);
        ]);
  after

(* Undo the most recent move. *)
let undo session =
  match session.history with
  | [] -> None
  | ((inst : Xforms.instance), before) :: rest ->
      session.history <- rest;
      session.current <- before;
      if Obs.Trace.enabled session.obs then
        Obs.Trace.emit session.obs "engine.undo" (fun () ->
            [
              Obs.Trace.str "move" (Xforms.describe inst);
              Obs.Trace.int "depth" (List.length session.history);
            ]);
      Some before

(* Undo the move [k] steps back (0 = most recent) while replaying every
   later move.  Returns [None] when some later move is no longer
   applicable after the removal — the engine refuses to produce an
   invalid program. *)
let undo_at session k =
  let hist = List.rev session.history in (* oldest first *)
  let n = List.length hist in
  if k < 0 || k >= n then None
  else begin
    let idx = n - 1 - k in
    let replay =
      List.filteri (fun i _ -> i <> idx) hist
    in
    try
      let state = ref session.initial in
      let new_hist = ref [] in
      List.iter
        (fun ((inst : Xforms.instance), _) ->
          let before = !state in
          let after = inst.apply before in
          Ir.Validate.check_exn after;
          new_hist := (inst, before) :: !new_hist;
          state := after)
        replay;
      session.history <- !new_hist;
      session.current <- !state;
      Some !state
    with
    (* only the expected staleness/validation failures mean "cannot
       remove"; anything else (Invalid_argument from an indexing bug,
       Not_found, ...) is a genuine error and must propagate *)
    | Xforms.Not_applicable _ | Ir.Prog.Invalid_path _
    | Ir.Validate.Invalid _ ->
      None
  end

let moves session = List.rev_map (fun (i, _) -> i) session.history

(* Apply a named sequence of moves, resolving each by [describe] string
   against the applicable set at that point.  Used to express recorded
   optimization journeys (Figure 4). *)
let replay caps prog (names : string list) : (Ir.Prog.t, string) result =
  let session = start caps prog in
  let rec go = function
    | [] -> Ok session.current
    | name :: rest -> (
        (* hash-table resolution per step: one describe per instance
           instead of a linear scan re-describing until a match *)
        match Xforms.resolver (applicable session) name with
        | Some inst ->
            ignore (apply session inst);
            go rest
        | None -> Error (Printf.sprintf "move %S not applicable" name))
  in
  go names
