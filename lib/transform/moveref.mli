(** Structured references to moves.

    {!Xforms.describe} strings (["split_scope([0,4] factor 16)"]) are
    the recorded wire format of schedules; this module parses them back
    into a typed value so the script exporter, the composite expander
    and the enriched replay diagnostics can reason about a move's name,
    parameters and anchor path instead of string-matching.  [describe]
    is byte-identical to what {!Xforms.all} produces, so
    [describe (of_describe_exn d) = d] for every move the library can
    emit. *)

type t =
  | Split of Ir.Types.path * int  (** split_scope, factor *)
  | Join of Ir.Types.path
  | Fission of Ir.Types.path * int  (** body split point *)
  | Interchange of Ir.Types.path
  | Reorder of Ir.Types.path
  | Unroll of Ir.Types.path
  | Vectorize of Ir.Types.path
  | Parallelize of Ir.Types.path
  | Gpu of Ir.Types.path * string  (** ["grid"] / ["block"] / ["warp"] *)
  | Pad of Ir.Types.path * int  (** pad to multiple of *)
  | Unannotate of Ir.Types.path
  | Ssr of Ir.Types.path
  | Frep of Ir.Types.path
  | Split_reduction of Ir.Types.path * int  (** accumulator count *)
  | Reuse_dims of string * int  (** buffer, dimension *)
  | Set_storage of string * string  (** buffer, location name *)
  | Reorder_dims of string * int  (** buffer, swap of dims i,i+1 *)
  | Composite of {
      cname : string;
      args : (string * string) list;
      anchor : Ir.Types.path;
    }  (** a named composite macro-move: [composite(name(k=v) @ [p])] *)

val of_describe : string -> t option
(** Parse an {!Xforms.describe} string; [None] for unknown shapes. *)

val describe : t -> string
(** Byte-identical to the {!Xforms.describe} of the matching instance. *)

val xname : t -> string
(** The transformation name as it appears in describe strings. *)

val anchor : t -> Ir.Types.path option
(** The node path the move anchors at; [None] for buffer-level moves. *)

val script_stmt : t -> Ir.Types.path option * string * (string * string) list
(** [(anchor, script name, args)] — the surface form a script statement
    uses for this move ([split(factor=16)], [storage(buffer=mx,
    loc=stack)], ...).  Inverse of {!Composites.resolve} followed by
    expansion at the anchor. *)
