(** The atomic transformation library (§2.2).

    Each transformation ships with applicability discovery: the [find_*]
    functions enumerate every program location where the move is provably
    semantics-preserving (using the analyses in {!Dep}) and return
    ready-to-apply {!instance}s.  Applying an instance needs no further
    checks.  Programs are immutable, so histories are naturally
    non-destructive. *)

type instance = {
  xname : string;  (** transformation name, e.g. ["split_scope"] *)
  target : string;  (** human-readable location / parameters *)
  apply : Ir.Prog.t -> Ir.Prog.t;
      (** total within applicability; raises {!Not_applicable} (or
          [Ir.Prog.Invalid_path] for a vanished path) if the location no
          longer matches *)
}

exception Not_applicable of string
(** Raised when applying an instance whose location went stale — the
    program changed underneath it.  Deliberately distinct from
    [Invalid_argument] so staleness-tolerant handlers (Engine.undo_at)
    never swallow genuine programming errors. *)

val describe : instance -> string
(** ["name(target)"] — stable identifier used to record and replay move
    sequences. *)

val lookup :
  ?filter:(instance -> bool) -> instance list -> string -> instance option
(** [lookup insts] builds (lazily, once) a {!describe} [->] instance
    hash table over [insts] and returns the lookup function — the fast
    path for replaying recorded move names.  First occurrence wins, as
    with [List.find_opt]. *)

val resolver :
  ?filter:(instance -> bool) -> instance list -> string -> instance option
  [@@deprecated
    "describe-string resolution is a compatibility path; address moves \
     with the script API (Transfo.Script / Engine.apply_at) instead.  \
     Internal replay code should use Xforms.lookup."]

(** Hardware capabilities gate which transformations are offered: the
    paper's "hardware knowledge exposed to the search only as a library
    of transformations". *)
type caps = {
  vec_lanes : int list;  (** permitted vector widths; [[]] = no SIMD *)
  max_unroll : int;
  can_parallelize : bool;
  gpu : bool;
  max_block : int;  (** max threads per GPU block *)
  snitch : bool;  (** SSR / FREP extensions available *)
  max_stack_bytes : int;
  split_factors : int list;
  reduction_split : int list;
      (** partial-accumulator counts offered by split_reduction *)
  extra : Ir.Prog.t -> instance list;
      (** additional instances offered at every state — the hook through
          which named composite transformations ([Transfo.Composites])
          appear as macro-moves in every search engine.  The three
          builders install the empty hook; {!with_extra} replaces it. *)
}

val cpu_caps : ?vec_lanes:int list -> ?max_unroll:int -> unit -> caps
val gpu_caps : ?max_block:int -> unit -> caps
val snitch_caps : unit -> caps

val with_extra : (Ir.Prog.t -> instance list) -> caps -> caps
(** The hook must enumerate against a caps value whose own [extra] is
    empty (close over the base caps), or {!all} would recurse. *)

val all : caps -> Ir.Prog.t -> instance list
(** Every applicable instance of every transformation at the given
    program state — the action set of the PerfDojo game.  Atomic
    instances first, then [caps.extra] macro-moves. *)

val atomics : caps -> Ir.Prog.t -> instance list
(** {!all} without the [extra] hook — what composite expansion
    enumerates against so macro-moves never contain macro-moves. *)

(** {1 Individual transformations}

    Exposed for passes and tests; [all] is the usual entry point. *)

val find_split : caps -> Ir.Prog.t -> instance list
(** Tiling: scope of size [n = f*m] becomes nested [m]/[f] scopes;
    [{d}] is rewritten to [f*{d} + {d+1}]. *)

val apply_split : Ir.Types.path -> int -> int -> Ir.Prog.t -> Ir.Prog.t
(** [apply_split path depth factor] — unchecked form used by passes. *)

val find_join : Ir.Prog.t -> instance list
(** Loop fusion of a scope with its immediately-following sibling
    (equal sizes; zero-distance dependences only). *)

val find_fission : Ir.Prog.t -> instance list
(** Loop distribution at any body split point with zero-distance
    dependences across the parts. *)

val find_interchange : Ir.Prog.t -> instance list
(** Swap a scope with its sole child scope (lockstep or commutative-
    reduction dependences only). *)

val find_reorder : Ir.Prog.t -> instance list
(** Swap two independent adjacent siblings. *)

val find_unroll : caps -> Ir.Prog.t -> instance list
(** Mark a scope unrolled (bounded total code replication). *)

val find_vectorize : caps -> Ir.Prog.t -> instance list
(** Vectorize an innermost single-statement scope whose trip count
    equals a permitted lane width and whose accesses are unit-stride or
    invariant — the paper's explicit tile-then-vectorize discipline. *)

val vectorizable_stmt : Ir.Prog.t -> depth:int -> Ir.Types.stmt -> bool

val find_parallelize : caps -> Ir.Prog.t -> instance list
(** CPU thread parallelism over iteration-independent scopes. *)

val find_gpu_map : caps -> Ir.Prog.t -> instance list
(** Map scopes to the GPU grid / block dimensions (grid outermost,
    blocks inside a grid; blocks additionally allow commutative
    reductions — cooperative block reduction). *)

val find_pad : caps -> Ir.Prog.t -> instance list
(** Pad a trip count up to a hardware multiple; the extra iterations are
    masked by a guard. *)

val find_unannotate : Ir.Prog.t -> instance list
(** Revert a scope's annotation (and SSR flag) to sequential — the
    inverse of the annotation moves, keeping the space explorable
    forward. *)

val find_reuse_dims : Ir.Prog.t -> instance list
(** Collapse a buffer dimension to storage extent 1 when a single
    sequential scope provably owns it (Figure 5). *)

val find_set_storage : caps -> Ir.Prog.t -> instance list
(** Move a non-interface buffer between heap / stack / shared /
    register. *)

val find_reorder_dims : Ir.Prog.t -> instance list
(** Transpose the storage layout of a non-interface buffer (adjacent
    dimension swaps). *)

val find_split_reduction : caps -> Ir.Prog.t -> instance list
(** Introduce [k] partial accumulators for a reduction carried by a
    loop, breaking the FP-latency dependency chain (exact up to
    floating-point reassociation). *)

val find_ssr : caps -> Ir.Prog.t -> instance list
(** Stream the memory accesses of a straight-line loop body through
    Snitch stream semantic registers (at most 3 streams). *)

val find_frep : caps -> Ir.Prog.t -> instance list
(** Put an SSR-streamed loop under the Snitch FREP hardware loop. *)

val unroll_replication : Ir.Prog.t -> Ir.Types.path -> Ir.Types.scope -> int

val path_str : Ir.Types.path -> string
val set_annot : Ir.Types.path -> Ir.Types.annot -> Ir.Prog.t -> Ir.Prog.t
val apply_join : Ir.Types.path -> Ir.Prog.t -> Ir.Prog.t
val enclosing_annots : Ir.Prog.t -> Ir.Types.path -> Ir.Types.annot list
