(* The atomic transformation library (§2.2).

   Each transformation comes with applicability discovery: [find_*]
   enumerates every program location where the transformation is provably
   semantics-preserving and returns ready-to-apply instances.  Applying an
   instance never requires further checks.  Instances are small immutable
   values over immutable programs, which makes the whole history
   non-destructive: any prefix of moves can be replayed or undone. *)

open Ir.Types

type instance = {
  xname : string; (* transformation name, e.g. "split_scope" *)
  target : string; (* human-readable location/parameters *)
  apply : Ir.Prog.t -> Ir.Prog.t;
}

let describe i = Printf.sprintf "%s(%s)" i.xname i.target

(* Applying a stale instance (the location no longer matches after the
   program changed underneath it) raises [Not_applicable] — distinct
   from [Invalid_argument] so genuine programming errors (e.g. an
   indexing bug) are never mistaken for staleness by handlers that
   tolerate it (Engine.undo_at). *)
exception Not_applicable of string

let not_applicable msg = raise (Not_applicable msg)

(* Resolve [describe] strings against an instance list through a hash
   table built once — replaces the per-name linear scans (with repeated
   [describe] calls) in Engine.replay / Stochastic.replay_skipping.
   First occurrence wins, matching List.find_opt. *)
let lookup ?(filter = fun (_ : instance) -> true) (insts : instance list) :
    string -> instance option =
  let table = lazy begin
    let t = Hashtbl.create (2 * List.length insts + 1) in
    List.iter
      (fun i ->
        if filter i then
          let d = describe i in
          if not (Hashtbl.mem t d) then Hashtbl.add t d i)
      insts;
    t
  end in
  fun name -> Hashtbl.find_opt (Lazy.force table) name

(* Deprecated alias (see xforms.mli): the script API in Transfo.Script is
   the supported way to address moves; [lookup] remains for the engine's
   internal describe-string compatibility path. *)
let resolver = lookup

(* Hardware capabilities gate which transformations are offered.  This is
   the paper's "hardware knowledge exposed to the search only as a library
   of transformations". *)
type caps = {
  vec_lanes : int list; (* permitted vector widths; [] = no vector unit *)
  max_unroll : int;
  can_parallelize : bool;
  gpu : bool;
  max_block : int; (* max threads per GPU block *)
  snitch : bool; (* SSR / FREP extensions available *)
  max_stack_bytes : int;
  split_factors : int list;
  reduction_split : int list; (* partial-accumulator counts offered *)
  extra : Ir.Prog.t -> instance list;
      (* additional instances offered at every state — the hook through
         which named composite transformations (Transfo) become
         macro-moves visible to every search engine.  Must close over a
         caps value whose own [extra] is empty, or enumeration would
         recurse. *)
}

let no_extra (_ : Ir.Prog.t) : instance list = []

let with_extra extra caps = { caps with extra }

let cpu_caps ?(vec_lanes = [ 4; 8; 16 ]) ?(max_unroll = 16) () =
  {
    extra = no_extra;
    vec_lanes;
    max_unroll;
    can_parallelize = true;
    gpu = false;
    max_block = 0;
    snitch = false;
    max_stack_bytes = 1 lsl 20;
    split_factors = [ 2; 4; 8; 16; 32; 64 ];
    reduction_split = [ 4; 8 ];
  }

let gpu_caps ?(max_block = 1024) () =
  {
    extra = no_extra;
    vec_lanes = [ 4; 2 ]; (* 128/64-bit vector loads per thread *)
    max_unroll = 8;
    can_parallelize = false;
    gpu = true;
    max_block;
    snitch = false;
    max_stack_bytes = 1 lsl 16;
    split_factors = [ 2; 4; 8; 16; 32; 64; 128; 256 ];
    reduction_split = [];
  }

let snitch_caps () =
  {
    extra = no_extra;
    vec_lanes = [];
    max_unroll = 8;
    can_parallelize = false;
    gpu = false;
    max_block = 0;
    snitch = true;
    max_stack_bytes = 1 lsl 17;
    split_factors = [ 2; 4; 8 ];
    reduction_split = [ 4 ];
  }

let path_str p = "[" ^ String.concat "," (List.map string_of_int p) ^ "]"

(* ------------------------------------------------------------------ *)
(* split_scope (tiling)                                                *)
(* ------------------------------------------------------------------ *)

(* Splitting the scope at [p] (depth [d], size [n = f * m]) into an outer
   scope of [m] and inner scope of [f].  The old iterator {d} becomes
   f*{d} + {d+1}; deeper references shift by one. *)
let apply_split p depth factor prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc when sc.size mod factor = 0 && sc.guard = None ->
          let remap (i : index) =
            Ir.Index.subst
              (fun d ->
                if d = depth then
                  Ir.Index.add
                    (Ir.Index.iter ~coeff:factor depth)
                    (Ir.Index.iter (depth + 1))
                else if d > depth then Ir.Index.iter (d + 1)
                else Ir.Index.iter d)
              i
          in
          let body = List.map (Ir.Prog.node_map_index remap) sc.body in
          [
            Scope
              {
                sc with
                size = sc.size / factor;
                body = [ Scope { size = factor; annot = Seq; ssr = false;
                                 guard = None; body } ];
              };
          ]
      | _ -> not_applicable "split_scope: not applicable")

let find_split (caps : caps) (prog : Ir.Prog.t) : instance list =
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope sc when sc.guard = None && sc.annot = Seq ->
          let depth = Ir.Prog.depth_of_path prog p in
          List.fold_left
            (fun acc f ->
              if f > 1 && f < sc.size && sc.size mod f = 0 then
                {
                  xname = "split_scope";
                  target = Printf.sprintf "%s factor %d" (path_str p) f;
                  apply = apply_split p depth f;
                }
                :: acc
              else acc)
            acc caps.split_factors
      | _ -> acc)
    [] prog

(* ------------------------------------------------------------------ *)
(* join_scopes (loop fusion)                                           *)
(* ------------------------------------------------------------------ *)

(* Fuses the scope at [p] with the sibling scope that immediately follows
   it (as in Figure 5). *)
let apply_join p prog =
  let parent = match p with [] -> invalid_arg "join" | _ ->
    List.filteri (fun i _ -> i < List.length p - 1) p
  in
  let i = List.nth p (List.length p - 1) in
  let splice nodes =
    match (List.nth_opt nodes i, List.nth_opt nodes (i + 1)) with
    | Some (Scope s1), Some (Scope s2)
      when s1.size = s2.size && s1.annot = Seq && s2.annot = Seq
           && s1.guard = None && s2.guard = None ->
        List.concat
          (List.mapi
             (fun j n ->
               if j = i then [ Scope { s1 with body = s1.body @ s2.body } ]
               else if j = i + 1 then []
               else [ n ])
             nodes)
    | _ -> not_applicable "join_scopes: not applicable"
  in
  if parent = [] then { prog with body = splice prog.body }
  else
    Ir.Prog.rewrite_at prog parent (fun node ->
        match node with
        | Scope sc -> [ Scope { sc with body = splice sc.body } ]
        | Stmt _ -> not_applicable "join_scopes: bad parent")

let find_join (prog : Ir.Prog.t) : instance list =
  let candidates parent_path nodes depth =
    let rec go i acc = function
      | Scope s1 :: (Scope s2 :: _ as rest)
        when s1.size = s2.size && s1.annot = Seq && s2.annot = Seq
             && s1.guard = None && s2.guard = None
             && Dep.fusion_safe prog ~depth s1.body s2.body ->
          let p = parent_path @ [ i ] in
          go (i + 1)
            ({
               xname = "join_scopes";
               target = path_str p;
               apply = apply_join p;
             }
            :: acc)
            rest
      | _ :: rest -> go (i + 1) acc rest
      | [] -> acc
    in
    go 0 [] nodes
  in
  let acc = ref (candidates [] prog.body 0) in
  Ir.Prog.iter_nodes
    (fun p node ->
      match node with
      | Scope sc ->
          let depth = Ir.Prog.depth_of_path prog p + 1 in
          acc := candidates p sc.body depth @ !acc
      | Stmt _ -> ())
    prog;
  !acc

(* ------------------------------------------------------------------ *)
(* fission (loop distribution)                                         *)
(* ------------------------------------------------------------------ *)

let apply_fission p k prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc when k > 0 && k < List.length sc.body ->
          let part1 = List.filteri (fun j _ -> j < k) sc.body in
          let part2 = List.filteri (fun j _ -> j >= k) sc.body in
          [ Scope { sc with body = part1 }; Scope { sc with body = part2 } ]
      | _ -> not_applicable "fission: not applicable")

let find_fission (prog : Ir.Prog.t) : instance list =
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope sc
        when sc.annot = Seq && sc.guard = None && List.length sc.body > 1 ->
          let depth = Ir.Prog.depth_of_path prog p in
          let n = List.length sc.body in
          let rec go k acc =
            if k >= n then acc
            else
              let part1 = List.filteri (fun j _ -> j < k) sc.body in
              let part2 = List.filteri (fun j _ -> j >= k) sc.body in
              if Dep.fission_safe prog ~depth part1 part2 then
                go (k + 1)
                  ({
                     xname = "fission";
                     target = Printf.sprintf "%s at %d" (path_str p) k;
                     apply = apply_fission p k;
                   }
                  :: acc)
              else go (k + 1) acc
          in
          go 1 acc
      | _ -> acc)
    [] prog

(* ------------------------------------------------------------------ *)
(* interchange                                                         *)
(* ------------------------------------------------------------------ *)

(* Swap the scope at [p] with its sole child scope. *)
let apply_interchange p depth prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope outer -> (
          match outer.body with
          | [ Scope inner ] when outer.guard = None && inner.guard = None ->
              let swap (i : index) =
                Ir.Index.subst
                  (fun d ->
                    if d = depth then Ir.Index.iter (depth + 1)
                    else if d = depth + 1 then Ir.Index.iter depth
                    else Ir.Index.iter d)
                  i
              in
              let body = List.map (Ir.Prog.node_map_index swap) inner.body in
              [
                Scope
                  {
                    inner with
                    body = [ Scope { outer with body } ];
                  };
              ]
          | _ -> not_applicable "interchange: not applicable")
      | Stmt _ -> not_applicable "interchange: not applicable")

let find_interchange (prog : Ir.Prog.t) : instance list =
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope outer -> (
          match outer.body with
          | [ Scope inner ]
            when outer.annot = Seq && inner.annot = Seq && outer.guard = None
                 && inner.guard = None ->
              let depth = Ir.Prog.depth_of_path prog p in
              if Dep.interchange_safe prog ~depth inner.body then
                {
                  xname = "interchange";
                  target = path_str p;
                  apply = apply_interchange p depth;
                }
                :: acc
              else acc
          | _ -> acc)
      | Stmt _ -> acc)
    [] prog

(* ------------------------------------------------------------------ *)
(* reorder (swap adjacent siblings)                                    *)
(* ------------------------------------------------------------------ *)

let apply_reorder parent i prog =
  let swap nodes =
    if i + 1 >= List.length nodes then not_applicable "reorder: out of range";
    List.mapi
      (fun j n ->
        if j = i then List.nth nodes (i + 1)
        else if j = i + 1 then List.nth nodes i
        else n)
      nodes
  in
  if parent = [] then { prog with body = swap prog.body }
  else
    Ir.Prog.rewrite_at prog parent (fun node ->
        match node with
        | Scope sc -> [ Scope { sc with body = swap sc.body } ]
        | Stmt _ -> not_applicable "reorder: bad parent")

let find_reorder (prog : Ir.Prog.t) : instance list =
  let candidates parent_path nodes =
    let arr = Array.of_list nodes in
    let acc = ref [] in
    for i = 0 to Array.length arr - 2 do
      if Dep.nodes_independent prog arr.(i) arr.(i + 1) then
        acc :=
          {
            xname = "reorder";
            target = path_str (parent_path @ [ i ]);
            apply = apply_reorder parent_path i;
          }
          :: !acc
    done;
    !acc
  in
  let acc = ref (candidates [] prog.body) in
  Ir.Prog.iter_nodes
    (fun p node ->
      match node with
      | Scope sc -> acc := candidates p sc.body @ !acc
      | Stmt _ -> ())
    prog;
  !acc

(* ------------------------------------------------------------------ *)
(* Annotation transformations: unroll / vectorize / parallelize / gpu  *)
(* ------------------------------------------------------------------ *)

let set_annot p annot prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc -> [ Scope { sc with annot } ]
      | Stmt _ -> not_applicable "set_annot: not a scope")

(* Total code replication an unroll would cause: the scope's own trip
   count times that of every unrolled scope above and below it.  Bounding
   it keeps unrolling realistic (instruction-cache pressure). *)
let unroll_replication (prog : Ir.Prog.t) (p : Ir.Types.path) (sc : scope) :
    int =
  let enclosing =
    let rec go nodes path acc =
      match path with
      | [] | [ _ ] -> acc
      | i :: rest -> (
          match List.nth_opt nodes i with
          | Some (Scope s) ->
              go s.body rest (if s.annot = Unroll then acc * s.size else acc)
          | _ -> acc)
    in
    go prog.body p 1
  in
  let rec below nodes =
    List.fold_left
      (fun acc n ->
        match n with
        | Scope s -> max acc (if s.annot = Unroll then s.size * below s.body
                              else below s.body)
        | Stmt _ -> acc)
      1 nodes
  in
  enclosing * sc.size * below sc.body

let find_unroll (caps : caps) (prog : Ir.Prog.t) : instance list =
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope sc
        when sc.annot = Seq && sc.guard = None && sc.size <= caps.max_unroll
             && unroll_replication prog p sc <= 4 * caps.max_unroll ->
          {
            xname = "unroll";
            target = path_str p;
            apply = set_annot p Unroll;
          }
          :: acc
      | _ -> acc)
    [] prog

(* Vectorization applies to an innermost scope whose trip count equals the
   vector width and which wraps a single statement whose accesses are
   either invariant in the loop or contiguous: the iterator appears with
   coefficient 1 and only in the last index dimension (unit stride, since
   the last storage dimension is contiguous).  This mirrors the paper's
   explicit tile-then-vectorize discipline. *)
let vectorizable_stmt (prog : Ir.Prog.t) ~depth (s : stmt) : bool =
  let access_ok (a : access) =
    let b = Ir.Prog.buffer_of_array prog a.array in
    let n = List.length a.idx in
    let ok = ref true in
    List.iteri
      (fun dim i ->
        let c = Ir.Index.coeff_of depth i in
        if c <> 0 then begin
          if dim <> n - 1 || c <> 1 then ok := false;
          (* reused last dimension has stride 0, not contiguous *)
          if List.nth b.reuse dim then ok := false
        end)
      a.idx;
    !ok
  in
  let iterval_free =
    (* no "index as value" of the vector lane (no iota vectors) *)
    let rec go = function
      | IterVal i -> not (Ir.Index.depends_on depth i)
      | Ref _ | Const _ -> true
      | Bin (_, e1, e2) -> go e1 && go e2
      | Un (_, e) -> go e
    in
    go s.rhs
  in
  (* destination must be contiguous in the vector lane (no scalar dst) *)
  let dst_vectorized =
    List.exists (fun i -> Ir.Index.depends_on depth i) s.dst.idx
  in
  iterval_free && dst_vectorized && access_ok s.dst
  && List.for_all access_ok (Ir.Prog.expr_refs s.rhs)

let find_vectorize (caps : caps) (prog : Ir.Prog.t) : instance list =
  if caps.vec_lanes = [] then []
  else
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Scope sc
          when sc.annot = Seq && sc.guard = None
               && List.mem sc.size caps.vec_lanes -> (
            match sc.body with
            | [ Stmt s ] ->
                let depth = Ir.Prog.depth_of_path prog p in
                if vectorizable_stmt prog ~depth s then
                  {
                    xname = "vectorize";
                    target = path_str p;
                    apply = set_annot p Vec;
                  }
                  :: acc
                else acc
            | _ -> acc)
        | _ -> acc)
      [] prog

(* No enclosing parallel/GPU scope (simple nesting discipline). *)
let enclosing_annots (prog : Ir.Prog.t) (p : Ir.Types.path) : annot list =
  let rec go nodes path acc =
    match path with
    | [] | [ _ ] -> acc
    | i :: rest -> (
        match List.nth_opt nodes i with
        | Some (Scope s) -> go s.body rest (s.annot :: acc)
        | _ -> acc)
  in
  go prog.body p []

let find_parallelize (caps : caps) (prog : Ir.Prog.t) : instance list =
  if not caps.can_parallelize then []
  else
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Scope sc when sc.annot = Seq && sc.guard = None ->
            let depth = Ir.Prog.depth_of_path prog p in
            let enclosing = enclosing_annots prog p in
            if
              (not (List.mem Par enclosing))
              && Dep.parallel_safe prog ~depth sc.body
            then
              {
                xname = "parallelize";
                target = path_str p;
                apply = set_annot p Par;
              }
              :: acc
            else acc
        | _ -> acc)
      [] prog

(* GPU mapping discipline: grid outermost, block under grid, warp under
   block; each scope mapped at most once; all require iteration
   independence. *)
let find_gpu_map (caps : caps) (prog : Ir.Prog.t) : instance list =
  if not caps.gpu then []
  else
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Scope sc when sc.annot = Seq ->
            let depth = Ir.Prog.depth_of_path prog p in
            let enclosing = enclosing_annots prog p in
            let has a = List.mem a enclosing in
            (* a scope whose subtree already contains a GPU mapping must
               not be mapped itself (blocks don't nest around blocks) *)
            let subtree_mapped =
              let rec go nodes =
                List.exists
                  (function
                    | Scope s ->
                        s.annot = GpuGrid || s.annot = GpuBlock || go s.body
                    | Stmt _ -> false)
                  nodes
              in
              go sc.body
            in
            let mk annot label =
              {
                xname = "gpu_map";
                target = Printf.sprintf "%s %s" (path_str p) label;
                apply = set_annot p annot;
              }
            in
            (* grid: iterations must be fully independent (blocks cannot
               cooperate); block: a commutative reduction is allowed —
               thread blocks reduce cooperatively *)
            let acc =
              if
                (not subtree_mapped)
                && (not (has GpuGrid))
                && (not (has GpuBlock))
                && Dep.parallel_safe prog ~depth sc.body
              then mk GpuGrid "grid" :: acc
              else acc
            in
            let acc =
              if
                (not subtree_mapped)
                && has GpuGrid
                && (not (has GpuBlock))
                && sc.size <= caps.max_block
                && Dep.parallel_reduction_safe prog ~depth sc.body
              then mk GpuBlock "block" :: acc
              else acc
            in
            (* warp lanes: a small loop inside a block executes across
               the lanes of one warp (cooperative reductions allowed) *)
            let acc =
              if
                (not subtree_mapped)
                && has GpuBlock
                && (not (has GpuWarp))
                && sc.size >= 2 && sc.size <= 64
                && Dep.parallel_reduction_safe prog ~depth sc.body
              then mk GpuWarp "warp" :: acc
              else acc
            in
            acc
        | _ -> acc)
      [] prog

(* ------------------------------------------------------------------ *)
(* unannotate                                                          *)
(* ------------------------------------------------------------------ *)

(* Revert a scope's execution annotation (and SSR streaming) to plain
   sequential execution.  Trivially semantics-preserving; it makes the
   annotation space fully explorable for searches working forward in the
   transformation graph (a misplaced mapping can be moved without
   rewinding history). *)
let apply_unannotate p prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc -> [ Scope { sc with annot = Seq; ssr = false } ]
      | Stmt _ -> not_applicable "unannotate: not a scope")

let find_unannotate (prog : Ir.Prog.t) : instance list =
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope sc when sc.annot <> Seq || sc.ssr ->
          {
            xname = "unannotate";
            target = path_str p;
            apply = apply_unannotate p;
          }
          :: acc
      | _ -> acc)
    [] prog

(* ------------------------------------------------------------------ *)
(* pad_scope                                                           *)
(* ------------------------------------------------------------------ *)

(* Pads the trip count up to the next multiple of [m]; the extra
   iterations are masked (guard), so semantics are trivially preserved.
   On GPU models the cost of the padded iterations is still paid, which
   is exactly the batchnorm trade-off discussed in §4.3. *)
let apply_pad p m prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc when sc.guard = None && sc.size mod m <> 0 ->
          let padded = (sc.size + m - 1) / m * m in
          [ Scope { sc with size = padded; guard = Some sc.size } ]
      | _ -> not_applicable "pad_scope: not applicable")

let find_pad (caps : caps) (prog : Ir.Prog.t) : instance list =
  let multiples =
    if caps.gpu then [ 32; 64 ]
    else if caps.vec_lanes <> [] then caps.vec_lanes
    else [ 4 ]
  in
  Ir.Prog.fold_nodes
    (fun acc p node ->
      match node with
      | Scope sc
        when (sc.annot = Seq || sc.annot = GpuBlock || sc.annot = GpuWarp)
             && sc.guard = None ->
          List.fold_left
            (fun acc m ->
              if sc.size mod m <> 0 && m > 1 then
                {
                  xname = "pad_scope";
                  target = Printf.sprintf "%s to multiple of %d" (path_str p) m;
                  apply = apply_pad p m;
                }
                :: acc
              else acc)
            acc multiples
      | _ -> acc)
    [] prog

(* ------------------------------------------------------------------ *)
(* reuse_dims                                                          *)
(* ------------------------------------------------------------------ *)

let apply_reuse bname dim prog =
  let b = Ir.Prog.buffer_by_name prog bname in
  let reuse = List.mapi (fun i r -> if i = dim then true else r) b.reuse in
  Ir.Prog.replace_buffer prog { b with reuse }

let find_reuse_dims (prog : Ir.Prog.t) : instance list =
  List.concat_map
    (fun b ->
      List.concat
        (List.mapi
           (fun dim _ ->
             if Dep.reuse_safe prog b ~dim then
               [
                 {
                   xname = "reuse_dims";
                   target = Printf.sprintf "%s dim %d" b.bname dim;
                   apply = apply_reuse b.bname dim;
                 };
               ]
             else [])
           b.shape))
    prog.buffers

(* ------------------------------------------------------------------ *)
(* set_storage                                                         *)
(* ------------------------------------------------------------------ *)

let apply_storage bname loc prog =
  let b = Ir.Prog.buffer_by_name prog bname in
  Ir.Prog.replace_buffer prog { b with loc }

let find_set_storage (caps : caps) (prog : Ir.Prog.t) : instance list =
  let is_io b =
    List.exists
      (fun a -> List.mem a prog.inputs || List.mem a prog.outputs)
      b.arrays
  in
  List.concat_map
    (fun b ->
      if is_io b then []
      else begin
        let bytes = Ir.Prog.buffer_bytes b in
        let options =
          (if b.loc <> Stack && bytes <= caps.max_stack_bytes then [ Stack ]
           else [])
          @ (if b.loc <> Heap then [ Heap ] else [])
          @ (if caps.gpu && b.loc <> Shared && bytes <= 48 * 1024 then
               [ Shared ]
             else [])
          @
          if b.loc <> Register && bytes <= 256 then [ Register ] else []
        in
        List.map
          (fun loc ->
            {
              xname = "set_storage";
              target = Printf.sprintf "%s -> %s" b.bname (location_name loc);
              apply = apply_storage b.bname loc;
            })
          options
      end)
    prog.buffers

(* ------------------------------------------------------------------ *)
(* reorder_buffer_dims (layout transposition)                          *)
(* ------------------------------------------------------------------ *)

let apply_reorder_dims bname perm prog =
  let b = Ir.Prog.buffer_by_name prog bname in
  let permute l = List.map (List.nth l) perm in
  let prog =
    Ir.Prog.replace_buffer prog
      { b with shape = permute b.shape; reuse = permute b.reuse }
  in
  let fix_access (a : access) =
    if List.mem a.array b.arrays then { a with idx = permute a.idx } else a
  in
  {
    prog with
    body =
      List.map
        (fun n ->
          let rec fix = function
            | Stmt s ->
                Stmt
                  {
                    dst = fix_access s.dst;
                    rhs = Ir.Prog.expr_map_access fix_access s.rhs;
                  }
            | Scope sc -> Scope { sc with body = List.map fix sc.body }
          in
          fix n)
        prog.body;
  }

let find_reorder_dims (prog : Ir.Prog.t) : instance list =
  let is_io b =
    List.exists
      (fun a -> List.mem a prog.inputs || List.mem a prog.outputs)
      b.arrays
  in
  List.concat_map
    (fun b ->
      let n = List.length b.shape in
      if is_io b || n < 2 then []
      else begin
        (* adjacent-dimension swaps keep the move atomic *)
        let rec swaps i acc =
          if i >= n - 1 then acc
          else
            let perm = List.init n (fun j ->
                if j = i then i + 1 else if j = i + 1 then i else j)
            in
            swaps (i + 1)
              ({
                 xname = "reorder_buffer_dims";
                 target = Printf.sprintf "%s swap %d,%d" b.bname i (i + 1);
                 apply = apply_reorder_dims b.bname perm;
               }
              :: acc)
        in
        swaps 0 []
      end)
    prog.buffers

(* ------------------------------------------------------------------ *)
(* Snitch: SSR and FREP                                                *)
(* ------------------------------------------------------------------ *)

let set_ssr p v prog =
  Ir.Prog.rewrite_at prog p (fun node ->
      match node with
      | Scope sc -> [ Scope { sc with ssr = v } ]
      | Stmt _ -> not_applicable "ssr: not a scope")

(* SSR streams at most three iterating operand sequences through stream
   semantic registers; all accesses in the loop body must be affine
   (guaranteed by the IR) and the body must be straight-line code.
   Scalar operands (constant indices) live in ordinary registers and do
   not consume a stream.  A loop already inside a streamed region is not
   offered (the streams are configured once, at the outermost level).
   Instances are returned outermost-first so exhaustive passes prefer
   amortizing the stream setup over the largest trip count. *)
let find_ssr (caps : caps) (prog : Ir.Prog.t) : instance list =
  if not caps.snitch then []
  else
    let has_ssr_ancestor p =
      let rec go nodes = function
        | [] | [ _ ] -> false
        | i :: rest -> (
            match List.nth_opt nodes i with
            | Some (Scope s) -> s.ssr || go s.body rest
            | _ -> false)
      in
      go prog.body p
    in
    let insts =
      Ir.Prog.fold_nodes
        (fun acc p node ->
          match node with
          | Scope sc
            when (not sc.ssr) && sc.guard = None && not (has_ssr_ancestor p)
            ->
              (* the streamed loop body must be straight-line code: plain
                 statements, possibly through fully unrolled sub-scopes *)
              let rec straightline nodes =
                List.for_all
                  (function
                    | Stmt _ -> true
                    | Scope s -> s.annot = Unroll && straightline s.body)
                  nodes
              in
              let streamed_arrays =
                List.sort_uniq compare
                  (List.concat_map
                     (fun n ->
                       List.filter_map
                         (fun ((_ : Ir.Prog.access_kind), (a : access)) ->
                           if
                             List.exists
                               (fun i -> not (Ir.Index.is_const i))
                               a.idx
                           then Some a.array
                           else None)
                         (Ir.Prog.node_accesses n))
                     sc.body)
              in
              if straightline sc.body && List.length streamed_arrays <= 3 then
                {
                  xname = "enable_ssr";
                  target = path_str p;
                  apply = set_ssr p true;
                }
                :: acc
              else acc
          | _ -> acc)
        [] prog
    in
    (* fold_nodes visits outer scopes first and prepends: reverse to get
       outermost-first *)
    List.rev insts

(* FREP repeats the floating-point instruction block in hardware;
   requires the loop's memory traffic to flow through SSRs. *)
let find_frep (caps : caps) (prog : Ir.Prog.t) : instance list =
  if not caps.snitch then []
  else
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Scope sc when sc.annot = Seq && sc.ssr && sc.guard = None ->
            {
              xname = "enable_frep";
              target = path_str p;
              apply = set_annot p Frep;
            }
            :: acc
        | _ -> acc)
      [] prog

(* ------------------------------------------------------------------ *)
(* split_reduction (partial accumulators)                              *)
(* ------------------------------------------------------------------ *)

(* A reduction carried by a loop,  S: for i < N { z[I] = z[I] op e },
   serializes on the FP pipeline because every iteration reads the
   previous one's result.  split_reduction introduces [k] partial
   accumulators:

     for j < k         { part[j] = identity(op) }
     for i' < N/k
       for j < k       { part[j] = part[j] op e[i := k*i' + j] }
     for j < k         { z[I] = z[I] op part[j] }

   which is semantics-preserving up to the floating-point reassociation
   inherent to any reduction reordering (validated numerically with
   tolerance, like interchange of reduction loops). *)

let identity_of = function
  | Add -> 0.0
  | Mul -> 1.0
  | Max -> Float.neg_infinity
  | Min -> Float.infinity
  | Sub | Div -> invalid_arg "identity_of: not commutative"

let fresh_buffer_name (prog : Ir.Prog.t) base =
  let taken name =
    List.exists
      (fun (b : buffer) -> b.bname = name || List.mem name b.arrays)
      prog.buffers
  in
  let rec go i =
    let cand = Printf.sprintf "%s__part%s" base
        (if i = 0 then "" else string_of_int i)
    in
    if taken cand then go (i + 1) else cand
  in
  go 0

let apply_split_reduction p depth k prog =
  match Ir.Prog.node_at prog p with
  | Scope sc when sc.size mod k = 0 && sc.guard = None -> (
      match sc.body with
      | [ Stmt s ] -> (
          let decompose = function
            | Bin (op, Ref a, e)
              when a.array = s.dst.array
                   && List.for_all2 Ir.Index.equal a.idx s.dst.idx ->
                Some (op, a, e)
            | Bin (op, e, Ref a)
              when a.array = s.dst.array
                   && List.for_all2 Ir.Index.equal a.idx s.dst.idx ->
                Some (op, a, e)
            | _ -> None
          in
          match decompose s.rhs with
          | Some (op, a, e) -> (
              let dstbuf = Ir.Prog.buffer_of_array prog s.dst.array in
              let pname = fresh_buffer_name prog s.dst.array in
              let part =
                Ir.Types.buffer ~loc:Stack pname dstbuf.dtype [ k ]
              in
              (* main nest: old {depth} -> k*{depth} + {depth+1}; deeper
                 refs cannot occur (single-stmt innermost loop may still
                 have deeper refs if e used only shallower ones) *)
              let remap (i : index) =
                Ir.Index.subst
                  (fun d ->
                    if d = depth then
                      Ir.Index.add
                        (Ir.Index.iter ~coeff:k depth)
                        (Ir.Index.iter (depth + 1))
                    else if d > depth then Ir.Index.iter (d + 1)
                    else Ir.Index.iter d)
                  i
              in
              let e' = Ir.Prog.expr_map_index remap e in
              let part_acc j : access =
                { array = pname; idx = [ Ir.Index.iter j ] }
              in
              let init =
                Scope
                  {
                    size = k; annot = Seq; ssr = false; guard = None;
                    body =
                      [ Stmt { dst = part_acc depth;
                               rhs = Const (identity_of op) } ];
                  }
              in
              let main =
                Scope
                  {
                    sc with
                    size = sc.size / k;
                    body =
                      [
                        Scope
                          {
                            size = k; annot = Seq; ssr = false; guard = None;
                            body =
                              [
                                Stmt
                                  {
                                    dst = part_acc (depth + 1);
                                    rhs =
                                      Bin (op, Ref (part_acc (depth + 1)), e');
                                  };
                              ];
                          };
                      ];
                  }
              in
              let combine =
                Scope
                  {
                    size = k; annot = Seq; ssr = false; guard = None;
                    body =
                      [
                        Stmt
                          {
                            dst = s.dst;
                            rhs = Bin (op, Ref { a with idx = s.dst.idx },
                                       Ref (part_acc depth));
                          };
                      ];
                  }
              in
              let prog =
                { prog with buffers = prog.buffers @ [ part ] }
              in
              Ir.Prog.rewrite_at prog p (fun _ -> [ init; main; combine ]))
          | None -> not_applicable "split_reduction: not a commutative reduction")
      | _ -> not_applicable "split_reduction: body must be a single statement")
  | _ -> not_applicable "split_reduction: not applicable"

let find_split_reduction (caps : caps) (prog : Ir.Prog.t) : instance list =
  if caps.reduction_split = [] then []
  else
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Scope sc when sc.annot = Seq && sc.guard = None -> (
            match sc.body with
            | [ Stmt s ] -> (
                let depth = Ir.Prog.depth_of_path prog p in
                let is_acc (a : access) =
                  a.array = s.dst.array
                  && List.length a.idx = List.length s.dst.idx
                  && List.for_all2 Ir.Index.equal a.idx s.dst.idx
                in
                let candidate =
                  match s.rhs with
                  | Bin ((Add | Mul | Max | Min), Ref a, e) when is_acc a ->
                      Some e
                  | Bin ((Add | Mul | Max | Min), e, Ref a) when is_acc a ->
                      Some e
                  | _ -> None
                in
                match candidate with
                | Some e
                  when (not
                          (List.exists
                             (fun i -> Ir.Index.depends_on depth i)
                             s.dst.idx))
                       && not
                            (List.exists
                               (fun (r : access) -> r.array = s.dst.array)
                               (Ir.Prog.expr_refs e)) ->
                    List.fold_left
                      (fun acc k ->
                        if sc.size mod k = 0 && sc.size > k then
                          {
                            xname = "split_reduction";
                            target =
                              Printf.sprintf "%s into %d" (path_str p) k;
                            apply = apply_split_reduction p depth k;
                          }
                          :: acc
                        else acc)
                      acc caps.reduction_split
                | Some _ | None -> acc)
            | _ -> acc)
        | _ -> acc)
      [] prog

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let atomics (caps : caps) (prog : Ir.Prog.t) : instance list =
  List.concat
    [
      find_split caps prog;
      find_join prog;
      find_fission prog;
      find_interchange prog;
      find_reorder prog;
      find_unroll caps prog;
      find_vectorize caps prog;
      find_parallelize caps prog;
      find_gpu_map caps prog;
      find_pad caps prog;
      find_unannotate prog;
      find_reuse_dims prog;
      find_set_storage caps prog;
      find_reorder_dims prog;
      find_split_reduction caps prog;
      find_ssr caps prog;
      find_frep caps prog;
    ]

(* The action set of the game: atomic instances plus whatever macro-moves
   the capabilities carry (appended last so atomic enumeration order — and
   hence recorded schedules — is unchanged when no composites are on). *)
let all (caps : caps) (prog : Ir.Prog.t) : instance list =
  match caps.extra prog with [] -> atomics caps prog | m -> atomics caps prog @ m
