(** Exhaustive enumeration of the transformation graph with canonical
    dedup — the provable-optimum baseline (ROADMAP item 1).

    Breadth-first over move sequences from the root, collapsing the many
    spellings of one schedule state with {!Canon.fingerprint} so each
    state is expanded and measured once.  [unique]/[total] is the
    TransForm-style dedup ratio (how redundant the raw instance graph
    was); the trace reports it per level ([search.exhaustive_level]) and
    at the end ([search.exhaustive]).

    Certificates: a run that never hit [max_states] proves the optimum
    over {e every} schedule reachable within [depth] moves
    ([certified]).  If the frontier emptied before the depth bound the
    whole reachable graph was enumerated and the optimum is global
    ([exhausted]) — "run until exhaustion" for small kernels.  Small
    bounds are the point: the stochastic engines and the RL agent are
    calibrated against these optima.

    Deterministic and sequential: instance enumeration order is fixed,
    nothing draws randomness.  Every evaluation (and every instance
    application) runs under the {!Robust.Guard}. *)

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
      (** shortest path of {!Transform.Xforms.describe} strings to the
          optimum, replayable via {!Stochastic.replay_skipping} *)
  unique : int;  (** distinct canonical states discovered (incl. root) *)
  total : int;  (** state encounters: root + every instance application *)
  evals : int;  (** guarded objective evaluations (one per unique state) *)
  failures : int;  (** applications or evaluations quarantined *)
  depth : int;  (** requested bound *)
  reached_depth : int;  (** deepest level actually expanded *)
  certified : bool;
      (** the optimum is proved over all schedules within [depth] moves
          (false only when [max_states] truncated the walk) *)
  exhausted : bool;
      (** the frontier emptied before the bound: the entire reachable
          transformation graph was enumerated, so the optimum is global *)
}

val default_max_states : int
(** 20000 — a memory guard, far above any small-kernel state count. *)

val run :
  ?filter:(Transform.Xforms.instance -> bool) ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?max_states:int ->
  ?checkpoint:Stochastic.checkpoint_cfg ->
  depth:int ->
  Transform.Xforms.caps ->
  Stochastic.objective ->
  Ir.Prog.t ->
  result
(** [run ~depth caps objective root] enumerates every schedule reachable
    from [root] in at most [depth] moves (deduplicated canonically) and
    returns the measured optimum with its certificate.  Metrics:
    [canon.unique] / [canon.total] counters and [search.steps].
    Raises [Invalid_argument] on negative [depth] or non-positive
    [max_states].

    [checkpoint] snapshots the walk through {!Recover.Store} after
    every completed BFS level (levels are the unit of determinism here,
    so [checkpoint_cfg.every] is ignored): frontier move paths, seen
    fingerprints, best-so-far and exact accounting.  Resuming a killed
    run re-expands only the level it died in — strictly fewer
    evaluations than a cold restart — and certifies the {e same}
    optimum with the same spliced trace.  A mismatched [depth] /
    [max_states] raises {!Recover.Error} ([Mismatch]); a pending
    SIGINT/SIGTERM checkpoints at the level boundary and raises
    {!Recover.Interrupt.Interrupted}. *)
