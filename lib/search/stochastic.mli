(** Stochastic schedule search (§4.2).

    Search space structures:
    - {!Edges}: the search graph mirrors the transformation graph; a
      candidate grows by appending one applicable move to a parent.
    - {!Heuristic}: a candidate is a complete move {e sequence}; a
      neighbor modifies it at an arbitrary point (replace / delete /
      insert) and replays the rest, skipping moves that became
      inapplicable — the structure the paper derives from expert
      hand-tuning.

    Methods: weighted random sampling (selection probability from the
    {e parent}'s runtime) and simulated annealing (cost is the
    candidate's own runtime).  Both record the best-so-far curve for the
    Figure-12 convergence comparison. *)

type objective = Ir.Prog.t -> float
(** Modelled runtime in seconds; lower is better. *)

type space = Edges | Heuristic

type prerank = {
  score : Ir.Prog.t -> float;  (** higher = predicted faster *)
  observe : Ir.Prog.t -> float -> unit;
      (** fed every real measurement, in slot order *)
  filter_ratio : float;
      (** fraction of distinct candidates per round sent to the real
          objective, in (0, 1]; [1.0] keeps all (training only) *)
}
(** A surrogate pre-ranking stage for the batched variants (see
    {!random_sampling_parallel}): [score] cheaply ranks the distinct
    candidates of a round and only the top [filter_ratio] fraction pays
    for a real evaluation; [observe] receives every real measurement as
    online training signal.  Both are abstract closures — the concrete
    learned model lives in [lib/surrogate], which depends on this
    library, not the reverse.  Scoring and observation happen only on
    the submitting thread, in slot order, so a deterministic model keeps
    the search jobs-invariant. *)

type checkpoint_cfg = { path : string; every : int; resume : bool }
(** Crash-safe checkpointing for the batched engines (and, via
    {!Exhaustive}, the BFS engine).  A checkpoint is written through
    {!Recover.Store} — atomically and durably — at every round boundary
    where at least [every] budget slots completed since the last write,
    and always at the end of the run.  With [resume = true] and an
    existing checkpoint file, the run restores the full search state
    (RNG streams, candidate pool with weights, best-so-far, annealing
    chain and temperature, curve prefix, exact accounting, visited
    fingerprint set, surrogate model, trace-event count) and continues
    the {e exact} trajectory of the uninterrupted run: same [result],
    exact accounting across the splice, and stripped traces that splice
    byte-identically (killed[0..events) ++ resumed == uninterrupted) —
    kill-invariance, the jobs-invariance discipline extended across
    process death.  A corrupt, truncated, or mismatched (different
    method / space / seed / budget / batch) checkpoint raises
    {!Recover.Error}; [resume] with no file yet is a cold start.

    Checkpointed runs additionally honor {!Recover.Interrupt}: a
    pending SIGINT/SIGTERM checkpoints at the next round boundary and
    raises [Interrupted] with the checkpoint path. *)

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;  (** replayable via {!replay_skipping} *)
  curve : float array;  (** best-so-far runtime after each evaluation *)
  evals : int;
      (** objective (simulator) evaluations actually performed: equal to
          the budget on the default paths; with
          [prerank]/[dedup]/[visited_dedup] enabled, the budget minus
          the skipped, deduplicated, visited and build-failed slots —
          [evals + skipped + deduped + visited + failures = budget]
          exactly whenever no evaluation is quarantined (a quarantined
          evaluation consumed its simulator call, so it counts in both
          [evals] and [failures]) *)
  skipped : int;
      (** budget slots filtered out by the surrogate — never measured *)
  deduped : int;
      (** budget slots answered by a round-mate's shared measurement *)
  visited : int;
      (** budget slots whose canonical state ({!Canon.fingerprint}) was
          already measured in an earlier round — never re-measured *)
  failures : int;
      (** evaluations quarantined by the guard — equal to the number of
          [search.eval_error] events the run traced *)
}

val replay_skipping :
  ?filter:(Transform.Xforms.instance -> bool) ->
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  string list ->
  Ir.Prog.t * string list
(** Replay a sequence of {!Transform.Xforms.describe} strings from a
    root, skipping entries not applicable at their point; returns the
    final program and the names that actually applied. *)

val mutate :
  ?filter:(Transform.Xforms.instance -> bool) ->
  Transform.Xforms.caps ->
  Util.Rng.t ->
  Ir.Prog.t ->
  string list ->
  string list
(** One structural mutation of a move sequence (replace / delete /
    insert at a random point). *)

(** {2 Fault tolerance}

    Every evaluation — root, warm-start replay, and each candidate —
    runs through {!Robust.Guard.run} under [guard] (default
    {!Robust.Guard.default}).  A failed evaluation is {e quarantined}
    rather than fatal: its trajectory slot scores +∞, it is never the
    best, never accepted by annealing, never drawn as a sampling parent,
    and (being non-finite) never enters a memoization cache.  Each
    quarantine is one [search.eval_error] trace event plus [robust.*]
    counter bumps, and [result.failures] counts them.

    Failures are part of the jobs-invariance guarantee: the guard and
    the {!Robust.Faults} harness are deterministic per candidate, so
    [jobs = 1] and [jobs = N] agree on {e which} candidates failed. *)

val random_sampling :
  ?seed:int ->
  ?filter:(Transform.Xforms.instance -> bool) ->
  ?init:string list ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  space:space ->
  budget:int ->
  Transform.Xforms.caps ->
  objective ->
  Ir.Prog.t ->
  result
(** Global weighted sampling over all previously encountered candidates;
    [filter] restricts the move set (used by the TVM-template baseline).
    [init] warm-starts the pool with a recorded move sequence (replayed
    through {!replay_skipping}), so search resumes from a tuning
    database's best instead of restarting cold.

    [obs] receives [search.start] / [search.step] / [search.best]
    events; [metrics] accumulates [search.steps] and the
    [search.runtime] histogram.  Both default to off and then cost
    nothing (see {!Obs.Trace.enabled}). *)

val simulated_annealing :
  ?seed:int ->
  ?filter:(Transform.Xforms.instance -> bool) ->
  ?init:string list ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?t0:float ->
  ?cooling:float ->
  space:space ->
  budget:int ->
  Transform.Xforms.caps ->
  objective ->
  Ir.Prog.t ->
  result
(** [init] seeds the annealing chain (and best-so-far) with a recorded
    sequence; with [budget = 0] the result is exactly the replayed
    schedule — replay fidelity the tuning tests rely on.

    In addition to the sampling events, annealing [search.step] events
    carry [accepted] and [temp] fields, and [metrics] gains the
    [search.accepted] counter plus [search.acceptance_rate] /
    [search.temperature] gauges. *)

(** {1 Batched-synchronous-parallel variants}

    AutoTVM-style batched candidate measurement: each round prepares
    [batch] candidate tasks deterministically on the submitting thread
    (parent selection and one split-off RNG stream per slot, in slot
    order), evaluates them across the pool's domains, and folds the
    results back in slot order.  The trajectory is a function of
    [(seed, batch)] only — [jobs = 1] and [jobs = N] pools return
    bit-identical results, and the recorded [curve] keeps its
    best-so-far-per-evaluation meaning.

    For [batch > 1] the algorithm differs from the sequential one
    (candidates within a round cannot see each other), so the
    sequential entry points above remain the default path.

    The [objective] runs concurrently on several domains: it must be
    pure or internally synchronized (the analytic machine models are
    pure; {!Tuning.Cache.memoize} is domain-safe). *)

val random_sampling_parallel :
  ?seed:int ->
  ?filter:(Transform.Xforms.instance -> bool) ->
  ?init:string list ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?batch:int ->
  ?prerank:prerank ->
  ?dedup:bool ->
  ?visited_dedup:bool ->
  ?checkpoint:checkpoint_cfg ->
  ?snapshot_extra:(unit -> Util.Json.t) ->
  ?restore_extra:(Util.Json.t -> unit) ->
  pool:Parallel.Pool.t ->
  space:space ->
  budget:int ->
  Transform.Xforms.caps ->
  objective ->
  Ir.Prog.t ->
  result
(** Batched {!random_sampling}: parents for a whole round are drawn
    from the pool as of the round start.  [batch] defaults to 8.

    [checkpoint] enables crash-safe round-boundary snapshots (see
    {!checkpoint_cfg}); [snapshot_extra]/[restore_extra] let the caller
    piggy-back opaque state — the surrogate model — on the checkpoint
    payload.

    Tracing stays jobs-invariant: each task writes [search.eval] events
    into a private buffer sink, and the buffers are folded into [obs]
    in slot order — the merged stream is a function of (seed, batch)
    modulo {!Obs.Trace.strip_timing}.

    {b Evaluation saving} (opt-in; the default path is byte-identical to
    earlier releases when all are off):
    - [dedup] (default [false]) hashes each round's candidates by their
      canonical fingerprint ({!Canon.fingerprint}) and evaluates each
      distinct state once; the duplicates — including alpha-renamed or
      commutatively-reordered spellings — share the measurement.
      Traced per round as [search.batch_dedup] with unique/total
      counts, and counted in [result.deduped] / the
      [surrogate.dedup_saved] metric.
    - [visited_dedup] (default [false]) additionally remembers the
      canonical fingerprint of every state measured so far (seeded with
      the root and warm-start states) and never re-measures one: the
      slot folds as visited — no measurement, no acceptance draw, not a
      failure ([result.visited], [search.visited_skip] events, and the
      [canon.unique] / [canon.total] metrics counting distinct-new vs
      built candidates).  Membership is checked on the submitting
      thread in slot order, so jobs-invariance is preserved.
    - [prerank] scores the distinct candidates with a cheap learned
      model and sends only the top [filter_ratio] fraction to the real
      objective; the rest are skipped (not failures — [result.skipped],
      [search.prerank] events, [surrogate.scored/kept/filtered]
      metrics).  Every real measurement is fed back through
      [prerank.observe] in slot order, so search and online training
      stay jobs-invariant.  Raises [Invalid_argument] unless
      [filter_ratio] is in (0, 1]. *)

val simulated_annealing_parallel :
  ?seed:int ->
  ?filter:(Transform.Xforms.instance -> bool) ->
  ?init:string list ->
  ?obs:Obs.Trace.sink ->
  ?metrics:Obs.Metrics.t ->
  ?guard:Robust.Guard.config ->
  ?t0:float ->
  ?cooling:float ->
  ?batch:int ->
  ?prerank:prerank ->
  ?dedup:bool ->
  ?visited_dedup:bool ->
  ?checkpoint:checkpoint_cfg ->
  ?snapshot_extra:(unit -> Util.Json.t) ->
  ?restore_extra:(Util.Json.t -> unit) ->
  pool:Parallel.Pool.t ->
  space:space ->
  budget:int ->
  Transform.Xforms.caps ->
  objective ->
  Ir.Prog.t ->
  result
(** Batched {!simulated_annealing}: every proposal of a round branches
    off the round-start chain state; acceptance, cooling and best-so-far
    fold sequentially in slot order.  [batch] defaults to 8.  Tracing
    follows the same per-slot-buffer discipline as
    {!random_sampling_parallel}, and [prerank] / [dedup] /
    [visited_dedup] behave identically (a surrogate-skipped or
    visited-skipped slot draws no acceptance RNG and still advances the
    cooling schedule, so the temperature remains a function of the step
    index alone). *)
