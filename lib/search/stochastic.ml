(* Stochastic schedule search (§4.2).

   Two search-space structures:
     - [`Edges]: the search graph mirrors the transformation graph; a
       candidate is grown by appending one applicable move to a parent.
     - [`Heuristic]: a candidate is a complete transformation *sequence*;
       neighbors are produced by modifying the sequence at an arbitrary
       point (replace / delete / insert a move) and replaying the rest,
       skipping moves that became inapplicable — the paper's
       "iteratively refined at arbitrary points" structure.

   Two methods:
     - weighted random sampling over all previously encountered
       candidates, with selection probability based on the *parent's*
       runtime (so children of weak candidates rarely get budget);
     - simulated annealing, whose cost is the candidate's own runtime.

   Every candidate evaluation increments the budget; the best-so-far
   curve is recorded for the convergence comparison (Figure 12). *)

open Transform

type objective = Ir.Prog.t -> float

type space = Edges | Heuristic

(* A surrogate pre-ranking stage for the batched variants: [score] is a
   cheap learned predictor (higher = predicted faster) used to rank the
   distinct candidates of a round so only the top [filter_ratio]
   fraction pays for a real (simulator) evaluation; [observe] feeds
   every real measurement back as online training signal.  The search
   layer treats both as abstract closures — the concrete model lives in
   [lib/surrogate], which depends on this library, not the reverse. *)
type prerank = {
  score : Ir.Prog.t -> float;  (** higher = predicted faster *)
  observe : Ir.Prog.t -> float -> unit;
      (** called with every real measurement, in slot order *)
  filter_ratio : float;  (** fraction of distinct candidates kept, (0, 1] *)
}

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
  curve : float array; (* best-so-far runtime after each evaluation *)
  evals : int; (* simulator evaluations actually performed *)
  skipped : int; (* slots filtered out by the surrogate (no evaluation) *)
  deduped : int; (* duplicate slots answered by a shared evaluation *)
  visited : int; (* slots whose canonical state was already evaluated *)
  failures : int; (* evaluations quarantined by the guard *)
}

(* Replay a sequence of move names from [prog], skipping moves that are
   not applicable at their point.  Returns the final program and the
   names that actually applied.  Resolution goes through a per-step
   describe -> instance hash table (Xforms.resolver) rather than a
   linear find_opt that re-describes instances until a match. *)
let replay_skipping ?(filter = fun (_ : Xforms.instance) -> true) caps prog
    names =
  List.fold_left
    (fun (p, applied) name ->
      match Xforms.lookup ~filter (Xforms.all caps p) name with
      | Some inst -> (inst.apply p, name :: applied)
      | None -> (p, applied))
    (prog, []) names
  |> fun (p, applied) -> (p, List.rev applied)

(* One structural mutation of a move sequence. *)
let mutate ?(filter = fun (_ : Xforms.instance) -> true) caps rng prog
    (names : string list) : string list =
  let n = List.length names in
  let arr = Array.of_list names in
  let choice = Util.Rng.int rng 3 in
  if n = 0 || choice = 2 then begin
    (* insert a random applicable move at a random point *)
    let pos = if n = 0 then 0 else Util.Rng.int rng (n + 1) in
    let prefix = Array.to_list (Array.sub arr 0 pos) in
    let suffix = Array.to_list (Array.sub arr pos (n - pos)) in
    let p, _ = replay_skipping ~filter caps prog prefix in
    let insts = List.filter filter (Xforms.all caps p) in
    if insts = [] then names
    else
      let inst = List.nth insts (Util.Rng.int rng (List.length insts)) in
      prefix @ [ Xforms.describe inst ] @ suffix
  end
  else if choice = 0 then begin
    (* delete a random move *)
    let pos = Util.Rng.int rng n in
    List.filteri (fun i _ -> i <> pos) names
  end
  else begin
    (* replace a random move by another applicable at the same point *)
    let pos = Util.Rng.int rng n in
    let prefix = Array.to_list (Array.sub arr 0 pos) in
    let suffix = Array.to_list (Array.sub arr (pos + 1) (n - pos - 1)) in
    let p, _ = replay_skipping ~filter caps prog prefix in
    let insts = List.filter filter (Xforms.all caps p) in
    if insts = [] then names
    else
      let inst = List.nth insts (Util.Rng.int rng (List.length insts)) in
      prefix @ [ Xforms.describe inst ] @ suffix
  end

type candidate = {
  moves : string list;
  prog : Ir.Prog.t;
  runtime : float;
  parent_runtime : float;
}

let eval_moves ?filter caps (objective : objective) prog names parent_runtime
    =
  let p, applied = replay_skipping ?filter caps prog names in
  { moves = applied; prog = p; runtime = objective p; parent_runtime }

(* ------------------------------------------------------------------ *)
(* Guarded evaluation and quarantine                                   *)
(* ------------------------------------------------------------------ *)

(* A failed evaluation is quarantined instead of aborting the run: the
   candidate keeps its slot in the trajectory with runtime +inf, so it
   is never the best, never accepted by annealing, and (pushed with
   weight 0) never selected as a sampling parent.  [prog] is reset to
   the root so a quarantined entry carries no partially-transformed
   program. *)
let quarantined root parent_runtime =
  { moves = []; prog = root; runtime = infinity; parent_runtime }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

(* Every emission site is guarded with [Obs.Trace.enabled] so an
   untraced run allocates neither events nor field-thunk closures.  All
   traced values (step indices, runtimes, move counts, temperature) are
   deterministic functions of (seed, batch) — wall-clock only ever
   enters through [dur_s] fields, which [Obs.Trace.strip_timing]
   removes; this is what makes --jobs 1 / --jobs N traces comparable. *)

let space_name = function Edges -> "edges" | Heuristic -> "heuristic"

let emit_start obs ~meth ~space ~budget ~seed ~root_time =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit obs "search.start" (fun () ->
        Obs.Trace.
          [
            str "method" meth;
            str "space" (space_name space);
            int "budget" budget;
            int "seed" seed;
            num "root_time" root_time;
          ])

let emit_step obs ~i ~runtime ~best extra =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit obs "search.step" (fun () ->
        Obs.Trace.int "i" i
        :: Obs.Trace.num "runtime" runtime
        :: Obs.Trace.num "best" best
        :: extra ())

let emit_best obs ~i (c : candidate) =
  if Obs.Trace.enabled obs then
    Obs.Trace.emit obs "search.best" (fun () ->
        Obs.Trace.
          [
            int "i" i;
            num "runtime" c.runtime;
            int "n_moves" (List.length c.moves);
          ])

(* Counter/gauge updates per evaluated step.  [accepted = None] for the
   sampling methods (no acceptance notion): then only the step counter
   and the runtime histogram move.  The annealing methods pass
   [Some bool] and additionally maintain [search.accepted],
   [search.acceptance_rate] and [search.temperature]. *)
let note_step ?metrics ?accepted ?temp ~runtime () =
  match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr m "search.steps";
      Obs.Metrics.observe m "search.runtime" runtime;
      (match accepted with
      | None -> ()
      | Some acc ->
          if acc then Obs.Metrics.incr m "search.accepted";
          let steps = Obs.Metrics.counter m "search.steps" in
          Obs.Metrics.set m "search.acceptance_rate"
            (float_of_int (Obs.Metrics.counter m "search.accepted")
            /. float_of_int (max steps 1)));
      match temp with
      | None -> ()
      | Some t -> Obs.Metrics.set m "search.temperature" t

(* Produce a child candidate according to the space structure.  In the
   edges-structured space the child program is the parent program plus
   one move, so it is returned directly (no replay from the root). *)
let expand ?(filter = fun (_ : Xforms.instance) -> true) space caps rng root
    (parent : candidate) : string list * Ir.Prog.t option =
  match space with
  | Edges -> (
      (* append one applicable move *)
      let insts = List.filter filter (Xforms.all caps parent.prog) in
      match insts with
      | [] -> (parent.moves, Some parent.prog)
      | _ ->
          let inst = List.nth insts (Util.Rng.int rng (List.length insts)) in
          ( parent.moves @ [ Xforms.describe inst ],
            Some (inst.apply parent.prog) ))
  | Heuristic -> (mutate ~filter caps rng root parent.moves, None)

(* Expansion runs outside the guard — it consumes the search RNG, so a
   transient retry must not re-draw — but is still protected: a
   transform raising during [expand] quarantines the candidate exactly
   like an objective raising during evaluation. *)
let expand_checked ?filter space caps rng root parent =
  match expand ?filter space caps rng root parent with
  | v -> Ok v
  | exception e -> Error (Robust.Guard.rejected_of_exn e)

(* Grow and evaluate one child under the guard, to a
   (candidate, failure option) pair.  The guard wraps replay and
   evaluation together, so a transient failure re-runs both — replay
   draws no randomness, so the retry is deterministic. *)
let guarded_child ~guard ?filter space caps rng root objective
    (parent : candidate) : candidate * Robust.Guard.failure option =
  let outcome =
    match expand_checked ?filter space caps rng root parent with
    | Error f -> Error f
    | Ok (child_moves, direct) ->
        Robust.Guard.run ~cfg:guard
          ~cost:(fun c -> c.runtime)
          (fun () ->
            match direct with
            | Some p ->
                {
                  moves = child_moves;
                  prog = p;
                  runtime = objective p;
                  parent_runtime = parent.runtime;
                }
            | None ->
                eval_moves ?filter caps objective root child_moves
                  parent.runtime)
          ()
  in
  match outcome with
  | Ok c -> (c, None)
  | Error f -> (quarantined root parent.runtime, Some f)

let run_curve budget f =
  let curve = Array.make budget infinity in
  let best = ref infinity in
  for i = 0 to budget - 1 do
    let t = f i in
    if t < !best then best := t;
    curve.(i) <- !best
  done;
  curve

(* ------------------------------------------------------------------ *)
(* Weighted random sampling                                            *)
(* ------------------------------------------------------------------ *)

(* Warm-start: replay a recorded move sequence from the root and return
   it as a candidate to seed the search with — tuning resumes from the
   database's best instead of restarting cold.  Guarded like every
   other evaluation: a database sequence recorded by an older build may
   no longer replay, and that must degrade to a cold start, not a
   crash. *)
let warm_candidate ~guard ?filter caps objective root (init : string list) :
    (candidate option, Robust.Guard.failure) Stdlib.result =
  if init = [] then Ok None
  else
    Result.map Option.some
      (Robust.Guard.run ~cfg:guard
         ~cost:(fun c -> c.runtime)
         (fun () -> eval_moves ?filter caps objective root init infinity)
         ())

(* The candidate pool and its selection weights live in growable buffers
   (amortized O(1) push) — the previous per-evaluation [Array.append]
   made pool growth O(budget^2).  The weight of a candidate depends only
   on its parent's runtime, so it is computed once at push time;
   [weighted_index_n] samples over the live prefix without copying.
   Quarantined candidates are pushed with weight 0: they keep their
   trajectory slot but are never drawn as parents. *)
let make_pool root_cand warm =
  let pool = Util.Dynarray.create ~capacity:64 root_cand in
  let weights = Util.Dynarray.create ~capacity:64 0.0 in
  let push_weighted w c =
    Util.Dynarray.push pool c;
    Util.Dynarray.push weights w
  in
  let push c = push_weighted (1.0 /. Float.max c.parent_runtime 1e-12) c in
  let push_quarantined c = push_weighted 0.0 c in
  push root_cand;
  (match warm with None -> () | Some w -> push w);
  let best =
    Util.Dynarray.fold_left
      (fun acc c -> if c.runtime < acc.runtime then c else acc)
      root_cand pool
  in
  (pool, weights, push, push_quarantined, best)

let pick_parent rng pool weights =
  Util.Dynarray.get pool
    (Util.Rng.weighted_index_n rng
       (Util.Dynarray.unsafe_data weights)
       (Util.Dynarray.length weights))

(* A failure counter plus its recorder.  Every quarantined evaluation
   becomes one [search.eval_error] event (the [i] field is -1 for the
   root evaluation, -2 for the warm-start replay, the step index
   otherwise) and bumps the robust.* counters — so [result.failures]
   always equals the number of eval_error events the run traced. *)
let make_noter ?metrics obs =
  let failures = ref 0 in
  let note ~i f =
    incr failures;
    Robust.Guard.note ~obs ?metrics ~fields:[ Obs.Trace.int "i" i ] f
  in
  (failures, note)

(* Root failure degrades to an infinite root score: search still runs,
   any finite candidate immediately becomes best. *)
let guarded_root ~guard ~note objective root =
  match Robust.Guard.eval ~cfg:guard objective root with
  | Ok t -> t
  | Error f ->
      note ~i:(-1) f;
      infinity

let guarded_warm ~guard ~note ?filter caps objective root ~root_time init =
  match warm_candidate ~guard ?filter caps objective root init with
  | Ok None -> None
  | Ok (Some w) -> Some { w with parent_runtime = root_time }
  | Error f ->
      note ~i:(-2) f;
      None

let random_sampling ?(seed = 1) ?filter ?(init = [])
    ?(obs = Obs.Trace.null) ?metrics ?(guard = Robust.Guard.default)
    ~(space : space) ~(budget : int) caps (objective : objective)
    (root : Ir.Prog.t) : result =
  let guard = Robust.Guard.instrument ?metrics guard in
  let rng = Util.Rng.create seed in
  let failures, note = make_noter ?metrics obs in
  let root_time = guarded_root ~guard ~note objective root in
  let root_cand =
    { moves = []; prog = root; runtime = root_time;
      parent_runtime = root_time }
  in
  emit_start obs ~meth:"random-sampling" ~space ~budget ~seed ~root_time;
  let warm =
    guarded_warm ~guard ~note ?filter caps objective root ~root_time init
  in
  let pool, weights, push, push_quarantined, best0 =
    make_pool root_cand warm
  in
  let best = ref best0 in
  let curve =
    run_curve budget (fun i ->
        let parent = pick_parent rng pool weights in
        let child, failed =
          guarded_child ~guard ?filter space caps rng root objective parent
        in
        (match failed with
        | Some f ->
            note ~i f;
            push_quarantined child
        | None ->
            push child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i child
            end;
            emit_step obs ~i ~runtime:child.runtime ~best:!best.runtime
              (fun () -> []);
            note_step ?metrics ~runtime:child.runtime ());
        child.runtime)
  in
  {
    best = !best.prog;
    best_time = !best.runtime;
    best_moves = !best.moves;
    curve;
    evals = budget;
    skipped = 0;
    deduped = 0;
    visited = 0;
    failures = !failures;
  }

(* ------------------------------------------------------------------ *)
(* Batched-synchronous-parallel variants                               *)
(* ------------------------------------------------------------------ *)

(* Parallelization follows AutoTVM's batched measurement loop: each
   round deterministically prepares B candidate tasks on the submitting
   thread (parent selection and one split-off RNG stream per task, in
   slot order), fans the expensive part — growing the child and
   replaying/evaluating it — across the pool, then folds the results
   back in slot order.  Because every task is a pure function of its
   (parent, RNG stream) inputs and both preparation and folding are
   sequential, the trajectory is a function of (seed, batch) only: jobs
   = 1 and jobs = N are identical, which the determinism tests pin.

   Note the batched algorithms differ from the sequential ones for
   batch > 1 (candidates within a round cannot see each other), so the
   sequential entry points above remain the default path. *)

let default_batch = 8

(* Grow a child from [parent] with the task's own RNG stream and
   evaluate it under the guard — the unit of parallel work.  [obs] is
   the task's private buffer sink (or [null]); a successful evaluation
   emits a [search.eval] event carrying the deterministic batch slot
   plus a wall-clock [dur_s], a quarantined one emits the
   [search.eval_error] event (and bumps robust.* counters) right here
   on the worker — the fold only counts it, so each failure is recorded
   exactly once.  Whether a candidate fails is deterministic (see
   {!Robust.Faults}), so the merged event stream stays a pure function
   of (seed, batch). *)
let child_task ?filter ?metrics ~guard ~obs ~slot space caps root objective
    parent task_rng () : candidate * Robust.Guard.failure option =
  let t0 = if Obs.Trace.enabled obs then Obs.Span.now () else 0. in
  let child, failed =
    guarded_child ~guard ?filter space caps task_rng root objective parent
  in
  (match failed with
  | Some f ->
      Robust.Guard.note ~obs ?metrics
        ~fields:[ Obs.Trace.int "slot" slot ]
        f
  | None ->
      if Obs.Trace.enabled obs then
        Obs.Trace.emit obs "search.eval" (fun () ->
            Obs.Trace.
              [
                int "slot" slot;
                int "n_moves" (List.length child.moves);
                num "runtime" child.runtime;
                num "dur_s" (Float.max 0. (Obs.Span.now () -. t0));
              ]));
  (child, failed)

(* [prepare sink ~slot] builds one task thunk writing its events into
   [sink]; [fold i child] consumes results in slot order.  When tracing
   is on, each task gets its own buffer sink and the buffers are folded
   into [obs] in slot order just before the corresponding [fold] — so
   the merged event stream is a pure function of (seed, batch),
   independent of which pool domain ran which task.

   [start]/[curve_init] resume the loop from a checkpointed round
   boundary (the curve prefix is the crashed run's); [round_end] fires
   after each round with the filled count, the curve, and the
   (evals, skipped, deduped, visited) accounting so far — the
   checkpoint writer's hook.  All three default to no-ops, keeping the
   cold path byte-identical to earlier releases. *)
let no_round_end ~filled:_ ~curve:_ ~stats:_ = ()

let run_batched ?(start = 0) ?(curve_init = [||]) ?(round_end = no_round_end)
    ~obs ~batch ~pool ~budget ~prepare ~fold () =
  if batch < 1 then invalid_arg "Stochastic: batch must be >= 1";
  if start < 0 || start > budget then
    invalid_arg "Stochastic: resume offset out of range";
  let traced = Obs.Trace.enabled obs in
  let curve = Array.make budget infinity in
  Array.blit curve_init 0 curve 0 (min start (Array.length curve_init));
  let filled = ref start in
  while !filled < budget do
    let b = min batch (budget - !filled) in
    let sinks =
      if traced then Array.init b (fun _ -> Obs.Trace.make_buffer ())
      else [||]
    in
    let tasks = Array.make b (fun () -> assert false) in
    for i = 0 to b - 1 do
      (* explicit loop: slot order fixes the RNG draw order *)
      let sink = if traced then sinks.(i) else Obs.Trace.null in
      tasks.(i) <- prepare sink ~slot:(!filled + i)
    done;
    let children = Parallel.Pool.map pool (fun task -> task ()) tasks in
    Array.iteri
      (fun i child ->
        if traced then Obs.Trace.append ~into:obs sinks.(i);
        curve.(!filled + i) <- fold (!filled + i) child)
      children;
    filled := !filled + b;
    round_end ~filled:!filled ~curve ~stats:(!filled, 0, 0, 0)
  done;
  curve

(* ------------------------------------------------------------------ *)
(* Surrogate pre-ranking and intra-batch dedup                         *)
(* ------------------------------------------------------------------ *)

(* [run_batched_filtered] is the opt-in sibling of [run_batched]: the
   same batched-synchronous discipline (deterministic preparation and
   folding on the submitting thread, expensive work on the pool), but
   each round is split into a build phase and an evaluation phase so two
   evaluation-saving stages can sit between them:

     1. intra-batch dedup ([dedup]): candidates are hashed by their
        printed program; each distinct program is evaluated once per
        round and duplicates share the measurement
        ([search.batch_dedup] carries unique/total counts);
     2. surrogate pre-ranking ([prerank]): a cheap learned score ranks
        the distinct candidates and only the top-k
        ([prerank.filter_ratio]) reach the guarded simulator; the rest
        are skipped outright ([search.prerank]).

   Everything that consumes randomness (parent selection, RNG splits,
   acceptance draws) still happens on the submitting thread in slot
   order, and which slots are skipped / deduplicated is a deterministic
   function of (seed, batch, model state) — the model itself is only
   ever scored and trained from the submitting thread, in slot order —
   so jobs-invariance holds exactly as for [run_batched].  The default
   path never comes here: [run_batched] is untouched when neither
   feature is enabled.

   Moving replay out of the guard (the build phase) preserves the guard
   semantics: replay is pure and draws no randomness, so an exception
   during build is classified with the same [rejected_of_exn] a guarded
   replay would have produced, and {!Robust.Faults} only ever wraps the
   objective, whose attempt counter is untouched by the split. *)

(* What one budget slot amounted to, folded in slot order. *)
type slot_outcome =
  | Evaluated of candidate  (** fresh measurement or shared duplicate *)
  | Failed of Robust.Guard.failure
      (** build or evaluation failure — quarantine *)
  | Skipped  (** surrogate-filtered: no measurement, not a failure *)
  | Visited
      (** canonical state already evaluated in an earlier round: no
          measurement, the visited set answered *)

(* Grow one child without measuring it: the (moves, program) pair ready
   for dedup/ranking.  Exceptions from a transform or replay classify
   exactly like they did under the guard. *)
let build_child ?filter space caps root (parent : candidate) task_rng :
    (string list * Ir.Prog.t, Robust.Guard.failure) Stdlib.result =
  match
    match expand ?filter space caps task_rng root parent with
    | moves, Some p -> (moves, p)
    | moves, None ->
        let p, applied = replay_skipping ?filter caps root moves in
        (applied, p)
  with
  | v -> Ok v
  | exception e -> Error (Robust.Guard.rejected_of_exn e)

let check_prerank = function
  | Some p when not (p.filter_ratio > 0. && p.filter_ratio <= 1.) ->
      invalid_arg "Stochastic: prerank filter_ratio must be in (0, 1]"
  | _ -> ()

(* Seed the online model with the measurements the prelude already
   paid for (root, warm-start replay). *)
let observe_seed prerank root ~root_time warm =
  match prerank with
  | None -> ()
  | Some p ->
      if Float.is_finite root_time then p.observe root root_time;
      (match warm with
      | Some w when Float.is_finite w.runtime -> p.observe w.prog w.runtime
      | _ -> ())

(* [prepare_parent ~slot] picks the parent and splits the task RNG on
   the submitting thread; [fold slot parent outcome] consumes one slot.
   [visited], when present, is the cross-round visited set: canonical
   fingerprints of every state already measured; candidates whose
   fingerprint is in the set never reach the simulator again.
   Returns the curve plus (evals, skipped, deduped, visited)
   accounting: budget = evals + skipped + deduped + visited +
   build-failures. *)
let run_batched_filtered ?filter ?metrics ?(start = 0) ?(curve_init = [||])
    ?(counters_init = (0, 0, 0, 0)) ?(round_end = no_round_end) ~obs ~batch
    ~pool ~budget ~guard ~dedup ~prerank ~visited ~space ~caps ~root
    ~objective ~prepare_parent ~fold () =
  if batch < 1 then invalid_arg "Stochastic: batch must be >= 1";
  if start < 0 || start > budget then
    invalid_arg "Stochastic: resume offset out of range";
  let traced = Obs.Trace.enabled obs in
  let bump ?(by = 1) name =
    if by > 0 then
      match metrics with None -> () | Some m -> Obs.Metrics.incr m ~by name
  in
  let ratio = match prerank with None -> 1.0 | Some p -> p.filter_ratio in
  let want_fp = dedup || visited <> None in
  let curve = Array.make budget infinity in
  Array.blit curve_init 0 curve 0 (min start (Array.length curve_init));
  let e0, s0, d0, v0 = counters_init in
  let n_evals = ref e0
  and n_skipped = ref s0
  and n_deduped = ref d0
  and n_visited = ref v0 in
  let filled = ref start in
  while !filled < budget do
    let b = min batch (budget - !filled) in
    (* 1. prepare: parent selection + RNG splits, submit thread, slot
       order — the only draws from the main search stream *)
    let prepared =
      Array.init b (fun i -> prepare_parent ~slot:(!filled + i))
    in
    (* 2. build phase on the pool: grow children (and, when dedup or
       the visited set needs them, their canonical fingerprints — pure,
       so still jobs-invariant), no measurement yet *)
    let built_fp =
      Parallel.Pool.map pool
        (fun (parent, task_rng) ->
          let r = build_child ?filter space caps root parent task_rng in
          let fp =
            match r with
            | Ok (_, p) when want_fp -> Canon.fingerprint p
            | Ok _ | Error _ -> ""
          in
          (r, fp))
        prepared
    in
    let built = Array.map fst built_fp in
    let fps = Array.map snd built_fp in
    let n_ok =
      Array.fold_left
        (fun acc r -> match r with Ok _ -> acc + 1 | Error _ -> acc)
        0 built
    in
    (* 3. dedup: group slots by canonical fingerprint — alpha-renamed /
       commutatively-reordered spellings of one state share a group;
       the first slot of a group is its representative *)
    let rep_of = Array.init b (fun i -> i) in
    if dedup then begin
      let tbl = Hashtbl.create (2 * b) in
      for i = 0 to b - 1 do
        match built.(i) with
        | Error _ -> ()
        | Ok _ -> (
            match Hashtbl.find_opt tbl fps.(i) with
            | None -> Hashtbl.add tbl fps.(i) i
            | Some r -> rep_of.(i) <- r)
      done
    end;
    let all_reps =
      List.filter
        (fun i -> rep_of.(i) = i && Result.is_ok built.(i))
        (List.init b Fun.id)
    in
    (* 3b. visited filter: a representative whose canonical state was
       measured in an earlier round never reaches pre-ranking or the
       simulator; membership is checked on the submitting thread, so
       the decision is a pure function of the trajectory so far *)
    let visited_rep = Array.make b false in
    (match visited with
    | None -> ()
    | Some set ->
        List.iter
          (fun i -> if Hashtbl.mem set fps.(i) then visited_rep.(i) <- true)
          all_reps);
    let reps = List.filter (fun i -> not visited_rep.(i)) all_reps in
    let n_reps = List.length reps in
    if want_fp then begin
      bump ~by:n_ok "canon.total";
      bump ~by:n_reps "canon.unique"
    end;
    if dedup then begin
      bump ~by:(n_ok - List.length all_reps) "surrogate.dedup_saved";
      if traced then
        Obs.Trace.emit obs "search.batch_dedup" (fun () ->
            Obs.Trace.
              [
                int "i" !filled;
                int "unique" (List.length all_reps);
                int "total" n_ok;
              ])
    end;
    (* 4. surrogate pre-rank: keep the top-k distinct candidates; ties
       and equal scores resolve by slot order, so selection is
       deterministic *)
    let selected =
      if ratio >= 1.0 then reps
      else begin
        let p = Option.get prerank in
        let scored =
          List.map
            (fun i ->
              match built.(i) with
              | Ok (_, prog) -> (i, p.score prog)
              | Error _ -> assert false)
            reps
        in
        let k = min n_reps (max 1 (int_of_float (ceil (ratio *. float_of_int n_reps)))) in
        let order =
          List.stable_sort
            (fun (i1, s1) (i2, s2) ->
              match compare (s2 : float) s1 with
              | 0 -> compare (i1 : int) i2
              | c -> c)
            scored
        in
        let kept =
          List.filteri (fun idx _ -> idx < k) order
          |> List.map fst
          |> List.sort compare
        in
        bump ~by:n_reps "surrogate.scored";
        bump ~by:k "surrogate.kept";
        bump ~by:(n_reps - k) "surrogate.filtered";
        if traced then
          Obs.Trace.emit obs "search.prerank" (fun () ->
              Obs.Trace.[ int "i" !filled; int "scored" n_reps; int "kept" k ]);
        kept
      end
    in
    (* 5. evaluation phase on the pool: only the selected
       representatives hit the guarded simulator *)
    let selected_arr = Array.of_list selected in
    let measured =
      Parallel.Pool.map pool
        (fun i ->
          match built.(i) with
          | Error _ -> assert false
          | Ok (_, prog) ->
              let t0 = Obs.Span.now () in
              let r = Robust.Guard.eval ~cfg:guard objective prog in
              (r, Float.max 0. (Obs.Span.now () -. t0)))
        selected_arr
    in
    n_evals := !n_evals + Array.length selected_arr;
    bump ~by:(Array.length selected_arr) "surrogate.evals";
    let eval_of = Hashtbl.create (2 * b) in
    Array.iteri (fun j i -> Hashtbl.add eval_of i measured.(j)) selected_arr;
    (* record the states measured this round; quarantined evaluations
       stay unmarked (like the cache, which never stores non-finite
       scores) so they do not poison the set *)
    (match visited with
    | None -> ()
    | Some set ->
        Array.iteri
          (fun j i ->
            match measured.(j) with
            | Ok _, _ -> Hashtbl.replace set fps.(i) ()
            | Error _, _ -> ())
          selected_arr);
    (* 6. fold in slot order on the submitting thread; all trace events
       of the round are emitted here, so the stream is a pure function
       of (seed, batch, model state) *)
    for i = 0 to b - 1 do
      let slot = !filled + i in
      let parent, _ = prepared.(i) in
      let outcome =
        match built.(i) with
        | Error f -> Failed f
        | Ok (moves, prog) -> (
            if visited_rep.(rep_of.(i)) then begin
              incr n_visited;
              if traced then
                Obs.Trace.emit obs "search.visited_skip" (fun () ->
                    Obs.Trace.[ int "slot" slot ]);
              Visited
            end
            else
            match Hashtbl.find_opt eval_of rep_of.(i) with
            | None ->
                incr n_skipped;
                Skipped
            | Some (Error f, _) ->
                if i <> rep_of.(i) then incr n_deduped;
                Failed f
            | Some (Ok runtime, dur) ->
                if i = rep_of.(i) then begin
                  (match prerank with
                  | Some p -> p.observe prog runtime
                  | None -> ());
                  if traced then
                    Obs.Trace.emit obs "search.eval" (fun () ->
                        Obs.Trace.
                          [
                            int "slot" slot;
                            int "n_moves" (List.length moves);
                            num "runtime" runtime;
                            num "dur_s" dur;
                          ])
                end
                else incr n_deduped;
                Evaluated
                  { moves; prog; runtime; parent_runtime = parent.runtime })
      in
      curve.(slot) <- fold slot parent outcome
    done;
    filled := !filled + b;
    round_end ~filled:!filled ~curve
      ~stats:(!n_evals, !n_skipped, !n_deduped, !n_visited)
  done;
  (curve, !n_evals, !n_skipped, !n_deduped, !n_visited)

(* Seed a fresh visited set with the states the prelude already
   measured (root, warm-start replay): children that land back on them
   must not pay a second simulation. *)
let make_visited ~visited_dedup root warm =
  if not visited_dedup then None
  else begin
    let set = Hashtbl.create 64 in
    Hashtbl.replace set (Canon.fingerprint root) ();
    (match warm with
    | Some w -> Hashtbl.replace set (Canon.fingerprint w.prog) ()
    | None -> ());
    Some set
  end

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume (crash safety)                                  *)
(* ------------------------------------------------------------------ *)

(* The batched engines checkpoint at round boundaries: after each round
   the whole search state — main RNG quadruple, candidate pool with
   selection weights, best-so-far, the annealing chain state, the
   best-so-far curve prefix, exact accounting, the visited fingerprint
   set, the surrogate model (via [snapshot_extra]), and the number of
   trace events emitted so far — is written atomically and durably
   through {!Recover.Store}.  Because rounds are the unit of
   determinism (parent selection, RNG splits and acceptance draws all
   happen on the submitting thread between round boundaries), a run
   killed at any point and resumed from its last checkpoint replays the
   exact trajectory of the uninterrupted run: same [result], exact
   accounting across the splice, and — since the checkpoint records the
   event count — a stripped trace that splices byte-identically
   (killed[0..events) ++ resumed == uninterrupted).  This is the house
   jobs-invariance discipline extended to kill-invariance.

   Floats (runtimes can be +inf for quarantined slots) cross the file
   boundary as IEEE-754 bit patterns ({!Recover.Bits}); candidate
   programs are not serialized — they rebuild via [replay_skipping]
   from the root, which costs transform replays but zero simulator
   evaluations. *)

type checkpoint_cfg = { path : string; every : int; resume : bool }

type ckpt_state = {
  st_filled : int;
  st_rng : int64 array;
  st_pool : (string list * float * float * float) array;
      (* moves, runtime, parent_runtime, selection weight *)
  st_best : string list * float * float;
  st_current : (string list * float * float) option;  (* annealing chain *)
  st_temp : float option;
  st_curve : float array;  (* prefix of length st_filled *)
  st_counts : int * int * int * int;  (* evals, skipped, deduped, visited *)
  st_failures : int;
  st_visited : string list;  (* sorted canonical fingerprints *)
  st_events : int;  (* trace events emitted up to this checkpoint *)
  st_extra : Util.Json.t option;  (* surrogate model state *)
}

let ck_corrupt fmt = Recover.Field.corrupt fmt
let ck_member = Recover.Field.member
let ck_int = Recover.Field.int
let ck_list = Recover.Field.list
let ck_float = Recover.Field.float_bits
let str_list = Recover.Field.str_list
let hex64 v = Util.Json.Str (Printf.sprintf "%Lx" v)

let ck_hex64 = function
  | Util.Json.Str s -> (
      match Int64.of_string_opt ("0x" ^ s) with
      | Some v -> v
      | None -> ck_corrupt "bad 64-bit hex word %S" s)
  | _ -> ck_corrupt "RNG state word is not a string"

let triple_json (moves, runtime, parent_runtime) =
  Util.Json.Obj
    [
      ("moves", Util.Json.Arr (List.map (fun m -> Util.Json.Str m) moves));
      ("rt", Recover.Bits.of_float runtime);
      ("prt", Recover.Bits.of_float parent_runtime);
    ]

let triple_of_json json =
  (str_list "moves" json, ck_float "rt" json, ck_float "prt" json)

let encode_stochastic ~meth ~space ~seed ~budget ~batch (st : ckpt_state) =
  let open Util.Json in
  let entry (moves, rt, prt, w) =
    Obj
      [
        ("moves", Arr (List.map (fun m -> Str m) moves));
        ("rt", Recover.Bits.of_float rt);
        ("prt", Recover.Bits.of_float prt);
        ("w", Recover.Bits.of_float w);
      ]
  in
  Obj
    (List.concat
       [
         [
           ("kind", Str "stochastic");
           ("method", Str meth);
           ("space", Str (space_name space));
           ("seed", Num (float_of_int seed));
           ("budget", Num (float_of_int budget));
           ("batch", Num (float_of_int batch));
           ("filled", Num (float_of_int st.st_filled));
           ("rng", Arr (Array.to_list (Array.map hex64 st.st_rng)));
           ("pool", Arr (Array.to_list (Array.map entry st.st_pool)));
           ("best", triple_json st.st_best);
         ];
         (match st.st_current with
         | Some c -> [ ("current", triple_json c) ]
         | None -> []);
         (match st.st_temp with
         | Some t -> [ ("temp", Recover.Bits.of_float t) ]
         | None -> []);
         [
           ( "curve",
             Arr
               (Array.to_list (Array.map Recover.Bits.of_float st.st_curve))
           );
           ( "counts",
             let e, s, d, v = st.st_counts in
             Arr (List.map (fun x -> Num (float_of_int x)) [ e; s; d; v ]) );
           ("failures", Num (float_of_int st.st_failures));
           ("visited", Arr (List.map (fun f -> Str f) st.st_visited));
           ("events", Num (float_of_int st.st_events));
         ];
         (match st.st_extra with Some j -> [ ("model", j) ] | None -> []);
       ])

let ck_check_identity ~kind ~meth ~space ~seed ~budget ~batch json =
  Recover.Field.check_str json "kind" kind;
  Recover.Field.check_str json "method" meth;
  Recover.Field.check_str json "space" (space_name space);
  Recover.Field.check_int json "seed" seed;
  Recover.Field.check_int json "budget" budget;
  Recover.Field.check_int json "batch" batch

let decode_stochastic ~meth ~space ~seed ~budget ~batch json : ckpt_state =
  ck_check_identity ~kind:"stochastic" ~meth ~space ~seed ~budget ~batch json;
  let filled = ck_int "filled" json in
  let curve =
    ck_list "curve" json
    |> List.map (fun v ->
           match Recover.Bits.to_float v with
           | Some f -> f
           | None -> ck_corrupt "curve entry is not a float bit pattern")
    |> Array.of_list
  in
  if Array.length curve <> filled then
    ck_corrupt "curve length %d does not match filled %d" (Array.length curve)
      filled;
  let rng =
    match ck_list "rng" json with
    | [ _; _; _; _ ] as words -> Array.of_list (List.map ck_hex64 words)
    | l -> ck_corrupt "RNG state has %d words, expected 4" (List.length l)
  in
  let pool =
    ck_list "pool" json
    |> List.map (fun e ->
           let moves, rt, prt = triple_of_json e in
           (moves, rt, prt, ck_float "w" e))
    |> Array.of_list
  in
  let counts =
    match ck_list "counts" json |> List.map Util.Json.to_int with
    | [ Some e; Some s; Some d; Some v ] -> (e, s, d, v)
    | _ -> ck_corrupt "malformed accounting counts"
  in
  {
    st_filled = filled;
    st_rng = rng;
    st_pool = pool;
    st_best = triple_of_json (ck_member "best" json);
    st_current =
      Option.map triple_of_json (Util.Json.member "current" json);
    st_temp = Option.bind (Util.Json.member "temp" json) Recover.Bits.to_float;
    st_curve = curve;
    st_counts = counts;
    st_failures = ck_int "failures" json;
    st_visited = str_list "visited" json;
    st_events = ck_int "events" json;
    st_extra = Util.Json.member "model" json;
  }

(* Load the resume state, if resuming was requested and a checkpoint
   exists.  [--resume] with no checkpoint file yet is a cold start (the
   first run of a campaign), not an error; a corrupt or mismatched file
   is a typed {!Recover.Error} — never garbage state. *)
let load_stochastic_resume checkpoint ~meth ~space ~seed ~budget ~batch =
  match checkpoint with
  | Some { resume = true; path; _ } when Sys.file_exists path -> (
      match Recover.Store.load ~path with
      | Ok payload ->
          Some (decode_stochastic ~meth ~space ~seed ~budget ~batch payload)
      | Error e -> raise (Recover.Error e))
  | _ -> None

(* Rebuild a candidate from its serialized (moves, runtime,
   parent_runtime): the program replays from the root through the same
   [filter] the original run used — transform replays only, no
   simulator evaluations (this is what makes resume strictly cheaper
   than a cold restart). *)
let cand_of_triple ?filter caps root (moves, runtime, parent_runtime) =
  let prog =
    if moves = [] then root else fst (replay_skipping ?filter caps root moves)
  in
  { moves; prog; runtime; parent_runtime }

(* Rebuild the candidate pool with its exact selection weights (a
   quarantined entry keeps weight 0, the root its 1/root_time, etc.) so
   the first resumed parent draw matches the uninterrupted run's. *)
let pool_of_state ?filter caps root entries =
  let dummy =
    { moves = []; prog = root; runtime = infinity; parent_runtime = infinity }
  in
  let pool = Util.Dynarray.create ~capacity:64 dummy in
  let weights = Util.Dynarray.create ~capacity:64 0.0 in
  let push_weighted w c =
    Util.Dynarray.push pool c;
    Util.Dynarray.push weights w
  in
  Array.iter
    (fun (moves, rt, prt, w) ->
      push_weighted w (cand_of_triple ?filter caps root (moves, rt, prt)))
    entries;
  let push c = push_weighted (1.0 /. Float.max c.parent_runtime 1e-12) c in
  let push_quarantined c = push_weighted 0.0 c in
  (pool, weights, push, push_quarantined)

let snapshot_pool pool weights =
  Array.init (Util.Dynarray.length pool) (fun i ->
      let c = Util.Dynarray.get pool i in
      (c.moves, c.runtime, c.parent_runtime, Util.Dynarray.get weights i))

let snapshot_triple (c : candidate) = (c.moves, c.runtime, c.parent_runtime)

let visited_to_list = function
  | None -> []
  | Some set ->
      Hashtbl.fold (fun k () acc -> k :: acc) set [] |> List.sort compare

let visited_of_list fps =
  let set = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace set f ()) fps;
  set

(* The per-round hook: write a checkpoint when the cadence is due
   (every [every] filled slots, and always at the end of the run), and
   honor a pending SIGINT/SIGTERM by checkpointing and raising
   {!Recover.Interrupt.Interrupted} at this safe point (the pool is
   idle between rounds).  The [checkpoint.write] trace event is emitted
   *before* the event counter is read, so the recorded count includes
   it and the trace splice stays exact. *)
let make_round_hook ?metrics ~obs ~counted ~events_base ~checkpoint ~start
    ~budget ~snapshot () =
  let last = ref start in
  let write ~filled ~curve ~stats =
    match checkpoint with
    | None -> None
    | Some ck ->
        Obs.Trace.emit obs "checkpoint.write" (fun () ->
            let e, s, d, v = stats in
            Obs.Trace.
              [
                int "filled" filled;
                int "evals" e;
                int "skipped" s;
                int "deduped" d;
                int "visited" v;
              ]);
        (match metrics with
        | Some m -> Obs.Metrics.incr m "checkpoint.writes"
        | None -> ());
        Recover.Store.save ~path:ck.path
          (snapshot ~filled ~curve ~stats ~events:(events_base + counted ()));
        last := filled;
        Some ck.path
  in
  fun ~filled ~curve ~stats ->
    let due =
      match checkpoint with
      | Some ck ->
          filled > !last && (filled - !last >= ck.every || filled >= budget)
      | None -> false
    in
    let written = if due then write ~filled ~curve ~stats else None in
    if Recover.Interrupt.requested () && filled < budget then begin
      let path =
        match written with
        | Some _ as p -> p
        | None ->
            if filled > !last then write ~filled ~curve ~stats
            else Option.map (fun ck -> ck.path) checkpoint
      in
      raise (Recover.Interrupt.Interrupted path)
    end

(* Wrap [obs] so every emitted event is counted (checkpoints record the
   count for trace splicing) — only when checkpointing, so the default
   path allocates nothing new. *)
let maybe_counting checkpoint obs =
  match checkpoint with
  | None -> (obs, fun () -> 0)
  | Some _ -> Obs.Trace.counting obs

let restore_model restore_extra extra =
  match (restore_extra, extra) with Some f, Some j -> f j | _ -> ()

let random_sampling_parallel ?(seed = 1) ?filter ?(init = [])
    ?(obs = Obs.Trace.null) ?metrics ?(guard = Robust.Guard.default)
    ?(batch = default_batch) ?prerank ?(dedup = false)
    ?(visited_dedup = false) ?checkpoint ?snapshot_extra ?restore_extra
    ~(pool : Parallel.Pool.t) ~(space : space)
    ~(budget : int) caps (objective : objective) (root : Ir.Prog.t) : result =
  check_prerank prerank;
  let guard = Robust.Guard.instrument ?metrics guard in
  let meth = "random-sampling-parallel" in
  let obs, counted = maybe_counting checkpoint obs in
  let resumed =
    load_stochastic_resume checkpoint ~meth ~space ~seed ~budget ~batch
  in
  let failures, note = make_noter ?metrics obs in
  let ( rng,
        cands,
        weights,
        push,
        push_quarantined,
        best,
        visited,
        start,
        curve_init,
        counters_init,
        events_base ) =
    match resumed with
    | None ->
        (* cold start: the prelude (root evaluation, warm-start replay,
           model seeding) runs exactly as in earlier releases *)
        let rng = Util.Rng.create seed in
        let root_time = guarded_root ~guard ~note objective root in
        let root_cand =
          { moves = []; prog = root; runtime = root_time;
            parent_runtime = root_time }
        in
        emit_start obs ~meth ~space ~budget ~seed ~root_time;
        let warm =
          guarded_warm ~guard ~note ?filter caps objective root ~root_time
            init
        in
        observe_seed prerank root ~root_time warm;
        let cands, weights, push, push_quarantined, best0 =
          make_pool root_cand warm
        in
        let visited = make_visited ~visited_dedup root warm in
        ( rng, cands, weights, push, push_quarantined, ref best0, visited, 0,
          [||], (0, 0, 0, 0), 0 )
    | Some st ->
        (* resume: the entire prelude is skipped — its effects (root
           evaluation, warm replay, start event, model seeding) are all
           inside the restored state; re-running it would re-pay
           evaluations and duplicate trace events *)
        (match metrics with
        | Some m -> Obs.Metrics.incr m "checkpoint.resumes"
        | None -> ());
        failures := st.st_failures;
        let cands, weights, push, push_quarantined =
          pool_of_state ?filter caps root st.st_pool
        in
        restore_model restore_extra st.st_extra;
        let visited =
          if visited_dedup then Some (visited_of_list st.st_visited) else None
        in
        ( Util.Rng.of_state st.st_rng, cands, weights, push,
          push_quarantined, ref (cand_of_triple ?filter caps root st.st_best),
          visited, st.st_filled, st.st_curve, st.st_counts, st.st_events )
  in
  let snapshot ~filled ~curve ~stats ~events =
    encode_stochastic ~meth ~space ~seed ~budget ~batch
      {
        st_filled = filled;
        st_rng = Util.Rng.state rng;
        st_pool = snapshot_pool cands weights;
        st_best = snapshot_triple !best;
        st_current = None;
        st_temp = None;
        st_curve = Array.sub curve 0 filled;
        st_counts = stats;
        st_failures = !failures;
        st_visited = visited_to_list visited;
        st_events = events;
        st_extra = Option.map (fun f -> f ()) snapshot_extra;
      }
  in
  let round_end =
    make_round_hook ?metrics ~obs ~counted ~events_base ~checkpoint ~start
      ~budget ~snapshot ()
  in
  match (prerank, dedup, visited_dedup) with
  | None, false, false ->
      (* the default engine, byte-identical to earlier releases *)
      let prepare sink ~slot =
        let parent = pick_parent rng cands weights in
        let task_rng = Util.Rng.split rng in
        child_task ?filter ?metrics ~guard ~obs:sink ~slot space caps root
          objective parent task_rng
      in
      let fold i (child, failed) =
        (match failed with
        | Some _ ->
            (* the worker already recorded the event and counters *)
            incr failures;
            push_quarantined child
        | None ->
            push child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i child
            end;
            emit_step obs ~i ~runtime:child.runtime ~best:!best.runtime
              (fun () -> []);
            note_step ?metrics ~runtime:child.runtime ());
        !best.runtime
      in
      let curve =
        run_batched ~start ~curve_init ~round_end ~obs ~batch ~pool ~budget
          ~prepare ~fold ()
      in
      {
        best = !best.prog;
        best_time = !best.runtime;
        best_moves = !best.moves;
        curve;
        evals = budget;
        skipped = 0;
        deduped = 0;
        visited = 0;
        failures = !failures;
      }
  | _ ->
      let note_slot ~slot f =
        incr failures;
        Robust.Guard.note ~obs ?metrics
          ~fields:[ Obs.Trace.int "slot" slot ]
          f
      in
      let prepare_parent ~slot:_ =
        let parent = pick_parent rng cands weights in
        (parent, Util.Rng.split rng)
      in
      let fold slot parent = function
        | Failed f ->
            note_slot ~slot f;
            push_quarantined (quarantined root parent.runtime);
            !best.runtime
        | Skipped | Visited -> !best.runtime
        | Evaluated child ->
            push child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i:slot child
            end;
            emit_step obs ~i:slot ~runtime:child.runtime ~best:!best.runtime
              (fun () -> []);
            note_step ?metrics ~runtime:child.runtime ();
            !best.runtime
      in
      let curve, evals, skipped, deduped, visited =
        run_batched_filtered ?filter ?metrics ~start ~curve_init
          ~counters_init ~round_end ~obs ~batch ~pool ~budget ~guard ~dedup
          ~prerank ~visited ~space ~caps ~root ~objective ~prepare_parent
          ~fold ()
      in
      {
        best = !best.prog;
        best_time = !best.runtime;
        best_moves = !best.moves;
        curve;
        evals;
        skipped;
        deduped;
        visited;
        failures = !failures;
      }

let simulated_annealing_parallel ?(seed = 1) ?filter ?(init = [])
    ?(obs = Obs.Trace.null) ?metrics ?(guard = Robust.Guard.default)
    ?(t0 = 0.5) ?(cooling = 0.995) ?(batch = default_batch) ?prerank
    ?(dedup = false) ?(visited_dedup = false) ?checkpoint ?snapshot_extra
    ?restore_extra ~(pool : Parallel.Pool.t)
    ~(space : space) ~(budget : int) caps (objective : objective)
    (root : Ir.Prog.t) : result =
  check_prerank prerank;
  let guard = Robust.Guard.instrument ?metrics guard in
  let meth = "simulated-annealing-parallel" in
  let obs, counted = maybe_counting checkpoint obs in
  let resumed =
    load_stochastic_resume checkpoint ~meth ~space ~seed ~budget ~batch
  in
  let failures, note = make_noter ?metrics obs in
  let ( rng,
        current,
        best,
        temp,
        visited,
        start,
        curve_init,
        counters_init,
        events_base ) =
    match resumed with
    | None ->
        let rng = Util.Rng.create seed in
        let root_time = guarded_root ~guard ~note objective root in
        let root_cand =
          { moves = []; prog = root; runtime = root_time;
            parent_runtime = root_time }
        in
        emit_start obs ~meth ~space ~budget ~seed ~root_time;
        let warm =
          guarded_warm ~guard ~note ?filter caps objective root ~root_time
            init
        in
        observe_seed prerank root ~root_time warm;
        let current =
          ref
            (match warm with
            | Some w when w.runtime <= root_time -> w
            | Some _ | None -> root_cand)
        in
        let visited = make_visited ~visited_dedup root warm in
        (rng, current, ref !current, ref t0, visited, 0, [||], (0, 0, 0, 0), 0)
    | Some st ->
        (* resume: prelude skipped — see random_sampling_parallel *)
        (match metrics with
        | Some m -> Obs.Metrics.incr m "checkpoint.resumes"
        | None -> ());
        failures := st.st_failures;
        restore_model restore_extra st.st_extra;
        let current =
          match st.st_current with
          | Some c -> ref (cand_of_triple ?filter caps root c)
          | None -> ck_corrupt "annealing checkpoint missing chain state"
        in
        let temp =
          match st.st_temp with
          | Some t -> ref t
          | None -> ck_corrupt "annealing checkpoint missing temperature"
        in
        let visited =
          if visited_dedup then Some (visited_of_list st.st_visited) else None
        in
        ( Util.Rng.of_state st.st_rng, current,
          ref (cand_of_triple ?filter caps root st.st_best), temp, visited,
          st.st_filled, st.st_curve, st.st_counts, st.st_events )
  in
  let snapshot ~filled ~curve ~stats ~events =
    encode_stochastic ~meth ~space ~seed ~budget ~batch
      {
        st_filled = filled;
        st_rng = Util.Rng.state rng;
        st_pool = [||];
        st_best = snapshot_triple !best;
        st_current = Some (snapshot_triple !current);
        st_temp = Some !temp;
        st_curve = Array.sub curve 0 filled;
        st_counts = stats;
        st_failures = !failures;
        st_visited = visited_to_list visited;
        st_events = events;
        st_extra = Option.map (fun f -> f ()) snapshot_extra;
      }
  in
  let round_end =
    make_round_hook ?metrics ~obs ~counted ~events_base ~checkpoint ~start
      ~budget ~snapshot ()
  in
  match (prerank, dedup, visited_dedup) with
  | None, false, false ->
      (* the default engine, byte-identical to earlier releases *)
      let prepare sink ~slot =
        (* all proposals of a round branch off the round-start state *)
        let parent = !current in
        let task_rng = Util.Rng.split rng in
        child_task ?filter ?metrics ~guard ~obs:sink ~slot space caps root
          objective parent task_rng
      in
      let fold i (child, failed) =
        (match failed with
        | Some _ ->
            (* quarantined: never accepted, never best; the cooling
               schedule still advances so temperature stays a function
               of the step index alone.  No acceptance RNG draw happens
               — the failure is deterministic, so the draw sequence is
               too. *)
            incr failures
        | None ->
            let accept =
              child.runtime <= !current.runtime
              ||
              let delta =
                (child.runtime -. !current.runtime)
                /. Float.max !current.runtime 1e-12
              in
              Util.Rng.float rng < exp (-.delta /. Float.max !temp 1e-6)
            in
            if accept then current := child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i child
            end;
            emit_step obs ~i ~runtime:child.runtime ~best:!best.runtime
              (fun () ->
                [
                  Obs.Trace.bool "accepted" accept; Obs.Trace.num "temp" !temp;
                ]);
            note_step ?metrics ~accepted:accept ~temp:!temp
              ~runtime:child.runtime ());
        temp := !temp *. cooling;
        !best.runtime
      in
      let curve =
        run_batched ~start ~curve_init ~round_end ~obs ~batch ~pool ~budget
          ~prepare ~fold ()
      in
      {
        best = !best.prog;
        best_time = !best.runtime;
        best_moves = !best.moves;
        curve;
        evals = budget;
        skipped = 0;
        deduped = 0;
        visited = 0;
        failures = !failures;
      }
  | _ ->
      let note_slot ~slot f =
        incr failures;
        Robust.Guard.note ~obs ?metrics
          ~fields:[ Obs.Trace.int "slot" slot ]
          f
      in
      let prepare_parent ~slot:_ =
        (* all proposals of a round branch off the round-start state *)
        (!current, Util.Rng.split rng)
      in
      let fold slot _parent outcome =
        (match outcome with
        | Failed f ->
            (* quarantined: never accepted, never best; cooling still
               advances so temperature stays a function of the step
               index alone *)
            note_slot ~slot f
        | Skipped | Visited ->
            (* filtered out (surrogate) or already measured (visited
               set) before measurement: no acceptance draw (the skip is
               deterministic), cooling still advances *)
            ()
        | Evaluated child ->
            let accept =
              child.runtime <= !current.runtime
              ||
              let delta =
                (child.runtime -. !current.runtime)
                /. Float.max !current.runtime 1e-12
              in
              Util.Rng.float rng < exp (-.delta /. Float.max !temp 1e-6)
            in
            if accept then current := child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i:slot child
            end;
            emit_step obs ~i:slot ~runtime:child.runtime ~best:!best.runtime
              (fun () ->
                [
                  Obs.Trace.bool "accepted" accept; Obs.Trace.num "temp" !temp;
                ]);
            note_step ?metrics ~accepted:accept ~temp:!temp
              ~runtime:child.runtime ());
        temp := !temp *. cooling;
        !best.runtime
      in
      let curve, evals, skipped, deduped, visited =
        run_batched_filtered ?filter ?metrics ~start ~curve_init
          ~counters_init ~round_end ~obs ~batch ~pool ~budget ~guard ~dedup
          ~prerank ~visited ~space ~caps ~root ~objective ~prepare_parent
          ~fold ()
      in
      {
        best = !best.prog;
        best_time = !best.runtime;
        best_moves = !best.moves;
        curve;
        evals;
        skipped;
        deduped;
        visited;
        failures = !failures;
      }

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)
(* ------------------------------------------------------------------ *)

let simulated_annealing ?(seed = 1) ?filter ?(init = [])
    ?(obs = Obs.Trace.null) ?metrics ?(guard = Robust.Guard.default)
    ?(t0 = 0.5) ?(cooling = 0.995) ~(space : space) ~(budget : int) caps
    (objective : objective) (root : Ir.Prog.t) : result =
  let guard = Robust.Guard.instrument ?metrics guard in
  let rng = Util.Rng.create seed in
  let failures, note = make_noter ?metrics obs in
  let root_time = guarded_root ~guard ~note objective root in
  let root_cand =
    { moves = []; prog = root; runtime = root_time;
      parent_runtime = root_time }
  in
  emit_start obs ~meth:"simulated-annealing" ~space ~budget ~seed
    ~root_time;
  let current =
    ref
      (match
         guarded_warm ~guard ~note ?filter caps objective root ~root_time
           init
       with
      | Some w when w.runtime <= root_time -> w
      | Some _ | None -> root_cand)
  in
  let best = ref !current in
  let temp = ref t0 in
  let curve =
    run_curve budget (fun i ->
        let child, failed =
          guarded_child ~guard ?filter space caps rng root objective
            !current
        in
        (match failed with
        | Some f ->
            (* quarantined: never accepted, never best; cooling still
               advances so temperature stays a function of the step
               index alone *)
            note ~i f
        | None ->
            let accept =
              child.runtime <= !current.runtime
              ||
              let delta =
                (child.runtime -. !current.runtime)
                /. Float.max !current.runtime 1e-12
              in
              Util.Rng.float rng < exp (-.delta /. Float.max !temp 1e-6)
            in
            if accept then current := child;
            if child.runtime < !best.runtime then begin
              best := child;
              emit_best obs ~i child
            end;
            emit_step obs ~i ~runtime:child.runtime ~best:!best.runtime
              (fun () ->
                [
                  Obs.Trace.bool "accepted" accept; Obs.Trace.num "temp" !temp;
                ]);
            note_step ?metrics ~accepted:accept ~temp:!temp
              ~runtime:child.runtime ());
        temp := !temp *. cooling;
        child.runtime)
  in
  {
    best = !best.prog;
    best_time = !best.runtime;
    best_moves = !best.moves;
    curve;
    evals = budget;
    skipped = 0;
    deduped = 0;
    visited = 0;
    failures = !failures;
  }
