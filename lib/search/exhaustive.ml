(* Exhaustive enumeration of the transformation graph (ROADMAP item 1).

   Breadth-first over move sequences from the root: level k holds the
   programs first reached by k moves.  Every applied instance is one
   [total] encounter; canonical-fingerprint dedup (Canon) collapses the
   spellings of one state, so each state is expanded and measured once
   — the TransForm discipline (222 generated instances, 8 unique).

   Because the frontier holds every not-yet-expanded state, an empty
   frontier before the depth bound means the entire reachable
   transformation graph has been enumerated: the best runtime found is
   then a global optimum over all schedules reachable from the root
   ([exhausted = true]), not merely over sequences of length <= depth.
   Either way, a run that was not truncated by [max_states] certifies
   the optimum over every schedule within [depth] moves
   ([certified = true]) — the provable baseline the stochastic engines
   and the DQN are calibrated against.

   The walk is sequential and deterministic: Xforms.all enumerates
   instances in a fixed order, levels are processed in discovery order,
   and nothing draws randomness. *)

open Transform

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list; (* replayable path of describe strings *)
  unique : int; (* distinct canonical states discovered (incl. root) *)
  total : int; (* state encounters: root + every instance application *)
  evals : int; (* guarded objective evaluations performed *)
  failures : int; (* applications or evaluations quarantined *)
  depth : int; (* requested bound *)
  reached_depth : int; (* deepest level actually expanded *)
  certified : bool; (* optimum proved over all schedules within depth *)
  exhausted : bool; (* frontier emptied: optimum proved globally *)
}

let default_max_states = 20_000

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

(* The BFS checkpoints after every completed level: the frontier (as
   forward move paths — programs replay from the root), the seen
   fingerprint set, the best-so-far and exact accounting all travel
   through {!Recover.Store}.  A killed run resumed from its last
   checkpoint re-expands only the level it died in, so resume
   re-evaluates strictly fewer states than a cold restart (the
   checkpointed [evals] are never re-paid), and reaches the same
   certified optimum with the same trace suffix. *)

(* Exact replay of a checkpointed move path — unlike
   [Stochastic.replay_skipping] nothing may be skipped: a path that no
   longer replays means the checkpoint does not match this build and is
   rejected as corrupt. *)
let replay_exact ~filter caps root moves =
  List.fold_left
    (fun p name ->
      match Xforms.lookup ~filter (Xforms.all caps p) name with
      | Some inst -> inst.apply p
      | None ->
          Recover.Field.corrupt "checkpointed path does not replay: %S" name)
    root moves

let encode_exhaustive ~depth ~max_states ~level ~unique ~total ~evals
    ~failures ~best_time ~best_moves ~seen ~frontier ~events =
  let open Util.Json in
  let strs l = Arr (List.map (fun s -> Str s) l) in
  Obj
    [
      ("kind", Str "exhaustive");
      ("depth", Num (float_of_int depth));
      ("max_states", Num (float_of_int max_states));
      ("level", Num (float_of_int level));
      ("unique", Num (float_of_int unique));
      ("total", Num (float_of_int total));
      ("evals", Num (float_of_int evals));
      ("failures", Num (float_of_int failures));
      ("best_time", Recover.Bits.of_float best_time);
      ("best_moves", strs best_moves);
      ("seen", strs (List.sort compare seen));
      ("frontier", Arr (List.map (fun (_, path) -> strs path) frontier));
      ("events", Num (float_of_int events));
    ]

let decode_frontier json =
  Recover.Field.list "frontier" json
  |> List.map (function
       | Util.Json.Arr items ->
           List.map
             (function
               | Util.Json.Str s -> s
               | _ -> Recover.Field.corrupt "frontier path holds a non-string")
             items
       | _ -> Recover.Field.corrupt "frontier entry is not an array")

let run ?filter ?(obs = Obs.Trace.null) ?metrics
    ?(guard = Robust.Guard.default) ?(max_states = default_max_states)
    ?(checkpoint : Stochastic.checkpoint_cfg option) ~(depth : int) caps
    (objective : Stochastic.objective) (root : Ir.Prog.t) : result =
  if depth < 0 then invalid_arg "Exhaustive.run: depth must be >= 0";
  if max_states < 1 then
    invalid_arg "Exhaustive.run: max_states must be >= 1";
  let guard = Robust.Guard.instrument ?metrics guard in
  let obs, counted =
    match checkpoint with
    | None -> (obs, fun () -> 0)
    | Some _ -> Obs.Trace.counting obs
  in
  let traced = Obs.Trace.enabled obs in
  let filter = match filter with Some f -> f | None -> fun _ -> true in
  let failures = ref 0 in
  let note f =
    incr failures;
    Robust.Guard.note ~obs ?metrics f
  in
  let evals = ref 0 in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let unique = ref 1 and total = ref 1 in
  let best = ref root (* program *)
  and best_time = ref infinity
  and best_moves = ref [] in
  (* frontier: (program, forward move path), discovery order *)
  let frontier = ref [] in
  let level = ref 0 in
  let events_base = ref 0 in
  let resume_payload =
    match checkpoint with
    | Some { resume = true; path; _ } when Sys.file_exists path -> (
        match Recover.Store.load ~path with
        | Ok payload -> Some payload
        | Error e -> raise (Recover.Error e))
    | _ -> None
  in
  (match resume_payload with
  | None ->
      (* cold start: evaluate the root and emit the start event *)
      let root_time =
        incr evals;
        match Robust.Guard.eval ~cfg:guard objective root with
        | Ok t -> t
        | Error f ->
            note f;
            infinity
      in
      if traced then
        Obs.Trace.emit obs "search.start" (fun () ->
            Obs.Trace.
              [
                str "method" "exhaustive";
                int "depth" depth;
                int "max_states" max_states;
                num "root_time" root_time;
              ]);
      Hashtbl.replace seen (Canon.fingerprint root) ();
      best_time := root_time;
      frontier := [ (root, []) ]
  | Some json ->
      (* resume: restore the walk at its last completed level; the
         prelude (root evaluation, start event) already happened in the
         crashed run and lives inside the restored accounting *)
      Recover.Field.check_str json "kind" "exhaustive";
      Recover.Field.check_int json "depth" depth;
      Recover.Field.check_int json "max_states" max_states;
      (match metrics with
      | Some m -> Obs.Metrics.incr m "checkpoint.resumes"
      | None -> ());
      level := Recover.Field.int "level" json;
      unique := Recover.Field.int "unique" json;
      total := Recover.Field.int "total" json;
      evals := Recover.Field.int "evals" json;
      failures := Recover.Field.int "failures" json;
      best_time := Recover.Field.float_bits "best_time" json;
      best_moves := Recover.Field.str_list "best_moves" json;
      best := replay_exact ~filter caps root !best_moves;
      List.iter
        (fun fp -> Hashtbl.replace seen fp ())
        (Recover.Field.str_list "seen" json);
      frontier :=
        List.map
          (fun path -> (replay_exact ~filter caps root path, path))
          (decode_frontier json);
      events_base := Recover.Field.int "events" json);
  let truncated = ref false in
  let write_checkpoint () =
    match checkpoint with
    | None -> None
    | Some ck ->
        Obs.Trace.emit obs "checkpoint.write" (fun () ->
            Obs.Trace.[ int "filled" !level; int "evals" !evals ]);
        (match metrics with
        | Some m -> Obs.Metrics.incr m "checkpoint.writes"
        | None -> ());
        Recover.Store.save ~path:ck.path
          (encode_exhaustive ~depth ~max_states ~level:!level ~unique:!unique
             ~total:!total ~evals:!evals ~failures:!failures
             ~best_time:!best_time ~best_moves:!best_moves
             ~seen:(Hashtbl.fold (fun k () acc -> k :: acc) seen [])
             ~frontier:!frontier
             ~events:(!events_base + counted ()));
        Some ck.path
  in
  while !level < depth && !frontier <> [] && not !truncated do
    incr level;
    let next = ref [] in
    List.iter
      (fun (p, moves) ->
        let insts = List.filter filter (Xforms.all caps p) in
        List.iter
          (fun (inst : Xforms.instance) ->
            if not !truncated then begin
              incr total;
              match inst.apply p with
              | exception e ->
                  note (Robust.Guard.rejected_of_exn e)
              | q ->
                  let fp = Canon.fingerprint q in
                  if not (Hashtbl.mem seen fp) then begin
                    if !unique >= max_states then truncated := true
                    else begin
                      Hashtbl.replace seen fp ();
                      incr unique;
                      let path = moves @ [ Xforms.describe inst ] in
                      incr evals;
                      (match Robust.Guard.eval ~cfg:guard objective q with
                      | Ok t ->
                          if t < !best_time then begin
                            best := q;
                            best_time := t;
                            best_moves := path;
                            if traced then
                              Obs.Trace.emit obs "search.best" (fun () ->
                                  Obs.Trace.
                                    [
                                      int "i" (!unique - 1);
                                      num "runtime" t;
                                      int "n_moves" (List.length path);
                                    ])
                          end
                      | Error f -> note f);
                      next := (q, path) :: !next
                    end
                  end
            end)
          insts)
      !frontier;
    frontier := List.rev !next;
    if traced then
      Obs.Trace.emit obs "search.exhaustive_level" (fun () ->
          Obs.Trace.
            [
              int "level" !level;
              int "unique" !unique;
              int "total" !total;
              int "frontier" (List.length !frontier);
            ]);
    (* Levels are the BFS unit of determinism, so every completed level
       checkpoints (the [every] cadence is for per-eval engines).  A
       truncated level ended mid-expansion and is not a resumable
       state. *)
    if not !truncated then begin
      let path = write_checkpoint () in
      if Recover.Interrupt.requested () && !level < depth && !frontier <> []
      then raise (Recover.Interrupt.Interrupted path)
    end
  done;
  let exhausted = !frontier = [] && not !truncated in
  let certified = not !truncated in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr m ~by:!unique "canon.unique";
      Obs.Metrics.incr m ~by:!total "canon.total";
      Obs.Metrics.incr m ~by:!evals "search.steps");
  if traced then
    Obs.Trace.emit obs "search.exhaustive" (fun () ->
        Obs.Trace.
          [
            int "unique" !unique;
            int "total" !total;
            int "evals" !evals;
            int "depth" depth;
            int "reached_depth" !level;
            num "best" !best_time;
            bool "certified" certified;
            bool "exhausted" exhausted;
          ]);
  {
    best = !best;
    best_time = !best_time;
    best_moves = !best_moves;
    unique = !unique;
    total = !total;
    evals = !evals;
    failures = !failures;
    depth;
    reached_depth = !level;
    certified;
    exhausted;
  }
