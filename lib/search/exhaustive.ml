(* Exhaustive enumeration of the transformation graph (ROADMAP item 1).

   Breadth-first over move sequences from the root: level k holds the
   programs first reached by k moves.  Every applied instance is one
   [total] encounter; canonical-fingerprint dedup (Canon) collapses the
   spellings of one state, so each state is expanded and measured once
   — the TransForm discipline (222 generated instances, 8 unique).

   Because the frontier holds every not-yet-expanded state, an empty
   frontier before the depth bound means the entire reachable
   transformation graph has been enumerated: the best runtime found is
   then a global optimum over all schedules reachable from the root
   ([exhausted = true]), not merely over sequences of length <= depth.
   Either way, a run that was not truncated by [max_states] certifies
   the optimum over every schedule within [depth] moves
   ([certified = true]) — the provable baseline the stochastic engines
   and the DQN are calibrated against.

   The walk is sequential and deterministic: Xforms.all enumerates
   instances in a fixed order, levels are processed in discovery order,
   and nothing draws randomness. *)

open Transform

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list; (* replayable path of describe strings *)
  unique : int; (* distinct canonical states discovered (incl. root) *)
  total : int; (* state encounters: root + every instance application *)
  evals : int; (* guarded objective evaluations performed *)
  failures : int; (* applications or evaluations quarantined *)
  depth : int; (* requested bound *)
  reached_depth : int; (* deepest level actually expanded *)
  certified : bool; (* optimum proved over all schedules within depth *)
  exhausted : bool; (* frontier emptied: optimum proved globally *)
}

let default_max_states = 20_000

let run ?filter ?(obs = Obs.Trace.null) ?metrics
    ?(guard = Robust.Guard.default) ?(max_states = default_max_states)
    ~(depth : int) caps (objective : Stochastic.objective)
    (root : Ir.Prog.t) : result =
  if depth < 0 then invalid_arg "Exhaustive.run: depth must be >= 0";
  if max_states < 1 then
    invalid_arg "Exhaustive.run: max_states must be >= 1";
  let guard = Robust.Guard.instrument ?metrics guard in
  let traced = Obs.Trace.enabled obs in
  let filter = match filter with Some f -> f | None -> fun _ -> true in
  let failures = ref 0 in
  let note f =
    incr failures;
    Robust.Guard.note ~obs ?metrics f
  in
  let evals = ref 0 in
  (* root state *)
  let root_time =
    incr evals;
    match Robust.Guard.eval ~cfg:guard objective root with
    | Ok t -> t
    | Error f ->
        note f;
        infinity
  in
  if traced then
    Obs.Trace.emit obs "search.start" (fun () ->
        Obs.Trace.
          [
            str "method" "exhaustive";
            int "depth" depth;
            int "max_states" max_states;
            num "root_time" root_time;
          ]);
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.replace seen (Canon.fingerprint root) ();
  let unique = ref 1 and total = ref 1 in
  let best = ref root (* program *)
  and best_time = ref root_time
  and best_moves = ref [] in
  let truncated = ref false in
  (* frontier: (program, forward move path), discovery order *)
  let frontier = ref [ (root, []) ] in
  let level = ref 0 in
  while !level < depth && !frontier <> [] && not !truncated do
    incr level;
    let next = ref [] in
    List.iter
      (fun (p, moves) ->
        let insts = List.filter filter (Xforms.all caps p) in
        List.iter
          (fun (inst : Xforms.instance) ->
            if not !truncated then begin
              incr total;
              match inst.apply p with
              | exception e ->
                  note (Robust.Guard.rejected_of_exn e)
              | q ->
                  let fp = Canon.fingerprint q in
                  if not (Hashtbl.mem seen fp) then begin
                    if !unique >= max_states then truncated := true
                    else begin
                      Hashtbl.replace seen fp ();
                      incr unique;
                      let path = moves @ [ Xforms.describe inst ] in
                      incr evals;
                      (match Robust.Guard.eval ~cfg:guard objective q with
                      | Ok t ->
                          if t < !best_time then begin
                            best := q;
                            best_time := t;
                            best_moves := path;
                            if traced then
                              Obs.Trace.emit obs "search.best" (fun () ->
                                  Obs.Trace.
                                    [
                                      int "i" (!unique - 1);
                                      num "runtime" t;
                                      int "n_moves" (List.length path);
                                    ])
                          end
                      | Error f -> note f);
                      next := (q, path) :: !next
                    end
                  end
            end)
          insts)
      !frontier;
    frontier := List.rev !next;
    if traced then
      Obs.Trace.emit obs "search.exhaustive_level" (fun () ->
          Obs.Trace.
            [
              int "level" !level;
              int "unique" !unique;
              int "total" !total;
              int "frontier" (List.length !frontier);
            ])
  done;
  let exhausted = !frontier = [] && not !truncated in
  let certified = not !truncated in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.incr m ~by:!unique "canon.unique";
      Obs.Metrics.incr m ~by:!total "canon.total";
      Obs.Metrics.incr m ~by:!evals "search.steps");
  if traced then
    Obs.Trace.emit obs "search.exhaustive" (fun () ->
        Obs.Trace.
          [
            int "unique" !unique;
            int "total" !total;
            int "evals" !evals;
            int "depth" depth;
            int "reached_depth" !level;
            num "best" !best_time;
            bool "certified" certified;
            bool "exhausted" exhausted;
          ]);
  {
    best = !best;
    best_time = !best_time;
    best_moves = !best_moves;
    unique = !unique;
    total = !total;
    evals = !evals;
    failures = !failures;
    depth;
    reached_depth = !level;
    certified;
    exhausted;
  }
