(** Batch library generation: the paper's end product.

    {!generate} optimizes every (kernel, target) pair of a selection —
    by default the whole Table-3 operator suite plus the Snitch
    micro-kernels — through the existing portfolio/stochastic machinery
    and emits a complete C library: one translation unit per pair, an
    umbrella header, and a canonical-JSON [manifest.json] recording the
    provenance of every entry (program fingerprint, winning strategy and
    move sequence, modelled time, evaluation and failure counts).

    Generation is {e incremental}: a pair whose tuning-database best
    already matches the current program fingerprint is not re-optimized
    — its recorded schedule is replayed, a [libgen.skip] trace event is
    emitted, and the entry is marked [Skipped].  And it is
    {e fault-tolerant}: a pair whose optimization crashes or produces a
    non-finite time degrades to the naive schedule, classified through
    {!Robust.Guard}'s failure taxonomy and flagged [Degraded] in the
    manifest — a full-suite run survives individual failures and
    resumes cheaply on the next invocation.

    Pairs are optimized in parallel across [ctx.jobs] domains (each
    pair's own search runs sequentially, like portfolio members), all
    sharing the run context's {!Tuning.Cache} and one tuning database.
    Everything emitted is deterministic: the manifest is byte-identical
    for any [jobs]. *)

type status =
  | Fresh  (** optimized this run *)
  | Skipped  (** reproduced from the tuning database (fingerprint hit) *)
  | Degraded  (** optimization failed; naive schedule emitted instead *)

type entry = {
  kernel : string;  (** kernel label, e.g. ["softmax"] *)
  shape : string;  (** the kernel's shape description *)
  target : string;  (** canonical target short name, e.g. ["x86"] *)
  fingerprint : string;  (** {!Tuning.Record.fingerprint} of the root *)
  status : status;
  strategy : string;
      (** what produced the schedule: the strategy label for [Fresh],
          ["db"] for [Skipped], ["naive"] for [Degraded] *)
  moves : string list;  (** replayable move sequence of the schedule *)
  naive_s : float;  (** modelled runtime of the unscheduled kernel *)
  time_s : float;  (** modelled runtime of the emitted schedule *)
  evaluations : int;  (** model evaluations spent on this pair this run *)
  failures : int;  (** evaluations quarantined by the guard *)
  recorded : bool;
      (** a matching record is in the database, so the next run skips
          this pair *)
  c_file : string;  (** C source filename, relative to the out dir *)
  c_entry : string;  (** entry-point symbol declared in the header *)
  error : string option;
      (** [Degraded] only: the {!Robust.Guard.failure_message} of the
          classified cause *)
}

type library = {
  out_dir : string;
  header : string;  (** umbrella header filename, relative to out_dir *)
  entries : entry list;  (** target-major, then kernel order *)
  fresh : int;
  skipped : int;
  degraded : int;
}

val strategy_label : Perfdojo.strategy -> string
(** Stable human/manifest name: ["annealing/heuristic"],
    ["portfolio"], ... *)

val status_name : status -> string
(** ["fresh"] / ["skipped"] / ["degraded"] — the manifest encoding. *)

val default_kernels : unit -> Kernels.entry list
(** The full suite: {!Kernels.table3} @ {!Kernels.snitch_micro}. *)

val manifest_json : library -> Util.Json.t
(** The manifest as a canonical JSON object — what {!generate} writes
    to [manifest.json] (one line, {!Util.Json.to_string}).  Carries no
    wall-clock fields, so it is byte-deterministic given the inputs. *)

val generate :
  ?kernels:Kernels.entry list ->
  ?strategy:Perfdojo.strategy ->
  ?db:Tuning.Db.t ->
  ?db_file:string ->
  ?force:bool ->
  ctx:Perfdojo.Ctx.t ->
  targets:string list ->
  out:string ->
  unit ->
  library
(** Generate the library into directory [out] (created if missing).

    [targets] are short names or aliases resolved by
    {!Machine.Desc.resolve_target} (duplicates collapse); an unknown
    name raises [Invalid_argument] listing the known targets.
    [kernels] defaults to {!default_kernels} (duplicate labels
    collapse).  [strategy] defaults to heuristic-space annealing with a
    300-evaluation budget — a strategy whose winners are always
    move-replayable, so every pair deposits a database record and the
    next run over the same [db] skips the entire suite.

    [db] is both read (incremental skips, warm starts) and updated
    (each fresh pair's winner is deposited under the
    {!Tuning.Db.add} improve/dedupe rules).  When [db_file] is given
    the database is checkpointed after every deposit with the
    crash-safe {!Tuning.Db.save}, so an interrupted suite run resumes
    from the pairs it completed.  [force] re-optimizes pairs that would
    otherwise skip (their records still warm-start the search).

    [ctx] supplies seed, shared cache, jobs, trace sink, metrics, guard
    and fault injection; [ctx.warm_start] is ignored (warm starts are
    looked up per pair).  Traces fold per-pair buffers in pair order —
    like the portfolio race, the merged stream is independent of
    scheduling modulo {!Obs.Trace.strip_timing}.

    {b Crash safety}: with [ctx.checkpoint] set, the suite keeps a
    per-pair progress ledger there (a fsynced {!Recover.Journal}): each
    completed fresh pair appends its final entry {e before} its
    database deposit.  A suite killed mid-run and rerun with
    [ctx.resume] replays the ledger, re-optimizes only the unfinished
    pairs, re-applies ledgered deposits idempotently, and emits a
    manifest byte-identical to the uninterrupted run's.  The ledger is
    truncated once the manifest is written.  A pending SIGINT/SIGTERM
    stops at the next chunk boundary with
    {!Recover.Interrupt.Interrupted}. *)
