(* Batch library generation: optimize the whole operator suite in one
   run and emit a C library.

   The driver turns a kernel selection × target list into (kernel,
   target) pairs, optimizes every pair through the existing
   search/portfolio machinery, and emits one C translation unit per
   pair, an umbrella header and a canonical-JSON manifest.

   Three properties shape the implementation:

   - incremental: a pair whose tuning-database best matches the current
     program fingerprint is reproduced by replay instead of re-searched
     (a [libgen.skip] trace event; [Skipped] in the manifest);
   - fault-tolerant: pairs run under [Parallel.Pool.map_result], so a
     crashing optimization degrades that pair to the naive schedule —
     classified through [Robust.Guard]'s failure taxonomy and flagged
     [Degraded] — instead of aborting the suite;
   - deterministic: pairs are planned and folded in a fixed order,
     per-pair traces buffer like portfolio members, and the manifest
     carries no wall-clock fields, so output is byte-identical for any
     [ctx.jobs]. *)

module P = Perfdojo

type status = Fresh | Skipped | Degraded

type entry = {
  kernel : string;
  shape : string;
  target : string;
  fingerprint : string;
  status : status;
  strategy : string;
  moves : string list;
  naive_s : float;
  time_s : float;
  evaluations : int;
  failures : int;
  recorded : bool;
  c_file : string;
  c_entry : string;
  error : string option;
}

type library = {
  out_dir : string;
  header : string;
  entries : entry list;
  fresh : int;
  skipped : int;
  degraded : int;
}

let status_name = function
  | Fresh -> "fresh"
  | Skipped -> "skipped"
  | Degraded -> "degraded"

let space_label = function
  | Search.Stochastic.Heuristic -> "heuristic"
  | Search.Stochastic.Edges -> "edges"

let strategy_label : P.strategy -> string = function
  | P.Naive -> "naive"
  | P.Greedy -> "greedy"
  | P.Heuristic -> "heuristic"
  | P.Sampling { space; _ } -> "sampling/" ^ space_label space
  | P.Annealing { space; _ } -> "annealing/" ^ space_label space
  | P.Rl_search _ -> "rl"
  | P.Portfolio _ -> "portfolio"
  | P.Exhaustive -> "exhaustive"

let default_kernels () = Kernels.table3 @ Kernels.snitch_micro

(* C identifier fragment from a kernel label or target name ("layernorm
   1" -> "layernorm_1"). *)
let sanitize s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    s

let dedupe_by key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

let resolve_targets names =
  dedupe_by fst
    (List.map
       (fun name ->
         match Machine.Desc.resolve_target name with
         | Some pair -> pair
         | None ->
             invalid_arg
               (Printf.sprintf "unknown target %S (known: %s)" name
                  (String.concat ", "
                     (List.map fst Machine.Desc.known_targets))))
       names)

let ensure_dir dir =
  try Unix.mkdir dir 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let entry_json (e : entry) : Util.Json.t =
  let open Util.Json in
  let base =
    [
      ("kernel", Str e.kernel);
      ("target", Str e.target);
      ("shape", Str e.shape);
      ("fingerprint", Str e.fingerprint);
      ("status", Str (status_name e.status));
      ("strategy", Str e.strategy);
      ("moves", Arr (List.map (fun m -> Str m) e.moves));
      (* derived from the moves, not stored in the ledger, so fresh and
         crash-resumed runs emit byte-identical manifests *)
      ( "script",
        Str
          (Transfo.Script.to_string
             (Transfo.Script.of_moves ~kernel:e.kernel ~ktarget:e.target
                e.moves)) );
      ("naive_s", Num e.naive_s);
      ("time_s", Num e.time_s);
      ("speedup", Num (if e.time_s > 0. then e.naive_s /. e.time_s else 0.));
      ("evaluations", Num (float_of_int e.evaluations));
      ("failures", Num (float_of_int e.failures));
      ("recorded", Bool e.recorded);
      ("c_file", Str e.c_file);
      ("entry", Str e.c_entry);
    ]
  in
  Obj
    (match e.error with
    | None -> base
    | Some msg -> base @ [ ("error", Str msg) ])

let manifest_json (lib : library) : Util.Json.t =
  let open Util.Json in
  let targets = dedupe_by Fun.id (List.map (fun e -> e.target) lib.entries) in
  Obj
    [
      ("schema", Num 1.);
      ("header", Str lib.header);
      ("targets", Arr (List.map (fun t -> Str t) targets));
      ("entries", Arr (List.map entry_json lib.entries));
      ("fresh", Num (float_of_int lib.fresh));
      ("skipped", Num (float_of_int lib.skipped));
      ("degraded", Num (float_of_int lib.degraded));
    ]

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

(* What the plan phase decided for a pair: reproduce a recorded
   schedule, optimize (with a warm-start sequence when the database
   offers a matching record), or replay a ledger entry left by a
   crashed run. *)
type plan_item =
  | Reproduce of Tuning.Record.t * Ir.Prog.t
  | Optimize of string list
  | Ledgered of Util.Json.t

(* ------------------------------------------------------------------ *)
(* The crash ledger                                                    *)
(* ------------------------------------------------------------------ *)

(* With [ctx.checkpoint] set, every completed fresh pair appends one
   entry to a {!Recover.Journal} *before* its database deposit, so the
   ledger always covers the deposits (ledgered ⊇ deposited).  A killed
   suite resumed with [ctx.resume] replays the ledger: ledgered pairs
   bypass both the plan phase's database decision and the optimizer —
   their manifest entry is rebuilt verbatim from the ledger (schedules
   regenerate by replaying the recorded moves) and their deposit is
   re-applied idempotently — so the resumed run starts at the first
   unfinished pair and still emits a byte-identical manifest. *)

let pair_id kernel target = kernel ^ "|" ^ target

let ledger_entry_json ~pid ~status ~strategy ~moves ~time_s ~evaluations
    ~failures ~recorded ~error : Util.Json.t =
  let open Util.Json in
  Obj
    [
      ("pair", Str pid);
      ("status", Str (status_name status));
      ("strategy", Str strategy);
      ("moves", Arr (List.map (fun m -> Str m) moves));
      ("time_s", Recover.Bits.of_float time_s);
      ("evaluations", Num (float_of_int evaluations));
      ("failures", Num (float_of_int failures));
      ("recorded", Bool recorded);
      ("error", match error with None -> Null | Some m -> Str m);
    ]

let status_of_ledger j =
  match Recover.Field.str "status" j with
  | "fresh" -> Fresh
  | "degraded" -> Degraded
  | s -> Recover.Field.corrupt "unknown ledger status %S" s

let generate ?kernels ?strategy ?db ?db_file ?(force = false)
    ~(ctx : P.Ctx.t) ~targets ~out () : library =
  let kernels =
    dedupe_by
      (fun (e : Kernels.entry) -> e.label)
      (match kernels with None -> default_kernels () | Some ks -> ks)
  in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> P.Annealing { budget = 300; space = Search.Stochastic.Heuristic }
  in
  let strat_label = strategy_label strategy in
  let targets = resolve_targets targets in
  ensure_dir out;
  let obs = ctx.P.Ctx.obs in
  let metrics = ctx.P.Ctx.metrics in
  let traced = Obs.Trace.enabled obs in
  (* the crash ledger: replay completed pairs first (resume), then open
     the journal for appending this run's completions *)
  let ledgered : (string, Util.Json.t) Hashtbl.t = Hashtbl.create 16 in
  (match ctx.P.Ctx.checkpoint with
  | Some path when ctx.P.Ctx.resume -> (
      match Recover.Journal.replay path with
      | Ok (entries, _torn) ->
          List.iter
            (fun j -> Hashtbl.replace ledgered (Recover.Field.str "pair" j) j)
            entries;
          (match metrics with
          | Some m ->
              Obs.Metrics.incr m ~by:(List.length entries) "journal.replayed"
          | None -> ());
          if traced && entries <> [] then
            Obs.Trace.emit obs "journal.replay" (fun () ->
                Obs.Trace.
                  [ str "kind" "libgen"; int "entries" (List.length entries) ])
      | Error e -> raise (Recover.Error e))
  | _ -> ());
  let ledger = Option.map Recover.Journal.open_writer ctx.P.Ctx.checkpoint in
  let pairs =
    List.concat_map
      (fun (tname, t) ->
        List.map (fun (e : Kernels.entry) -> (tname, t, e)) kernels)
      targets
  in
  if traced then
    Obs.Trace.emit obs "libgen.start" (fun () ->
        Obs.Trace.
          [
            int "targets" (List.length targets);
            int "kernels" (List.length kernels);
            int "pairs" (List.length pairs);
            str "strategy" strat_label;
          ]);
  (* Plan phase (sequential, cheap): build each root, fingerprint it,
     and decide skip vs optimize against the database.  All database
     reads happen here, so the parallel phase touches no shared mutable
     state beyond the ctx cache (which is domain-safe). *)
  let plan =
    List.map
      (fun (tname, t, (e : Kernels.entry)) ->
        let root = e.build () in
        let keys = Tuning.Record.root_keys root in
        let fp = fst keys in
        let naive_s = Machine.time t root in
        let best =
          match db with
          | None -> None
          | Some d -> Tuning.Db.best d ~kernel:e.label ~target:tname
        in
        let item =
          (* a ledgered pair completed before the crash: its entry wins
             over any database decision — deposits the killed run made
             must not flip later pairs to Skipped in the resumed
             manifest *)
          match Hashtbl.find_opt ledgered (pair_id e.label tname) with
          | Some j -> Ledgered j
          | None -> (
              match best with
              | Some r when Tuning.Record.matches_root ~keys r ->
                  if force then Optimize r.moves
                  else
                    let sched, applied =
                      Tuning.Warmstart.replay (Machine.caps t) root r.moves
                    in
                    (* a record some of whose moves no longer apply is
                       stale: re-optimize, still seeded by what replays *)
                    if applied = r.moves then Reproduce (r, sched)
                    else Optimize r.moves
              | _ -> Optimize [] (* no record, or a different root program *))
        in
        (tname, t, e, root, fp, naive_s, item))
      pairs
  in
  (* Parallel phase: optimize the fresh pairs across ctx.jobs domains.
     Each pair runs its own sequential search (jobs = 0 inside the
     workers, like portfolio members) into a private trace buffer;
     map_result keeps one crashing pair from cancelling the suite. *)
  let fresh_tasks =
    Array.of_list
      (List.filter_map
         (fun (tname, t, e, root, _, naive_s, item) ->
           match item with
           | Optimize warm -> Some (tname, t, e, root, naive_s, warm)
           | Reproduce _ | Ledgered _ -> None)
         plan)
  in
  let task (_, t, _, root, _, warm) =
    let sink = if traced then Obs.Trace.make_buffer () else Obs.Trace.null in
    (* per-pair searches never checkpoint themselves: the ledger is the
       suite's unit of recovery, and a pair is cheap to rerun *)
    let pctx =
      {
        ctx with
        P.Ctx.jobs = 0;
        obs = sink;
        warm_start = warm;
        checkpoint = None;
        resume = false;
      }
    in
    let o = P.optimize_ctx ~ctx:pctx strategy t root in
    (o, sink)
  in
  (* The deposit decision (pure) and the deposit itself, split so the
     ledger can record the decision before the database mutation. *)
  let deposit_record ~kernel ~tname ~t ~root (o : P.outcome) =
    match db with
    | None -> None
    | Some _ -> (
        match
          Tuning.Warmstart.record_of ~objective:(Machine.time t)
            ~caps:(Machine.caps t) ~kernel ~target:tname ~root ~moves:o.moves
            ~evals:o.evaluations
        with
        | Error _ -> None
        | Ok r ->
            (* Only a replayable winner is worth recording: a pass
               schedule with no move trace would deposit the naive time
               and make the next run "skip" to a slower library. *)
            if r.Tuning.Record.best_time <= o.time_s *. (1. +. 1e-9) then
              Some r
            else None)
  in
  let apply_deposit r =
    match db with
    | None -> ()
    | Some d ->
        (* idempotent: re-applying a ledgered deposit after a crash hits
           [Duplicate] and changes nothing *)
        ignore (Tuning.Db.add d r);
        (match db_file with Some f -> Tuning.Db.save d f | None -> ())
  in
  let deposit ~kernel ~tname ~t ~root (o : P.outcome) =
    match deposit_record ~kernel ~tname ~t ~root o with
    | None -> false
    | Some r ->
        apply_deposit r;
        true
  in
  let fresh_results : (P.outcome * Obs.Trace.sink, exn) result array =
    Array.make (Array.length fresh_tasks) (Stdlib.Error Exit)
  in
  let recorded_flags = Array.make (Array.length fresh_tasks) false in
  (* Ledger one completed fresh task: translate the raw task result to
     its final manifest fields (mirroring the fold below), append the
     entry — fsynced, *before* the deposit — then deposit.  Once the
     append returns, a kill anywhere leaves a resumable suite. *)
  let ledger_completed w i =
    let tname, t, (e : Kernels.entry), root, naive_s, _ = fresh_tasks.(i) in
    let pid = pair_id e.label tname in
    let append ~status ~strategy ~moves ~time_s ~evaluations ~failures
        ~recorded ~error =
      Recover.Journal.append w
        (ledger_entry_json ~pid ~status ~strategy ~moves ~time_s ~evaluations
           ~failures ~recorded ~error);
      (match metrics with
      | Some m -> Obs.Metrics.incr m "journal.appends"
      | None -> ());
      if traced then
        Obs.Trace.emit obs "journal.append" (fun () ->
            Obs.Trace.[ str "kind" "libgen"; str "key" pid ])
    in
    match fresh_results.(i) with
    | Ok ((o : P.outcome), _) when not (Float.is_finite o.time_s) ->
        append ~status:Degraded ~strategy:"naive" ~moves:[] ~time_s:naive_s
          ~evaluations:o.evaluations ~failures:o.failures ~recorded:false
          ~error:
            (Some
               (Robust.Guard.failure_message
                  (Robust.Guard.Non_finite o.time_s)))
    | Ok (o, _) -> (
        match deposit_record ~kernel:e.label ~tname ~t ~root o with
        | Some r ->
            recorded_flags.(i) <- true;
            append ~status:Fresh ~strategy:strat_label ~moves:o.moves
              ~time_s:o.time_s ~evaluations:o.evaluations
              ~failures:o.failures ~recorded:true ~error:None;
            apply_deposit r
        | None ->
            append ~status:Fresh ~strategy:strat_label ~moves:o.moves
              ~time_s:o.time_s ~evaluations:o.evaluations
              ~failures:o.failures ~recorded:false ~error:None)
    | Error exn ->
        append ~status:Degraded ~strategy:"naive" ~moves:[] ~time_s:naive_s
          ~evaluations:0 ~failures:0 ~recorded:false
          ~error:
            (Some
               (Robust.Guard.failure_message
                  (Robust.Guard.rejected_of_exn exn)))
  in
  if Array.length fresh_tasks > 0 then begin
    let n = Array.length fresh_tasks in
    let jobs = max 1 (min ctx.P.Ctx.jobs n) in
    Parallel.Pool.with_pool ~instrument:(metrics <> None) ~jobs (fun pool ->
        (match ledger with
        | None ->
            let r = Parallel.Pool.map_result pool task fresh_tasks in
            Array.blit r 0 fresh_results 0 n
        | Some w ->
            (* chunks of [jobs] tasks, so the ledger fills as pairs
               complete and an interrupt has a boundary to stop at *)
            let pos = ref 0 in
            while !pos < n do
              let len = min jobs (n - !pos) in
              let r =
                Parallel.Pool.map_result pool task
                  (Array.sub fresh_tasks !pos len)
              in
              Array.blit r 0 fresh_results !pos len;
              for k = !pos to !pos + len - 1 do
                ledger_completed w k
              done;
              pos := !pos + len;
              if Recover.Interrupt.requested () && !pos < n then
                raise
                  (Recover.Interrupt.Interrupted ctx.P.Ctx.checkpoint)
            done);
        match metrics with
        | Some m -> Parallel.Pool.export pool m
        | None -> ())
  end;
  let results = fresh_results in
  (* Fold phase (sequential, pair order): emit trace events and C
     sources; without a ledger, this is also where winners deposit into
     the database (with one, the chunk loop above already did — the
     fold then reads the decision back from [recorded_flags]). *)
  let fold_recorded ~i ~kernel ~tname ~t ~root o =
    match ledger with
    | None -> deposit ~kernel ~tname ~t ~root o
    | Some _ -> recorded_flags.(i)
  in
  let next_fresh = ref 0 in
  let entries =
    List.map
      (fun (tname, t, (e : Kernels.entry), root, fp, naive_s, item) ->
        let base = sanitize e.label ^ "_" ^ sanitize tname in
        let c_file = base ^ ".c" in
        let c_entry = "perfdojo_" ^ base in
        let finish ~status ~strategy ~moves ~time_s ~evaluations ~failures
            ~recorded ~error sched =
          let banner =
            Printf.sprintf
              "/* %s (%s) on %s: %s\n\
              \   status %s via %s; modelled %.3e s (%.2fx over naive)\n\
              \   fingerprint %s */\n"
              e.label e.shape_desc tname e.description (status_name status)
              strategy time_s
              (if time_s > 0. then naive_s /. time_s else 0.)
              fp
          in
          write_file
            (Filename.concat out c_file)
            (banner ^ Codegen.program ~entry:c_entry sched);
          {
            kernel = e.label;
            shape = e.shape_desc;
            target = tname;
            fingerprint = fp;
            status;
            strategy;
            moves;
            naive_s;
            time_s;
            evaluations;
            failures;
            recorded;
            c_file;
            c_entry;
            error;
          }
        in
        let degrade ~failure ~evaluations ~failures sink =
          let msg = Robust.Guard.failure_message failure in
          if traced then begin
            Obs.Trace.emit obs "libgen.degraded" (fun () ->
                Obs.Trace.
                  [
                    str "kernel" e.label;
                    str "target" tname;
                    str "class" (Robust.Guard.failure_class failure);
                    str "msg" msg;
                  ]);
            match sink with
            | Some s -> Obs.Trace.append ~into:obs s
            | None -> ()
          end;
          finish ~status:Degraded ~strategy:"naive" ~moves:[]
            ~time_s:naive_s ~evaluations ~failures ~recorded:false
            ~error:(Some msg) root
        in
        match item with
        | Reproduce (r, sched) ->
            let time_s = Machine.time t sched in
            if traced then
              Obs.Trace.emit obs "libgen.skip" (fun () ->
                  Obs.Trace.
                    [
                      str "kernel" e.label;
                      str "target" tname;
                      num "time_s" time_s;
                    ]);
            finish ~status:Skipped ~strategy:"db" ~moves:r.moves ~time_s
              ~evaluations:0 ~failures:0 ~recorded:true ~error:None sched
        | Ledgered j ->
            (* a pair the crashed run completed: rebuild its manifest
               entry verbatim from the ledger (the schedule regenerates
               by replaying the recorded moves), and re-apply a recorded
               deposit idempotently in case the kill landed between the
               ledger append and the database save *)
            let status = status_of_ledger j in
            let moves = Recover.Field.str_list "moves" j in
            let time_s = Recover.Field.float_bits "time_s" j in
            let strategy = Recover.Field.str "strategy" j in
            let evaluations = Recover.Field.int "evaluations" j in
            let failures = Recover.Field.int "failures" j in
            let recorded = Recover.Field.bool "recorded" j in
            let error =
              match Util.Json.member "error" j with
              | Some (Util.Json.Str m) -> Some m
              | _ -> None
            in
            let sched =
              if moves = [] then root
              else fst (Tuning.Warmstart.replay (Machine.caps t) root moves)
            in
            if recorded then begin
              match
                Tuning.Warmstart.record_of ~objective:(Machine.time t)
                  ~caps:(Machine.caps t) ~kernel:e.label ~target:tname ~root
                  ~moves ~evals:evaluations
              with
              | Ok r -> apply_deposit r
              | Error _ -> ()
            end;
            finish ~status ~strategy ~moves ~time_s ~evaluations ~failures
              ~recorded ~error sched
        | Optimize _ -> (
            let i = !next_fresh in
            incr next_fresh;
            match results.(i) with
            | Ok ((o : P.outcome), _sink) when not (Float.is_finite o.time_s)
              ->
                (* the search survived but found nothing finite — the
                   same taxonomy a guarded evaluation would use *)
                degrade
                  ~failure:(Robust.Guard.Non_finite o.time_s)
                  ~evaluations:o.evaluations ~failures:o.failures None
            | Ok (o, sink) ->
                let recorded =
                  fold_recorded ~i ~kernel:e.label ~tname ~t ~root o
                in
                if traced then begin
                  Obs.Trace.emit obs "libgen.entry" (fun () ->
                      Obs.Trace.
                        [
                          str "kernel" e.label;
                          str "target" tname;
                          num "time_s" o.time_s;
                          int "evals" o.evaluations;
                          int "failures" o.failures;
                          bool "recorded" recorded;
                        ]);
                  Obs.Trace.append ~into:obs sink
                end;
                finish ~status:Fresh ~strategy:strat_label ~moves:o.moves
                  ~time_s:o.time_s ~evaluations:o.evaluations
                  ~failures:o.failures ~recorded ~error:None o.schedule
            | Error exn ->
                (* the pair's whole optimization crashed; its partial
                   trace buffer is lost with the task *)
                degrade
                  ~failure:(Robust.Guard.rejected_of_exn exn)
                  ~evaluations:0 ~failures:0 None))
      plan
  in
  let count st = List.length (List.filter (fun e -> e.status = st) entries) in
  let fresh = count Fresh
  and skipped = count Skipped
  and degraded = count Degraded in
  (* umbrella header: one entry-point declaration per pair *)
  let header = "perfdojo.h" in
  let hbuf = Buffer.create 1024 in
  Buffer.add_string hbuf
    (Printf.sprintf
       "/* PerfDojo generated library: %d entries (%s).  Do not edit. */\n\
        #ifndef PERFDOJO_LIB_H\n\
        #define PERFDOJO_LIB_H\n\n"
       (List.length entries)
       (String.concat ", " (List.map fst targets)));
  List.iter
    (fun en ->
      Buffer.add_string hbuf
        (Printf.sprintf "/* %s (%s) on %s: %.3e s modelled, %s */\nvoid %s(void);\n"
           en.kernel en.shape en.target en.time_s (status_name en.status)
           en.c_entry))
    entries;
  Buffer.add_string hbuf "\n#endif /* PERFDOJO_LIB_H */\n";
  write_file (Filename.concat out header) (Buffer.contents hbuf);
  let lib = { out_dir = out; header; entries; fresh; skipped; degraded } in
  write_file
    (Filename.concat out "manifest.json")
    (Util.Json.to_string (manifest_json lib) ^ "\n");
  (* a final save even without deposits keeps db_file in sync with db *)
  (match (db, db_file) with
  | Some d, Some f -> Tuning.Db.save d f
  | _ -> ());
  (* the suite completed and the manifest is on disk: the ledger has
     served its purpose — truncate it so the next run starts cold *)
  (match ledger with
  | Some w ->
      Recover.Journal.reset w;
      Recover.Journal.close w
  | None -> ());
  (match metrics with
  | Some m ->
      Obs.Metrics.incr m ~by:(List.length entries) "libgen.pairs";
      Obs.Metrics.incr m ~by:fresh "libgen.fresh";
      Obs.Metrics.incr m ~by:skipped "libgen.skipped";
      Obs.Metrics.incr m ~by:degraded "libgen.degraded"
  | None -> ());
  if traced then
    Obs.Trace.emit obs "libgen.done" (fun () ->
        Obs.Trace.
          [
            int "fresh" fresh;
            int "skipped" skipped;
            int "degraded" degraded;
          ]);
  lib
