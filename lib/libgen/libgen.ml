(* Batch library generation: optimize the whole operator suite in one
   run and emit a C library.

   The driver turns a kernel selection × target list into (kernel,
   target) pairs, optimizes every pair through the existing
   search/portfolio machinery, and emits one C translation unit per
   pair, an umbrella header and a canonical-JSON manifest.

   Three properties shape the implementation:

   - incremental: a pair whose tuning-database best matches the current
     program fingerprint is reproduced by replay instead of re-searched
     (a [libgen.skip] trace event; [Skipped] in the manifest);
   - fault-tolerant: pairs run under [Parallel.Pool.map_result], so a
     crashing optimization degrades that pair to the naive schedule —
     classified through [Robust.Guard]'s failure taxonomy and flagged
     [Degraded] — instead of aborting the suite;
   - deterministic: pairs are planned and folded in a fixed order,
     per-pair traces buffer like portfolio members, and the manifest
     carries no wall-clock fields, so output is byte-identical for any
     [ctx.jobs]. *)

module P = Perfdojo

type status = Fresh | Skipped | Degraded

type entry = {
  kernel : string;
  shape : string;
  target : string;
  fingerprint : string;
  status : status;
  strategy : string;
  moves : string list;
  naive_s : float;
  time_s : float;
  evaluations : int;
  failures : int;
  recorded : bool;
  c_file : string;
  c_entry : string;
  error : string option;
}

type library = {
  out_dir : string;
  header : string;
  entries : entry list;
  fresh : int;
  skipped : int;
  degraded : int;
}

let status_name = function
  | Fresh -> "fresh"
  | Skipped -> "skipped"
  | Degraded -> "degraded"

let space_label = function
  | Search.Stochastic.Heuristic -> "heuristic"
  | Search.Stochastic.Edges -> "edges"

let strategy_label : P.strategy -> string = function
  | P.Naive -> "naive"
  | P.Greedy -> "greedy"
  | P.Heuristic -> "heuristic"
  | P.Sampling { space; _ } -> "sampling/" ^ space_label space
  | P.Annealing { space; _ } -> "annealing/" ^ space_label space
  | P.Rl_search _ -> "rl"
  | P.Portfolio _ -> "portfolio"
  | P.Exhaustive -> "exhaustive"

let default_kernels () = Kernels.table3 @ Kernels.snitch_micro

(* C identifier fragment from a kernel label or target name ("layernorm
   1" -> "layernorm_1"). *)
let sanitize s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    s

let dedupe_by key xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

let resolve_targets names =
  dedupe_by fst
    (List.map
       (fun name ->
         match Machine.Desc.resolve_target name with
         | Some pair -> pair
         | None ->
             invalid_arg
               (Printf.sprintf "unknown target %S (known: %s)" name
                  (String.concat ", "
                     (List.map fst Machine.Desc.known_targets))))
       names)

let ensure_dir dir =
  try Unix.mkdir dir 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let entry_json (e : entry) : Util.Json.t =
  let open Util.Json in
  let base =
    [
      ("kernel", Str e.kernel);
      ("target", Str e.target);
      ("shape", Str e.shape);
      ("fingerprint", Str e.fingerprint);
      ("status", Str (status_name e.status));
      ("strategy", Str e.strategy);
      ("moves", Arr (List.map (fun m -> Str m) e.moves));
      ("naive_s", Num e.naive_s);
      ("time_s", Num e.time_s);
      ("speedup", Num (if e.time_s > 0. then e.naive_s /. e.time_s else 0.));
      ("evaluations", Num (float_of_int e.evaluations));
      ("failures", Num (float_of_int e.failures));
      ("recorded", Bool e.recorded);
      ("c_file", Str e.c_file);
      ("entry", Str e.c_entry);
    ]
  in
  Obj
    (match e.error with
    | None -> base
    | Some msg -> base @ [ ("error", Str msg) ])

let manifest_json (lib : library) : Util.Json.t =
  let open Util.Json in
  let targets = dedupe_by Fun.id (List.map (fun e -> e.target) lib.entries) in
  Obj
    [
      ("schema", Num 1.);
      ("header", Str lib.header);
      ("targets", Arr (List.map (fun t -> Str t) targets));
      ("entries", Arr (List.map entry_json lib.entries));
      ("fresh", Num (float_of_int lib.fresh));
      ("skipped", Num (float_of_int lib.skipped));
      ("degraded", Num (float_of_int lib.degraded));
    ]

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

(* What the plan phase decided for a pair: reproduce a recorded
   schedule, or optimize (with a warm-start sequence when the database
   offers a matching record). *)
type plan_item =
  | Reproduce of Tuning.Record.t * Ir.Prog.t
  | Optimize of string list

let generate ?kernels ?strategy ?db ?db_file ?(force = false)
    ~(ctx : P.Ctx.t) ~targets ~out () : library =
  let kernels =
    dedupe_by
      (fun (e : Kernels.entry) -> e.label)
      (match kernels with None -> default_kernels () | Some ks -> ks)
  in
  let strategy =
    match strategy with
    | Some s -> s
    | None -> P.Annealing { budget = 300; space = Search.Stochastic.Heuristic }
  in
  let strat_label = strategy_label strategy in
  let targets = resolve_targets targets in
  ensure_dir out;
  let obs = ctx.P.Ctx.obs in
  let metrics = ctx.P.Ctx.metrics in
  let traced = Obs.Trace.enabled obs in
  let pairs =
    List.concat_map
      (fun (tname, t) ->
        List.map (fun (e : Kernels.entry) -> (tname, t, e)) kernels)
      targets
  in
  if traced then
    Obs.Trace.emit obs "libgen.start" (fun () ->
        Obs.Trace.
          [
            int "targets" (List.length targets);
            int "kernels" (List.length kernels);
            int "pairs" (List.length pairs);
            str "strategy" strat_label;
          ]);
  (* Plan phase (sequential, cheap): build each root, fingerprint it,
     and decide skip vs optimize against the database.  All database
     reads happen here, so the parallel phase touches no shared mutable
     state beyond the ctx cache (which is domain-safe). *)
  let plan =
    List.map
      (fun (tname, t, (e : Kernels.entry)) ->
        let root = e.build () in
        let keys = Tuning.Record.root_keys root in
        let fp = fst keys in
        let naive_s = Machine.time t root in
        let best =
          match db with
          | None -> None
          | Some d -> Tuning.Db.best d ~kernel:e.label ~target:tname
        in
        let item =
          match best with
          | Some r when Tuning.Record.matches_root ~keys r ->
              if force then Optimize r.moves
              else
                let sched, applied =
                  Tuning.Warmstart.replay (Machine.caps t) root r.moves
                in
                (* a record some of whose moves no longer apply is
                   stale: re-optimize, still seeded by what replays *)
                if applied = r.moves then Reproduce (r, sched)
                else Optimize r.moves
          | _ -> Optimize [] (* no record, or a different root program *)
        in
        (tname, t, e, root, fp, naive_s, item))
      pairs
  in
  (* Parallel phase: optimize the fresh pairs across ctx.jobs domains.
     Each pair runs its own sequential search (jobs = 0 inside the
     workers, like portfolio members) into a private trace buffer;
     map_result keeps one crashing pair from cancelling the suite. *)
  let fresh_tasks =
    Array.of_list
      (List.filter_map
         (fun (tname, t, e, root, _, _, item) ->
           match item with
           | Optimize warm -> Some (tname, t, e, root, warm)
           | Reproduce _ -> None)
         plan)
  in
  let task (_, t, _, root, warm) =
    let sink = if traced then Obs.Trace.make_buffer () else Obs.Trace.null in
    let pctx =
      { ctx with P.Ctx.jobs = 0; obs = sink; warm_start = warm }
    in
    let o = P.optimize_ctx ~ctx:pctx strategy t root in
    (o, sink)
  in
  let results =
    if Array.length fresh_tasks = 0 then [||]
    else
      let jobs = max 1 (min ctx.P.Ctx.jobs (Array.length fresh_tasks)) in
      Parallel.Pool.with_pool ~instrument:(metrics <> None) ~jobs
        (fun pool ->
          let r = Parallel.Pool.map_result pool task fresh_tasks in
          (match metrics with
          | Some m -> Parallel.Pool.export pool m
          | None -> ());
          r)
  in
  (* Fold phase (sequential, pair order): emit trace events and C
     sources, deposit winners into the database, checkpoint it. *)
  let deposit ~kernel ~tname ~t ~root (o : P.outcome) =
    match db with
    | None -> false
    | Some d -> (
        match
          Tuning.Warmstart.record_of ~objective:(Machine.time t)
            ~caps:(Machine.caps t) ~kernel ~target:tname ~root ~moves:o.moves
            ~evals:o.evaluations
        with
        | Error _ -> false
        | Ok r ->
            (* Only a replayable winner is worth recording: a pass
               schedule with no move trace would deposit the naive time
               and make the next run "skip" to a slower library. *)
            if r.Tuning.Record.best_time <= o.time_s *. (1. +. 1e-9) then begin
              ignore (Tuning.Db.add d r);
              (match db_file with
              | Some f -> Tuning.Db.save d f
              | None -> ());
              true
            end
            else false)
  in
  let next_fresh = ref 0 in
  let entries =
    List.map
      (fun (tname, t, (e : Kernels.entry), root, fp, naive_s, item) ->
        let base = sanitize e.label ^ "_" ^ sanitize tname in
        let c_file = base ^ ".c" in
        let c_entry = "perfdojo_" ^ base in
        let finish ~status ~strategy ~moves ~time_s ~evaluations ~failures
            ~recorded ~error sched =
          let banner =
            Printf.sprintf
              "/* %s (%s) on %s: %s\n\
              \   status %s via %s; modelled %.3e s (%.2fx over naive)\n\
              \   fingerprint %s */\n"
              e.label e.shape_desc tname e.description (status_name status)
              strategy time_s
              (if time_s > 0. then naive_s /. time_s else 0.)
              fp
          in
          write_file
            (Filename.concat out c_file)
            (banner ^ Codegen.program ~entry:c_entry sched);
          {
            kernel = e.label;
            shape = e.shape_desc;
            target = tname;
            fingerprint = fp;
            status;
            strategy;
            moves;
            naive_s;
            time_s;
            evaluations;
            failures;
            recorded;
            c_file;
            c_entry;
            error;
          }
        in
        let degrade ~failure ~evaluations ~failures sink =
          let msg = Robust.Guard.failure_message failure in
          if traced then begin
            Obs.Trace.emit obs "libgen.degraded" (fun () ->
                Obs.Trace.
                  [
                    str "kernel" e.label;
                    str "target" tname;
                    str "class" (Robust.Guard.failure_class failure);
                    str "msg" msg;
                  ]);
            match sink with
            | Some s -> Obs.Trace.append ~into:obs s
            | None -> ()
          end;
          finish ~status:Degraded ~strategy:"naive" ~moves:[]
            ~time_s:naive_s ~evaluations ~failures ~recorded:false
            ~error:(Some msg) root
        in
        match item with
        | Reproduce (r, sched) ->
            let time_s = Machine.time t sched in
            if traced then
              Obs.Trace.emit obs "libgen.skip" (fun () ->
                  Obs.Trace.
                    [
                      str "kernel" e.label;
                      str "target" tname;
                      num "time_s" time_s;
                    ]);
            finish ~status:Skipped ~strategy:"db" ~moves:r.moves ~time_s
              ~evaluations:0 ~failures:0 ~recorded:true ~error:None sched
        | Optimize _ -> (
            let i = !next_fresh in
            incr next_fresh;
            match results.(i) with
            | Ok ((o : P.outcome), _sink) when not (Float.is_finite o.time_s)
              ->
                (* the search survived but found nothing finite — the
                   same taxonomy a guarded evaluation would use *)
                degrade
                  ~failure:(Robust.Guard.Non_finite o.time_s)
                  ~evaluations:o.evaluations ~failures:o.failures None
            | Ok (o, sink) ->
                let recorded =
                  deposit ~kernel:e.label ~tname ~t ~root o
                in
                if traced then begin
                  Obs.Trace.emit obs "libgen.entry" (fun () ->
                      Obs.Trace.
                        [
                          str "kernel" e.label;
                          str "target" tname;
                          num "time_s" o.time_s;
                          int "evals" o.evaluations;
                          int "failures" o.failures;
                          bool "recorded" recorded;
                        ]);
                  Obs.Trace.append ~into:obs sink
                end;
                finish ~status:Fresh ~strategy:strat_label ~moves:o.moves
                  ~time_s:o.time_s ~evaluations:o.evaluations
                  ~failures:o.failures ~recorded ~error:None o.schedule
            | Error exn ->
                (* the pair's whole optimization crashed; its partial
                   trace buffer is lost with the task *)
                degrade
                  ~failure:(Robust.Guard.rejected_of_exn exn)
                  ~evaluations:0 ~failures:0 None))
      plan
  in
  let count st = List.length (List.filter (fun e -> e.status = st) entries) in
  let fresh = count Fresh
  and skipped = count Skipped
  and degraded = count Degraded in
  (* umbrella header: one entry-point declaration per pair *)
  let header = "perfdojo.h" in
  let hbuf = Buffer.create 1024 in
  Buffer.add_string hbuf
    (Printf.sprintf
       "/* PerfDojo generated library: %d entries (%s).  Do not edit. */\n\
        #ifndef PERFDOJO_LIB_H\n\
        #define PERFDOJO_LIB_H\n\n"
       (List.length entries)
       (String.concat ", " (List.map fst targets)));
  List.iter
    (fun en ->
      Buffer.add_string hbuf
        (Printf.sprintf "/* %s (%s) on %s: %.3e s modelled, %s */\nvoid %s(void);\n"
           en.kernel en.shape en.target en.time_s (status_name en.status)
           en.c_entry))
    entries;
  Buffer.add_string hbuf "\n#endif /* PERFDOJO_LIB_H */\n";
  write_file (Filename.concat out header) (Buffer.contents hbuf);
  let lib = { out_dir = out; header; entries; fresh; skipped; degraded } in
  write_file
    (Filename.concat out "manifest.json")
    (Util.Json.to_string (manifest_json lib) ^ "\n");
  (* a final save even without deposits keeps db_file in sync with db *)
  (match (db, db_file) with
  | Some d, Some f -> Tuning.Db.save d f
  | _ -> ());
  (match metrics with
  | Some m ->
      Obs.Metrics.incr m ~by:(List.length entries) "libgen.pairs";
      Obs.Metrics.incr m ~by:fresh "libgen.fresh";
      Obs.Metrics.incr m ~by:skipped "libgen.skipped";
      Obs.Metrics.incr m ~by:degraded "libgen.degraded"
  | None -> ());
  if traced then
    Obs.Trace.emit obs "libgen.done" (fun () ->
        Obs.Trace.
          [
            int "fresh" fresh;
            int "skipped" skipped;
            int "degraded" degraded;
          ]);
  lib
