(* Structured trace events over the canonical JSON encoding.

   An event is one JSON object per line — `{"ev":"...", ...}` — printed
   by Util.Json's canonical printer, so a trace file round-trips through
   parse∘print byte-identically (the property the @smoke lint checks).

   Sinks:
   - [null]: the disabled sink.  [emit] returns before touching its
     field thunk, and call sites are expected to guard with [enabled]
     so that not even the thunk closure is allocated — instrumentation
     must cost nothing when tracing is off.
   - [buffer]: in-memory, for tests and for per-slot collection in the
     parallel search (each worker slot gets its own buffer; the
     submitting thread folds them back with [append] in slot order, so
     the merged stream is independent of scheduling — the same
     discipline as the per-slot RNG streams).
   - [channel]: JSONL straight to an out_channel, one line per event.

   Determinism: events carry no wall-clock timestamps by default; the
   only non-deterministic field an instrumented run produces is the
   [dur_s] of span/eval events.  [strip_timing] removes exactly that,
   which is what the jobs-invariance tests compare modulo. *)

type sink =
  | Null
  | Buffer of Util.Json.t Util.Dynarray.t
  | Channel of { oc : out_channel; flush : bool }
  | Sync of Mutex.t * sink
  | Counting of int ref * sink

let null = Null
let make_buffer () = Buffer (Util.Dynarray.create ~capacity:64 Util.Json.Null)
let to_channel ?(flush = false) oc = Channel { oc; flush }

(* A pass-through wrapper that counts every event pushed into [sink]
   (including those folded in via [append]).  Checkpoints record the
   count so a resumed run knows exactly where the crashed run's trace
   splices: killed[0..n) ++ resumed == uninterrupted. *)
let counting sink =
  let n = ref 0 in
  (Counting (n, sink), fun () -> !n)

(* A synchronized sink serializes whole events under a mutex — the
   buffer Dynarray and channel writes are not atomic on their own, so
   any sink shared by concurrently-running writers (the serve daemon's
   connection threads and dispatcher workers) must be wrapped.  The
   single-writer paths (search, portfolio, libgen) fold per-slot
   buffers instead and stay lock-free. *)
let synchronized = function
  | Null -> Null (* disabled stays free *)
  | Sync _ as s -> s
  | s -> Sync (Mutex.create (), s)

let rec enabled = function
  | Null -> false
  | Buffer _ | Channel _ -> true
  | Sync (_, inner) | Counting (_, inner) -> enabled inner

let rec push sink (event : Util.Json.t) =
  match sink with
  | Null -> ()
  | Buffer buf -> Util.Dynarray.push buf event
  | Channel { oc; flush } ->
      output_string oc (Util.Json.to_string event);
      output_char oc '\n';
      if flush then Stdlib.flush oc
  | Sync (m, inner) ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () ->
          push inner event)
  | Counting (n, inner) ->
      incr n;
      push inner event

let emit sink name fields =
  if enabled sink then
    push sink (Util.Json.Obj (("ev", Util.Json.Str name) :: fields ()))

let rec events = function
  | Buffer buf -> Util.Dynarray.to_array buf |> Array.to_list
  | Sync (_, inner) | Counting (_, inner) -> events inner
  | Null | Channel _ -> []

let rec append ~into src =
  match src with
  | Buffer buf ->
      for i = 0 to Util.Dynarray.length buf - 1 do
        push into (Util.Dynarray.get buf i)
      done
  | Null -> ()
  | Sync (_, inner) | Counting (_, inner) -> append ~into inner
  | Channel _ -> invalid_arg "Trace.append: source must be a buffer sink"

let timing_field = function "dur_s" | "t_s" -> true | _ -> false

let strip_timing (event : Util.Json.t) : Util.Json.t =
  match event with
  | Util.Json.Obj members ->
      Util.Json.Obj (List.filter (fun (k, _) -> not (timing_field k)) members)
  | v -> v

(* Shorthand field constructors — keep call sites one line. *)
let str k v = (k, Util.Json.Str v)
let num k v = (k, Util.Json.Num v)
let int k v = (k, Util.Json.Num (float_of_int v))
let bool k v = (k, Util.Json.Bool v)
