(** Metrics registry: named counters, gauges and histograms.

    One registry accompanies one optimize run and is written to by every
    layer — the search loop, the memoization cache, the worker pool.
    All operations are mutex-guarded, so a registry may be shared across
    worker domains; each operation is a hashtable probe plus a scalar
    write, negligible against objective evaluation.

    Histograms keep raw samples and report exact interpolated quantiles
    ({!Util.Stats.quantile}) in their {!summary}. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at first use). *)

val set : t -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : t -> string -> float -> unit
(** Record one histogram sample. *)

val counter : t -> string -> int
(** Current counter value; [0] if never incremented. *)

val gauge : t -> string -> float option

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram : t -> string -> summary option

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
}

val snapshot : t -> snapshot
(** A consistent copy of everything, each section sorted by name. *)

val pp_summary : Format.formatter -> t -> unit
(** The end-of-run report behind the CLI's [--stats]: one aligned table
    per section (counters, gauges, histogram quantiles). *)
