(* Wall-clock spans.

   [now] is Unix.gettimeofday: the best clock available without C stubs
   or external packages.  It is not strictly monotonic under NTP steps;
   durations are clamped at zero so a step never produces a negative
   span.  Spans report into both sides of the observability layer: the
   trace (a {"ev":"span"} event whose [dur_s] is the only
   non-deterministic field) and the metrics registry (histogram
   "span.<name>", so --stats can show per-phase time with quantiles
   across repeated phases). *)

let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let v = f () in
  (v, Float.max 0.0 (now () -. t0))

let record ?(metrics : Metrics.t option) ?(trace = Trace.null) name dur_s =
  (match metrics with
  | Some m -> Metrics.observe m ("span." ^ name) dur_s
  | None -> ());
  if Trace.enabled trace then
    Trace.emit trace "span" (fun () ->
        [ Trace.str "name" name; Trace.num "dur_s" dur_s ])

let run ?metrics ?trace name f =
  let t0 = now () in
  let finally () = record ?metrics ?trace name (Float.max 0.0 (now () -. t0)) in
  Fun.protect ~finally f
