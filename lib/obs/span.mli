(** Wall-clock spans feeding both the trace and the metrics registry.

    A span around phase [name] produces a [{"ev":"span","name":name,
    "dur_s":...}] trace event and a sample in the ["span.<name>"]
    metrics histogram — so [--stats] reports per-phase times and the
    trace shows where a run's wall-clock went. *)

val now : unit -> float
(** Seconds; [Unix.gettimeofday].  Durations derived from it are
    clamped at zero. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), duration_in_seconds)]. *)

val record : ?metrics:Metrics.t -> ?trace:Trace.sink -> string -> float -> unit
(** Report an already-measured duration as span [name]. *)

val run : ?metrics:Metrics.t -> ?trace:Trace.sink -> string -> (unit -> 'a) -> 'a
(** [run name f] runs [f] inside a span; the span is recorded even when
    [f] raises. *)
