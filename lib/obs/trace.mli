(** Structured trace events: one canonical JSON object per line
    ([{"ev":...}]), emitted into a sink.

    The disabled sink ({!null}) makes instrumentation free: [emit]
    returns before evaluating its field thunk, and call sites guard with
    {!enabled} so the thunk closure itself is never allocated.  Traced
    runs stay deterministic — events carry no wall-clock timestamps;
    only span/eval durations ([dur_s]) vary between runs, and
    {!strip_timing} removes exactly those for invariance comparisons. *)

type sink

val null : sink
(** The disabled sink; {!emit} on it does nothing. *)

val make_buffer : unit -> sink
(** In-memory sink; read back with {!events}.  Used per worker slot in
    the parallel search and folded back with {!append} in slot order. *)

val to_channel : ?flush:bool -> out_channel -> sink
(** JSONL straight to a channel, one event per line.  The caller owns
    the channel (open/close).  [~flush:true] flushes after every event
    so the trace survives an abrupt [kill -9] — the crash-injection
    harness compares such traces across a kill/resume splice. *)

val counting : sink -> sink * (unit -> int)
(** [counting s] is a pass-through wrapper over [s] plus a closure
    returning how many events have been pushed through it (including
    events folded in via {!append}).  Checkpoints record the count so a
    resumed run knows where the crashed run's trace splices. *)

val synchronized : sink -> sink
(** A sink that serializes whole events under a mutex, for sinks shared
    by concurrently-running writers (e.g. the serve daemon's connection
    threads emitting into one channel).  {!null} stays {!null} (a
    disabled sink needs no lock), and wrapping is idempotent.  {!events}
    and {!append} see through to the underlying sink. *)

val enabled : sink -> bool
(** [false] only for {!null}.  Guard instrumentation sites with this so
    a disabled run allocates nothing. *)

val emit : sink -> string -> (unit -> (string * Util.Json.t) list) -> unit
(** [emit sink ev fields] appends [{"ev":ev, ...fields ()}].  The thunk
    is not evaluated when the sink is {!null}. *)

val events : sink -> Util.Json.t list
(** Events of a buffer sink in emission order; [[]] otherwise. *)

val append : into:sink -> sink -> unit
(** Fold a buffer sink's events into another sink, preserving order.
    Raises [Invalid_argument] if the source is a channel sink. *)

val strip_timing : Util.Json.t -> Util.Json.t
(** Drop the wall-clock fields ([dur_s], [t_s]) from an event — the
    jobs-invariance tests compare traces modulo exactly these. *)

(** {1 Field shorthands} *)

val str : string -> string -> string * Util.Json.t
val num : string -> float -> string * Util.Json.t
val int : string -> int -> string * Util.Json.t
val bool : string -> bool -> string * Util.Json.t
