(* Metrics registry: counters, gauges and histograms behind one mutex.

   A registry is shared by every layer of one optimize run — the search
   loop, the memoization cache, the worker pool — and some of those run
   on worker domains, so every operation takes the registry lock.  The
   operations are a hashtable probe plus an int/float write; the lock is
   uncontended in practice (workers report in bulk via [export]-style
   calls on the submitting thread), so the cost is nanoseconds against
   objective evaluations that cost micro- to milliseconds.

   Histograms store raw samples (Util.Dynarray, amortized O(1) push) so
   the summary can report exact interpolated quantiles via Util.Stats —
   search budgets are a few thousand samples, far below the point where
   sketches would be warranted. *)

type histogram = { samples : float Util.Dynarray.t }

type t = {
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    lock = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let locked m f =
  Mutex.lock m.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.lock) f

let incr m ?(by = 1) name =
  locked m (fun () ->
      match Hashtbl.find_opt m.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace m.counters name (ref by))

let set m name v =
  locked m (fun () ->
      match Hashtbl.find_opt m.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace m.gauges name (ref v))

let observe m name v =
  locked m (fun () ->
      match Hashtbl.find_opt m.histograms name with
      | Some h -> Util.Dynarray.push h.samples v
      | None ->
          let h = { samples = Util.Dynarray.create ~capacity:64 0.0 } in
          Util.Dynarray.push h.samples v;
          Hashtbl.replace m.histograms name h)

let counter m name =
  locked m (fun () ->
      match Hashtbl.find_opt m.counters name with Some r -> !r | None -> 0)

let gauge m name =
  locked m (fun () -> Option.map ( ! ) (Hashtbl.find_opt m.gauges name))

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize (samples : float array) : summary =
  {
    count = Array.length samples;
    sum = Array.fold_left ( +. ) 0.0 samples;
    min = Util.Stats.min_arr samples;
    max = Util.Stats.max_arr samples;
    mean = Util.Stats.mean samples;
    p50 = Util.Stats.quantile 0.5 samples;
    p90 = Util.Stats.quantile 0.9 samples;
    p99 = Util.Stats.quantile 0.99 samples;
  }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
}

let sorted_bindings tbl read =
  Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot m : snapshot =
  locked m (fun () ->
      {
        counters = sorted_bindings m.counters ( ! );
        gauges = sorted_bindings m.gauges ( ! );
        histograms =
          sorted_bindings m.histograms (fun h ->
              summarize (Util.Dynarray.to_array h.samples));
      })

let histogram m name =
  List.assoc_opt name (snapshot m).histograms

(* One aligned table, sections in counter/gauge/histogram order — the
   `--stats` end-of-run report. *)
let pp_summary ppf m =
  let s = snapshot m in
  let section title = Format.fprintf ppf "%s:@\n" title in
  if s.counters <> [] then begin
    section "counters";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-36s %12d@\n" k v)
      s.counters
  end;
  if s.gauges <> [] then begin
    section "gauges";
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %-36s %12.6g@\n" k v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    section "histograms (seconds unless noted)";
    Format.fprintf ppf "  %-36s %8s %12s %12s %12s %12s@\n" "" "count"
      "mean" "p50" "p90" "max";
    List.iter
      (fun (k, h) ->
        Format.fprintf ppf "  %-36s %8d %12.4g %12.4g %12.4g %12.4g@\n" k
          h.count h.mean h.p50 h.p90 h.max)
      s.histograms
  end
