(* Online linear ranker with pairwise hinge loss.

   w · f(better) should exceed w · f(worse) by at least [margin]; when
   it doesn't, w moves along f(better) - f(worse) by [lr].  That is the
   whole model — no external deps, O(dim) per update, and deterministic,
   which the jobs-invariance guarantee of the filtered search engine
   depends on. *)

type config = { lr : float; margin : float; history : int }

let default_config = { lr = 0.05; margin = 0.01; history = 32 }

type sample = { g : string; f : float array; time : float }

type t = {
  cfg : config;
  w : float array;
  mutable n_updates : int;
  (* ring buffer of recent measurements for online pairing *)
  recent : sample option array;
  mutable pushed : int;
  lock : Mutex.t;
}

let schema_version = 1

let create ?(cfg = default_config) () =
  {
    cfg;
    w = Array.make Features.dim 0.0;
    n_updates = 0;
    recent = Array.make (max 1 cfg.history) None;
    pushed = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let config t = t.cfg
let updates t = locked t (fun () -> t.n_updates)

let dot w f =
  let n = min (Array.length w) (Array.length f) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (w.(i) *. f.(i))
  done;
  !acc

let score t f = locked t (fun () -> dot t.w f)
let score_prog t prog = score t (Features.extract prog)

(* Callers hold the lock. *)
let train_pair_unlocked t ~better ~worse =
  if dot t.w better -. dot t.w worse < t.cfg.margin then begin
    let n = min (Array.length better) (Array.length worse) in
    for i = 0 to min (Array.length t.w) n - 1 do
      t.w.(i) <- t.w.(i) +. (t.cfg.lr *. (better.(i) -. worse.(i)))
    done;
    t.n_updates <- t.n_updates + 1
  end

let train_pair t ~better ~worse =
  locked t (fun () -> train_pair_unlocked t ~better ~worse)

let observe t ~group ~features time =
  if Float.is_finite time && time > 0. then
    locked t (fun () ->
        (* pair the new measurement against every ring entry of the
           same group: times are only comparable within a group *)
        Array.iter
          (fun entry ->
            match entry with
            | Some s when s.g = group && s.time <> time ->
                if time < s.time then
                  train_pair_unlocked t ~better:features ~worse:s.f
                else train_pair_unlocked t ~better:s.f ~worse:features
            | _ -> ())
          t.recent;
        t.recent.(t.pushed mod Array.length t.recent) <-
          Some { g = group; f = features; time };
        t.pushed <- t.pushed + 1)

let observe_prog t ~group prog time =
  observe t ~group ~features:(Features.extract prog) time

let prerank ?(filter_ratio = 1.0) ~group t : Search.Stochastic.prerank =
  {
    Search.Stochastic.score = (fun p -> score t (Features.extract p));
    observe =
      (fun p time -> observe t ~group ~features:(Features.extract p) time);
    filter_ratio;
  }

(* ------------------------------------------------------------------ *)
(* Offline training from tuning-database records                       *)
(* ------------------------------------------------------------------ *)

type offline_stats = { records : int; used : int; groups : int; pairs : int }

let train_offline t ~root_of (records : Tuning.Record.t list) : offline_stats
    =
  (* replay each record into a (features, time) point, grouped by
     (kernel, target); keys are processed sorted and points in record
     order, so training is a pure function of the record list *)
  let tbl : (string, (float array * float) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let keys = ref [] in
  let used = ref 0 in
  List.iter
    (fun (r : Tuning.Record.t) ->
      match root_of ~kernel:r.kernel ~target:r.target with
      | None -> ()
      | Some (root, caps) ->
          if
            Tuning.Record.matches_root
              ~keys:(Tuning.Record.root_keys root)
              r
            && Float.is_finite r.best_time
            && r.best_time > 0.
          then begin
            let prog, _ =
              Search.Stochastic.replay_skipping caps root r.moves
            in
            incr used;
            let key = r.kernel ^ "|" ^ r.target in
            let prev =
              match Hashtbl.find_opt tbl key with
              | Some l -> l
              | None ->
                  keys := key :: !keys;
                  []
            in
            Hashtbl.replace tbl key
              ((Features.extract prog, r.best_time) :: prev)
          end)
    records;
  let pairs = ref 0 in
  let groups = ref 0 in
  locked t (fun () ->
      List.iter
        (fun key ->
          let points = List.rev (Hashtbl.find tbl key) in
          if List.length points > 1 then incr groups;
          List.iteri
            (fun i (fi, ti) ->
              List.iteri
                (fun j (fj, tj) ->
                  if j > i && ti <> tj then begin
                    incr pairs;
                    if ti < tj then
                      train_pair_unlocked t ~better:fi ~worse:fj
                    else train_pair_unlocked t ~better:fj ~worse:fi
                  end)
                points)
            points)
        (List.sort compare !keys));
  { records = List.length records; used = !used; groups = !groups;
    pairs = !pairs }

(* ------------------------------------------------------------------ *)
(* Canonical-JSON serialization                                        *)
(* ------------------------------------------------------------------ *)

let to_json_unlocked t : Util.Json.t =
  Util.Json.Obj
    [
      ("schema", Util.Json.Num (float_of_int schema_version));
      ("dim", Util.Json.Num (float_of_int (Array.length t.w)));
      ("lr", Util.Json.Num t.cfg.lr);
      ("margin", Util.Json.Num t.cfg.margin);
      ("history", Util.Json.Num (float_of_int t.cfg.history));
      ("updates", Util.Json.Num (float_of_int t.n_updates));
      ( "w",
        Util.Json.Arr
          (Array.to_list (Array.map (fun x -> Util.Json.Num x) t.w)) );
    ]

let to_json t : Util.Json.t = locked t (fun () -> to_json_unlocked t)

let of_json (j : Util.Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Util.Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "surrogate model: bad %S field" name)
  in
  let* schema = field "schema" Util.Json.to_int in
  if schema <> schema_version then
    Error (Printf.sprintf "surrogate model: unknown schema %d" schema)
  else
    let* d = field "dim" Util.Json.to_int in
    if d <> Features.dim then
      Error
        (Printf.sprintf
           "surrogate model: dimension %d does not match this build's \
            feature layout (%d)"
           d Features.dim)
    else
      let* lr = field "lr" Util.Json.to_float in
      let* margin = field "margin" Util.Json.to_float in
      let* history = field "history" Util.Json.to_int in
      let* n_updates = field "updates" Util.Json.to_int in
      let* w_list = field "w" Util.Json.to_list in
      let* w =
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest -> (
              match Util.Json.to_float x with
              | Some f -> conv (f :: acc) rest
              | None -> Error "surrogate model: non-numeric weight")
        in
        conv [] w_list
      in
      if List.length w <> d then
        Error "surrogate model: weight count does not match dim"
      else begin
        let t = create ~cfg:{ lr; margin; history } () in
        List.iteri (fun i x -> t.w.(i) <- x) w;
        t.n_updates <- n_updates;
        Ok t
      end

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Util.Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let load path : (t, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let text = String.trim text in
      Result.bind (Util.Json.of_string text) of_json

(* ------------------------------------------------------------------ *)
(* Checkpoint snapshot / in-place restore                              *)
(* ------------------------------------------------------------------ *)

(* Unlike [to_json]/[of_json] (the stable on-disk model format), the
   checkpoint snapshot also carries the online pairing ring: a resumed
   search must pair future observations against exactly the same recent
   measurements the uninterrupted run would have, or its weights — and
   hence its filtering decisions — drift after the splice point. *)

let snapshot t : Util.Json.t =
  locked t (fun () ->
      let sample_json = function
        | None -> Util.Json.Null
        | Some s ->
            Util.Json.Obj
              [
                ("g", Util.Json.Str s.g);
                ( "f",
                  Util.Json.Arr
                    (Array.to_list
                       (Array.map (fun x -> Util.Json.Num x) s.f)) );
                ("time", Util.Json.Num s.time);
              ]
      in
      Util.Json.Obj
        [
          ("model", to_json_unlocked t);
          ("pushed", Util.Json.Num (float_of_int t.pushed));
          ( "recent",
            Util.Json.Arr (Array.to_list (Array.map sample_json t.recent)) );
        ])

let restore t (j : Util.Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Util.Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "surrogate snapshot: bad %S field" name)
  in
  let* model_json =
    match Util.Json.member "model" j with
    | Some m -> Ok m
    | None -> Error "surrogate snapshot: missing \"model\""
  in
  let* m = of_json model_json in
  let* pushed = field "pushed" Util.Json.to_int in
  let* recent = field "recent" Util.Json.to_list in
  let sample_of = function
    | Util.Json.Null -> Ok None
    | Util.Json.Obj _ as s -> (
        let mem name conv = Option.bind (Util.Json.member name s) conv in
        match
          ( mem "g" Util.Json.to_str,
            mem "f" Util.Json.to_list,
            mem "time" Util.Json.to_float )
        with
        | Some g, Some f_list, Some time -> (
            let rec conv acc = function
              | [] -> Some (List.rev acc)
              | Util.Json.Num x :: rest -> conv (x :: acc) rest
              | _ -> None
            in
            match conv [] f_list with
            | Some fs ->
                Ok (Some { g; f = Array.of_list fs; time })
            | None -> Error "surrogate snapshot: non-numeric feature")
        | _ -> Error "surrogate snapshot: malformed ring sample")
    | _ -> Error "surrogate snapshot: malformed ring entry"
  in
  let* samples =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* s = sample_of e in
        Ok (s :: acc))
      (Ok []) recent
  in
  let samples = Array.of_list (List.rev samples) in
  locked t (fun () ->
      if Array.length m.w <> Array.length t.w then
        Error "surrogate snapshot: weight dimension mismatch"
      else if Array.length samples <> Array.length t.recent then
        Error "surrogate snapshot: ring size mismatch"
      else begin
        Array.blit m.w 0 t.w 0 (Array.length t.w);
        t.n_updates <- m.n_updates;
        Array.blit samples 0 t.recent 0 (Array.length samples);
        t.pushed <- pushed;
        Ok ()
      end)
