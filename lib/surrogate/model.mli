(** The learned surrogate cost model: an online linear ranker trained
    with a pairwise hinge loss over {!Features} vectors — the
    AutoTVM-style statistical model that pre-ranks candidate batches so
    only the most promising fraction ever pays for a simulator
    evaluation (ROADMAP item 1, {e Learning to Optimize Tensor
    Programs}).

    Ranking, not regression: absolute runtimes vary by orders of
    magnitude across kernels and targets, but search only needs the
    {e order} of candidates within one (kernel, target, root) group.
    Every training pair therefore comes from measurements sharing a
    [group] tag, and the model learns [score better > score worse +
    margin].

    Thread-safe: all operations take an internal lock, so one model can
    be shared across the serve daemon's worker threads.  Deterministic:
    identical observation sequences produce identical weights, which is
    what keeps surrogate-filtered search jobs-invariant (scoring and
    training happen only on the search's submitting thread, in slot
    order). *)

type config = {
  lr : float;  (** hinge update step size *)
  margin : float;  (** required score separation of a (better, worse) pair *)
  history : int;  (** ring size of recent measurements paired online *)
}

val default_config : config

type t

val create : ?cfg:config -> unit -> t
(** A fresh zero-weight model ([score] is constant until trained, so an
    untrained model filters arbitrarily — but deterministically, by slot
    order). *)

val config : t -> config
val updates : t -> int
(** Hinge updates applied so far (pairs already ranked correctly with
    margin don't update). *)

val score : t -> float array -> float
(** Linear score of a feature vector; higher = predicted faster. *)

val score_prog : t -> Ir.Prog.t -> float

val train_pair : t -> better:float array -> worse:float array -> unit
(** One hinge step on an ordered pair ([better] measured strictly
    faster). *)

val observe : t -> group:string -> features:float array -> float -> unit
(** Record one real measurement and train online: the observation is
    paired against the recent measurements sharing its [group] tag (ring
    of [cfg.history]).  Non-finite or non-positive times are ignored. *)

val observe_prog : t -> group:string -> Ir.Prog.t -> float -> unit

val prerank :
  ?filter_ratio:float -> group:string -> t -> Search.Stochastic.prerank
(** The bridge into the search layer: a {!Search.Stochastic.prerank}
    whose [score] extracts features and ranks with this model and whose
    [observe] trains it online under [group].  [filter_ratio] defaults
    to [1.0] (keep everything — training only). *)

(** {1 Offline training} *)

type offline_stats = {
  records : int;  (** records offered *)
  used : int;  (** records with a resolvable root and finite time *)
  groups : int;  (** distinct (kernel, target) groups among them *)
  pairs : int;  (** ordered training pairs fed to the ranker *)
}

val train_offline :
  t ->
  root_of:
    (kernel:string ->
    target:string ->
    (Ir.Prog.t * Transform.Xforms.caps) option) ->
  Tuning.Record.t list ->
  offline_stats
(** Train from tuning-database records ([perfdojo model train --db]):
    each record's move sequence is replayed from its root (resolved by
    [root_of]; records whose fingerprint doesn't match the resolved root
    are skipped) and every ordered pair of distinct-time schedules
    within one (kernel, target) group becomes a hinge pair.  Iteration
    order is deterministic, so the trained model is a pure function of
    the record list. *)

(** {1 Serialization}

    Canonical JSON ({!Util.Json}): [to_json] → print → parse →
    [to_json] → print is byte-identical, so saved models round-trip
    byte-stably.  The online-pairing ring is transient state and is not
    serialized. *)

val to_json : t -> Util.Json.t
val of_json : Util.Json.t -> (t, string) result
(** Rejects unknown schema versions and dimension mismatches (a model
    saved under a different feature layout must fail loudly). *)

val save : t -> string -> unit
(** One canonical JSON line, crash-safe (tmp + rename). *)

val load : string -> (t, string) result

(** {1 Checkpoint snapshot}

    Unlike the save format, a snapshot additionally carries the
    online-pairing ring, so a search resumed from a crash-safe
    checkpoint trains on exactly the pairs the uninterrupted run would
    have seen — the kill-invariance requirement of the surrogate-
    filtered engines. *)

val snapshot : t -> Util.Json.t

val restore : t -> Util.Json.t -> (unit, string) result
(** In-place restore of weights, update count and pairing ring; fails
    on dimension or ring-size mismatch (and on anything [of_json] would
    reject). *)
