(** The surrogate's feature map: the hashed-n-gram IR embedding
    {!Rl.Embed.embed} concatenated with hand-rolled schedule counters
    (annotation-weighted loop sizes, nesting depth, per-location buffer
    footprints, fused-op and statement counts from {!Machine.Costs}).

    Purely syntactic and deterministic: equal programs map to equal
    vectors, and extraction costs microseconds — the whole point is that
    scoring a candidate is orders of magnitude cheaper than simulating
    it. *)

val extra_dims : int
(** Number of schedule-counter dimensions appended to the embedding. *)

val dim : int
(** Total feature dimension: [Rl.Embed.dim + extra_dims]. *)

val extract : Ir.Prog.t -> float array
(** The feature vector of a program; every component lies in [[-1, 1]]
    (the embedding block is L2-normalized, the counters are
    squashed). *)

val to_json : float array -> Util.Json.t
(** The vector as a canonical JSON array (for [db export --features]). *)
