(* Feature extraction for the surrogate ranker.

   The embedding block reuses Rl.Embed verbatim (48 hashed character
   3-gram buckets + 16 structural slots, already normalized/squashed);
   the appended block counts the schedule properties the cost models
   actually price — how much iteration mass sits under each hardware
   annotation, how deep the nest is, how many bytes each memory level
   holds after reuse collapsing — so a linear ranker can separate
   schedules whose printed text hashes similarly. *)

let extra_dims = 16
let dim = Rl.Embed.dim + extra_dims
let squash x = x /. (1.0 +. x)

(* Counters span many orders of magnitude (footprints in bytes, op
   counts); squash the log so the ranker sees a bounded, monotone
   encoding. *)
let log_squash x = squash (Float.log1p (Float.max 0. x))

let extract (prog : Ir.Prog.t) : float array =
  let v = Array.make dim 0.0 in
  Array.blit (Rl.Embed.embed prog) 0 v 0 Rl.Embed.dim;
  let o = Rl.Embed.dim in
  let stmts = ref 0 and rmw = ref 0 and guarded = ref 0 in
  let unroll_sz = ref 0 and vec_sz = ref 0 and par_sz = ref 0 in
  let max_sz = ref 0 and total_sz = ref 0 and scopes = ref 0 in
  let depth = ref 0 in
  Ir.Prog.iter_nodes
    (fun p node ->
      match node with
      | Ir.Types.Scope sc ->
          incr scopes;
          depth := max !depth (List.length p + 1);
          max_sz := max !max_sz sc.size;
          total_sz := !total_sz + sc.size;
          (match sc.guard with Some _ -> incr guarded | None -> ());
          (match sc.annot with
          | Ir.Types.Unroll -> unroll_sz := !unroll_sz + sc.size
          | Ir.Types.Vec -> vec_sz := !vec_sz + sc.size
          | Ir.Types.Par -> par_sz := !par_sz + sc.size
          | _ -> ())
      | Ir.Types.Stmt s ->
          incr stmts;
          if Machine.Costs.is_rmw s then incr rmw)
    prog;
  (* per-location byte footprints, reuse-collapsed like storage is *)
  let foot = [| 0.; 0.; 0.; 0. |] in
  List.iter
    (fun (b : Ir.Types.buffer) ->
      let elems =
        List.fold_left2
          (fun acc extent reuse -> acc * if reuse then 1 else extent)
          1 b.shape b.reuse
      in
      let bytes = float_of_int (elems * Ir.Types.dtype_bytes b.dtype) in
      let slot =
        match b.loc with
        | Ir.Types.Heap -> 0
        | Ir.Types.Stack -> 1
        | Ir.Types.Shared -> 2
        | Ir.Types.Register -> 3
      in
      foot.(slot) <- foot.(slot) +. bytes)
    prog.Ir.Types.buffers;
  let fi = float_of_int in
  v.(o) <- log_squash (Machine.Costs.total_fused_ops prog);
  v.(o + 1) <- log_squash (fi !unroll_sz);
  v.(o + 2) <- log_squash (fi !vec_sz);
  v.(o + 3) <- log_squash (fi !par_sz);
  v.(o + 4) <- log_squash (fi !max_sz);
  v.(o + 5) <- log_squash (fi !total_sz);
  v.(o + 6) <- squash (fi !depth);
  v.(o + 7) <- squash (fi !scopes);
  v.(o + 8) <- log_squash foot.(0);
  v.(o + 9) <- log_squash foot.(1);
  v.(o + 10) <- log_squash foot.(2);
  v.(o + 11) <- log_squash foot.(3);
  v.(o + 12) <- squash (fi !stmts);
  v.(o + 13) <- squash (fi !rmw);
  v.(o + 14) <- squash (fi !guarded);
  v.(o + 15) <-
    (if !scopes > 0 then log_squash (fi !total_sz /. fi !scopes) else 0.);
  v

let to_json (v : float array) : Util.Json.t =
  Util.Json.Arr (Array.to_list (Array.map (fun x -> Util.Json.Num x) v))
