(* PerfLLM: the RL-driven optimization loop (§3, Figure 1a).

   The environment is the PerfDojo game: states are programs, actions are
   the applicable semantics-preserving transformations (plus stop), the
   reward after every move is r = c / T(k_t) where T is the runtime of
   the transformed kernel under the target's performance model.  Per-move
   rewards avoid the sparse-reward problem; the c / T form avoids the
   cyclic degrade-and-recover exploit of relative-speedup rewards
   (§3.1). *)

open Transform

(* Reward shape.  The paper defines r = c / T(k_t); with 8-hour training
   budgets the Q network has time to fit the resulting wide dynamic range
   (speedups beyond 100x on GPU).  At the scaled-down budgets of this
   reproduction we default to the log-compressed variant
   r = log(c / T(k_t)), which preserves the argmax structure of the
   max-Bellman objective while keeping targets O(1); the exact paper
   shape remains available (and is compared in the rl-ablation bench). *)
type reward_shape = Inverse_runtime | Log_speedup

type config = {
  episodes : int;
  max_steps : int; (* horizon per episode *)
  action_cap : int; (* candidate actions presented per step *)
  reward_c : float option; (* None: calibrated to the naive runtime *)
  reward_shape : reward_shape;
  train_per_step : int;
  dqn : Dqn.config;
}

let default_config =
  {
    episodes = 40;
    max_steps = 24;
    action_cap = 48;
    reward_c = None;
    reward_shape = Log_speedup;
    train_per_step = 2;
    dqn = Dqn.default_config;
  }

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
  episode_best : float array; (* best runtime found up to each episode *)
  evaluations : int;
}

(* Candidate actions at a state: a capped subset of the applicable
   instances plus the stop action.  Each candidate carries the program it
   leads to and its action-pair embedding. *)
type candidate = {
  inst : Xforms.instance option; (* None = stop *)
  next_prog : Ir.Prog.t;
  pair : float array;
}

(* The full applicable set can number in the hundreds (§2.2); embedding
   every candidate at every step is the expensive part of the loop, so we
   present at most [cap] of them.  Annotation-style moves (hardware
   mappings, storage changes) are few but decisive, so they are always
   presented; the plentiful structural moves (tilings, fusions, ...) fill
   the remaining slots by uniform sampling. *)
let always_presented = function
  | "gpu_map" | "vectorize" | "parallelize" | "enable_ssr" | "enable_frep"
  | "reuse_dims" | "split_reduction" ->
      true
  | _ -> false

let candidates_of rng caps (cap : int) (prog : Ir.Prog.t)
    (state_emb : float array) : candidate array =
  let insts = Xforms.all caps prog in
  let keyed, rest =
    List.partition (fun (i : Xforms.instance) -> always_presented i.xname)
      insts
  in
  let keyed = Array.of_list keyed and rest = Array.of_list rest in
  let keyed =
    if Array.length keyed > cap then begin
      Util.Rng.shuffle_in_place rng keyed;
      Array.sub keyed 0 cap
    end
    else keyed
  in
  let room = max 0 (cap - Array.length keyed) in
  let rest =
    if Array.length rest > room then begin
      Util.Rng.shuffle_in_place rng rest;
      Array.sub rest 0 room
    end
    else rest
  in
  let chosen = Array.append keyed rest in
  let moves =
    Array.map
      (fun (inst : Xforms.instance) ->
        let next_prog = inst.apply prog in
        {
          inst = Some inst;
          next_prog;
          pair = Embed.action_pair state_emb (Embed.embed next_prog);
        })
      chosen
  in
  Array.append moves
    [| { inst = None; next_prog = prog;
         pair = Embed.action_pair state_emb state_emb } |]

let optimize ?(cfg = default_config) ?(init = []) ~seed caps
    (runtime : Ir.Prog.t -> float) (root : Ir.Prog.t) : result * Dqn.t =
  let agent = Dqn.create ~cfg:cfg.dqn seed in
  let env_rng = Util.Rng.create (seed + 7919) in
  let evaluations = ref 0 in
  let time p =
    incr evaluations;
    runtime p
  in
  let root_time = time root in
  let c = match cfg.reward_c with Some c -> c | None -> root_time in
  let best = ref root and best_time = ref root_time and best_moves = ref [] in
  (* Warm-start: a recorded sequence (from the tuning database) seeds
     the best-so-far, so episodes explore on top of a known-good
     schedule instead of having to rediscover it. *)
  if init <> [] then begin
    let warm, applied = Search.Stochastic.replay_skipping caps root init in
    let warm_time = time warm in
    if warm_time < !best_time then begin
      best := warm;
      best_time := warm_time;
      best_moves := applied
    end
  end;
  let episode_best = Array.make cfg.episodes root_time in
  for ep = 0 to cfg.episodes - 1 do
    let cur = ref root in
    let cur_emb = ref (Embed.embed root) in
    let moves = ref [] in
    let continue = ref true in
    let step = ref 0 in
    while !continue && !step < cfg.max_steps do
      incr step;
      let cands = candidates_of env_rng caps cfg.action_cap !cur !cur_emb in
      let choice = Dqn.select agent (Array.map (fun c -> c.pair) cands) in
      let chosen = cands.(choice) in
      let terminal = chosen.inst = None || !step >= cfg.max_steps in
      let t_next = time chosen.next_prog in
      let ratio = c /. Float.max t_next 1e-12 in
      let reward =
        match cfg.reward_shape with
        | Inverse_runtime -> ratio
        | Log_speedup -> log (Float.max ratio 1e-9)
      in
      (match chosen.inst with
      | Some inst ->
          moves := Xforms.describe inst :: !moves;
          if t_next < !best_time then begin
            best_time := t_next;
            best := chosen.next_prog;
            best_moves := List.rev !moves
          end
      | None -> continue := false);
      let next_emb = Embed.embed chosen.next_prog in
      let next_actions =
        if terminal then [||]
        else
          Array.map
            (fun c -> c.pair)
            (candidates_of env_rng caps cfg.action_cap chosen.next_prog
               next_emb)
      in
      Dqn.remember agent
        {
          action = chosen.pair;
          reward;
          next_state = next_emb;
          next_actions;
          terminal;
        };
      for _ = 1 to cfg.train_per_step do
        ignore (Dqn.train_step agent)
      done;
      cur := chosen.next_prog;
      cur_emb := next_emb
    done;
    episode_best.(ep) <- !best_time
  done;
  ( {
      best = !best;
      best_time = !best_time;
      best_moves = !best_moves;
      episode_best;
      evaluations = !evaluations;
    },
    agent )
