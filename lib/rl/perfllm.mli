(** PerfLLM: the RL-driven optimization loop (§3, Figure 1a).

    The environment is the PerfDojo game: states are programs, actions
    are the applicable semantics-preserving transformations plus stop,
    rewards follow every move (avoiding sparse-reward problems, §3.1). *)

(** Reward shape.  The paper uses [r = c / T(k_t)].  At scaled-down
    training budgets the default is the log-compressed variant
    [r = log (c / T)], which keeps Q targets O(1); the paper's exact
    shape remains available and is compared in the rl-ablation bench. *)
type reward_shape = Inverse_runtime | Log_speedup

type config = {
  episodes : int;
  max_steps : int;  (** horizon per episode *)
  action_cap : int;  (** candidate actions presented per step *)
  reward_c : float option;  (** [None]: calibrated to the naive runtime *)
  reward_shape : reward_shape;
  train_per_step : int;
  dqn : Dqn.config;
}

val default_config : config

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
  episode_best : float array;
      (** best runtime found up to the end of each episode *)
  evaluations : int;  (** total performance-model evaluations *)
}

val always_presented : string -> bool
(** Transformation names that are always included in the candidate
    subset (decisive annotation moves such as gpu_map); the plentiful
    structural moves fill the remaining slots by sampling. *)

(** A presented candidate action: a transformation instance ([None] is
    the stop action), the program it leads to, and the action-pair
    embedding. *)
type candidate = {
  inst : Transform.Xforms.instance option;
  next_prog : Ir.Prog.t;
  pair : float array;
}

val candidates_of :
  Util.Rng.t ->
  Transform.Xforms.caps ->
  int ->
  Ir.Prog.t ->
  float array ->
  candidate array
(** [candidates_of rng caps cap prog state_emb] — the capped candidate
    set presented to an agent at a state (shared by the DQN and the
    REINFORCE baseline). *)

val optimize :
  ?cfg:config ->
  ?init:string list ->
  seed:int ->
  Transform.Xforms.caps ->
  (Ir.Prog.t -> float) ->
  Ir.Prog.t ->
  result * Dqn.t
(** Train an agent on one kernel and return the best schedule found
    together with the trained agent.  Deterministic given [seed].
    [init] warm-starts the best-so-far from a recorded move sequence
    (replayed via {!Search.Stochastic.replay_skipping}), so episodes
    improve on a known-good schedule instead of restarting cold. *)
