(* The manual transformation-centric workflow of Figure 2 / Figure 4,
   written against the schedule-script surface: a human engineer
   optimizes softmax step by step, naming each loop by what it does
   ("the size-512 loop that writes e") instead of by raw child index,
   watching the modelled runtime after every statement, and keeping the
   whole journey as a versioned .pds script that replays byte-for-byte.

   Run with:  dune exec examples/softmax_journey.exe *)

open Perfdojo
module Engine = Transform.Engine
module Script = Transfo.Script
module Composites = Transfo.Composites

(* One script statement, applied interactively: resolve the selector,
   expand the (possibly composite) transformation, print the new
   modelled runtime.  This is exactly what Transfo.Script.run does for
   a whole file — stepping statement-by-statement is the Figure-2 loop. *)
let step target session stext =
  let stmt =
    match Script.parse ("pds 1\n" ^ stext ^ "\n") with
    | Ok { stmts = [ (_, s) ]; _ } -> s
    | Ok _ | Error _ -> failwith ("bad statement: " ^ stext)
  in
  match stmt with
  | Script.Raw _ -> failwith "journey uses targeted statements only"
  | Script.Apply { sel; name; args } -> (
      let transfo =
        match Composites.resolve name args with
        | Ok t -> t
        | Error e -> failwith e
      in
      let r =
        match sel with
        | Some sel -> Engine.apply_at session sel transfo
        | None -> Engine.apply_anchored session ~anchor:[] transfo
      in
      match r with
      | Ok q ->
          Printf.printf "  %-52s -> %.3e s\n" stext (Machine.time target q)
      | Error e -> failwith (Target.error_to_string e))

let () =
  let target = Machine.Desc.Cpu Machine.Desc.avx512_cpu in
  let prog = Kernels.softmax ~n:24576 ~m:512 in
  let caps = Composites.enable ~names:[ "all" ] (Machine.caps target) in
  let session = Engine.start caps prog in
  Printf.printf "start: %.3e s\n" (Machine.time target prog);

  (* Fuse the exponentiation with the running sum: one pass over the
     row instead of two.  "the size-512 loop that writes e" survives
     child renumbering where a raw [0,3] would not. *)
  step target session "at size 512 & writes e do join";

  (* The row temporaries are privatized per row; move them to the
     stack. *)
  step target session "do storage(buffer=mx, loc=stack)";
  step target session "do storage(buffer=s, loc=stack)";

  (* Rows are independent: parallelize the row loop. *)
  step target session "at size 24576 do parallelize";

  (* Try tile-and-vectorize on the max reduction: the composite
     resolves its anchor, sees the reduction cannot vectorize, and
     refuses all-or-nothing — the session is untouched, no undo
     needed.  (The old raw-index workflow applied the split, watched
     the runtime get worse, and undid it by hand.) *)
  (match
     Script.parse "pds 1\nat size 512 & writes mx do tile_and_vectorize(lanes=16)\n"
   with
  | Ok s -> (
      match Script.run caps session.Engine.current s with
      | Error { err = Target.Refused _ as err; _ } ->
          Printf.printf "  (refused, session untouched: %s)\n"
            (Target.error_to_string err)
      | Error e -> failwith (Script.run_error_to_string e)
      | Ok _ -> failwith "vectorizing a max reduction should refuse")
  | Error e -> failwith e);

  (* The division loop is elementwise: there the same composite lands,
     tiling by the AVX-512 width and vectorizing the tile in one step. *)
  step target session "at size 512 & writes z do tile_and_vectorize(lanes=16)";

  (* The journey so far, as a replayable .pds script: of_moves converts
     the session's atomic provenance to targeted statements. *)
  let describes = List.map Transform.Xforms.describe (Engine.moves session) in
  let script =
    Script.of_moves ~kernel:"softmax" ~ktarget:"avx512" describes
  in
  print_endline "\nthe journey as a schedule script:";
  print_string (Script.to_string script);

  (* Replaying the script from the original program reproduces the
     session's schedule byte-for-byte. *)
  (match Script.run caps prog script with
  | Ok (q, _) when Ir.Printer.program q
                   = Ir.Printer.program session.Engine.current ->
      print_endline "\nscript replay: byte-identical"
  | Ok _ -> failwith "script replay diverged"
  | Error e -> failwith (Script.run_error_to_string e));

  (* Empirical validation (§2.2): the scheduled program computes what
     the original computed. *)
  (match Interp.equivalent session.Engine.initial session.Engine.current with
  | Ok () -> print_endline "numerical check vs original: OK"
  | Error e -> failwith e);

  print_endline "\nfinal schedule:";
  print_endline (Ir.Printer.body session.Engine.current);
  print_endline "\ngenerated C:";
  print_string (Codegen.program session.Engine.current)
