(* Batch library generation: the paper's end product as a library call.

   One `Libgen.generate` optimizes every (kernel, target) pair of a
   selection through the same search machinery the single-kernel
   examples use, and emits a complete C library — one translation unit
   per pair, an umbrella header, and a canonical manifest.json with the
   provenance of every entry.  A second run over the same tuning
   database skips every up-to-date pair by fingerprint.

   Run with:  dune exec examples/library_generation.exe *)

open Perfdojo

let () =
  (* a small selection keeps the example fast; drop ~kernels for the
     whole Table-3 suite + Snitch micro-kernels *)
  let kernels =
    List.map
      (Kernels.find_entry (Libgen.default_kernels ()))
      [ "softmax"; "gemv"; "rmsnorm"; "axpy" ]
  in
  let strategy =
    Annealing { budget = 120; space = Search.Stochastic.Heuristic }
  in
  (* one run context carries seed, parallelism, shared cache... for the
     whole batch — see TUTORIAL.md §13 for the Ctx API *)
  let ctx = Ctx.(default |> with_jobs 4 |> with_cache (Tuning.Cache.create ())) in
  let db = Tuning.Db.create () in

  let show label (lib : Libgen.library) =
    Printf.printf "%s: %d entries (%d fresh, %d skipped, %d degraded)\n"
      label
      (List.length lib.Libgen.entries)
      lib.Libgen.fresh lib.Libgen.skipped lib.Libgen.degraded;
    List.iter
      (fun (e : Libgen.entry) ->
        Printf.printf "  %-8s %-10s %-7s %.3e s  %s -> %s\n"
          (Libgen.status_name e.status)
          e.kernel e.target e.time_s e.strategy e.c_file)
      lib.Libgen.entries
  in

  (* cold: every pair is searched, deposited into the database, and
     emitted as C *)
  let cold =
    Libgen.generate ~kernels ~strategy ~db ~ctx
      ~targets:[ "x86"; "snitch" ] ~out:"example_lib" ()
  in
  show "cold run" cold;

  (* warm: same database, same fingerprints — nothing to do but replay
     the recorded schedules and re-emit *)
  let warm =
    Libgen.generate ~kernels ~strategy ~db ~ctx
      ~targets:[ "x86"; "snitch" ] ~out:"example_lib" ()
  in
  show "warm run" warm;
  assert (warm.Libgen.skipped = List.length warm.Libgen.entries);

  (* the manifest is a canonical one-line JSON document; the library
     record carries the same data in typed form *)
  Printf.printf "\nartifacts in %s/: %s, %d .c files, manifest.json\n"
    warm.Libgen.out_dir warm.Libgen.header
    (List.length warm.Libgen.entries);
  let softmax_x86 =
    List.find
      (fun (e : Libgen.entry) -> e.kernel = "softmax" && e.target = "x86")
      warm.Libgen.entries
  in
  Printf.printf "softmax on x86: %.3e s (naive %.3e s), moves:\n"
    softmax_x86.time_s softmax_x86.naive_s;
  List.iter (Printf.printf "  %s\n") softmax_x86.moves
