(* Deep Q-learning over transformation actions (§3.2, §3.3).

   The Q function takes the action representation — the concatenation of
   the program embedding before and after the candidate transformation —
   and returns a scalar value.  Supported variants, all ablatable:

   - Double DQN: action selection by the online network, evaluation by a
     periodically synchronized target network (van Hasselt et al.).
   - Dueling heads: Q(s,a) = V(s) + A(s,a); V reads the state half of the
     action pair, A reads the full pair (adapted to the continuous action
     encoding: the advantage mean-centering of the discrete formulation
     is dropped since the candidate set varies per state).
   - Max Q-learning (Gottipati et al.): the max-Bellman target
     y = max(r, gamma * max_a' Q(s', a')) replaces the summed return,
     prioritizing the single best trajectory — the right objective when
     only the best program found matters. *)

type config = {
  gamma : float;
  lr : float;
  eps_start : float;
  eps_end : float;
  eps_decay : int; (* steps over which epsilon anneals *)
  double_dqn : bool;
  dueling : bool;
  max_bellman : bool;
  batch : int;
  buffer_capacity : int;
  target_sync : int; (* steps between target-network refreshes *)
  hidden : int;
  prioritized : bool; (* prioritized experience replay (off: the paper
                         evaluated and excluded it, §3.3) *)
}

let default_config =
  {
    gamma = 0.95;
    lr = 1e-3;
    eps_start = 1.0;
    eps_end = 0.15;
    eps_decay = 350;
    double_dqn = true;
    dueling = true;
    max_bellman = true;
    batch = 32;
    buffer_capacity = 4096;
    target_sync = 200;
    hidden = 64;
    prioritized = false;
  }

type qnet = { adv : Nn.t; value : Nn.t option (* dueling V head *) }

let make_qnet cfg rng =
  let pair_dim = 2 * Embed.dim in
  {
    adv = Nn.create rng [ pair_dim; cfg.hidden; cfg.hidden / 2; 1 ];
    value =
      (if cfg.dueling then
         Some (Nn.create rng [ Embed.dim; cfg.hidden / 2; 1 ])
       else None);
  }

type t = {
  cfg : config;
  online : qnet;
  target : qnet;
  replay : Replay.t;
  rng : Util.Rng.t;
  mutable steps : int;
}

let create ?(cfg = default_config) seed =
  let rng = Util.Rng.create seed in
  let online = make_qnet cfg rng in
  let target = make_qnet cfg rng in
  Nn.copy_weights ~src:online.adv ~dst:target.adv;
  (match (online.value, target.value) with
  | Some s, Some d -> Nn.copy_weights ~src:s ~dst:d
  | _ -> ());
  {
    cfg;
    online;
    target;
    replay = Replay.create cfg.buffer_capacity;
    rng;
    steps = 0;
  }

let state_half (pair : float array) = Array.sub pair 0 Embed.dim

let q_value (net : qnet) (pair : float array) : float =
  let a = (Nn.forward net.adv pair).(0) in
  match net.value with
  | None -> a
  | Some v -> a +. (Nn.forward v (state_half pair)).(0)

let best_q (net : qnet) (pairs : float array array) : int * float =
  let best_i = ref 0 and best = ref neg_infinity in
  Array.iteri
    (fun i p ->
      let q = q_value net p in
      if q > !best then begin
        best := q;
        best_i := i
      end)
    pairs;
  (!best_i, !best)

let epsilon (agent : t) =
  let frac =
    Float.min 1.0 (float_of_int agent.steps /. float_of_int agent.cfg.eps_decay)
  in
  agent.cfg.eps_start +. (frac *. (agent.cfg.eps_end -. agent.cfg.eps_start))

(* Epsilon-greedy selection among candidate action pairs. *)
let select (agent : t) (pairs : float array array) : int =
  if Util.Rng.float agent.rng < epsilon agent then
    Util.Rng.int agent.rng (Array.length pairs)
  else fst (best_q agent.online pairs)

let remember (agent : t) tr = Replay.add agent.replay tr

(* The training target for one transition. *)
let target_of (agent : t) (tr : Replay.transition) : float =
  let cfg = agent.cfg in
  let future =
    if tr.terminal || Array.length tr.next_actions = 0 then 0.0
    else if cfg.double_dqn then begin
      let i, _ = best_q agent.online tr.next_actions in
      q_value agent.target tr.next_actions.(i)
    end
    else snd (best_q agent.target tr.next_actions)
  in
  if cfg.max_bellman then Float.max tr.reward (cfg.gamma *. future)
  else tr.reward +. (cfg.gamma *. future)

(* One SGD step on a uniformly sampled minibatch. *)
let train_step (agent : t) : float =
  let cfg = agent.cfg in
  if Replay.size agent.replay < cfg.batch then 0.0
  else begin
    let batch =
      if cfg.prioritized then
        Replay.sample_prioritized agent.replay agent.rng cfg.batch
      else
        List.map (fun tr -> (-1, tr))
          (Replay.sample agent.replay agent.rng cfg.batch)
    in
    Nn.zero_grad agent.online.adv;
    (match agent.online.value with Some v -> Nn.zero_grad v | None -> ());
    let total_loss = ref 0.0 in
    List.iter
      (fun ((idx : int), (tr : Replay.transition)) ->
        let y = target_of agent tr in
        let tape_a, out_a = Nn.forward_tape agent.online.adv tr.action in
        let v_part =
          match agent.online.value with
          | None -> None
          | Some vnet ->
              let tape_v, out_v =
                Nn.forward_tape vnet (state_half tr.action)
              in
              Some (vnet, tape_v, out_v.(0))
        in
        let q =
          out_a.(0) +. (match v_part with Some (_, _, v) -> v | None -> 0.0)
        in
        let err = q -. y in
        if cfg.prioritized then Replay.update_priority agent.replay idx err;
        total_loss := !total_loss +. (err *. err);
        (* Huber gradient, clipped at 1 *)
        let g = Float.max (-1.0) (Float.min 1.0 err) in
        let scale = 1.0 /. float_of_int cfg.batch in
        Nn.backward agent.online.adv tape_a [| g *. scale |];
        match v_part with
        | Some (vnet, tape_v, _) -> Nn.backward vnet tape_v [| g *. scale |]
        | None -> ())
      batch;
    Nn.adam_step ~lr:cfg.lr agent.online.adv;
    (match agent.online.value with
    | Some v -> Nn.adam_step ~lr:cfg.lr v
    | None -> ());
    agent.steps <- agent.steps + 1;
    if agent.steps mod cfg.target_sync = 0 then begin
      Nn.copy_weights ~src:agent.online.adv ~dst:agent.target.adv;
      match (agent.online.value, agent.target.value) with
      | Some s, Some d -> Nn.copy_weights ~src:s ~dst:d
      | _ -> ()
    end;
    !total_loss /. float_of_int cfg.batch
  end
