(* Program-state embedding E(k) (§3.1).

   The paper uses an LLM to encode the PerfDojo textual representation
   into a numerical vector.  We substitute a deterministic hashed
   character-n-gram bag-of-features embedding of the same text, augmented
   with a few structural features (scope annotations, buffer locations,
   nesting depth).  The RL formulation only requires E(·) to be a stable,
   discriminative encoding of program text — see DESIGN.md for the
   substitution note. *)

let ngram_dims = 48
let struct_dims = 16
let dim = ngram_dims + struct_dims

(* FNV-1a, 64-bit, deterministic across runs. *)
let fnv1a (s : string) : int64 =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let bucket_of h m =
  Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int m))

let embed (prog : Ir.Prog.t) : float array =
  let v = Array.make dim 0.0 in
  let text = Ir.Printer.program prog in
  (* hashed 3-grams with a sign hash (feature hashing) *)
  let n = String.length text in
  for i = 0 to n - 4 do
    let g = String.sub text i 3 in
    let h = fnv1a g in
    let b = bucket_of h ngram_dims in
    let sign = if Int64.logand h 1L = 1L then 1.0 else -1.0 in
    v.(b) <- v.(b) +. sign
  done;
  (* L2-normalize the n-gram block *)
  let norm = ref 0.0 in
  for i = 0 to ngram_dims - 1 do
    norm := !norm +. (v.(i) *. v.(i))
  done;
  let norm = sqrt (Float.max !norm 1e-12) in
  for i = 0 to ngram_dims - 1 do
    v.(i) <- v.(i) /. norm
  done;
  (* structural features, squashed to [0, 1] ranges *)
  let squash x = x /. (1.0 +. x) in
  let count = Array.make 8 0 in
  let max_depth = ref 0 in
  let scopes = ref 0 in
  Ir.Prog.iter_nodes
    (fun p node ->
      match node with
      | Ir.Types.Scope sc ->
          incr scopes;
          max_depth := max !max_depth (List.length p);
          let slot =
            match sc.annot with
            | Ir.Types.Seq -> 0
            | Ir.Types.Unroll -> 1
            | Ir.Types.Par -> 2
            | Ir.Types.Vec -> 3
            | Ir.Types.GpuGrid -> 4
            | Ir.Types.GpuBlock -> 5
            | Ir.Types.GpuWarp -> 6
            | Ir.Types.Frep -> 7
          in
          count.(slot) <- count.(slot) + 1;
          if sc.ssr then count.(7) <- count.(7) + 1
      | Ir.Types.Stmt _ -> ())
    prog;
  for i = 0 to 7 do
    v.(ngram_dims + i) <- squash (float_of_int count.(i))
  done;
  v.(ngram_dims + 8) <- squash (float_of_int !max_depth);
  v.(ngram_dims + 9) <- squash (float_of_int !scopes);
  let locs = Array.make 4 0 in
  List.iter
    (fun (b : Ir.Types.buffer) ->
      let slot =
        match b.loc with
        | Ir.Types.Heap -> 0
        | Ir.Types.Stack -> 1
        | Ir.Types.Shared -> 2
        | Ir.Types.Register -> 3
      in
      locs.(slot) <- locs.(slot) + 1;
      if List.exists (fun r -> r) b.reuse then
        v.(ngram_dims + 14) <- v.(ngram_dims + 14) +. 0.25)
    prog.buffers;
  for i = 0 to 3 do
    v.(ngram_dims + 10 + i) <- squash (float_of_int locs.(i))
  done;
  v.(ngram_dims + 15) <- squash (float_of_int (List.length prog.buffers));
  v

(* The action representation: concatenation of the embeddings before and
   after the transformation (§3.1); the stop action concatenates two
   identical embeddings. *)
let action_pair (before : float array) (after : float array) : float array =
  Array.append before after
