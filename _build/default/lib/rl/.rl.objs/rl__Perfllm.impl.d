lib/rl/perfllm.ml: Array Dqn Embed Float Ir List Transform Util Xforms
