lib/rl/dqn.ml: Array Embed Float List Nn Replay Util
