lib/rl/replay.mli: Util
