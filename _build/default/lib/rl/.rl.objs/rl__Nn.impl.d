lib/rl/nn.ml: Array List Util
