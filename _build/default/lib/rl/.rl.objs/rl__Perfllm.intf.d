lib/rl/perfllm.mli: Dqn Ir Transform Util
