lib/rl/embed.ml: Array Char Float Int64 Ir List String
