lib/rl/dqn.mli: Nn Replay Util
