lib/rl/reinforce.mli: Ir Transform
