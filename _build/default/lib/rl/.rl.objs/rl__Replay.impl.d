lib/rl/replay.ml: Array Float List Util
