lib/rl/nn.mli: Util
