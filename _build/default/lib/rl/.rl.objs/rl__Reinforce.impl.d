lib/rl/reinforce.ml: Array Embed Float Ir List Nn Perfllm Transform Util Xforms
