lib/rl/embed.mli: Ir
