(* REINFORCE: the policy-gradient alternative the paper considers and
   rejects (§3.2) — "policy gradient algorithms ... often suffer from
   high variance and sample inefficiency ... particularly acute in
   environments with large, discrete action spaces".

   Implemented over the same candidate interface as the DQN agent: a
   policy network scores each candidate action pair, a softmax over the
   scores gives the sampling distribution, and after each episode the
   log-likelihoods of the taken actions are reinforced by the (baselined)
   episode return.  The rl-ablation bench compares it against Max-Q DQN
   at an equal evaluation budget, reproducing the paper's argument
   empirically. *)

open Transform

type config = {
  episodes : int;
  max_steps : int;
  action_cap : int;
  lr : float;
  gamma : float;
  hidden : int;
}

let default_config =
  { episodes = 40; max_steps = 24; action_cap = 48; lr = 1e-3; gamma = 0.95;
    hidden = 64 }

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
  episode_best : float array;
  evaluations : int;
}

let softmax (scores : float array) : float array =
  let mx = Array.fold_left Float.max neg_infinity scores in
  let exps = Array.map (fun s -> exp (s -. mx)) scores in
  let sum = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. sum) exps

let optimize ?(cfg = default_config) ~seed caps
    (runtime : Ir.Prog.t -> float) (root : Ir.Prog.t) : result =
  let rng = Util.Rng.create seed in
  let env_rng = Util.Rng.create (seed + 7919) in
  let policy = Nn.create rng [ 2 * Embed.dim; cfg.hidden; 1 ] in
  let evaluations = ref 0 in
  let time p =
    incr evaluations;
    runtime p
  in
  let root_time = time root in
  let best = ref root and best_time = ref root_time and best_moves = ref [] in
  let episode_best = Array.make cfg.episodes root_time in
  for ep = 0 to cfg.episodes - 1 do
    (* roll out one episode, remembering tapes for the gradient step *)
    let cur = ref root in
    let cur_emb = ref (Embed.embed root) in
    let moves = ref [] in
    let trajectory = ref [] in
    (* (candidate pairs, chosen index, reward) per step *)
    let continue = ref true in
    let step = ref 0 in
    while !continue && !step < cfg.max_steps do
      incr step;
      let cands =
        Perfllm.candidates_of env_rng caps cfg.action_cap !cur !cur_emb
      in
      let pairs = Array.map (fun (c : Perfllm.candidate) -> c.pair) cands in
      let scores =
        Array.map (fun p -> (Nn.forward policy p).(0)) pairs
      in
      let probs = softmax scores in
      let choice = Util.Rng.weighted_index rng probs in
      let chosen = cands.(choice) in
      let t_next = time chosen.next_prog in
      let reward = log (Float.max (root_time /. t_next) 1e-9) in
      trajectory := (pairs, choice, reward) :: !trajectory;
      (match chosen.inst with
      | Some inst ->
          moves := Xforms.describe inst :: !moves;
          if t_next < !best_time then begin
            best_time := t_next;
            best := chosen.next_prog;
            best_moves := List.rev !moves
          end
      | None -> continue := false);
      cur := chosen.next_prog;
      cur_emb := Embed.embed !cur
    done;
    (* returns-to-go with a simple mean baseline *)
    let steps = List.rev !trajectory in
    let returns =
      let acc = ref 0.0 in
      List.rev_map
        (fun (_, _, r) ->
          acc := r +. (cfg.gamma *. !acc);
          !acc)
        (List.rev steps)
    in
    let mean_ret =
      match returns with
      | [] -> 0.0
      | rs -> List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
    in
    (* policy gradient: d/dtheta sum_t (G_t - b) * log pi(a_t | s_t) *)
    Nn.zero_grad policy;
    List.iter2
      (fun (pairs, choice, _) g ->
        let advantage = g -. mean_ret in
        let scores =
          Array.map (fun p -> (Nn.forward policy p).(0)) pairs
        in
        let probs = softmax scores in
        (* dLoss/dscore_i = (p_i - [i = choice]) * advantage
           (gradient of -log pi(choice)) *)
        Array.iteri
          (fun i pair ->
            let indicator = if i = choice then 1.0 else 0.0 in
            let d = (probs.(i) -. indicator) *. advantage in
            if Float.abs d > 1e-12 then begin
              let tape, _ = Nn.forward_tape policy pair in
              Nn.backward policy tape [| d |]
            end)
          pairs)
      steps returns;
    Nn.adam_step ~lr:cfg.lr policy;
    episode_best.(ep) <- !best_time
  done;
  {
    best = !best;
    best_time = !best_time;
    best_moves = !best_moves;
    episode_best;
    evaluations = !evaluations;
  }
