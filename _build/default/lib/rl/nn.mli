(** A small fully-connected neural network with manual backpropagation
    and the Adam optimizer — the function approximator behind the deep
    Q-network (§3.2).  Pure OCaml, deterministic given the RNG seed. *)

type layer = {
  w : float array array;  (** out x in *)
  b : float array;
  gw : float array array;  (** gradient accumulators *)
  gb : float array;
  mw : float array array;  (** Adam first moments *)
  vw : float array array;  (** Adam second moments *)
  mb : float array;
  vb : float array;
}

type t = { layers : layer array; mutable adam_t : int }

val create : Util.Rng.t -> int list -> t
(** [create rng [n0; ...; nk]] builds an MLP with ReLU activations
    between layers and a linear output, He-initialized. *)

val forward : t -> float array -> float array

type tape
(** Saved activations for backpropagation. *)

val forward_tape : t -> float array -> tape * float array

val backward : t -> tape -> float array -> unit
(** [backward net tape dout] accumulates parameter gradients for one
    sample given dLoss/dOutput. *)

val zero_grad : t -> unit

val adam_step :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> t -> unit
(** Apply accumulated gradients with Adam and advance its step count. *)

val copy_weights : src:t -> dst:t -> unit
(** Copy weights (not optimizer state); used to refresh the target
    network. *)
