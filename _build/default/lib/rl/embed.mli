(** Program-state embedding E(k) (§3.1).

    The paper uses an LLM to encode the PerfDojo textual representation;
    this reproduction substitutes a deterministic hashed character-n-gram
    embedding of the same text, augmented with structural features (scope
    annotations, buffer locations, nesting depth).  See DESIGN.md for the
    substitution note. *)

val ngram_dims : int
(** Width of the hashed-n-gram block (L2-normalized). *)

val struct_dims : int
(** Width of the structural-feature block. *)

val dim : int
(** Total embedding dimension, [ngram_dims + struct_dims]. *)

val embed : Ir.Prog.t -> float array
(** Deterministic embedding of a program state. *)

val action_pair : float array -> float array -> float array
(** Action representation: concat of the embeddings before and after the
    transformation; the stop action concatenates two identical
    embeddings. *)
