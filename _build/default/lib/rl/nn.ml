(* A small fully-connected neural network with manual backpropagation and
   the Adam optimizer — the function approximator behind the deep
   Q-network (§3.2).  Pure OCaml, deterministic given the RNG seed. *)

type layer = {
  w : float array array; (* out x in *)
  b : float array;
  (* gradient accumulators *)
  gw : float array array;
  gb : float array;
  (* Adam moments *)
  mw : float array array;
  vw : float array array;
  mb : float array;
  vb : float array;
}

type t = {
  layers : layer array; (* ReLU between layers, linear output *)
  mutable adam_t : int;
}

let make_layer rng n_in n_out =
  let scale = sqrt (2.0 /. float_of_int n_in) in
  {
    w =
      Array.init n_out (fun _ ->
          Array.init n_in (fun _ -> Util.Rng.normal rng *. scale));
    b = Array.make n_out 0.0;
    gw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    gb = Array.make n_out 0.0;
    mw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    vw = Array.init n_out (fun _ -> Array.make n_in 0.0);
    mb = Array.make n_out 0.0;
    vb = Array.make n_out 0.0;
  }

(* [create rng [n0; n1; ...; nk]] builds a network with input size n0 and
   output size nk. *)
let create rng sizes =
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  {
    layers =
      Array.of_list (List.map (fun (i, o) -> make_layer rng i o) (pairs sizes));
    adam_t = 0;
  }

let layer_forward (l : layer) (x : float array) =
  Array.mapi
    (fun o _ ->
      let row = l.w.(o) in
      let acc = ref l.b.(o) in
      Array.iteri (fun i xi -> acc := !acc +. (row.(i) *. xi)) x;
      !acc)
    l.b

let relu v = Array.map (fun x -> if x > 0.0 then x else 0.0) v

(* Forward pass keeping intermediate activations for backprop:
   activations.(0) = input, activations.(i+1) = post-nonlinearity output
   of layer i (linear for the last layer). *)
type tape = { acts : float array array }

let forward_tape (net : t) (x : float array) : tape * float array =
  let n = Array.length net.layers in
  let acts = Array.make (n + 1) [||] in
  acts.(0) <- x;
  for i = 0 to n - 1 do
    let z = layer_forward net.layers.(i) acts.(i) in
    acts.(i + 1) <- (if i = n - 1 then z else relu z)
  done;
  ({ acts }, acts.(n))

let forward net x = snd (forward_tape net x)

(* Accumulate gradients for a single sample given dLoss/dOutput. *)
let backward (net : t) (tape : tape) (dout : float array) : unit =
  let n = Array.length net.layers in
  let delta = ref dout in
  for i = n - 1 downto 0 do
    let l = net.layers.(i) in
    let x = tape.acts.(i) in
    let y = tape.acts.(i + 1) in
    (* through the nonlinearity (ReLU) for non-last layers *)
    let d =
      if i = n - 1 then !delta
      else Array.mapi (fun o dv -> if y.(o) > 0.0 then dv else 0.0) !delta
    in
    (* parameter gradients *)
    Array.iteri
      (fun o dv ->
        l.gb.(o) <- l.gb.(o) +. dv;
        let row = l.gw.(o) in
        Array.iteri (fun j xj -> row.(j) <- row.(j) +. (dv *. xj)) x)
      d;
    (* input gradient *)
    let din = Array.make (Array.length x) 0.0 in
    Array.iteri
      (fun o dv ->
        let row = l.w.(o) in
        Array.iteri (fun j wj -> din.(j) <- din.(j) +. (dv *. wj)) row)
      d;
    delta := din
  done

let zero_grad (net : t) =
  Array.iter
    (fun l ->
      Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) l.gw;
      Array.fill l.gb 0 (Array.length l.gb) 0.0)
    net.layers

let adam_step ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    (net : t) =
  net.adam_t <- net.adam_t + 1;
  let t = float_of_int net.adam_t in
  let corr1 = 1.0 -. (beta1 ** t) and corr2 = 1.0 -. (beta2 ** t) in
  Array.iter
    (fun l ->
      let upd m v g w =
        let m' = (beta1 *. m) +. ((1.0 -. beta1) *. g) in
        let v' = (beta2 *. v) +. ((1.0 -. beta2) *. g *. g) in
        let mh = m' /. corr1 and vh = v' /. corr2 in
        (m', v', w -. (lr *. mh /. (sqrt vh +. eps)))
      in
      Array.iteri
        (fun o row ->
          Array.iteri
            (fun j wj ->
              let m', v', w' = upd l.mw.(o).(j) l.vw.(o).(j) l.gw.(o).(j) wj in
              l.mw.(o).(j) <- m';
              l.vw.(o).(j) <- v';
              row.(j) <- w')
            row;
          let m', v', b' = upd l.mb.(o) l.vb.(o) l.gb.(o) l.b.(o) in
          l.mb.(o) <- m';
          l.vb.(o) <- v';
          l.b.(o) <- b')
        l.w)
    net.layers

(* Copy weights (not optimizer state): used to refresh the target
   network. *)
let copy_weights ~(src : t) ~(dst : t) =
  Array.iteri
    (fun i ls ->
      let ld = dst.layers.(i) in
      Array.iteri (fun o row -> Array.blit row 0 ld.w.(o) 0 (Array.length row))
        ls.w;
      Array.blit ls.b 0 ld.b 0 (Array.length ls.b))
    src.layers
