(** Deep Q-learning over transformation actions (§3.2, §3.3).

    The Q function reads the action representation (embedding before +
    after the candidate move) and returns a scalar.  Ablatable variants:
    Double DQN (van Hasselt et al.), dueling heads, and Max Q-learning
    (Gottipati et al.): the max-Bellman target
    [y = max(r, gamma * max_a' Q(s', a'))]. *)

type config = {
  gamma : float;
  lr : float;
  eps_start : float;
  eps_end : float;
  eps_decay : int;  (** steps over which epsilon anneals *)
  double_dqn : bool;
  dueling : bool;
  max_bellman : bool;
  batch : int;
  buffer_capacity : int;
  target_sync : int;  (** steps between target-network refreshes *)
  hidden : int;
  prioritized : bool;
      (** prioritized experience replay — off by default (the paper
          evaluated and excluded it, §3.3) *)
}

val default_config : config

type qnet = { adv : Nn.t; value : Nn.t option (** dueling V head *) }

type t = {
  cfg : config;
  online : qnet;
  target : qnet;
  replay : Replay.t;
  rng : Util.Rng.t;
  mutable steps : int;
}

val create : ?cfg:config -> int -> t
(** [create seed] builds online and target networks with identical
    initial weights. *)

val q_value : qnet -> float array -> float
(** Q of one action pair. *)

val best_q : qnet -> float array array -> int * float
(** Argmax (index, value) over candidate action pairs. *)

val epsilon : t -> float
(** Current annealed exploration rate. *)

val select : t -> float array array -> int
(** Epsilon-greedy choice among candidate pairs. *)

val remember : t -> Replay.transition -> unit

val target_of : t -> Replay.transition -> float
(** The training target under the configured Bellman variant. *)

val train_step : t -> float
(** One SGD step on a uniform minibatch; returns the mean squared TD
    error (0 while the buffer is smaller than a batch).  Refreshes the
    target network every [target_sync] steps. *)
