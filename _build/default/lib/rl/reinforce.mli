(** REINFORCE: the policy-gradient alternative the paper considers and
    rejects for this task (§3.2, high variance and sample inefficiency
    in large discrete action spaces).  Implemented over the same
    candidate interface as the DQN agent so the rl-ablation bench can
    compare them at an equal evaluation budget. *)

type config = {
  episodes : int;
  max_steps : int;
  action_cap : int;
  lr : float;
  gamma : float;
  hidden : int;
}

val default_config : config

type result = {
  best : Ir.Prog.t;
  best_time : float;
  best_moves : string list;
  episode_best : float array;
  evaluations : int;
}

val softmax : float array -> float array
(** Numerically stable softmax over candidate scores. *)

val optimize :
  ?cfg:config ->
  seed:int ->
  Transform.Xforms.caps ->
  (Ir.Prog.t -> float) ->
  Ir.Prog.t ->
  result
(** Train a policy on one kernel with episodic REINFORCE (returns-to-go
    with a mean baseline) and return the best schedule found. *)
