(* Experience replay buffer (§3.3): fixed-capacity ring; uniform
   sampling breaks the temporal correlation of sequentially collected
   transitions. *)

type transition = {
  action : float array; (* concat(E(k_t), E(k_{t+1})) *)
  reward : float;
  next_state : float array; (* E(k_{t+1}) *)
  next_actions : float array array; (* candidate pairs at k_{t+1} *)
  terminal : bool;
}

type t = {
  data : transition option array;
  priorities : float array; (* |TD error| + eps; used only when the
                               prioritized variant samples *)
  mutable size : int;
  mutable next : int;
}

let create capacity =
  {
    data = Array.make capacity None;
    priorities = Array.make capacity 1.0;
    size = 0;
    next = 0;
  }

let add (buf : t) (tr : transition) =
  buf.data.(buf.next) <- Some tr;
  (* new experiences enter with the current maximum priority so they are
     replayed at least once (Schaul et al.) *)
  let mx = ref 1.0 in
  for i = 0 to buf.size - 1 do
    if buf.priorities.(i) > !mx then mx := buf.priorities.(i)
  done;
  buf.priorities.(buf.next) <- !mx;
  buf.next <- (buf.next + 1) mod Array.length buf.data;
  buf.size <- min (buf.size + 1) (Array.length buf.data)

let sample (buf : t) rng n : transition list =
  if buf.size = 0 then []
  else
    List.init n (fun _ ->
        match buf.data.(Util.Rng.int rng buf.size) with
        | Some tr -> tr
        | None -> assert false)

(* Proportional prioritized sampling (§3.3: evaluated by the paper and
   excluded as not providing meaningful gains; reproduced for the
   rl-ablation bench).  Returns indices so the caller can update
   priorities with the new TD errors. *)
let sample_prioritized (buf : t) rng n : (int * transition) list =
  if buf.size = 0 then []
  else begin
    let weights = Array.sub buf.priorities 0 buf.size in
    List.init n (fun _ ->
        let i = Util.Rng.weighted_index rng weights in
        match buf.data.(i) with
        | Some tr -> (i, tr)
        | None -> assert false)
  end

let update_priority (buf : t) i td_error =
  if i >= 0 && i < buf.size then
    buf.priorities.(i) <- Float.abs td_error +. 1e-3

let size (buf : t) = buf.size
