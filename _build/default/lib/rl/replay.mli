(** Experience replay (§3.3): a fixed-capacity ring buffer with uniform
    sampling, breaking the temporal correlation of sequentially collected
    transitions. *)

type transition = {
  action : float array;  (** concat(E(k_t), E(k_(t+1))) *)
  reward : float;
  next_state : float array;  (** E(k_(t+1)) *)
  next_actions : float array array;  (** candidate pairs at k_(t+1) *)
  terminal : bool;
}

type t

val create : int -> t
(** [create capacity] *)

val add : t -> transition -> unit
(** Insert, overwriting the oldest entry when full. *)

val sample : t -> Util.Rng.t -> int -> transition list
(** [sample buf rng n] draws [n] transitions uniformly with
    replacement (empty list when the buffer is empty). *)

val sample_prioritized : t -> Util.Rng.t -> int -> (int * transition) list
(** Proportional prioritized sampling (Schaul et al.): draws indices with
    probability proportional to stored |TD error| priorities.  The paper
    evaluated and excluded prioritized replay (§3.3); it is reproduced
    for the rl-ablation bench. *)

val update_priority : t -> int -> float -> unit
(** Record a transition's new TD error after a training step. *)

val size : t -> int
