lib/search/passes.mli: Ir Transform
