lib/search/stochastic.mli: Ir Transform Util
