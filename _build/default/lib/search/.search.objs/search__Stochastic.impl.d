lib/search/stochastic.ml: Array Float Ir List Transform Util Xforms
