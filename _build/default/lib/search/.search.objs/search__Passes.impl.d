lib/search/passes.ml: Dep Ir List Printf String Transform Xforms
