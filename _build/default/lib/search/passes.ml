(* Deterministic optimization passes (§4.1): the three strategies of
   Figure 7 plus per-target one-shot heuristic passes used as the
   "heuristic" bars in Figures 10/11.

   - [naive] imitates a programmer without architectural insight: merge
     scopes and reuse buffers until exhaustion.
   - [greedy] extends [naive] with hardware-specific transformations
     applied exhaustively, assuming they always help.
   - [heuristic] encodes hardware expertise as a function of program
     structure (the paper's example: tile the outermost loop of each
     nest by 4, sink it innermost, unroll it — creating enough
     independent chains to hide the 4-cycle FP latency). *)

open Transform

let rec fixpoint ~(pick : Ir.Prog.t -> Xforms.instance option) prog fuel =
  if fuel = 0 then prog
  else
    match pick prog with
    | None -> prog
    | Some inst -> fixpoint ~pick (inst.apply prog) (fuel - 1)

let first_of names caps prog =
  let insts = Xforms.all caps prog in
  List.find_opt (fun (i : Xforms.instance) -> List.mem i.xname names) insts

(* Merge scopes and reuse buffers as much as possible. *)
let naive caps prog =
  let prog =
    fixpoint ~pick:(first_of [ "join_scopes" ] caps) prog 1000
  in
  let prog = fixpoint ~pick:(first_of [ "reuse_dims" ] caps) prog 1000 in
  (* keep shrunk temporaries close: move them to the stack when offered *)
  fixpoint
    ~pick:(fun p ->
      List.find_opt
        (fun (i : Xforms.instance) ->
          i.xname = "set_storage"
          && String.length i.target > 8
          && String.sub i.target (String.length i.target - 5) 5 = "stack"
          &&
          (* only buffers already shrunk by reuse *)
          let bname = List.hd (String.split_on_char ' ' i.target) in
          List.exists (fun r -> r) (Ir.Prog.buffer_by_name p bname).reuse)
        (Xforms.all caps p))
    prog 100

(* naive + hardware transformations applied exhaustively. *)
let greedy caps prog =
  let prog = naive caps prog in
  let prog = fixpoint ~pick:(first_of [ "enable_ssr" ] caps) prog 200 in
  let prog = fixpoint ~pick:(first_of [ "enable_frep" ] caps) prog 200 in
  prog

(* ------------------------------------------------------------------ *)
(* Snitch expert heuristic                                             *)
(* ------------------------------------------------------------------ *)

(* Tile the outermost scope of each loop nest by [f], sink the tile
   innermost via interchanges, and unroll it. *)
let tile_sink_unroll caps f prog =
  (* candidate nests: outermost scopes whose size divides f *)
  let outer_paths =
    Ir.Prog.fold_nodes
      (fun acc p node ->
        match node with
        | Ir.Types.Scope sc
          when List.length p = 1 && sc.size mod f = 0 && sc.size > f ->
            p :: acc
        | _ -> acc)
      [] prog
  in
  List.fold_left
    (fun prog path ->
      let target_of p =
        "[" ^ String.concat "," (List.map string_of_int p) ^ "]"
      in
      let find_exact name target p =
        List.find_opt
          (fun (i : Xforms.instance) ->
            i.xname = name && i.target = target)
          (Xforms.all caps p)
      in
      match
        find_exact "split_scope"
          (Printf.sprintf "%s factor %d" (target_of path) f)
          prog
      with
      | None -> prog
      | Some split -> (
          let prog' = split.apply prog in
          (* the tile scope sits at path @ [0]; interchange it down while
             offered *)
          let rec sink p cur fuel =
            if fuel = 0 then (p, cur)
            else
              match find_exact "interchange" (target_of p) cur with
              | Some inst -> sink (p @ [ 0 ]) (inst.apply cur) (fuel - 1)
              | None -> (p, cur)
          in
          let tile_path, prog'' = sink (path @ [ 0 ]) prog' 16 in
          match find_exact "unroll" (target_of tile_path) prog'' with
          | Some u -> u.apply prog''
          | None -> prog''))
    prog outer_paths

(* Unroll every small loop that carries one partial accumulator per
   iteration (the inner loops produced by split_reduction): unrolled,
   their iterations form independent FP dependency chains. *)
let unroll_partial_accumulators caps prog =
  let target_of p =
    "[" ^ String.concat "," (List.map string_of_int p) ^ "]"
  in
  let rec step prog fuel =
    if fuel = 0 then prog
    else begin
      let candidate =
        Ir.Prog.fold_nodes
          (fun acc p node ->
            match (acc, node) with
            | Some _, _ -> acc
            | None, Ir.Types.Scope sc
              when sc.annot = Ir.Types.Seq && sc.size <= 8 -> (
                match sc.body with
                | [ Ir.Types.Stmt s ] ->
                    let depth = Ir.Prog.depth_of_path prog p in
                    if
                      Dep.is_commutative_reduction s
                      && List.exists
                           (fun i -> Ir.Index.depends_on depth i)
                           s.dst.idx
                    then Some p
                    else None
                | _ -> None)
            | None, _ -> None)
          None prog
      in
      match candidate with
      | None -> prog
      | Some p -> (
          match
            List.find_opt
              (fun (i : Xforms.instance) ->
                i.xname = "unroll" && i.target = target_of p)
              (Xforms.all caps prog)
          with
          | Some u -> step (u.apply prog) (fuel - 1)
          | None -> prog)
    end
  in
  step prog 16

(* The Figure-7 heuristic strategy: the naive pass, partial accumulators
   for scalar reductions, the latency-hiding tiling, then SSR/FREP like
   greedy. *)
let heuristic caps prog =
  let prog = naive caps prog in
  let prog =
    fixpoint ~pick:(first_of [ "split_reduction" ] caps) prog 32
  in
  let prog = unroll_partial_accumulators caps prog in
  let prog = tile_sink_unroll caps 4 prog in
  let prog = fixpoint ~pick:(first_of [ "enable_ssr" ] caps) prog 200 in
  let prog = fixpoint ~pick:(first_of [ "enable_frep" ] caps) prog 200 in
  prog

(* ------------------------------------------------------------------ *)
(* CPU one-shot heuristic pass (Figures 10/11 "heuristic")             *)
(* ------------------------------------------------------------------ *)

(* Vectorize every innermost single-statement loop: split off the vector
   width then annotate. *)
let vectorize_innermost (caps : Xforms.caps) prog =
  match caps.vec_lanes with
  | [] -> prog
  | lanes :: _ ->
      let rec improve prog fuel =
        if fuel = 0 then prog
        else begin
          (* prefer direct vectorization; otherwise split a divisible
             innermost loop and retry *)
          match
            List.find_opt
              (fun (i : Xforms.instance) -> i.xname = "vectorize")
              (Xforms.all caps prog)
          with
          | Some v -> improve (v.apply prog) (fuel - 1)
          | None -> (
              let splits =
                List.filter
                  (fun (i : Xforms.instance) ->
                    i.xname = "split_scope"
                    && String.length i.target
                       >= String.length (Printf.sprintf "factor %d" lanes)
                    &&
                    let suffix = Printf.sprintf "factor %d" lanes in
                    String.sub i.target
                      (String.length i.target - String.length suffix)
                      (String.length suffix)
                    = suffix)
                  (Xforms.all caps prog)
              in
              (* try each split; keep the first that unlocks vectorize *)
              let rec try_splits = function
                | [] -> None
                | (s : Xforms.instance) :: rest -> (
                    let p' = s.apply prog in
                    match
                      List.find_opt
                        (fun (i : Xforms.instance) -> i.xname = "vectorize")
                        (Xforms.all caps p')
                    with
                    | Some v -> Some (v.apply p')
                    | None -> try_splits rest)
              in
              match try_splits splits with
              | Some p' -> improve p' (fuel - 1)
              | None -> prog)
        end
      in
      improve prog 32

(* Parallelize the outermost parallelizable loop. *)
let parallelize_outer caps prog =
  let pars =
    List.filter
      (fun (i : Xforms.instance) -> i.xname = "parallelize")
      (Xforms.all caps prog)
  in
  (* shortest target path string = outermost *)
  let best =
    List.fold_left
      (fun acc (i : Xforms.instance) ->
        match acc with
        | None -> Some i
        | Some (j : Xforms.instance) ->
            if String.length i.target < String.length j.target then Some i
            else acc)
      None pars
  in
  match best with Some i -> i.apply prog | None -> prog

(* Separate initialization statements from the loops that follow them,
   so reduction loops become interchange- and vectorization-ready. *)
let fission_inits caps prog =
  fixpoint
    ~pick:(fun p ->
      List.find_opt
        (fun (i : Xforms.instance) ->
          i.xname = "fission"
          &&
          (* only splits whose first part is pure initialization *)
          match String.rindex_opt i.target ' ' with
          | None -> false
          | Some sp -> (
              let k =
                int_of_string_opt
                  (String.sub i.target (sp + 1)
                     (String.length i.target - sp - 1))
              in
              let path =
                (* parse "[a,b,c] at k" back into a path *)
                match String.index_opt i.target ']' with
                | None -> None
                | Some rb ->
                    let inner = String.sub i.target 1 (rb - 1) in
                    if inner = "" then Some []
                    else
                      Some
                        (List.map int_of_string
                           (String.split_on_char ',' inner))
              in
              match (k, path) with
              | Some k, Some path -> (
                  match Ir.Prog.node_at p path with
                  | Ir.Types.Scope sc ->
                      List.for_all
                        (function
                          | Ir.Types.Stmt { rhs = Ir.Types.Const _; _ } ->
                              true
                          | _ -> false)
                        (List.filteri (fun j _ -> j < k) sc.body)
                  | Ir.Types.Stmt _ -> false)
              | _ -> false))
        (Xforms.all caps p))
    prog 32

(* Interchange reduction loops outward: when a loop whose iterator the
   destinations vary with (a lane candidate) directly wraps a loop the
   destinations are invariant in (the reduction), swap them — the
   classic matmul jk -> kj step that makes the j loop vectorizable. *)
let sink_reductions caps prog =
  fixpoint
    ~pick:(fun p ->
      List.find_opt
        (fun (i : Xforms.instance) ->
          i.xname = "interchange"
          &&
          match String.index_opt i.target ']' with
          | None -> false
          | Some rb -> (
              let inner = String.sub i.target 1 (rb - 1) in
              let path =
                if inner = "" then []
                else
                  List.map int_of_string (String.split_on_char ',' inner)
              in
              match Ir.Prog.node_at p path with
              | Ir.Types.Scope outer -> (
                  match outer.body with
                  | [ Ir.Types.Scope inner_sc ] ->
                      let d = Ir.Prog.depth_of_path p path in
                      let stmts = Ir.Prog.stmts_under inner_sc.body in
                      stmts <> []
                      && List.for_all
                           (fun (st : Ir.Types.stmt) ->
                             List.exists
                               (fun ix -> Ir.Index.depends_on d ix)
                               st.dst.idx
                             && not
                                  (List.exists
                                     (fun ix ->
                                       Ir.Index.depends_on (d + 1) ix)
                                     st.dst.idx))
                           stmts
                  | _ -> false)
              | Ir.Types.Stmt _ -> false))
        (Xforms.all caps p))
    prog 16

(* Fuse first (cross-operator), then parallelize the outer loop, then
   shrink what can still legally shrink (reuse_dims refuses dimensions
   indexed by the now-parallel scope), distribute initializations and
   sink reduction loops outward so the lane dimension ends up innermost,
   then vectorize. *)
let cpu_heuristic ?(fuse = true) caps prog =
  let prog =
    if fuse then fixpoint ~pick:(first_of [ "join_scopes" ] caps) prog 1000
    else prog
  in
  let prog = parallelize_outer caps prog in
  let prog = fixpoint ~pick:(first_of [ "reuse_dims" ] caps) prog 1000 in
  let prog = fission_inits caps prog in
  let prog = sink_reductions caps prog in
  let prog = vectorize_innermost caps prog in
  prog

(* ------------------------------------------------------------------ *)
(* GPU one-shot heuristic pass                                         *)
(* ------------------------------------------------------------------ *)

(* Map the outermost independent loop to the grid, split off a 4-wide
   vector loop per thread, make sure there is a thread-block dimension
   (splitting an oversized loop when needed), and pad blocks to the
   wavefront multiple.  [fuse] controls whether operators are fused
   across nests first (our schedules fuse; library baselines launch one
   kernel per operator). *)
let gpu_heuristic ?(fuse = true) ?(block = 256) ?(warp = 32)
    ?(vectorize = true) ?score caps prog =
  let find_name name p =
    List.filter
      (fun (i : Xforms.instance) -> i.xname = name)
      (Xforms.all caps p)
  in
  let ends_with suffix (i : Xforms.instance) =
    String.length i.target >= String.length suffix
    && String.sub i.target
         (String.length i.target - String.length suffix)
         (String.length suffix)
       = suffix
  in
  let prog =
    if fuse then fixpoint ~pick:(first_of [ "join_scopes" ] caps) prog 1000
    else prog
  in
  (* completing a kernel given the grid choice: per-thread vectors,
     block mapping (splitting oversized loops), wavefront padding *)
  let finish prog =
    let prog = if vectorize then vectorize_innermost caps prog else prog in
    let map_blocks prog =
      fixpoint
        ~pick:(fun p ->
          List.find_opt (ends_with "block") (find_name "gpu_map" p))
        prog 8
    in
    let prog = map_blocks prog in
    let has_block p =
      Ir.Prog.fold_nodes
        (fun acc _ n ->
          acc
          ||
          match n with
          | Ir.Types.Scope sc -> sc.annot = Ir.Types.GpuBlock
          | Ir.Types.Stmt _ -> false)
        false p
    in
    let prog =
      if has_block prog then prog
      else begin
        let suffix = Printf.sprintf "factor %d" block in
        match
          List.find_opt (ends_with suffix) (find_name "split_scope" prog)
        with
        | Some s -> map_blocks (s.apply prog)
        | None -> prog
      end
    in
    fixpoint
      ~pick:(fun p ->
        List.find_opt
          (fun (i : Xforms.instance) ->
            i.xname = "pad_scope" && ends_with (Printf.sprintf "of %d" warp) i)
          (Xforms.all caps p))
      prog 4
  in
  (* grid choice: map every outermost independent loop to the grid; with
     a [score] function, additionally consider mapping each offered loop
     and keep the completed pipeline that scores best (one-step
     lookahead, the launch-configuration heuristic of a tuned library) *)
  let default_grids prog =
    fixpoint
      ~pick:(fun p ->
        let grids = List.filter (ends_with "grid") (find_name "gpu_map" p) in
        match
          List.sort
            (fun (a : Xforms.instance) b ->
              compare (String.length a.target) (String.length b.target))
            grids
        with
        | g :: _ -> Some g
        | [] -> None)
      prog 8
  in
  match score with
  | None -> finish (default_grids prog)
  | Some f ->
      let candidates =
        finish (default_grids prog)
        :: List.filter_map
             (fun (g : Xforms.instance) ->
               if ends_with "grid" g then
                 Some (finish (default_grids (g.apply prog)))
               else None)
             (find_name "gpu_map" prog)
      in
      List.fold_left
        (fun best cand -> if f cand < f best then cand else best)
        (List.hd candidates) (List.tl candidates)
