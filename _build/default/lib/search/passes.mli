(** Deterministic optimization passes (§4.1) and per-target one-shot
    heuristics (the "heuristic" bars of Figures 10/11). *)

val fixpoint :
  pick:(Ir.Prog.t -> Transform.Xforms.instance option) ->
  Ir.Prog.t ->
  int ->
  Ir.Prog.t
(** Apply [pick]'s choice repeatedly until it returns [None] or the fuel
    runs out. *)

val first_of :
  string list ->
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  Transform.Xforms.instance option
(** First applicable instance whose name is in the list. *)

val naive : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Merge scopes and reuse buffers until exhaustion — a programmer
    without architectural insight (Figure 7 "naive"). *)

val greedy : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** [naive] plus hardware transformations (SSR/FREP) applied
    exhaustively (Figure 7 "greedy"). *)

val heuristic : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** The hardware-expert strategy of Figure 7: [naive], partial
    accumulators for scalar reductions, tile-outermost-by-4 sunk
    innermost and unrolled (hiding the 4-cycle FP latency), then
    SSR/FREP. *)

val tile_sink_unroll :
  Transform.Xforms.caps -> int -> Ir.Prog.t -> Ir.Prog.t
(** The latency-hiding reshape described in §4.1: [N,D1,D2] becomes
    [N/f,D1,D2,f] with the [f]-tile unrolled. *)

val unroll_partial_accumulators :
  Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Unroll the small loops introduced by split_reduction so their
    iterations form independent FP dependency chains. *)

val vectorize_innermost : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Vectorize every innermost single-statement loop, splitting off the
    vector width first where needed. *)

val parallelize_outer : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Parallelize the outermost parallelizable loop. *)

val fission_inits : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Distribute loops so initialization statements get their own nests,
    making the reduction loops interchange-ready. *)

val sink_reductions : Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** Interchange reduction loops outward so lane-varying loops end up
    innermost (the classic matmul jk -> kj step). *)

val cpu_heuristic :
  ?fuse:bool -> Transform.Xforms.caps -> Ir.Prog.t -> Ir.Prog.t
(** One-shot CPU pass: fuse, parallelize, reuse what still may,
    distribute inits, sink reductions, then vectorize. *)

val gpu_heuristic :
  ?fuse:bool ->
  ?block:int ->
  ?warp:int ->
  ?vectorize:bool ->
  ?score:(Ir.Prog.t -> float) ->
  Transform.Xforms.caps ->
  Ir.Prog.t ->
  Ir.Prog.t
(** One-shot GPU pass: (optionally) fuse across operators, map grid,
    split off 4-wide per-thread vectors, ensure a block dimension
    (splitting oversized loops to [block]), pad ragged blocks to the
    [warp] multiple.  With [score] (modelled runtime), the grid
    dimension is chosen by one-step lookahead over the offered
    mappings. *)
