(** Simulated framework baselines.

    The paper compares against real frameworks on real hardware; this
    reproduction models each framework as a {e scheduling policy} over
    the same IR, scored by the same performance models as our own
    schedules (see DESIGN.md for the substitution table).  The policies
    encode the behaviours the paper attributes to each system:
    library-centric per-operator scheduling (PyTorch), elementwise
    fusion (JAX/XLA), conservative defaults (ONNXRuntime), near-optimal
    covered kernels (OneDNN), template-restricted budgeted search with
    the reported validation failures (TVM/Ansor), parallel+tile without
    vectorization and the LayerNorm numerical failure (Pluto), and
    SSR/FREP-aware handwritten Snitch kernels. *)

module Desc = Machine.Desc

type verdict =
  | Valid
  | Failed_validation  (** produced a numerically wrong result (§4.2) *)
  | No_valid_schedule  (** auto-scheduler timeout; default schedule used *)

type scheduled = {
  framework : string;
  prog : Ir.Prog.t;  (** the schedule actually timed *)
  dispatches : int;  (** framework-level kernel dispatches *)
  verdict : verdict;
}

val count_nests : Ir.Prog.t -> int

val library_tune : ?budget:int -> Desc.target -> Ir.Prog.t -> Ir.Prog.t
(** Per-operator structural refinement (mapping, tiling, interchange,
    padding — never cross-operator fusion or shape-specialized vectors):
    vendor libraries ship well-tuned launch configurations. *)

val pytorch : Desc.target -> Ir.Prog.t -> scheduled
val jax : Desc.target -> Ir.Prog.t -> scheduled
val onnxruntime : Desc.target -> Ir.Prog.t -> scheduled
val onednn : Desc.target -> Ir.Prog.t -> scheduled
val pluto : label:string -> Desc.target -> Ir.Prog.t -> scheduled

val tvm_template : Transform.Xforms.instance -> bool
(** The Ansor-style template restriction: structural moves only. *)

val tvm_fails : Desc.target -> string -> bool
(** Deterministic failure model per the paper's observations (batchnorm
    and swiglu never produce a valid schedule; additional GPU kernels
    time out). *)

val tvm :
  ?budget:int -> ?seed:int -> label:string -> Desc.target -> Ir.Prog.t ->
  scheduled

val handwritten_snitch : Transform.Xforms.caps -> Ir.Prog.t -> scheduled

val dispatch_overhead : Desc.target -> float
(** Per-dispatch framework overhead (operator dispatch, tensor
    bookkeeping). *)

val time : Desc.target -> scheduled -> float
(** Modelled runtime including dispatch overheads. *)
