(* Simulated framework baselines.

   The paper compares against real frameworks (PyTorch, TVM/Ansor, JAX,
   ONNXRuntime, OneDNN, Pluto) on real hardware; in this reproduction
   each framework is modelled as a *scheduling policy* over the same IR,
   scored by the same performance models as our own schedules (see
   DESIGN.md).  The policies encode the behaviours the paper attributes
   to each system:

   - PyTorch / libraries: excellent per-operator schedules but
     library-centric — no fusion across the operators of a composite
     kernel, one dispatch per operator, generic (shape-agnostic) launch
     configurations.
   - JAX/XLA: fuses elementwise chains, otherwise library-like.
   - ONNXRuntime (default EP): conservative, no vectorization.
   - OneDNN: near-optimal for the kernels it covers.
   - TVM (Ansor-style auto-scheduler): a template-restricted stochastic
     search with an evaluation budget, plus the schedule-validation
     failures the paper reports (batchnorm/swiglu produce no valid
     schedule and fall back to the default schedule; on GPU additional
     kernels time out, §4.3).
   - Pluto: --parallel --tile, no vectorization; its LayerNorm result
     fails numerical validation (§4.2) and is flagged as invalid.
   - Handwritten Snitch kernels: SSR/FREP-aware hand schedules with
     moderate (2-way) unrolling — strong, but missing the systematic
     4-way latency-hiding tiling that transformations find (§4.1). *)

open Transform
module Desc = Machine.Desc

type verdict = Valid | Failed_validation | No_valid_schedule

type scheduled = {
  framework : string;
  prog : Ir.Prog.t; (* the schedule actually timed *)
  dispatches : int; (* framework-level kernel dispatches *)
  verdict : verdict;
}

(* Top-level loop nests = operator dispatches for a library framework. *)
let count_nests (prog : Ir.Prog.t) =
  List.length
    (List.filter
       (function Ir.Types.Scope _ -> true | Ir.Types.Stmt _ -> false)
       prog.body)

let caps_for = Machine.caps

(* ------------------------------------------------------------------ *)
(* Library-style schedules                                             *)
(* ------------------------------------------------------------------ *)

(* Schedule each top-level nest like a well-tuned library kernel, without
   fusing across nests. *)
let library_schedule ?(vectorize = true) ?(gpu_vec = false) target prog =
  let caps = caps_for target in
  match target with
  | Desc.Cpu _ ->
      if vectorize then
        (* tuned per-operator schedule, but never across operators *)
        Search.Passes.cpu_heuristic ~fuse:false caps prog
      else Search.Passes.parallelize_outer caps prog
  | Desc.Gpu g ->
      (* one kernel per operator (no cross-operator fusion), generic
         block size, padding to the wavefront like any library; the
         launch configuration itself is well chosen (vendor libraries
         tune it per operator) *)
      let prog =
        Search.Passes.gpu_heuristic ~fuse:false ~warp:g.warp
          ~score:(fun p -> Machine.time target p)
          caps prog
      in
      if gpu_vec then prog
      else
        (* strip per-thread vectorization: generic libraries issue
           32-bit accesses for arbitrary shapes (the paper's elementwise
           analysis) *)
        let rec strip = function
          | Ir.Types.Scope sc when sc.annot = Ir.Types.Vec ->
              Ir.Types.Scope
                { sc with annot = Ir.Types.Unroll }
          | Ir.Types.Scope sc ->
              Ir.Types.Scope { sc with body = List.map strip sc.body }
          | n -> n
        in
        { prog with body = List.map strip prog.body }
  | Desc.Snitch _ ->
      (* plain C library on Snitch: no extension use *)
      prog

(* Vendor libraries ship *well-tuned per-operator* schedules: refine the
   generic mapping with a small structural search (mapping, tiling,
   interchange, padding — never cross-operator fusion, never
   shape-specialized vector widths). *)
let library_tune ?(budget = 80) target start =
  let caps = caps_for target in
  let filter (i : Xforms.instance) =
    match i.xname with
    | "split_scope" | "gpu_map" | "interchange" | "pad_scope"
    | "parallelize" | "unroll" | "unannotate" ->
        true
    | _ -> false
  in
  let r =
    Search.Stochastic.simulated_annealing ~seed:5 ~filter
      ~space:Search.Stochastic.Edges ~budget caps
      (fun p -> Machine.time target p)
      start
  in
  r.best

let pytorch target prog =
  let start = library_schedule target prog in
  let tuned =
    match target with Desc.Gpu _ -> library_tune target start | _ -> start
  in
  {
    framework = "PyTorch";
    prog = tuned;
    dispatches = count_nests prog;
    verdict = Valid;
  }

let jax target prog =
  (* XLA fuses elementwise producers/consumers first *)
  let caps = caps_for target in
  let fused =
    Search.Passes.fixpoint
      ~pick:(Search.Passes.first_of [ "join_scopes" ] caps)
      prog 100
  in
  let start = library_schedule target fused in
  let tuned =
    match target with Desc.Gpu _ -> library_tune target start | _ -> start
  in
  {
    framework = "JAX";
    prog = tuned;
    dispatches = count_nests fused;
    verdict = Valid;
  }

let onnxruntime target prog =
  {
    framework = "ONNXRuntime";
    prog = library_schedule ~vectorize:false target prog;
    dispatches = count_nests prog;
    verdict = Valid;
  }

let onednn target prog =
  let caps = caps_for target in
  {
    framework = "OneDNN";
    prog = Search.Passes.cpu_heuristic caps prog;
    dispatches = 1;
    verdict = Valid;
  }

let pluto ~label target prog =
  let caps = caps_for target in
  let fused = Search.Passes.naive caps prog in
  let tiled =
    (* --tile with default sizes: split outer loops by 32 when divisible *)
    Search.Passes.fixpoint
      ~pick:(fun p ->
        List.find_opt
          (fun (i : Xforms.instance) ->
            i.xname = "split_scope"
            && String.length i.target >= 9
            && String.sub i.target (String.length i.target - 9) 9
               = "factor 32"
            && String.length i.target <= 20 (* outer-ish paths only *))
          (Xforms.all caps p))
      fused 4
  in
  let prog' = Search.Passes.parallelize_outer caps tiled in
  {
    framework = "Pluto";
    prog = prog';
    dispatches = 1;
    verdict =
      (* the paper reports Pluto's LayerNorm failing numerical
         validation *)
      (if String.length label >= 9 && String.sub label 0 9 = "layernorm" then
         Failed_validation
       else Valid);
  }

(* ------------------------------------------------------------------ *)
(* TVM-style auto-scheduler                                            *)
(* ------------------------------------------------------------------ *)

(* Ansor-like template restriction: structural tiling/fusion/annotation
   moves only — no buffer-storage or layout moves, no padding. *)
let tvm_template (i : Xforms.instance) =
  match i.xname with
  | "split_scope" | "join_scopes" | "interchange" | "unroll" | "vectorize"
  | "parallelize" | "gpu_map" | "fission" ->
      true
  | _ -> false

(* Deterministic failure model per the paper's observations. *)
let tvm_fails target label =
  let has_prefix p =
    String.length label >= String.length p
    && String.sub label 0 (String.length p) = p
  in
  has_prefix "batchnorm" || has_prefix "swiglu"
  ||
  match target with
  | Desc.Gpu _ ->
      (* runtime-timeout failures on several GPU kernels (§4.3) *)
      let h = ref 0 in
      String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFF) label;
      !h mod 5 < 2
  | _ -> false

let tvm ?(budget = 1000) ?(seed = 11) ~label target prog =
  let caps = caps_for target in
  if tvm_fails target label then begin
    (* no valid schedule found: fall back to the default schedule — a
       plain untuned mapping (no launch-configuration search, no wide
       loads), as when TVM compiles the un-scheduled expression *)
    let default =
      match target with
      | Desc.Gpu g ->
          Search.Passes.gpu_heuristic ~fuse:false ~warp:g.warp
            ~vectorize:false (caps_for target) prog
      | _ -> prog
    in
    {
      framework = "TVM";
      prog = default;
      dispatches = 0;
      verdict = No_valid_schedule;
    }
  end
  else begin
    let objective p = Machine.time target p in
    (* Ansor generates sketch-structured initial candidates; start the
       tuning from a generic mapped/vectorized sketch rather than the
       bare loop nest *)
    let sketch =
      match target with
      | Desc.Gpu g ->
          Search.Passes.gpu_heuristic ~fuse:true ~warp:g.warp caps prog
      | Desc.Cpu _ -> Search.Passes.cpu_heuristic caps prog
      | Desc.Snitch _ -> prog
    in
    let start = if objective sketch < objective prog then sketch else prog in
    let r =
      Search.Stochastic.simulated_annealing ~seed ~filter:tvm_template
        ~space:Search.Stochastic.Edges ~budget caps objective start
    in
    let best = if r.best_time <= objective start then r.best else start in
    { framework = "TVM"; prog = best; dispatches = 0; verdict = Valid }
  end

(* ------------------------------------------------------------------ *)
(* Handwritten Snitch kernels                                          *)
(* ------------------------------------------------------------------ *)

let handwritten_snitch caps prog =
  let prog = Search.Passes.naive caps prog in
  (* hand-written Snitch kernels do use multiple accumulators for
     reductions; what they lack is the systematic tile-by-4 reshape for
     every nest (they unroll by 2) *)
  let prog =
    Search.Passes.fixpoint
      ~pick:(Search.Passes.first_of [ "split_reduction" ] caps)
      prog 32
  in
  let prog = Search.Passes.unroll_partial_accumulators caps prog in
  let prog = Search.Passes.tile_sink_unroll caps 2 prog in
  let prog =
    Search.Passes.fixpoint
      ~pick:(Search.Passes.first_of [ "enable_ssr" ] caps)
      prog 200
  in
  let prog =
    Search.Passes.fixpoint
      ~pick:(Search.Passes.first_of [ "enable_frep" ] caps)
      prog 200
  in
  {
    framework = "handwritten";
    prog;
    dispatches = 1;
    verdict = Valid;
  }

(* ------------------------------------------------------------------ *)
(* Timing with framework overheads                                     *)
(* ------------------------------------------------------------------ *)

(* Per-dispatch framework overhead (operator dispatch, tensor
   bookkeeping): libraries pay it per unfused operator. *)
let dispatch_overhead target =
  match target with
  | Desc.Gpu _ -> 6.0e-6
  | Desc.Cpu _ -> 1.5e-6
  | Desc.Snitch _ -> 0.0

let time target (s : scheduled) : float =
  (* frameworks pay the dispatch overhead on every operator call
     (framework bookkeeping on top of the modelled launch cost) *)
  Machine.time target s.prog
  +. (float_of_int (max 0 s.dispatches) *. dispatch_overhead target)
