(* The ML operator set of the paper (Table 3) plus the §4.1 Snitch
   micro-kernels, expressed as *naive* IR programs: canonical textbook
   loop nests with no scheduling decisions applied.  Every optimization
   the system performs starts from these.

   Shapes are parameters so the same kernels serve the cost models at
   paper scale and the reference interpreter at test scale. *)

open Ir.Types

let ix = Ir.Index.iter
let cix ?(o = 0) terms : index = Ir.Index.normalize terms o
let r array idx : expr = Ref { array; idx }
let ( += ) dst e = Stmt { dst; rhs = Bin (Add, Ref dst, e) }
let ( <-- ) dst rhs = Stmt { dst; rhs }
let acc array idx : access = { array; idx }
let sq e = Bin (Mul, e, e)
let sc = Ir.Types.scope
let buf = Ir.Types.buffer

(* ------------------------------------------------------------------ *)
(* Elementwise kernels                                                 *)
(* ------------------------------------------------------------------ *)

let binary_elementwise ~name ~op ~n ~m : Ir.Prog.t =
  {
    buffers =
      [
        buf "x" F32 [ n; m ];
        buf "y" F32 [ n; m ];
        buf "z" F32 [ n; m ];
      ];
    inputs = [ "x"; "y" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            sc m
              [
                acc "z" [ ix 0; ix 1 ]
                <-- Bin (op, r "x" [ ix 0; ix 1 ], r "y" [ ix 0; ix 1 ]);
              ];
          ];
      ];
  }
  |> fun p -> ignore name; p

let add ~n ~m = binary_elementwise ~name:"add" ~op:Add ~n ~m
let mul ~n ~m = binary_elementwise ~name:"mul" ~op:Mul ~n ~m

let relu ~n ~m : Ir.Prog.t =
  {
    buffers = [ buf "x" F32 [ n; m ]; buf "z" F32 [ n; m ] ];
    inputs = [ "x" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [ sc m [ acc "z" [ ix 0; ix 1 ] <-- Un (Relu, r "x" [ ix 0; ix 1 ]) ] ];
      ];
  }

(* ------------------------------------------------------------------ *)
(* Reductions and normalizations                                       *)
(* ------------------------------------------------------------------ *)

let reducemean ~n ~m : Ir.Prog.t =
  {
    buffers = [ buf "x" F32 [ n; m ]; buf "z" F32 [ n ] ];
    inputs = [ "x" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            acc "z" [ ix 0 ] <-- Const 0.0;
            sc m [ acc "z" [ ix 0 ] += r "x" [ ix 0; ix 1 ] ];
            acc "z" [ ix 0 ]
            <-- Bin (Div, r "z" [ ix 0 ], Const (float_of_int m));
          ];
      ];
  }

(* Softmax over rows, the paper's running example (Figure 3).  The naive
   form keeps the four phases in separate inner loops; fusion and buffer
   reuse are discovered by transformations. *)
let softmax ~n ~m : Ir.Prog.t =
  {
    buffers =
      [
        buf "x" F32 [ n; m ];
        buf "mx" F32 [ n ] ~loc:Heap;
        buf "e" F32 [ n; m ];
        buf "s" F32 [ n ] ~loc:Heap;
        buf "z" F32 [ n; m ];
      ];
    inputs = [ "x" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            acc "mx" [ ix 0 ] <-- Const Float.neg_infinity;
            sc m
              [
                acc "mx" [ ix 0 ]
                <-- Bin (Max, r "mx" [ ix 0 ], r "x" [ ix 0; ix 1 ]);
              ];
            acc "s" [ ix 0 ] <-- Const 0.0;
            sc m
              [
                acc "e" [ ix 0; ix 1 ]
                <-- Un (Exp, Bin (Sub, r "x" [ ix 0; ix 1 ], r "mx" [ ix 0 ]));
              ];
            sc m [ acc "s" [ ix 0 ] += r "e" [ ix 0; ix 1 ] ];
            sc m
              [
                acc "z" [ ix 0; ix 1 ]
                <-- Bin (Div, r "e" [ ix 0; ix 1 ], r "s" [ ix 0 ]);
              ];
          ];
      ];
  }

let layernorm ~n ~m : Ir.Prog.t =
  let fm = float_of_int m in
  {
    buffers =
      [
        buf "x" F32 [ n; m ];
        buf "g" F32 [ m ];
        buf "b" F32 [ m ];
        buf "mu" F32 [ n ];
        buf "var" F32 [ n ];
        buf "rstd" F32 [ n ];
        buf "z" F32 [ n; m ];
      ];
    inputs = [ "x"; "g"; "b" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            acc "mu" [ ix 0 ] <-- Const 0.0;
            sc m [ acc "mu" [ ix 0 ] += r "x" [ ix 0; ix 1 ] ];
            acc "mu" [ ix 0 ] <-- Bin (Div, r "mu" [ ix 0 ], Const fm);
            acc "var" [ ix 0 ] <-- Const 0.0;
            sc m
              [
                acc "var" [ ix 0 ]
                += sq (Bin (Sub, r "x" [ ix 0; ix 1 ], r "mu" [ ix 0 ]));
              ];
            acc "var" [ ix 0 ] <-- Bin (Div, r "var" [ ix 0 ], Const fm);
            acc "rstd" [ ix 0 ]
            <-- Un (Recip, Un (Sqrt, Bin (Add, r "var" [ ix 0 ], Const 1e-5)));
            sc m
              [
                acc "z" [ ix 0; ix 1 ]
                <-- Bin
                      ( Add,
                        Bin
                          ( Mul,
                            Bin
                              ( Mul,
                                Bin (Sub, r "x" [ ix 0; ix 1 ], r "mu" [ ix 0 ]),
                                r "rstd" [ ix 0 ] ),
                            r "g" [ ix 1 ] ),
                        r "b" [ ix 1 ] );
              ];
          ];
      ];
  }

let rmsnorm ~n ~m : Ir.Prog.t =
  let fm = float_of_int m in
  {
    buffers =
      [
        buf "x" F32 [ n; m ];
        buf "g" F32 [ m ];
        buf "ss" F32 [ n ];
        buf "rr" F32 [ n ];
        buf "z" F32 [ n; m ];
      ];
    inputs = [ "x"; "g" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            acc "ss" [ ix 0 ] <-- Const 0.0;
            sc m [ acc "ss" [ ix 0 ] += sq (r "x" [ ix 0; ix 1 ]) ];
            acc "rr" [ ix 0 ]
            <-- Un
                  ( Recip,
                    Un
                      ( Sqrt,
                        Bin
                          ( Add,
                            Bin (Div, r "ss" [ ix 0 ], Const fm),
                            Const 1e-5 ) ) );
            sc m
              [
                acc "z" [ ix 0; ix 1 ]
                <-- Bin
                      ( Mul,
                        Bin (Mul, r "x" [ ix 0; ix 1 ], r "rr" [ ix 0 ]),
                        r "g" [ ix 1 ] );
              ];
          ];
      ];
  }

(* ------------------------------------------------------------------ *)
(* Contractions                                                        *)
(* ------------------------------------------------------------------ *)

let matmul ~m ~n ~k : Ir.Prog.t =
  {
    buffers =
      [ buf "a" F32 [ m; k ]; buf "b" F32 [ k; n ]; buf "c" F32 [ m; n ] ];
    inputs = [ "a"; "b" ];
    outputs = [ "c" ];
    body =
      [
        sc m
          [
            sc n
              [
                acc "c" [ ix 0; ix 1 ] <-- Const 0.0;
                sc k
                  [
                    acc "c" [ ix 0; ix 1 ]
                    += Bin (Mul, r "a" [ ix 0; ix 2 ], r "b" [ ix 2; ix 1 ]);
                  ];
              ];
          ];
      ];
  }

let bmm ~b ~m ~k ~n : Ir.Prog.t =
  {
    buffers =
      [
        buf "x" F32 [ b; m; k ];
        buf "y" F32 [ b; k; n ];
        buf "z" F32 [ b; m; n ];
      ];
    inputs = [ "x"; "y" ];
    outputs = [ "z" ];
    body =
      [
        sc b
          [
            sc m
              [
                sc n
                  [
                    acc "z" [ ix 0; ix 1; ix 2 ] <-- Const 0.0;
                    sc k
                      [
                        acc "z" [ ix 0; ix 1; ix 2 ]
                        += Bin
                             ( Mul,
                               r "x" [ ix 0; ix 1; ix 3 ],
                               r "y" [ ix 0; ix 3; ix 2 ] );
                      ];
                  ];
              ];
          ];
      ];
  }

(* 2D convolution, NCHW, square kernel of side [kside], no stride, valid
   padding: input H and W are enlarged by kside-1 as in the paper's shape
   listing (conv 1: 8×10×3×512×512×5). *)
let conv2d ~n ~f ~c ~h ~w ~kside : Ir.Prog.t =
  let hin = h + kside - 1 and win = w + kside - 1 in
  {
    buffers =
      [
        buf "x" F32 [ n; c; hin; win ];
        buf "k" F32 [ f; c; kside; kside ];
        buf "z" F32 [ n; f; h; w ];
      ];
    inputs = [ "x"; "k" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            sc f
              [
                sc h
                  [
                    sc w
                      [
                        acc "z" [ ix 0; ix 1; ix 2; ix 3 ] <-- Const 0.0;
                        sc c
                          [
                            sc kside
                              [
                                sc kside
                                  [
                                    acc "z" [ ix 0; ix 1; ix 2; ix 3 ]
                                    += Bin
                                         ( Mul,
                                           r "x"
                                             [
                                               ix 0;
                                               ix 4;
                                               cix [ (1, 2); (1, 5) ];
                                               cix [ (1, 3); (1, 6) ];
                                             ],
                                           r "k" [ ix 1; ix 4; ix 5; ix 6 ] );
                                  ];
                              ];
                          ];
                      ];
                  ];
              ];
          ];
      ];
  }

(* Batch normalization (training-statistics form): per-channel mean and
   variance over N×H×W, then the affine normalization.  The temporaries
   e, v, a, b match the paper's §4.3 discussion. *)
let batchnorm ~n ~c ~h ~w : Ir.Prog.t =
  let count = float_of_int (n * h * w) in
  {
    buffers =
      [
        buf "x" F32 [ n; c; h; w ];
        buf "gamma" F32 [ c ];
        buf "beta" F32 [ c ];
        buf "e" F32 [ c ];
        buf "v" F32 [ c ];
        buf "a" F32 [ c ];
        buf "b" F32 [ c ];
        buf "z" F32 [ n; c; h; w ];
      ];
    inputs = [ "x"; "gamma"; "beta" ];
    outputs = [ "z" ];
    body =
      [
        sc c
          [
            acc "e" [ ix 0 ] <-- Const 0.0;
            sc n
              [
                sc h
                  [ sc w [ acc "e" [ ix 0 ] += r "x" [ ix 1; ix 0; ix 2; ix 3 ] ] ];
              ];
            acc "e" [ ix 0 ] <-- Bin (Div, r "e" [ ix 0 ], Const count);
            acc "v" [ ix 0 ] <-- Const 0.0;
            sc n
              [
                sc h
                  [
                    sc w
                      [
                        acc "v" [ ix 0 ]
                        += sq
                             (Bin
                                ( Sub,
                                  r "x" [ ix 1; ix 0; ix 2; ix 3 ],
                                  r "e" [ ix 0 ] ));
                      ];
                  ];
              ];
            acc "v" [ ix 0 ] <-- Bin (Div, r "v" [ ix 0 ], Const count);
            acc "a" [ ix 0 ]
            <-- Bin
                  ( Mul,
                    r "gamma" [ ix 0 ],
                    Un (Recip, Un (Sqrt, Bin (Add, r "v" [ ix 0 ], Const 1e-5)))
                  );
            acc "b" [ ix 0 ]
            <-- Bin (Sub, r "beta" [ ix 0 ], Bin (Mul, r "a" [ ix 0 ], r "e" [ ix 0 ]));
          ];
        sc n
          [
            sc c
              [
                sc h
                  [
                    sc w
                      [
                        acc "z" [ ix 0; ix 1; ix 2; ix 3 ]
                        <-- Bin
                              ( Add,
                                Bin
                                  ( Mul,
                                    r "a" [ ix 1 ],
                                    r "x" [ ix 0; ix 1; ix 2; ix 3 ] ),
                                r "b" [ ix 1 ] );
                      ];
                  ];
              ];
          ];
      ];
  }

(* SwiGLU: z = silu(x·w1) ⊙ (x·w2), with silu(g) = g / (1 + exp(-g)). *)
let swiglu ~m ~k ~n : Ir.Prog.t =
  {
    buffers =
      [
        buf "x" F32 [ m; k ];
        buf "w1" F32 [ k; n ];
        buf "w2" F32 [ k; n ];
        buf "gg" F32 [ m; n ];
        buf "u" F32 [ m; n ];
        buf "z" F32 [ m; n ];
      ];
    inputs = [ "x"; "w1"; "w2" ];
    outputs = [ "z" ];
    body =
      [
        sc m
          [
            sc n
              [
                acc "gg" [ ix 0; ix 1 ] <-- Const 0.0;
                sc k
                  [
                    acc "gg" [ ix 0; ix 1 ]
                    += Bin (Mul, r "x" [ ix 0; ix 2 ], r "w1" [ ix 2; ix 1 ]);
                  ];
              ];
          ];
        sc m
          [
            sc n
              [
                acc "u" [ ix 0; ix 1 ] <-- Const 0.0;
                sc k
                  [
                    acc "u" [ ix 0; ix 1 ]
                    += Bin (Mul, r "x" [ ix 0; ix 2 ], r "w2" [ ix 2; ix 1 ]);
                  ];
              ];
          ];
        sc m
          [
            sc n
              [
                acc "z" [ ix 0; ix 1 ]
                <-- Bin
                      ( Mul,
                        Bin
                          ( Div,
                            r "gg" [ ix 0; ix 1 ],
                            Bin
                              ( Add,
                                Const 1.0,
                                Un (Exp, Un (Neg, r "gg" [ ix 0; ix 1 ])) ) ),
                        r "u" [ ix 0; ix 1 ] );
              ];
          ];
      ];
  }

(* ReLU + pointwise feed-forward: z[n,f,h,w] = relu(Σc x[n,c,h,w]·wt[f,c] + bias[f]) *)
let relu_ffn ~n ~c ~h ~w : Ir.Prog.t =
  {
    buffers =
      [
        buf "x" F32 [ n; c; h; w ];
        buf "wt" F32 [ c; c ];
        buf "bias" F32 [ c ];
        buf "t" F32 [ n; c; h; w ];
        buf "z" F32 [ n; c; h; w ];
      ];
    inputs = [ "x"; "wt"; "bias" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            sc c
              [
                sc h
                  [
                    sc w
                      [
                        acc "t" [ ix 0; ix 1; ix 2; ix 3 ] <-- r "bias" [ ix 1 ];
                        sc c
                          [
                            acc "t" [ ix 0; ix 1; ix 2; ix 3 ]
                            += Bin
                                 ( Mul,
                                   r "x" [ ix 0; ix 4; ix 2; ix 3 ],
                                   r "wt" [ ix 1; ix 4 ] );
                          ];
                        acc "z" [ ix 0; ix 1; ix 2; ix 3 ]
                        <-- Un (Relu, r "t" [ ix 0; ix 1; ix 2; ix 3 ]);
                      ];
                  ];
              ];
          ];
      ];
  }

(* ------------------------------------------------------------------ *)
(* Snitch micro-kernels (§4.1)                                         *)
(* ------------------------------------------------------------------ *)

let axpy ~n : Ir.Prog.t =
  {
    buffers =
      [ buf "x" F32 [ n ]; buf "y" F32 [ n ]; buf "alpha" F32 [ 1 ];
        buf "z" F32 [ n ] ];
    inputs = [ "x"; "y"; "alpha" ];
    outputs = [ "z" ];
    body =
      [
        sc n
          [
            acc "z" [ ix 0 ]
            <-- Bin
                  ( Add,
                    Bin (Mul, r "alpha" [ Ir.Index.const 0 ], r "x" [ ix 0 ]),
                    r "y" [ ix 0 ] );
          ];
      ];
  }

let dot ~n : Ir.Prog.t =
  {
    buffers =
      [ buf "x" F32 [ n ]; buf "y" F32 [ n ]; buf "z" F32 [ 1 ] ];
    inputs = [ "x"; "y" ];
    outputs = [ "z" ];
    body =
      [
        (acc "z" [ Ir.Index.const 0 ] <-- Const 0.0);
        sc n
          [
            acc "z" [ Ir.Index.const 0 ]
            += Bin (Mul, r "x" [ ix 0 ], r "y" [ ix 0 ]);
          ];
      ];
  }

let vecsum ~n : Ir.Prog.t =
  {
    buffers = [ buf "x" F32 [ n ]; buf "z" F32 [ 1 ] ];
    inputs = [ "x" ];
    outputs = [ "z" ];
    body =
      [
        (acc "z" [ Ir.Index.const 0 ] <-- Const 0.0);
        sc n [ acc "z" [ Ir.Index.const 0 ] += r "x" [ ix 0 ] ];
      ];
  }

let gemv ~m ~n : Ir.Prog.t =
  {
    buffers =
      [ buf "a" F32 [ m; n ]; buf "x" F32 [ n ]; buf "z" F32 [ m ] ];
    inputs = [ "a"; "x" ];
    outputs = [ "z" ];
    body =
      [
        sc m
          [
            acc "z" [ ix 0 ] <-- Const 0.0;
            sc n
              [ acc "z" [ ix 0 ] += Bin (Mul, r "a" [ ix 0; ix 1 ], r "x" [ ix 1 ]) ];
          ];
      ];
  }

let scale ~n : Ir.Prog.t =
  {
    buffers = [ buf "x" F32 [ n ]; buf "z" F32 [ n ] ];
    inputs = [ "x" ];
    outputs = [ "z" ];
    body = [ sc n [ acc "z" [ ix 0 ] <-- Bin (Mul, r "x" [ ix 0 ], Const 2.5) ] ];
  }

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)
(* ------------------------------------------------------------------ *)

type entry = {
  label : string;
  shape_desc : string;
  description : string;
  build : unit -> Ir.Prog.t; (* paper-scale shapes *)
  build_small : unit -> Ir.Prog.t; (* interpreter-friendly shapes *)
}

(* Table 3 of the paper, with the exact shapes listed there. *)
let table3 : entry list =
  [
    {
      label = "add";
      shape_desc = "3072x4096";
      description = "Elementwise addition";
      build = (fun () -> add ~n:3072 ~m:4096);
      build_small = (fun () -> add ~n:6 ~m:8);
    };
    {
      label = "batchnorm 1";
      shape_desc = "8x3x2048x2048";
      description = "Batch Normalization";
      build = (fun () -> batchnorm ~n:8 ~c:3 ~h:2048 ~w:2048);
      build_small = (fun () -> batchnorm ~n:2 ~c:3 ~h:4 ~w:4);
    };
    {
      label = "batchnorm 2";
      shape_desc = "8x64x300x300";
      description = "Batch Normalization";
      build = (fun () -> batchnorm ~n:8 ~c:64 ~h:300 ~w:300);
      build_small = (fun () -> batchnorm ~n:2 ~c:4 ~h:3 ~w:3);
    };
    {
      label = "bmm";
      shape_desc = "192x256x128x256";
      description = "Batched Matrix Multiplication";
      build = (fun () -> bmm ~b:192 ~m:256 ~k:128 ~n:256);
      build_small = (fun () -> bmm ~b:2 ~m:4 ~k:3 ~n:4);
    };
    {
      label = "conv 1";
      shape_desc = "8x10x3x512x512x5";
      description = "2D Convolution";
      build = (fun () -> conv2d ~n:8 ~f:10 ~c:3 ~h:512 ~w:512 ~kside:5);
      build_small = (fun () -> conv2d ~n:1 ~f:2 ~c:2 ~h:4 ~w:4 ~kside:3);
    };
    {
      label = "conv 2";
      shape_desc = "8x64x64x56x56x3";
      description = "2D convolution";
      build = (fun () -> conv2d ~n:8 ~f:64 ~c:64 ~h:56 ~w:56 ~kside:3);
      build_small = (fun () -> conv2d ~n:1 ~f:3 ~c:3 ~h:4 ~w:4 ~kside:3);
    };
    {
      label = "layernorm 1";
      shape_desc = "16384x1024";
      description = "Layer Normalization";
      build = (fun () -> layernorm ~n:16384 ~m:1024);
      build_small = (fun () -> layernorm ~n:4 ~m:8);
    };
    {
      label = "layernorm 2";
      shape_desc = "4096x4096";
      description = "Layer Normalization";
      build = (fun () -> layernorm ~n:4096 ~m:4096);
      build_small = (fun () -> layernorm ~n:3 ~m:6);
    };
    {
      label = "matmul";
      shape_desc = "768x1024x1024";
      description = "Matrix Multiplication";
      build = (fun () -> matmul ~m:768 ~k:1024 ~n:1024);
      build_small = (fun () -> matmul ~m:4 ~k:5 ~n:6);
    };
    {
      label = "mul";
      shape_desc = "6x14336";
      description = "Elementwise multiplication";
      build = (fun () -> mul ~n:6 ~m:14336);
      build_small = (fun () -> mul ~n:3 ~m:8);
    };
    {
      label = "reducemean";
      shape_desc = "4096x4096";
      description = "Average along axis";
      build = (fun () -> reducemean ~n:4096 ~m:4096);
      build_small = (fun () -> reducemean ~n:4 ~m:8);
    };
    {
      label = "relu";
      shape_desc = "4096x4096";
      description = "Rectified Linear Unit (ReLU)";
      build = (fun () -> relu ~n:4096 ~m:4096);
      build_small = (fun () -> relu ~n:4 ~m:8);
    };
    {
      label = "relu_ffn";
      shape_desc = "8x64x112x112";
      description = "ReLU+FeedForward Network";
      build = (fun () -> relu_ffn ~n:8 ~c:64 ~h:112 ~w:112);
      build_small = (fun () -> relu_ffn ~n:1 ~c:3 ~h:2 ~w:2);
    };
    {
      label = "rmsnorm";
      shape_desc = "3072x4096";
      description = "Root Mean Square Normalization";
      build = (fun () -> rmsnorm ~n:3072 ~m:4096);
      build_small = (fun () -> rmsnorm ~n:3 ~m:8);
    };
    {
      label = "softmax";
      shape_desc = "24576x512";
      description = "Softmax";
      build = (fun () -> softmax ~n:24576 ~m:512);
      build_small = (fun () -> softmax ~n:4 ~m:8);
    };
    {
      label = "swiglu";
      shape_desc = "1x256x4096x448";
      description = "SwiGLU activation function";
      build = (fun () -> swiglu ~m:256 ~k:4096 ~n:448);
      build_small = (fun () -> swiglu ~m:3 ~k:4 ~n:5);
    };
  ]

(* Micro-kernels used for the Snitch RISC-V evaluation (§4.1).  Sizes are
   small enough for the cycle-approximate simulator to stay deterministic
   and fast, matching the single-cluster micro-benchmark setting. *)
let snitch_micro : entry list =
  [
    {
      label = "axpy";
      shape_desc = "1024";
      description = "z = alpha*x + y";
      build = (fun () -> axpy ~n:1024);
      build_small = (fun () -> axpy ~n:16);
    };
    {
      label = "dot";
      shape_desc = "1024";
      description = "dot product";
      build = (fun () -> dot ~n:1024);
      build_small = (fun () -> dot ~n:16);
    };
    {
      label = "vecsum";
      shape_desc = "1024";
      description = "vector sum reduction";
      build = (fun () -> vecsum ~n:1024);
      build_small = (fun () -> vecsum ~n:16);
    };
    {
      label = "gemv";
      shape_desc = "64x64";
      description = "matrix-vector product";
      build = (fun () -> gemv ~m:64 ~n:64);
      build_small = (fun () -> gemv ~m:4 ~n:6);
    };
    {
      label = "scale";
      shape_desc = "1024";
      description = "scalar scaling";
      build = (fun () -> scale ~n:1024);
      build_small = (fun () -> scale ~n:16);
    };
    {
      label = "sum2d";
      shape_desc = "32x32";
      description = "2D mean reduction";
      build = (fun () -> reducemean ~n:32 ~m:32);
      build_small = (fun () -> reducemean ~n:4 ~m:4);
    };
    {
      label = "softmax_micro";
      shape_desc = "16x64";
      description = "small softmax";
      build = (fun () -> softmax ~n:16 ~m:64);
      build_small = (fun () -> softmax ~n:4 ~m:8);
    };
    {
      label = "relu_micro";
      shape_desc = "32x32";
      description = "small ReLU";
      build = (fun () -> relu ~n:32 ~m:32);
      build_small = (fun () -> relu ~n:4 ~m:8);
    };
  ]

let find_entry (entries : entry list) label =
  match List.find_opt (fun e -> e.label = label) entries with
  | Some e -> e
  | None -> invalid_arg ("unknown kernel " ^ label)
