(** The paper's operator set as naive IR programs: canonical textbook
    loop nests with no scheduling applied — every optimization starts
    from these.  Shapes are parameters so the same builders serve the
    performance models at paper scale and the reference interpreter at
    test scale. *)

(** {1 Elementwise} *)

val add : n:int -> m:int -> Ir.Prog.t
val mul : n:int -> m:int -> Ir.Prog.t
val relu : n:int -> m:int -> Ir.Prog.t
val scale : n:int -> Ir.Prog.t
(** [z = 2.5 * x] — Snitch micro-kernel. *)

(** {1 Reductions and normalizations} *)

val reducemean : n:int -> m:int -> Ir.Prog.t
val softmax : n:int -> m:int -> Ir.Prog.t
(** Row softmax, the paper's running example (Figure 3): max, exp, sum
    and divide phases in separate loops; fusion is discovered by
    transformations. *)

val layernorm : n:int -> m:int -> Ir.Prog.t
val rmsnorm : n:int -> m:int -> Ir.Prog.t
val batchnorm : n:int -> c:int -> h:int -> w:int -> Ir.Prog.t
(** Training-statistics form with the temporaries e, v, a, b of §4.3. *)

(** {1 Contractions} *)

val matmul : m:int -> n:int -> k:int -> Ir.Prog.t
val bmm : b:int -> m:int -> k:int -> n:int -> Ir.Prog.t
val conv2d :
  n:int -> f:int -> c:int -> h:int -> w:int -> kside:int -> Ir.Prog.t
val swiglu : m:int -> k:int -> n:int -> Ir.Prog.t
val relu_ffn : n:int -> c:int -> h:int -> w:int -> Ir.Prog.t
val gemv : m:int -> n:int -> Ir.Prog.t
val dot : n:int -> Ir.Prog.t
val axpy : n:int -> Ir.Prog.t
val vecsum : n:int -> Ir.Prog.t

(** {1 Registries} *)

type entry = {
  label : string;
  shape_desc : string;
  description : string;
  build : unit -> Ir.Prog.t;  (** paper-scale shapes *)
  build_small : unit -> Ir.Prog.t;  (** interpreter-friendly shapes *)
}

val table3 : entry list
(** The 16 operators of Table 3, with the paper's exact shapes. *)

val snitch_micro : entry list
(** Micro-kernels for the Snitch evaluation (§4.1). *)

val find_entry : entry list -> string -> entry
(** Lookup by label; raises [Invalid_argument] when unknown. *)
