lib/machine/cpu_model.mli: Desc Ir
