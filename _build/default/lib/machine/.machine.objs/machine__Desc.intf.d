lib/machine/desc.mli: Transform
