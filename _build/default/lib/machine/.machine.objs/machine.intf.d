lib/machine/machine.mli: Costs Cpu_model Desc Gpu_model Ir Snitch_sim Transform
