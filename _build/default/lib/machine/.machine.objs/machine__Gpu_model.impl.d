lib/machine/gpu_model.ml: Costs Desc Float Ir List
