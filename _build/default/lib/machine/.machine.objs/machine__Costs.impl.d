lib/machine/costs.ml: Ir List
