lib/machine/snitch_sim.mli: Desc Ir
