lib/machine/desc.ml: Transform
