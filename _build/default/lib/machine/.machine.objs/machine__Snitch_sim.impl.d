lib/machine/snitch_sim.ml: Costs Desc Float Ir List
