lib/machine/costs.mli: Ir
