lib/machine/cpu_model.ml: Costs Desc Float Ir List
