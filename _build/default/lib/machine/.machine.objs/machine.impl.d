lib/machine/machine.ml: Costs Cpu_model Desc Gpu_model Ir Snitch_sim
