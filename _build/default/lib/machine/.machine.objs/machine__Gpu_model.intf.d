lib/machine/gpu_model.mli: Desc Ir
