(** Analytic GPU cost model.

    A kernel is a GpuGrid-annotated scope; everything else runs on the
    (slow) host, and host loops containing kernels relaunch them per
    iteration — this is how the paper's MI300A batchnorm computes its
    temporaries on the CPU before the kernel launch (§4.3).

    Per kernel the model is a roofline: compute from peak FP throughput
    derated by occupancy and wavefront-padding efficiency; memory from
    HBM bandwidth derated by coalescing (lockstep unit-stride block
    lanes, or per-thread 128-bit vectors covering the gap) and
    transaction width; plus a launch overhead. *)

type kernel_stats = {
  flops : float;
  traffic_bytes : float;  (** HBM traffic after coalescing derating *)
  total_threads : float;
  wave_eff : float;  (** useful fraction of wavefront slots *)
  vectorized : bool;  (** per-thread wide loads present *)
  has_block : bool;
}

val analyze_kernel :
  Desc.gpu -> Ir.Prog.t -> int -> Ir.Types.scope -> kernel_stats
(** Analyze the subtree of a grid scope at the given depth. *)

val kernel_time : Desc.gpu -> kernel_stats -> float

val time : Desc.gpu -> Ir.Prog.t -> float
(** Estimated runtime in seconds of the whole program (host + kernels). *)
