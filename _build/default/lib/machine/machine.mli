(** Unified entry point over the three performance backends (analytic
    CPU model, analytic GPU model, cycle-approximate Snitch simulator).

    Submodules re-exported for external users: {!Desc} (machine
    descriptors), {!Costs}, {!Cpu_model}, {!Gpu_model}, {!Snitch_sim}. *)

module Desc = Desc
module Costs = Costs
module Cpu_model = Cpu_model
module Gpu_model = Gpu_model
module Snitch_sim = Snitch_sim

val time : Desc.target -> Ir.Prog.t -> float
(** Modelled runtime in seconds of a scheduled program on the target. *)

val caps : Desc.target -> Transform.Xforms.caps
(** The transformation capabilities the target exposes — the paper's
    vendor interface: hardware-aware transformations, not libraries. *)

val gflops : Desc.target -> Ir.Prog.t -> float
(** Achieved GFLOP/s under the target's model, counting the program's
    logical (unfused) arithmetic. *)
