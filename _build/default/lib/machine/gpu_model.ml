(* Analytic GPU cost model.

   A kernel is a GpuGrid-annotated scope; everything else runs on the
   host.  Host loops that contain kernels relaunch them per iteration
   (this is how the paper's MI300A batchnorm computes its temporaries on
   the CPU before launching the normalization kernel).

   Per kernel the model is a roofline: compute time from the peak FP
   throughput derated by occupancy and wavefront padding efficiency,
   memory time from HBM bandwidth derated by coalescing and transaction
   width, plus a launch overhead. *)

open Ir.Types

(* ------------------------------------------------------------------ *)
(* Kernel analysis                                                     *)
(* ------------------------------------------------------------------ *)

type kernel_stats = {
  flops : float;
  traffic_bytes : float; (* HBM traffic after coalescing derating *)
  total_threads : float;
  wave_eff : float; (* useful fraction of wavefront slots *)
  vectorized : bool; (* per-thread wide loads present *)
  has_block : bool;
}

let scope_trip (sc : scope) =
  match sc.guard with Some g -> g | None -> sc.size

(* Analyze the subtree of a grid scope. *)
let analyze_kernel (gpu : Desc.gpu) (prog : Ir.Prog.t) (grid_depth : int)
    (grid : scope) : kernel_stats =
  let flops = ref 0.0 in
  let traffic = ref 0.0 in
  let blocks = ref (float_of_int grid.size) in
  let max_tpb = ref 1.0 in
  let wave_eff = ref 1.0 in
  let vectorized = ref false in
  let has_block = ref false in
  (* [loops]: enclosing (depth, scope, trip) inside the kernel, innermost
     first; [block_iter]: depth of the innermost block-mapped scope,
     which is the lane dimension for coalescing; [vec]: innermost
     enclosing Vec scope (depth, lanes) *)
  let coalesce_of block_iter vec (a : access) =
    match block_iter with
    | None -> 2.0 (* no block mapping: poor access pattern *)
    | Some bd ->
        let n = List.length a.idx in
        let depends_bd =
          List.exists (fun i -> Ir.Index.depends_on bd i) a.idx
        in
        if not depends_bd then 0.1 (* broadcast through cache *)
        else begin
          (* contiguous iff the block iterator only drives the last
             dimension, either with unit stride or with stride equal to
             the per-thread vector width while the vector lane covers the
             gap (each thread loads one contiguous 128-bit chunk) *)
          let ok = ref false and bad = ref false in
          List.iteri
            (fun dim i ->
              let cb = Ir.Index.coeff_of bd i in
              if cb <> 0 then begin
                if dim <> n - 1 then bad := true
                else if cb = 1 then ok := true
                else
                  match vec with
                  | Some (vd, lanes)
                    when cb = lanes && Ir.Index.coeff_of vd i = 1 ->
                      ok := true
                  | _ -> bad := true
              end)
            a.idx;
          if !ok && not !bad then 1.0 else 8.0
        end
  in
  let rec go depth loops block_iter vec tpb mult nodes =
    List.iter
      (fun node ->
        match node with
        | Stmt s ->
            flops := !flops +. (mult *. float_of_int (Costs.stmt_fused_ops s));
            if vec <> None then vectorized := true;
            List.iter
              (fun ((_ : bool), (a : access)) ->
                let b = Ir.Prog.buffer_of_array prog a.array in
                if b.loc = Register || b.loc = Shared then ()
                else begin
                  let bytes = float_of_int (dtype_bytes b.dtype) in
                  (* elements touched by this site: product of trips of
                     enclosing kernel loops the access varies with *)
                  let varying =
                    List.fold_left
                      (fun acc (d, _, trip) ->
                        if List.exists (fun i -> Ir.Index.depends_on d i) a.idx
                        then acc *. trip
                        else acc)
                      1.0 loops
                  in
                  let buffer_bytes =
                    float_of_int (Ir.Prog.buffer_bytes b)
                  in
                  let raw = varying *. bytes in
                  (* repeated sweeps over a cache-resident buffer hit L2 *)
                  let bytes_moved =
                    if
                      raw > buffer_bytes
                      && buffer_bytes <= 48.0 *. 1024.0 *. 1024.0
                    then buffer_bytes
                    else raw
                  in
                  let coalesce = coalesce_of block_iter vec a in
                  traffic := !traffic +. (bytes_moved *. coalesce)
                end)
              (Costs.stmt_accesses s)
        | Scope sc ->
            let trip = float_of_int (scope_trip sc) in
            (match sc.annot with
            | GpuBlock | GpuWarp ->
                has_block := true;
                (* sibling block-mapped phases run one after another with
                   the same thread pool: threads per block along a path
                   multiply (block x warp lanes), phases take the max *)
                let tpb' = tpb *. float_of_int sc.size in
                max_tpb := Float.max !max_tpb tpb';
                if sc.annot = GpuBlock then begin
                  let slots =
                    float_of_int
                      ((sc.size + gpu.warp - 1) / gpu.warp * gpu.warp)
                  in
                  wave_eff :=
                    Float.min !wave_eff (float_of_int sc.size /. slots)
                end;
                go (depth + 1)
                  ((depth, sc, trip) :: loops)
                  (Some depth) vec tpb' (mult *. trip) sc.body
            | GpuGrid ->
                (* nested grid scopes just add blocks *)
                blocks := !blocks *. float_of_int sc.size;
                go (depth + 1)
                  ((depth, sc, trip) :: loops)
                  block_iter vec tpb (mult *. trip) sc.body
            | Vec ->
                go (depth + 1)
                  ((depth, sc, trip) :: loops)
                  block_iter
                  (Some (depth, sc.size))
                  tpb (mult *. trip) sc.body
            | _ ->
                go (depth + 1)
                  ((depth, sc, trip) :: loops)
                  block_iter vec tpb
                  (mult *. trip)
                  sc.body))
      nodes
  in
  go (grid_depth + 1)
    [ (grid_depth, grid, float_of_int grid.size) ]
    None None 1.0
    (float_of_int (scope_trip grid))
    grid.body;
  (* masked wavefront slots still execute: account via wave efficiency on
     compute; flops above already counted only useful (guarded) trips *)
  {
    flops = !flops;
    traffic_bytes = !traffic;
    total_threads = !blocks *. !max_tpb;
    wave_eff = !wave_eff;
    vectorized = !vectorized;
    has_block = !has_block;
  }

let kernel_time (gpu : Desc.gpu) (stats : kernel_stats) : float =
  (* occupancy: need enough threads to fill the machine *)
  let fill = stats.total_threads /. (float_of_int gpu.sms *. 512.0) in
  let occupancy = Float.min 1.0 fill in
  let occupancy = Float.max occupancy 2e-3 in
  (* threads not grouped into blocks execute one thread per SM slot *)
  let occupancy = if stats.has_block then occupancy else occupancy /. 32.0 in
  let compute_s =
    stats.flops
    /. (gpu.fp32_gflops *. 1e9 *. occupancy *. stats.wave_eff)
  in
  let bw_eff = if stats.vectorized then 1.0 else 0.65 in
  let mem_s =
    stats.traffic_bytes /. (gpu.hbm_gbs *. 1e9 *. bw_eff *. occupancy ** 0.25)
  in
  Float.max compute_s mem_s +. gpu.launch_overhead_s

(* ------------------------------------------------------------------ *)
(* Host walk                                                           *)
(* ------------------------------------------------------------------ *)

let rec host_time (gpu : Desc.gpu) (prog : Ir.Prog.t) depth nodes : float =
  List.fold_left
    (fun acc node ->
      acc
      +.
      match node with
      | Stmt s ->
          let flops = float_of_int (Costs.stmt_fused_ops s) in
          let bytes =
            List.fold_left
              (fun acc ((_ : bool), (a : access)) ->
                let b = Ir.Prog.buffer_of_array prog a.array in
                acc +. float_of_int (dtype_bytes b.dtype))
              0.0 (Costs.stmt_accesses s)
          in
          (flops /. (gpu.host_gflops *. 1e9))
          +. (bytes /. (gpu.host_gbs *. 1e9))
      | Scope sc when sc.annot = GpuGrid ->
          kernel_time gpu (analyze_kernel gpu prog depth sc)
      | Scope sc ->
          let trip = float_of_int (scope_trip sc) in
          trip *. host_time gpu prog (depth + 1) sc.body)
    0.0 nodes

(* Estimated runtime in seconds.  A program with no GPU-mapped scope runs
   entirely on the (slow) host — the search quickly learns to map. *)
let time (gpu : Desc.gpu) (prog : Ir.Prog.t) : float =
  host_time gpu prog 0 prog.body
