(** Cycle-approximate simulator of a single Snitch core with the SSR and
    FREP ISA extensions — the substitute for the paper's Verilator RTL
    model (§4.1, see DESIGN.md).

    Modelled: single-issue in-order execution (every FP op, load, store
    and loop-bookkeeping instruction takes an issue slot), the 4-cycle FP
    use latency on accumulation chains, SSR streams eliminating
    load/store issue slots (with a fixed stream-setup cost per loop-nest
    entry), FREP eliminating loop bookkeeping, and unrolling replicating
    code without bookkeeping.  Per-iteration costs are computed
    symbolically, so the simulation is exact for this affine IR while
    running in time proportional to program size. *)

val ssr_setup_cycles : float

val cycles : Desc.snitch -> Ir.Prog.t -> float
(** Simulated execution cycles. *)

val time : Desc.snitch -> Ir.Prog.t -> float
(** Seconds at the core frequency. *)

val peak_fraction : Desc.snitch -> Ir.Prog.t -> float
(** Fraction of the theoretical compute peak: required arithmetic
    instructions at 1.0 instruction/cycle versus simulated cycles (the
    paper's §4.1 metric). *)
