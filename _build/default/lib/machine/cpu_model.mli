(** Analytic CPU cost model.

    Walks the scheduled IR producing separate compute, memory and
    overhead cycle counts; the estimate overlaps compute with memory
    (max) and adds overheads.  It captures exactly the effects the
    transformations trade off: vectorization amortizes issue slots and
    cache accesses over lanes; unrolling creates independent dependency
    chains that hide FP latency in reductions; fusion and reuse_dims
    shrink footprints, moving traffic up the cache hierarchy;
    parallelization divides compute by cores but memory only up to the
    bandwidth-scaling limit; padding costs masked iterations' overhead.
    Absolute numbers are model outputs; schedule {e ordering} is the
    point (see DESIGN.md). *)

type cost = { comp : float; mem : float; ovh : float }

val access_stride :
  Ir.Prog.t -> int -> Ir.Types.access -> [ `Seq | `Strided | `Invariant ]
(** Contiguity of an access w.r.t. the iterator at the given depth,
    judged on storage-effective indices (reused dimensions do not move
    the address). *)

val breakdown : Desc.cpu -> Ir.Prog.t -> cost
(** Compute / memory / overhead cycle totals of the walk. *)

val time : Desc.cpu -> Ir.Prog.t -> float
(** Estimated runtime in seconds. *)
