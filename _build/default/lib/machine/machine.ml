(* Unified entry point over the three performance backends. *)

module Desc = Desc
module Costs = Costs
module Cpu_model = Cpu_model
module Gpu_model = Gpu_model
module Snitch_sim = Snitch_sim

let time (target : Desc.target) (prog : Ir.Prog.t) : float =
  match target with
  | Desc.Cpu c -> Cpu_model.time c prog
  | Desc.Gpu g -> Gpu_model.time g prog
  | Desc.Snitch s -> Snitch_sim.time s prog

let caps = Desc.caps_of

(* GFLOP/s achieved by a schedule under its target's model, counting the
   program's logical (unfused) arithmetic. *)
let gflops (target : Desc.target) (prog : Ir.Prog.t) : float =
  let t = time target prog in
  if t <= 0.0 then 0.0
  else float_of_int (Ir.Prog.total_flops prog) /. t /. 1e9
