(* Analytic CPU cost model.

   The model walks the scheduled IR and produces separate compute, memory
   and overhead cycle counts; the final estimate overlaps compute with
   memory (max) and adds overheads.  It deliberately captures exactly the
   effects the paper's transformations trade off:
     - vectorization amortizes issue slots and cache accesses over lanes;
     - unrolling creates independent dependency chains that hide FP
       pipeline latency in reductions;
     - fusion and reuse_dims shrink buffer footprints, moving traffic up
       the cache hierarchy;
     - parallelization divides compute by cores but memory only up to the
       bandwidth-scaling limit;
     - padding costs masked iterations' loop overhead.
   Absolute numbers are not the point (the substrate is a model, not the
   authors' testbed); schedule *ordering* is. *)

open Ir.Types

type cost = { comp : float; mem : float; ovh : float }

let zero = { comp = 0.0; mem = 0.0; ovh = 0.0 }
let add a b = { comp = a.comp +. b.comp; mem = a.mem +. b.mem; ovh = a.ovh +. b.ovh }
let scale k a = { comp = k *. a.comp; mem = k *. a.mem; ovh = k *. a.ovh }

type ctx = {
  (* enclosing scopes, innermost first: (depth, scope) *)
  stack : (int * scope) list;
  cores_left : int;
}

(* Innermost enclosing loop of any kind: accesses invariant in it are
   register-carried. *)
let innermost ctx = match ctx.stack with [] -> None | (d, s) :: _ -> Some (d, s)

let access_invariant prog ctx (a : access) =
  match innermost ctx with
  | None -> true
  | Some (d, _) ->
      let b = Ir.Prog.buffer_of_array prog a.array in
      not
        (List.exists2
           (fun i r -> (not r) && Ir.Index.depends_on d i)
           a.idx b.reuse)

(* Contiguity of an access w.r.t. the fastest-varying iterator [d]:
   [`Seq] unit stride in the last dimension, [`Strided] otherwise,
   [`Invariant] when independent of [d]. *)
let access_stride (prog : Ir.Prog.t) d (a : access) =
  let b = Ir.Prog.buffer_of_array prog a.array in
  let n = List.length a.idx in
  (* a reused ([:N]) dimension has storage extent 1: iterator terms in it
     do not move the address, so they are ignored here *)
  let live_deps =
    List.exists2
      (fun i r -> (not r) && Ir.Index.depends_on d i)
      a.idx b.reuse
  in
  if not live_deps then `Invariant
  else begin
    let ok = ref true in
    List.iteri
      (fun dim i ->
        let c = Ir.Index.coeff_of d i in
        let reused = List.nth b.reuse dim in
        if (not reused) && c <> 0 && (dim <> n - 1 || c <> 1) then
          ok := false)
      a.idx;
    if !ok then `Seq else `Strided
  end

let stmt_cost (cpu : Desc.cpu) (prog : Ir.Prog.t) (ctx : ctx) (s : stmt) : cost
    =
  let vec =
    match innermost ctx with
    | Some (d, sc) when sc.annot = Vec -> Some (d, sc.size)
    | _ -> None
  in
  let lanes = match vec with Some (_, l) -> float_of_int l | None -> 1.0 in
  (* --- compute --- *)
  let ops = float_of_int (Costs.stmt_fused_ops s) in
  let issue = ops /. float_of_int cpu.issue_width in
  let comp =
    if Costs.is_rmw s then begin
      (* A serial dependency chain exists whenever some enclosing loop
         (serial OR unrolled: unrolled instances still execute back to
         back) re-executes the statement on the same accumulator.
         Enclosing unrolled/vectorized iterators that the destination
         *does* vary with contribute independent chains that hide the FP
         latency. *)
      let dst_dep d =
        List.exists (fun i -> Ir.Index.depends_on d i) s.dst.idx
      in
      let chained =
        List.exists (fun (d, (_ : scope)) -> not (dst_dep d)) ctx.stack
      in
      if chained then begin
        let chains =
          List.fold_left
            (fun acc (du, su) ->
              match su.annot with
              | Unroll | Vec when dst_dep du ->
                  acc *. float_of_int su.size
              | _ -> acc)
            1.0 ctx.stack
        in
        Float.max issue (float_of_int cpu.fp_latency /. chains)
      end
      else issue
    end
    else issue
  in
  (* --- memory --- *)
  let bw_single =
    (* single-stream DRAM bandwidth in bytes/cycle *)
    cpu.dram_gbs /. cpu.mem_par_scale /. cpu.freq_ghz
  in
  let judge_iter =
    match vec with
    | Some (d, _) -> Some d
    | None -> ( match innermost ctx with Some (d, _) -> Some d | None -> None)
  in
  let access_cost (a : access) =
    let b = Ir.Prog.buffer_of_array prog a.array in
    match b.loc with
    | Register -> 0.0
    | _ ->
        if access_invariant prog ctx a then 0.05 (* register-carried *)
        else begin
          let bytes = float_of_int (dtype_bytes b.dtype) in
          let footprint = Ir.Prog.buffer_bytes b in
          let cache_level_cost =
            if b.loc = Stack || b.loc = Shared then 0.25
            else if footprint <= cpu.l1_bytes then 0.25
            else if footprint <= cpu.l2_bytes then 0.6
            else if footprint <= cpu.llc_bytes then 1.2
            else (bytes /. bw_single) +. 1.0
          in
          let stride =
            match judge_iter with
            | None -> `Seq
            | Some d -> access_stride prog d a
          in
          let stride_factor =
            match stride with
            | `Seq -> 1.0
            | `Invariant -> 1.0
            | `Strided -> if footprint > cpu.l2_bytes then 4.0 else 2.0
          in
          let vec_factor =
            match vec with
            | None -> 1.0
            | Some _ ->
                (* one wide load replaces [lanes] scalar loads for cache-
                   resident data; DRAM-bound streams gain less (fewer
                   transactions) *)
                if footprint <= cpu.llc_bytes || b.loc = Stack then
                  1.0 /. lanes
                else 0.8
          in
          cache_level_cost *. stride_factor *. vec_factor
        end
  in
  let mem =
    List.fold_left
      (fun acc (_, a) -> acc +. access_cost a)
      0.0 (Costs.stmt_accesses s)
  in
  (* in vector context one statement instance covers [lanes] elements,
     so its compute stays a single (vector) instruction while memory
     above was already charged per element times the vector factor *)
  { comp; mem = mem *. lanes; ovh = 0.0 }

let rec nodes_cost cpu prog ctx depth nodes : cost =
  List.fold_left (fun acc n -> add acc (node_cost cpu prog ctx depth n)) zero
    nodes

and node_cost cpu prog ctx depth node : cost =
  match node with
  | Stmt s -> stmt_cost cpu prog ctx s
  | Scope sc -> (
      let trips = float_of_int sc.size in
      let work_trips =
        match sc.guard with Some g -> float_of_int g | None -> trips
      in
      match sc.annot with
      | Vec ->
          (* executes once as vector code; statement costs account for
             the lanes *)
          let body =
            nodes_cost cpu prog
              { ctx with stack = (depth, sc) :: ctx.stack }
              (depth + 1) sc.body
          in
          { body with ovh = body.ovh +. 1.0 }
      | Unroll ->
          let body =
            nodes_cost cpu prog
              { ctx with stack = (depth, sc) :: ctx.stack }
              (depth + 1) sc.body
          in
          (* fully unrolled: no per-iteration branch *)
          scale work_trips body
      | Par ->
          let p = min ctx.cores_left sc.size in
          let p = max p 1 in
          let body =
            nodes_cost cpu prog
              {
                stack = (depth, sc) :: ctx.stack;
                cores_left = max 1 (ctx.cores_left / p);
              }
              (depth + 1) sc.body
          in
          let total = scale work_trips body in
          {
            comp = total.comp /. float_of_int p;
            mem =
              total.mem
              /. Float.min (float_of_int p) cpu.mem_par_scale;
            ovh =
              (total.ovh /. float_of_int p) +. cpu.par_region_overhead;
          }
      | Seq | Frep | GpuGrid | GpuBlock | GpuWarp ->
          let body =
            nodes_cost cpu prog
              { ctx with stack = (depth, sc) :: ctx.stack }
              (depth + 1) sc.body
          in
          let c = scale work_trips body in
          { c with ovh = c.ovh +. (trips *. cpu.loop_overhead) })

let breakdown (cpu : Desc.cpu) (prog : Ir.Prog.t) : cost =
  nodes_cost cpu prog { stack = []; cores_left = cpu.cores } 0 prog.body

(* Estimated runtime in seconds. *)
let time (cpu : Desc.cpu) (prog : Ir.Prog.t) : float =
  let c = breakdown cpu prog in
  let cycles = Float.max c.comp c.mem +. c.ovh in
  cycles /. (cpu.freq_ghz *. 1e9)
