(** Shared helpers for the performance models. *)

val fused_ops : Ir.Types.expr -> int
(** Issued arithmetic instructions with multiply-accumulate fusion:
    Add/Sub with a Mul operand issues as one FMA.  Also the basis of the
    theoretical-peak op count (§4.1). *)

val stmt_fused_ops : Ir.Types.stmt -> int

val total_fused_ops : Ir.Prog.t -> float
(** Whole-program fused-op count; guarded (padded) iterations execute no
    arithmetic. *)

val is_rmw : Ir.Types.stmt -> bool
(** The destination also appears among the operands with an identical
    index vector — a read-modify-write reduction. *)

val stmt_accesses : Ir.Types.stmt -> (bool * Ir.Types.access) list
(** All accesses: rhs reads ([false]) then the destination write
    ([true]). *)
