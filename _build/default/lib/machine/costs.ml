(* Shared helpers for the performance models. *)

open Ir.Types

(* Number of issued arithmetic instructions for an expression, with
   multiply-accumulate fusion: Add/Sub with a Mul operand issues as a
   single FMA.  The same count is used for the theoretical peak (§4.1
   counts required arithmetic operations at 1 instruction/cycle). *)
let rec fused_ops = function
  | Ref _ | IterVal _ | Const _ -> 0
  | Bin ((Add | Sub), e1, Bin (Mul, a, b)) ->
      1 + fused_ops e1 + fused_ops a + fused_ops b
  | Bin ((Add | Sub), Bin (Mul, a, b), e2) ->
      1 + fused_ops a + fused_ops b + fused_ops e2
  | Bin (_, e1, e2) -> 1 + fused_ops e1 + fused_ops e2
  | Un (_, e) -> 1 + fused_ops e

let stmt_fused_ops (s : stmt) = fused_ops s.rhs

(* Total fused operations of a program (guards count the masked range
   only — masked iterations execute no arithmetic). *)
let total_fused_ops (prog : Ir.Prog.t) : float =
  let rec go mult nodes =
    List.fold_left
      (fun acc n ->
        match n with
        | Stmt s -> acc +. (mult *. float_of_int (stmt_fused_ops s))
        | Scope sc ->
            let trip =
              match sc.guard with Some g -> g | None -> sc.size
            in
            acc +. go (mult *. float_of_int trip) sc.body)
      0.0 nodes
  in
  go 1.0 prog.body

(* A statement is a read-modify-write reduction when its destination also
   appears among its operands with an identical index vector. *)
let is_rmw (s : stmt) : bool =
  List.exists
    (fun (a : access) ->
      a.array = s.dst.array
      && List.length a.idx = List.length s.dst.idx
      && List.for_all2 Ir.Index.equal a.idx s.dst.idx)
    (Ir.Prog.expr_refs s.rhs)

(* All accesses of a statement: rhs reads then the destination write. *)
let stmt_accesses (s : stmt) : (bool (* is_write *) * access) list =
  List.map (fun a -> (false, a)) (Ir.Prog.expr_refs s.rhs)
  @ [ (true, s.dst) ]
