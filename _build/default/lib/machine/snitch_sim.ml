(* Cycle-approximate simulator for a single Snitch core with the SSR and
   FREP ISA extensions (Zaruba et al., Schuiki et al.) — the substitute
   for the paper's Verilator RTL model (§4.1).

   Modelled microarchitecture:
     - single-issue in-order core: every instruction (FP op, load, store,
       integer loop bookkeeping) occupies one issue slot;
     - 4-cycle FP use latency: a reduction whose accumulator is reused by
       the next iteration stalls unless enough independent chains exist
       (the paper's tile-outer-by-4-and-unroll heuristic exists exactly
       to create those chains);
     - SSR: memory accesses of a streamed loop issue zero instructions
       (data flows through stream semantic registers); configuring the
       streams costs a fixed setup per loop-nest entry;
     - FREP: the FP repetition buffer removes the loop bookkeeping
       instructions of the annotated loop;
     - loop bookkeeping: add + branch (2 cycles) per iteration of an
       ordinary software loop; unrolled loops replicate their body and
       pay no bookkeeping.

   The simulation is execution-structure-driven but computes per-
   iteration costs symbolically (bodies of affine loops cost the same
   every iteration), so it is exact for this IR while running in time
   proportional to program size, not trip count. *)

open Ir.Types

let ssr_setup_cycles = 27.0 (* stream configuration per loop-nest entry *)

type ctx = {
  stack : (int * scope) list; (* enclosing scopes, innermost first *)
  streamed : bool; (* some enclosing scope has SSR enabled *)
}

let access_invariant ctx (a : access) =
  match ctx.stack with
  | [] -> true
  | (d, _) :: _ -> not (List.exists (fun i -> Ir.Index.depends_on d i) a.idx)

(* Issue slots of one statement instance. *)
let stmt_issue (prog : Ir.Prog.t) (ctx : ctx) (s : stmt) : float =
  let fp = float_of_int (Costs.stmt_fused_ops s) in
  let mem_slots =
    if ctx.streamed then 0.0
    else
      List.fold_left
        (fun acc ((_ : bool), (a : access)) ->
          let b = Ir.Prog.buffer_of_array prog a.array in
          if b.loc = Register then acc
          else if access_invariant ctx a then acc (* kept in a register *)
          else acc +. 1.0)
        0.0 (Costs.stmt_accesses s)
  in
  fp +. mem_slots

(* Independent accumulation chains provided by enclosing unrolled scopes
   whose iterator the destination varies with (the paper's tile-by-4 +
   unroll heuristic creates exactly these). *)
let chains_for ctx (s : stmt) : float =
  List.fold_left
    (fun acc (d, (sc : scope)) ->
      match sc.annot with
      | Unroll
        when List.exists (fun i -> Ir.Index.depends_on d i) s.dst.idx ->
          acc *. float_of_int sc.size
      | _ -> acc)
    1.0 ctx.stack

(* Cycles of one dynamic statement instance: issue slots, extended to the
   FP use latency when the statement extends a serial accumulation
   chain.  A chain exists whenever some enclosing loop — serial or
   unrolled, since unrolled instances still execute back to back —
   re-executes the statement on the same accumulator. *)
let stmt_cycles (sn : Desc.snitch) prog ctx (s : stmt) : float =
  let issue = stmt_issue prog ctx s in
  if Costs.is_rmw s then begin
    let dst_dep d =
      List.exists (fun i -> Ir.Index.depends_on d i) s.dst.idx
    in
    let chained =
      List.exists (fun (d, (_ : scope)) -> not (dst_dep d)) ctx.stack
    in
    if chained then
      Float.max issue (float_of_int sn.sn_fp_latency /. chains_for ctx s)
    else issue
  end
  else issue

let rec nodes_cycles (sn : Desc.snitch) prog ctx depth nodes : float =
  List.fold_left
    (fun acc n -> acc +. node_cycles sn prog ctx depth n)
    0.0 nodes

and node_cycles (sn : Desc.snitch) prog ctx depth node : float =
  match node with
  | Stmt s -> stmt_cycles sn prog ctx s
  | Scope sc ->
      let trips = float_of_int sc.size in
      let work_trips =
        match sc.guard with Some g -> float_of_int g | None -> trips
      in
      let ctx' =
        {
          stack = (depth, sc) :: ctx.stack;
          streamed = ctx.streamed || sc.ssr;
        }
      in
      let body = nodes_cycles sn prog ctx' (depth + 1) sc.body in
      let bookkeeping =
        match sc.annot with
        | Frep | Unroll -> 0.0
        | Seq | Par | Vec | GpuGrid | GpuBlock | GpuWarp ->
            float_of_int sn.sn_loop_overhead
      in
      let setup = if sc.ssr then ssr_setup_cycles else 0.0 in
      (work_trips *. body) +. (trips *. bookkeeping) +. setup

let cycles (sn : Desc.snitch) (prog : Ir.Prog.t) : float =
  nodes_cycles sn prog { stack = []; streamed = false } 0 prog.body

let time (sn : Desc.snitch) (prog : Ir.Prog.t) : float =
  cycles sn prog /. (sn.sn_freq_ghz *. 1e9)

(* Fraction of the theoretical compute peak (§4.1): required arithmetic
   instructions at 1.0 instructions/cycle versus simulated cycles. *)
let peak_fraction (sn : Desc.snitch) (prog : Ir.Prog.t) : float =
  let ops = Costs.total_fused_ops prog in
  let cyc = cycles sn prog in
  if cyc <= 0.0 then 0.0 else ops /. cyc
