(** Statistics helpers used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean ([nan] on empty input). *)

val geomean : float array -> float
(** Geometric mean; raises [Invalid_argument] on non-positive values.
    Used for the paper's geometric-mean speedup summaries. *)

val variance : float array -> float
(** Unbiased sample variance (0 for fewer than two samples). *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val min_arr : float array -> float
val max_arr : float array -> float

val quantile : float -> float array -> float
(** [quantile q xs] with linear interpolation, [q] in [\[0, 1\]]. *)

val median : float array -> float
