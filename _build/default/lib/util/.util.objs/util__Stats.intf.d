lib/util/stats.mli:
