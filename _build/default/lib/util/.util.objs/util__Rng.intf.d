lib/util/rng.mli:
