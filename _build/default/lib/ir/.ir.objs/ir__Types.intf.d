lib/ir/types.mli:
