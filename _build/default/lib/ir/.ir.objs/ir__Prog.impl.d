lib/ir/prog.ml: Array List Printf Types
