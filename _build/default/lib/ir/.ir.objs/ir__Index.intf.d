lib/ir/index.mli: Types
