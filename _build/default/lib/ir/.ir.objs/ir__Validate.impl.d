lib/ir/validate.ml: Array Hashtbl Index List Printf Prog Types
