lib/ir/parser.ml: Float Index List Printf String Types
