lib/ir/index.ml: Array Hashtbl List Printf String Types
