lib/ir/printer.ml: Float Format Index List Printf String Types
