(** Structural validation.

    Transformations preserve these invariants by construction; the engine
    re-checks after every applied move and the tests after every
    transformation: known arrays, matching ranks, in-bounds affine index
    ranges, depth references within the enclosing scope chain, positive
    scope sizes, guards within range, vectorized scopes wrapping
    statements only. *)

type error =
  | Unknown_array of string
  | Rank_mismatch of string * int * int  (** array, expected, got *)
  | Bad_depth_ref of string * int * int  (** context, depth, max-depth *)
  | Out_of_bounds of string * int * int * int
      (** array, dim, reached value, extent *)
  | Bad_scope_size of int
  | Bad_guard of int * int
  | Duplicate_array of string
  | Vec_scope_not_innermost
  | Empty_scope

val error_to_string : error -> string

exception Invalid of error list

val check : Prog.t -> error list
(** All violations, in traversal order (empty = valid). *)

val check_exn : Prog.t -> unit
(** Raises {!Invalid} when {!check} finds violations. *)

val is_valid : Prog.t -> bool
