(** Human-readable textual form of the IR (Figure 3b).

    Scopes print as their iteration count with annotation suffixes
    ([1024:v], [320:b/300] for a padded scope); child relationship is
    rendered with vertical bars; buffer declarations
    ([name dtype [d1, d2:N] location -> aliases]) precede the body.  The
    output of {!program} parses back with {!Parser.program}. *)

val program : Types.program -> string
(** Full program: buffers, inputs/outputs, body. *)

val body : Types.program -> string
(** Body only — the state text fed to the PerfLLM embedding. *)

val stmt_str : Types.stmt -> string
val expr_str : ?prec:int -> Types.expr -> string
val access_str : Types.access -> string
val scope_header : Types.scope -> string
val buffer_str : Types.buffer -> string
val float_str : float -> string
val pp : Format.formatter -> Types.program -> unit
