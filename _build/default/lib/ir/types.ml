(* Core data structures of the PerfDojo intermediate representation (§2.1).

   A program is an ordered tree.  Internal vertices (scopes) are
   single-dimensional iteration ranges; leaves are scalar statements whose
   operands address multidimensional arrays with affine index expressions.
   An index term [{k}] refers to the iteration variable of the ancestor
   scope at depth [k], counting from the outermost scope (depth 0). *)

type dtype = F32 | F64 | I32

let dtype_bytes = function F32 -> 4 | F64 -> 8 | I32 -> 4
let dtype_name = function F32 -> "f32" | F64 -> "f64" | I32 -> "i32"

type location = Heap | Stack | Shared | Register

let location_name = function
  | Heap -> "heap"
  | Stack -> "stack"
  | Shared -> "shared"
  | Register -> "register"

(* Affine index expression: sum of coeff*{depth} terms plus a constant.
   Terms are kept sorted by depth with non-zero coefficients (see
   {!Index.normalize}). *)
type index = { terms : (int * int) list; (* (coeff, depth) *) offset : int }

type access = { array : string; idx : index list }

type binop = Add | Sub | Mul | Div | Max | Min

type unop = Exp | Log | Sqrt | Neg | Recip | Relu

type expr =
  | Ref of access
  | IterVal of index (* "index as value" (Table 2) *)
  | Const of float
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt = { dst : access; rhs : expr }

(* Scope annotations map iteration ranges onto hardware features (§2.1):
   [:u] unroll, [:p] CPU-parallel, [:v] vectorize, [:g]/[:b]/[:w] GPU grid /
   block / warp, and the Snitch FREP hardware loop. *)
type annot = Seq | Unroll | Par | Vec | GpuGrid | GpuBlock | GpuWarp | Frep

let annot_suffix = function
  | Seq -> None
  | Unroll -> Some "u"
  | Par -> Some "p"
  | Vec -> Some "v"
  | GpuGrid -> Some "g"
  | GpuBlock -> Some "b"
  | GpuWarp -> Some "w"
  | Frep -> Some "f"

type node = Scope of scope | Stmt of stmt

and scope = {
  size : int;
  annot : annot;
  ssr : bool; (* memory accesses of the body are streamed via Snitch SSRs *)
  guard : int option; (* [Some n]: padded loop, iterations >= n are masked *)
  body : node list;
}

(* Buffer declaration: name, element type, shape (with per-dimension
   materialization flags: [reuse.(i) = true] corresponds to the [:N] suffix
   and collapses dimension [i] to extent 1 in storage), memory location and
   the list of array names that alias this storage. *)
type buffer = {
  bname : string;
  dtype : dtype;
  shape : int list;
  reuse : bool list;
  loc : location;
  arrays : string list;
}

type program = {
  buffers : buffer list;
  inputs : string list; (* array names bound before execution *)
  outputs : string list; (* array names read after execution *)
  body : node list;
}

(* A path addresses a node in the tree by child indices from the root. *)
type path = int list

let scope ?(annot = Seq) ?(ssr = false) ?guard size body =
  Scope { size; annot; ssr; guard; body }

let buffer ?(loc = Heap) ?reuse ?arrays name dtype shape =
  let reuse =
    match reuse with Some r -> r | None -> List.map (fun _ -> false) shape
  in
  let arrays = match arrays with Some a -> a | None -> [ name ] in
  if List.length reuse <> List.length shape then
    invalid_arg "Types.buffer: reuse list must match shape";
  { bname = name; dtype; shape; reuse; loc; arrays }
