(* Structural validation of programs.  Transformations preserve these
   invariants; the engine re-checks them after every move in debug builds
   and the test suite checks them after every transformation. *)

open Types

type error =
  | Unknown_array of string
  | Rank_mismatch of string * int * int (* array, expected, got *)
  | Bad_depth_ref of string * int * int (* context, depth, max-depth *)
  | Out_of_bounds of string * int * int * int (* array, dim, lo/hi, extent *)
  | Bad_scope_size of int
  | Bad_guard of int * int
  | Duplicate_array of string
  | Vec_scope_not_innermost
  | Empty_scope

let error_to_string = function
  | Unknown_array a -> Printf.sprintf "unknown array %S" a
  | Rank_mismatch (a, want, got) ->
      Printf.sprintf "array %S: expected rank %d, got %d" a want got
  | Bad_depth_ref (ctx, d, maxd) ->
      Printf.sprintf "%s: reference {%d} but only %d enclosing scopes" ctx d
        maxd
  | Out_of_bounds (a, dim, v, ext) ->
      Printf.sprintf "array %S dim %d: index reaches %d, extent %d" a dim v ext
  | Bad_scope_size n -> Printf.sprintf "scope size %d must be positive" n
  | Bad_guard (g, n) ->
      Printf.sprintf "guard %d must be in [1, size=%d]" g n
  | Duplicate_array a -> Printf.sprintf "array %S declared twice" a
  | Vec_scope_not_innermost -> "vectorized scope must wrap statements only"
  | Empty_scope -> "scope with empty body"

exception Invalid of error list

let check (prog : Prog.t) : error list =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  (* unique array names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun b ->
      List.iter
        (fun a ->
          if Hashtbl.mem seen a then err (Duplicate_array a)
          else Hashtbl.add seen a b)
        b.arrays)
    prog.buffers;
  let find_buffer a = Hashtbl.find_opt seen a in
  (* walk tree tracking enclosing scope sizes *)
  let rec walk (sizes : int list (* innermost first *)) nodes =
    List.iter
      (fun node ->
        match node with
        | Scope sc ->
            if sc.size <= 0 then err (Bad_scope_size sc.size);
            (match sc.guard with
            | Some g when g < 1 || g > sc.size -> err (Bad_guard (g, sc.size))
            | _ -> ());
            if sc.body = [] then err Empty_scope;
            if
              sc.annot = Vec
              && List.exists (function Scope _ -> true | _ -> false) sc.body
            then err Vec_scope_not_innermost;
            (* padded iterations are masked, so the effective extent an
               iterator contributes to indices is the guard *)
            let extent =
              match sc.guard with Some g -> g | None -> sc.size
            in
            walk (extent :: sizes) sc.body
        | Stmt s ->
            let depth_count = List.length sizes in
            let sizes_arr = Array.of_list (List.rev sizes) in
            (* The extent an iterator contributes is its guard when the
               scope is padded; indices must stay in bounds for the
               *unpadded* range, and padded iterations are masked. *)
            let size_fn d =
              if d >= 0 && d < Array.length sizes_arr then sizes_arr.(d) else 1
            in
            let check_access kind (a : access) =
              let ctx = Printf.sprintf "%s of %s" kind a.array in
              (match find_buffer a.array with
              | None -> err (Unknown_array a.array)
              | Some b ->
                  let rank = List.length b.shape in
                  if List.length a.idx <> rank then
                    err (Rank_mismatch (a.array, rank, List.length a.idx))
                  else
                    List.iteri
                      (fun dim idx ->
                        let ext = List.nth b.shape dim in
                        let lo, hi = Index.value_range size_fn idx in
                        if lo < 0 then err (Out_of_bounds (a.array, dim, lo, ext))
                        else if hi >= ext then
                          err (Out_of_bounds (a.array, dim, hi, ext)))
                      a.idx);
              List.iter
                (fun idx ->
                  List.iter
                    (fun d ->
                      if d < 0 || d >= depth_count then
                        err (Bad_depth_ref (ctx, d, depth_count)))
                    (Index.depths idx))
                a.idx
            in
            check_access "write" s.dst;
            List.iter (check_access "read") (Prog.expr_refs s.rhs);
            Prog.expr_iter_index
              (fun idx ->
                List.iter
                  (fun d ->
                    if d < 0 || d >= depth_count then
                      err (Bad_depth_ref ("iterval", d, depth_count)))
                  (Index.depths idx))
              s.rhs)
      nodes
  in
  walk [] prog.body;
  List.rev !errors

let check_exn prog =
  match check prog with [] -> () | errs -> raise (Invalid errs)

let is_valid prog = check prog = []
