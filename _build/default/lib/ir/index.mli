(** Affine index expressions.

    An index is a normal-form affine combination of iterator references:
    a sorted list of [(coefficient, depth)] terms plus a constant offset,
    where [depth] identifies an enclosing scope counted from the
    outermost (depth 0).  All loop-structure transformations — tiling,
    interchange, fusion shifts — are expressed as depth remappings over
    these terms. *)

open Types

val normalize : (int * int) list -> int -> index
(** [normalize terms offset] merges duplicate depths, drops zero
    coefficients and sorts terms by depth. *)

val const : int -> index
(** Constant index. *)

val iter : ?coeff:int -> int -> index
(** [iter ~coeff d] is [coeff * {d}] (default coefficient 1). *)

val zero : index

val add : index -> index -> index
val scale : int -> index -> index

val equal : index -> index -> bool
(** Structural equality of normal forms. *)

val coeff_of : int -> index -> int
(** Coefficient of iterator [{d}] (0 when absent). *)

val depends_on : int -> index -> bool
val depths : index -> int list
val is_const : index -> bool

val subst : (int -> index) -> index -> index
(** [subst f i] replaces each term [c * {d}] by [c * f d].  This is the
    workhorse of tiling ([{d} -> k*{d} + {d+1}]), interchange (swap two
    depths) and fusion (depth shifts). *)

val shift_depths : from:int -> delta:int -> index -> index
(** Shift all iterator depths [>= from] by [delta]. *)

val eval : int array -> index -> int
(** [eval env i] evaluates under [env.(d)] = current iteration of the
    scope at depth [d]. *)

val value_range : (int -> int) -> index -> int * int
(** [value_range sizes i] is the inclusive [(lo, hi)] range of values the
    index takes when each iterator [d] ranges over [0 .. sizes d - 1]. *)

val to_string : index -> string
(** Textual form, e.g. ["4*{0}+{1}+3"]. *)
