(** Parser for the textual IR form produced by {!Printer}.

    The format is line-oriented: buffer declarations, optional
    [inputs:] / [outputs:] lines, then the body where leading ["| "] bars
    encode tree depth.  Lines starting with [#] are comments. *)

exception Parse_error of string

val program : string -> Types.program
(** Parse a full program.  Raises {!Parse_error} on malformed input. *)

val parse_stmt_line : string -> Types.stmt
(** Parse a single statement like ["z[{0},{1}] = x[{0},{1}] * 2"]. *)

val parse_scope_header : string -> Types.scope option
(** Parse a scope header like ["1024:v"] or ["320:b/300"]; [None] when
    the line is not a scope header (its body is left empty). *)

val parse_buffer_line : string -> Types.buffer option
(** Parse a buffer declaration like
    ["t f32 [8, 4:N] stack -> t1, t2"]. *)
