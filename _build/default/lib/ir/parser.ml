(* Parser for the textual IR form produced by {!Printer}.  The format is
   line-oriented: buffer declarations, then [inputs:] / [outputs:] lines,
   then the body where leading "| " bars encode tree depth. *)

open Types

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer for statements and index expressions                      *)
(* ------------------------------------------------------------------ *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | COMMA
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EQUALS

let tokenize (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' -> incr i
    | '{' -> push LBRACE; incr i
    | '}' -> push RBRACE; incr i
    | '[' -> push LBRACKET; incr i
    | ']' -> push RBRACKET; incr i
    | '(' -> push LPAREN; incr i
    | ')' -> push RPAREN; incr i
    | ',' -> push COMMA; incr i
    | '+' -> push PLUS; incr i
    | '-' -> push MINUS; incr i
    | '*' -> push STAR; incr i
    | '/' -> push SLASH; incr i
    | '=' -> push EQUALS; incr i
    | '0' .. '9' ->
        let start = !i in
        while
          !i < n
          && (match s.[!i] with
             | '0' .. '9' | '.' | 'e' -> true
             | '-' | '+' -> !i > start && s.[!i - 1] = 'e'
             | _ -> false)
        do
          incr i
        done;
        let lit = String.sub s start (!i - start) in
        if String.contains lit '.' || String.contains lit 'e' then
          push (FLOAT (float_of_string lit))
        else push (INT (int_of_string lit))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let start = !i in
        while
          !i < n
          && (match s.[!i] with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
             | _ -> false)
        do
          incr i
        done;
        push (IDENT (String.sub s start (!i - start)))
    | c -> fail "unexpected character %C in %S" c s);
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Recursive-descent expression parser                                 *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail "unexpected end of line"
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then fail "unexpected token"

(* Indices: affine combinations of {k} references and integers. *)
let rec parse_index st : index =
  let term sign =
    match next st with
    | INT c -> (
        match peek st with
        | Some STAR ->
            ignore (next st);
            expect st LBRACE;
            let d = match next st with
              | INT d -> d
              | _ -> fail "expected depth in {}"
            in
            expect st RBRACE;
            Index.iter ~coeff:(sign * c) d
        | _ -> Index.const (sign * c))
    | LBRACE ->
        let d = match next st with
          | INT d -> d
          | _ -> fail "expected depth in {}"
        in
        expect st RBRACE;
        let coeff =
          match peek st with
          | Some STAR -> (
              ignore (next st);
              match next st with
              | INT c -> c
              | _ -> fail "expected coefficient")
          | _ -> 1
        in
        Index.iter ~coeff:(sign * coeff) d
    | _ -> fail "bad index term"
  in
  let rec loop acc =
    match peek st with
    | Some PLUS ->
        ignore (next st);
        loop (Index.add acc (term 1))
    | Some MINUS ->
        ignore (next st);
        loop (Index.add acc (term (-1)))
    | _ -> acc
  in
  let first =
    match peek st with
    | Some MINUS ->
        ignore (next st);
        term (-1)
    | _ -> term 1
  in
  loop first

and parse_index_list st =
  let rec go acc =
    let i = parse_index st in
    match peek st with
    | Some COMMA ->
        ignore (next st);
        go (i :: acc)
    | _ -> List.rev (i :: acc)
  in
  go []

let unop_of_name = function
  | "exp" -> Some Exp
  | "log" -> Some Log
  | "sqrt" -> Some Sqrt
  | "neg" -> Some Neg
  | "recip" -> Some Recip
  | "relu" -> Some Relu
  | _ -> None

let rec parse_expr st : expr =
  let lhs = parse_term st in
  let rec loop lhs =
    match peek st with
    | Some PLUS ->
        ignore (next st);
        loop (Bin (Add, lhs, parse_term st))
    | Some MINUS ->
        ignore (next st);
        loop (Bin (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  loop lhs

and parse_term st : expr =
  let lhs = parse_factor st in
  let rec loop lhs =
    match peek st with
    | Some STAR ->
        ignore (next st);
        loop (Bin (Mul, lhs, parse_factor st))
    | Some SLASH ->
        ignore (next st);
        loop (Bin (Div, lhs, parse_factor st))
    | _ -> lhs
  in
  loop lhs

and parse_factor st : expr =
  match next st with
  | INT n -> Const (float_of_int n)
  | FLOAT f -> Const f
  | MINUS -> (
      match parse_factor st with
      | Const c -> Const (-.c)
      | e -> Un (Neg, e))
  | LPAREN ->
      let e = parse_expr st in
      expect st RPAREN;
      e
  | LBRACE -> (
      (* index as value: {d} is the iterator of the scope at depth d *)
      match next st with
      | INT d ->
          expect st RBRACE;
          IterVal (Index.iter d)
      | _ -> fail "expected depth in {}")
  | IDENT "inf" -> Const Float.infinity
  | IDENT "idx" ->
      (* general affine index-as-value: idx(2*{0}+{1}-3) *)
      expect st LPAREN;
      let i = parse_index st in
      expect st RPAREN;
      IterVal i
  | IDENT name -> (
      match peek st with
      | Some LBRACKET ->
          ignore (next st);
          let idx = parse_index_list st in
          expect st RBRACKET;
          Ref { array = name; idx }
      | Some LPAREN -> (
          ignore (next st);
          match unop_of_name name with
          | Some op ->
              let e = parse_expr st in
              expect st RPAREN;
              Un (op, e)
          | None ->
              let binop =
                match name with
                | "max" -> Max
                | "min" -> Min
                | _ -> fail "unknown function %s" name
              in
              let e1 = parse_expr st in
              expect st COMMA;
              let e2 = parse_expr st in
              expect st RPAREN;
              Bin (binop, e1, e2))
      | _ -> Ref { array = name; idx = [] })
  | _ -> fail "bad expression"

(* The {%d} inside IterVal must re-enter index parsing: handle the common
   printed form "{k}" by treating a bare brace term above.  The printer
   emits IterVal as "{<affine>}", which the LBRACE case handles. *)

let parse_stmt_line (line : string) : stmt =
  let st = { toks = tokenize line } in
  let dst =
    match next st with
    | IDENT name -> (
        match peek st with
        | Some LBRACKET ->
            ignore (next st);
            let idx = parse_index_list st in
            expect st RBRACKET;
            { array = name; idx }
        | _ -> { array = name; idx = [] })
    | _ -> fail "statement must start with destination: %S" line
  in
  expect st EQUALS;
  let rhs = parse_expr st in
  if st.toks <> [] then fail "trailing tokens in %S" line;
  { dst; rhs }

(* ------------------------------------------------------------------ *)
(* Line classification and tree reconstruction                         *)
(* ------------------------------------------------------------------ *)

let parse_scope_header (line : string) : scope option =
  (* size[:flag,...][/guard]; any parse failure means "not a scope line" *)
  let line = String.trim line in
  let main, guard =
    match String.index_opt line '/' with
    | Some i -> (
        match
          int_of_string_opt
            (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
        with
        | Some g -> (String.sub line 0 i, Some g)
        | None -> (line, None))
    | None -> (line, None)
  in
  let size_str, flags =
    match String.index_opt main ':' with
    | Some i ->
        ( String.sub main 0 i,
          String.split_on_char ','
            (String.sub main (i + 1) (String.length main - i - 1)) )
    | None -> (main, [])
  in
  match int_of_string_opt (String.trim size_str) with
  | None -> None
  | Some size ->
      let annot = ref Seq and ssr = ref false in
      let ok =
        List.for_all
          (fun f ->
            match String.trim f with
            | "u" -> annot := Unroll; true
            | "p" -> annot := Par; true
            | "v" -> annot := Vec; true
            | "g" -> annot := GpuGrid; true
            | "b" -> annot := GpuBlock; true
            | "w" -> annot := GpuWarp; true
            | "f" -> annot := Frep; true
            | "ssr" -> ssr := true; true
            | _ -> false)
          flags
      in
      if ok then Some { size; annot = !annot; ssr = !ssr; guard; body = [] }
      else None

(* Count the leading "| " bars of a body line; returns (depth, rest). *)
let strip_bars (line : string) : int * string =
  let rec go i depth =
    if i + 1 < String.length line && line.[i] = '|' then
      go (i + 2) (depth + 1)
    else (depth, String.sub line i (String.length line - i))
  in
  go 0 0

let parse_buffer_line (line : string) : buffer option =
  (* name dtype [shape] location [-> arrays] *)
  let line = String.trim line in
  match String.index_opt line '[' with
  | None -> None
  | Some lb -> (
      match String.index_opt line ']' with
      | None -> None
      | Some rb ->
          let head = String.trim (String.sub line 0 lb) in
          let shape_str = String.sub line (lb + 1) (rb - lb - 1) in
          let tail =
            String.trim (String.sub line (rb + 1) (String.length line - rb - 1))
          in
          (match String.split_on_char ' ' head with
          | [ name; dt ] -> (
              let dtype =
                match dt with
                | "f32" -> Some F32
                | "f64" -> Some F64
                | "i32" -> Some I32
                | _ -> None
              in
              match dtype with
              | None -> None
              | Some dtype ->
                  let dims =
                    List.map String.trim (String.split_on_char ',' shape_str)
                  in
                  let shape, reuse =
                    List.split
                      (List.map
                         (fun d ->
                           match String.split_on_char ':' d with
                           | [ n ] -> (int_of_string n, false)
                           | [ n; "N" ] -> (int_of_string n, true)
                           | _ -> fail "bad buffer dimension %S" d)
                         dims)
                  in
                  let loc_str, arrays =
                    match String.index_opt tail '-' with
                    | Some i when i + 1 < String.length tail && tail.[i+1] = '>'
                      ->
                        ( String.trim (String.sub tail 0 i),
                          List.map String.trim
                            (String.split_on_char ','
                               (String.sub tail (i + 2)
                                  (String.length tail - i - 2))) )
                    | _ -> (tail, [ name ])
                  in
                  let loc =
                    match loc_str with
                    | "heap" -> Heap
                    | "stack" -> Stack
                    | "shared" -> Shared
                    | "register" -> Register
                    | s -> fail "bad location %S" s
                  in
                  Some { bname = name; dtype; shape; reuse; loc; arrays })
          | _ -> None))

let parse_io_line prefix line =
  let n = String.length prefix in
  if String.length line >= n && String.sub line 0 n = prefix then
    Some
      (List.filter
         (fun s -> s <> "")
         (List.map String.trim
            (String.split_on_char ','
               (String.sub line n (String.length line - n)))))
  else None

let program (text : string) : program =
  let lines =
    List.filter
      (fun l -> String.trim l <> "" && not (String.length (String.trim l) > 0
                                            && (String.trim l).[0] = '#'))
      (String.split_on_char '\n' text)
  in
  let buffers = ref [] and inputs = ref [] and outputs = ref [] in
  let body_lines = ref [] in
  List.iter
    (fun line ->
      match parse_io_line "inputs:" (String.trim line) with
      | Some l -> inputs := l
      | None -> (
          match parse_io_line "outputs:" (String.trim line) with
          | Some l -> outputs := l
          | None ->
              let depth, _rest = strip_bars (String.trim line) in
              if depth = 0 && !body_lines = [] then
                match parse_buffer_line line with
                | Some b -> buffers := b :: !buffers
                | None -> body_lines := line :: !body_lines
              else body_lines := line :: !body_lines))
    lines;
  let body_lines = List.rev !body_lines in
  (* Reconstruct the tree from (depth, content) pairs. *)
  let items =
    List.map
      (fun line ->
        let depth, rest = strip_bars (String.trim line) in
        (depth, String.trim rest))
      body_lines
  in
  let rec parse_level depth items : node list * (int * string) list =
    match items with
    | [] -> ([], [])
    | (d, _) :: _ when d < depth -> ([], items)
    | (d, content) :: rest when d = depth -> (
        match parse_scope_header content with
        | Some sc ->
            let children, rest' = parse_level (depth + 1) rest in
            let siblings, rest'' = parse_level depth rest' in
            (Scope { sc with body = children } :: siblings, rest'')
        | None ->
            let stmt = parse_stmt_line content in
            let siblings, rest' = parse_level depth rest in
            (Stmt stmt :: siblings, rest'))
    | (d, _) :: _ -> fail "line at depth %d, expected <= %d" d depth
  in
  let body, leftover = parse_level 0 items in
  if leftover <> [] then fail "could not consume all body lines";
  {
    buffers = List.rev !buffers;
    inputs = !inputs;
    outputs = !outputs;
    body;
  }
