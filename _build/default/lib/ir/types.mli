(** Core data structures of the PerfDojo IR (§2.1).

    A program is an ordered tree: internal vertices are
    single-dimensional iteration {!scope}s, leaves are scalar statements
    whose operands address multidimensional arrays with affine
    {!index} expressions.  [{k}] refers to the iterator of the ancestor
    scope at depth [k], counted from the outermost (depth 0).  The order
    of children defines execution order. *)

type dtype = F32 | F64 | I32

val dtype_bytes : dtype -> int
val dtype_name : dtype -> string

type location = Heap | Stack | Shared | Register

val location_name : location -> string

(** Affine index: sum of [coeff * {depth}] terms plus a constant.  Kept
    in normal form (terms sorted by depth, no zero coefficients) — see
    {!Index.normalize}. *)
type index = { terms : (int * int) list; offset : int }

type access = { array : string; idx : index list }

type binop = Add | Sub | Mul | Div | Max | Min
type unop = Exp | Log | Sqrt | Neg | Recip | Relu

type expr =
  | Ref of access
  | IterVal of index  (** "index as value" (Table 2) *)
  | Const of float
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt = { dst : access; rhs : expr }

(** Scope annotations map iteration ranges onto hardware features:
    [:u] unroll, [:p] CPU threads, [:v] vector lanes, [:g]/[:b]/[:w]
    GPU grid/block/warp, and the Snitch FREP hardware loop. *)
type annot = Seq | Unroll | Par | Vec | GpuGrid | GpuBlock | GpuWarp | Frep

val annot_suffix : annot -> string option

type node = Scope of scope | Stmt of stmt

and scope = {
  size : int;
  annot : annot;
  ssr : bool;  (** body memory accesses stream through Snitch SSRs *)
  guard : int option;  (** [Some n]: padded loop, iterations >= n masked *)
  body : node list;
}

(** Buffer declaration: element type, logical shape, per-dimension
    materialization flags ([reuse.(i) = true] is the [:N] suffix —
    storage extent 1), memory location, and the array names aliasing
    this storage. *)
type buffer = {
  bname : string;
  dtype : dtype;
  shape : int list;
  reuse : bool list;
  loc : location;
  arrays : string list;
}

type program = {
  buffers : buffer list;
  inputs : string list;  (** arrays bound before execution *)
  outputs : string list;  (** arrays read after execution *)
  body : node list;
}

type path = int list
(** A node address: child indices from the root. *)

val scope : ?annot:annot -> ?ssr:bool -> ?guard:int -> int -> node list -> node
(** [scope n body] builds a sequential scope of [n] iterations. *)

val buffer :
  ?loc:location ->
  ?reuse:bool list ->
  ?arrays:string list ->
  string ->
  dtype ->
  int list ->
  buffer
(** [buffer name dtype shape] with heap location, no reuse and a single
    array of the same name by default. *)
