(** Program-level utilities: traversal by path, expression iteration,
    access collection, buffer lookup and bulk index rewriting — the
    primitives every transformation is written in terms of. *)

open Types

type t = program

exception Invalid_path of path

(** {1 Expressions} *)

val expr_fold_refs : ('a -> access -> 'a) -> 'a -> expr -> 'a
val expr_refs : expr -> access list
(** All array reads of an expression, left to right. *)

val expr_map_access : (access -> access) -> expr -> expr
val expr_map_index : (index -> index) -> expr -> expr
(** Rewrite every index, both in array accesses and IterVal leaves. *)

val expr_iter_index : (index -> unit) -> expr -> unit
val stmt_map_index : (index -> index) -> stmt -> stmt
val stmt_iter_index : (index -> unit) -> stmt -> unit

val expr_flops : expr -> int
val stmt_flops : stmt -> int
(** Scalar arithmetic operations per execution (unfused count). *)

(** {1 Tree traversal} *)

val node_at : t -> path -> node
(** Raises {!Invalid_path} when the path does not address a node. *)

val scope_at : t -> path -> scope
val stmt_at : t -> path -> stmt

val rewrite_at : t -> path -> (node -> node list) -> t
(** Replace the node at the path by a node list (empty removes it,
    several splice in place). *)

val depth_of_path : t -> path -> int
(** Number of scopes strictly enclosing the node at the path. *)

val iter_nodes : (path -> node -> unit) -> t -> unit
(** Visit every node with its path, outer before inner, in order. *)

val fold_nodes : ('a -> path -> node -> 'a) -> 'a -> t -> 'a

val stmts_under : node list -> stmt list
val stmts_of_node : node -> stmt list
val node_map_index : (index -> index) -> node -> node

(** {1 Accesses} *)

type access_kind = Read | Write

val stmt_accesses : stmt -> (access_kind * access) list
(** Reads of the right-hand side first, then the destination write. *)

val node_accesses : node -> (access_kind * access) list
val written_arrays : node -> string list
val read_arrays : node -> string list

(** {1 Buffers} *)

val buffer_of_array : t -> string -> buffer
(** Buffer an array name belongs to; raises [Invalid_argument] for an
    unknown array. *)

val buffer_by_name : t -> string -> buffer
val replace_buffer : t -> buffer -> t

val arrays_alias : t -> string -> string -> bool
(** Whether two array names share storage. *)

val storage_shape : buffer -> int list
(** Shape with reused ([:N]) dimensions collapsed to extent 1. *)

val buffer_bytes : buffer -> int
(** Materialized storage footprint in bytes. *)

val total_flops : t -> int
(** Scalar arithmetic operations over the whole program — the basis of
    the theoretical-peak metric (§4.1). *)

val enclosing_sizes : t -> path -> int array
(** Sizes of the scopes enclosing a node, indexed by depth. *)
